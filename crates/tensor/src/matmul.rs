//! Matrix multiplication and related linear-algebra kernels.
//!
//! The three matmul entry points share one cache-blocked, register-tiled
//! kernel: a 6×16 output tile is accumulated in registers while the k
//! dimension streams through it, and large products are parallelised over
//! disjoint row blocks of the output via [`crate::parallel`]. Both gradient
//! variants reduce to the same kernel through an explicit (blocked)
//! transpose of one operand.
//!
//! Determinism contract: every output element accumulates its `k`
//! contributions in ascending order into a single `f32` accumulator —
//! exactly the order the original scalar loops used — and row blocks are
//! disjoint, so results are bit-identical for any thread count and to the
//! pre-tiled kernels. `matmul` / `matmul_at_b` keep their historical
//! skip of zero `A` entries; `matmul_a_bt` (which never skipped) does not.

use crate::parallel::{default_threads, parallel_row_blocks};
use crate::shape::Shape;
use crate::tensor::Tensor;

/// Register-tile height (output rows held in accumulators at once).
const MR: usize = 6;
/// Register-tile width (output columns held in accumulators at once).
const NR: usize = 16;
/// Cache-block depth: the `k` range a register tile consumes before its
/// partial sums return to the output buffer. A `KC`×`NR` stripe of `B`
/// (16 KiB) stays L1-resident for the whole stripe of row tiles.
const KC: usize = 256;
/// Cache-block width: columns of `B` processed per pass, keeping the
/// `KC`×`NC` panel (128 KiB) L2-resident across all row tiles.
const NC: usize = 128;
/// Products with at least this many multiply–accumulates fan out over the
/// worker pool; smaller ones (every per-client training step at the default
/// model sizes) stay sequential, because clients already train in parallel.
const PAR_MIN_MACS: usize = 1 << 25;

fn auto_threads(m: usize, k: usize, n: usize) -> usize {
    if m.saturating_mul(k).saturating_mul(n) >= PAR_MIN_MACS {
        default_threads()
    } else {
        1
    }
}

/// `C = A @ B` where `A` is `[m, k]` and `B` is `[k, n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = as_matrix_dims(a, "matmul lhs");
    let (_, n) = as_matrix_dims(b, "matmul rhs");
    matmul_with_threads(a, b, auto_threads(m, k, n))
}

/// [`matmul`] writing into a reusable output tensor (resized as needed; no
/// allocation once `out` has capacity). Bit-identical to [`matmul`].
pub fn matmul_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (m, k) = as_matrix_dims(a, "matmul lhs");
    let (k2, n) = as_matrix_dims(b, "matmul rhs");
    assert_eq!(k, k2, "matmul: inner dimensions differ ({k} vs {k2})");
    out.resize_to(&[m, n]);
    out.fill(0.0);
    nt_parallel::<true, false>(
        a.data(),
        k,
        k,
        b.data(),
        n,
        out.data_mut(),
        auto_threads(m, k, n),
    );
}

/// [`matmul`] with an explicit thread cap (the auto-picked count is a pure
/// performance choice; results are bit-identical for any value).
pub fn matmul_with_threads(a: &Tensor, b: &Tensor, max_threads: usize) -> Tensor {
    let (m, k) = as_matrix_dims(a, "matmul lhs");
    let (k2, n) = as_matrix_dims(b, "matmul rhs");
    assert_eq!(k, k2, "matmul: inner dimensions differ ({k} vs {k2})");
    let mut out = vec![0.0f32; m * n];
    nt_parallel::<true, false>(a.data(), k, k, b.data(), n, &mut out, max_threads);
    Tensor::from_vec(Shape::matrix(m, n), out)
}

/// `C = A^T @ B` where `A` is `[k, m]` and `B` is `[k, n]` — used for weight
/// gradients (`dW = X^T @ dY`).
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = as_matrix_dims(a, "matmul_at_b lhs");
    let (_, n) = as_matrix_dims(b, "matmul_at_b rhs");
    matmul_at_b_with_threads(a, b, auto_threads(m, k, n))
}

/// [`matmul_at_b`] writing into a reusable output tensor. Bit-identical to
/// [`matmul_at_b`].
pub fn matmul_at_b_into(a: &Tensor, b: &Tensor, out: &mut Tensor) {
    let (k, m) = as_matrix_dims(a, "matmul_at_b lhs");
    let (k2, n) = as_matrix_dims(b, "matmul_at_b rhs");
    assert_eq!(
        k, k2,
        "matmul_at_b: leading dimensions differ ({k} vs {k2})"
    );
    out.resize_to(&[m, n]);
    out.fill(0.0);
    nt_parallel::<true, true>(
        a.data(),
        m,
        k,
        b.data(),
        n,
        out.data_mut(),
        auto_threads(m, k, n),
    );
}

/// [`matmul_at_b`] with an explicit thread cap.
pub fn matmul_at_b_with_threads(a: &Tensor, b: &Tensor, max_threads: usize) -> Tensor {
    let (k, m) = as_matrix_dims(a, "matmul_at_b lhs");
    let (k2, n) = as_matrix_dims(b, "matmul_at_b rhs");
    assert_eq!(
        k, k2,
        "matmul_at_b: leading dimensions differ ({k} vs {k2})"
    );
    // The kernel reads `A` in its stored `[k, m]` layout (`AT = true`), so
    // no transposed copy is materialised: per tile that is six strided
    // scalar loads per `p`, the same load count as the contiguous case.
    let mut out = vec![0.0f32; m * n];
    nt_parallel::<true, true>(a.data(), m, k, b.data(), n, &mut out, max_threads);
    Tensor::from_vec(Shape::matrix(m, n), out)
}

/// `C = A @ B^T` where `A` is `[m, k]` and `B` is `[n, k]` — used for input
/// gradients (`dX = dY @ W^T` with `W` stored `[in, out]` transposed access).
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = as_matrix_dims(a, "matmul_a_bt lhs");
    let (n, _) = as_matrix_dims(b, "matmul_a_bt rhs");
    matmul_a_bt_with_threads(a, b, auto_threads(m, k, n))
}

/// [`matmul_a_bt`] writing into a reusable output tensor, with the `B^T`
/// copy landing in a reusable scratch tensor. Bit-identical to
/// [`matmul_a_bt`].
pub fn matmul_a_bt_into(a: &Tensor, b: &Tensor, bt_scratch: &mut Tensor, out: &mut Tensor) {
    let (m, k) = as_matrix_dims(a, "matmul_a_bt lhs");
    let (n, k2) = as_matrix_dims(b, "matmul_a_bt rhs");
    assert_eq!(k, k2, "matmul_a_bt: inner dimensions differ ({k} vs {k2})");
    transpose_into(b, bt_scratch);
    out.resize_to(&[m, n]);
    out.fill(0.0);
    nt_parallel::<false, false>(
        a.data(),
        k,
        k,
        bt_scratch.data(),
        n,
        out.data_mut(),
        auto_threads(m, k, n),
    );
}

/// [`matmul_a_bt`] with an explicit thread cap.
pub fn matmul_a_bt_with_threads(a: &Tensor, b: &Tensor, max_threads: usize) -> Tensor {
    let (m, k) = as_matrix_dims(a, "matmul_a_bt lhs");
    let (n, k2) = as_matrix_dims(b, "matmul_a_bt rhs");
    assert_eq!(k, k2, "matmul_a_bt: inner dimensions differ ({k} vs {k2})");
    // `B^T` is materialised once (O(nk), vs O(mnk) multiply work) because
    // the register tile needs `NR` consecutive output columns of `B`-row
    // data per load. The historical per-element dot product never skipped
    // zero entries, so the non-skipping kernel keeps results bit-identical
    // even for non-finite operands (0.0 * inf must still produce NaN here).
    let bt = transpose(b);
    let mut out = vec![0.0f32; m * n];
    nt_parallel::<false, false>(a.data(), k, k, bt.data(), n, &mut out, max_threads);
    Tensor::from_vec(Shape::matrix(m, n), out)
}

/// Element `A[row, p]` under the kernel's two storage modes: `AT = false`
/// reads a row-major `[rows, k]` matrix with `a_stride = k`; `AT = true`
/// reads the logical transpose straight out of a `[k, m]` matrix with
/// `a_stride = m` (no transposed copy).
#[inline(always)]
fn a_at<const AT: bool>(ad: &[f32], a_stride: usize, row: usize, p: usize) -> f32 {
    if AT {
        ad[p * a_stride + row]
    } else {
        ad[row * a_stride + p]
    }
}

/// Split `out` into contiguous row blocks and run the row-major kernel on
/// each; blocks write disjoint output so any schedule is bit-identical.
fn nt_parallel<const SKIP: bool, const AT: bool>(
    ad: &[f32],
    a_stride: usize,
    k: usize,
    bd: &[f32],
    n: usize,
    out: &mut [f32],
    max_threads: usize,
) {
    if n == 0 || out.is_empty() {
        return;
    }
    // When every `B` entry is finite, skipping a zero `A` entry and
    // accumulating its `a * b` contribution are bit-identical: the product is
    // then `±0.0`, `x + (-0.0) == x` for every `x`, and `x + (+0.0)` differs
    // only for `x == -0.0` — which an accumulator seeded from `+0.0` can
    // never become, because a round-to-nearest sum is `-0.0` only when both
    // addends are `-0.0`. So one finiteness pass over `B` lets the
    // zero-skipping kernels run the branch-free register tile on zero-heavy
    // inputs (post-ReLU activations); non-finite `B` keeps the historical
    // element-skipping path.
    let b_all_finite = SKIP && bd.iter().all(|v| v.is_finite());
    parallel_row_blocks(out, n, max_threads, |row0, chunk| {
        nt_rows::<SKIP, AT>(ad, a_stride, row0, k, bd, n, chunk, b_all_finite);
    });
}

/// `out_block = A[row0..row0+rows] @ b` over row-major operands.
///
/// Structure: `NC`-column × `KC`-deep cache blocks around an `MR`×`NR`
/// register tile. A tile's accumulators resume from the partial sums in
/// `out_block` and return there after each `k` block, and the `k` blocks run
/// in ascending order — so every output element still receives its `k`
/// contributions in exactly the ascending single-accumulator order of the
/// plain ikj loop, regardless of the blocking.
#[allow(clippy::too_many_arguments)]
fn nt_rows<const SKIP: bool, const AT: bool>(
    ad: &[f32],
    a_stride: usize,
    row0: usize,
    k: usize,
    bd: &[f32],
    n: usize,
    out_block: &mut [f32],
    b_all_finite: bool,
) {
    let rows = out_block.len() / n;
    let rows_main = rows - rows % MR;
    let n_main = n - n % NR;
    // `B` panel packed per (`jc`, `kb`) block: each register tile's stripe
    // becomes one contiguous `NR`-wide run, so the hot loop streams L1
    // lines in order instead of hopping `n`-strided rows. Pure copies —
    // the arithmetic and its order are untouched. The pack buffer is a
    // thread-local grown once per thread, so steady-state matmuls perform
    // no heap allocation; every stripe is fully rewritten before it is
    // read, so reuse cannot leak stale values.
    thread_local! {
        static BPACK: std::cell::RefCell<Vec<f32>> = const { std::cell::RefCell::new(Vec::new()) };
    }
    BPACK.with(|cell| {
        let mut bpack = cell.borrow_mut();
        bpack.resize(KC * NC, 0.0);
        // `A` panel packed per (`i`, `kb`) tile in the transposed-read mode:
        // the `[k, m]` layout makes each `A` load an `m`-strided column walk, so
        // gathering the `MR`×`kb_len` panel once (reads are contiguous `MR` runs
        // along `m`) replaces one strided pass per `j` tile with a single copy.
        // Pure data movement — values and accumulation order are untouched.
        let mut apack = [0.0f32; MR * KC];
        for jc in (0..n_main).step_by(NC) {
            let jc_end = (jc + NC).min(n_main);
            for kb in (0..k).step_by(KC) {
                let kb_end = (kb + KC).min(k);
                let kb_len = kb_end - kb;
                for (jt, j) in (jc..jc_end).step_by(NR).enumerate() {
                    for p in kb..kb_end {
                        let src = &bd[p * n + j..p * n + j + NR];
                        let at = (jt * kb_len + (p - kb)) * NR;
                        bpack[at..at + NR].copy_from_slice(src);
                    }
                }
                for i in (0..rows_main).step_by(MR) {
                    if AT {
                        for (pi, p) in (kb..kb_end).enumerate() {
                            let src = &ad[p * a_stride + row0 + i..p * a_stride + row0 + i + MR];
                            for (r, &v) in src.iter().enumerate() {
                                apack[r * kb_len + pi] = v;
                            }
                        }
                    }
                    // Hoisted zero scan: the skip only changes results for
                    // non-finite `B` entries (see `nt_parallel`), so with an
                    // all-finite `B` the scan is skipped outright and the tile
                    // runs branch-free even on zero-heavy `A` panels; otherwise
                    // a zero-free `A` panel still earns the fast tile.
                    let panel_has_zero = SKIP
                        && !b_all_finite
                        && if AT {
                            apack[..MR * kb_len].contains(&0.0)
                        } else {
                            (0..MR).any(|r| {
                                (kb..kb_end)
                                    .any(|p| a_at::<AT>(ad, a_stride, row0 + i + r, p) == 0.0)
                            })
                        };
                    for (jt, j) in (jc..jc_end).step_by(NR).enumerate() {
                        let mut acc = [[0.0f32; NR]; MR];
                        for (r, acc_row) in acc.iter_mut().enumerate() {
                            let at = (i + r) * n + j;
                            acc_row.copy_from_slice(&out_block[at..at + NR]);
                        }
                        let stripe = &bpack[jt * kb_len * NR..(jt + 1) * kb_len * NR];
                        // In the transposed mode the tile reads the packed panel
                        // as an ordinary row-major `[MR, kb_len]` block (stride
                        // `kb_len`, row 0, `p` offset 0).
                        match (AT, panel_has_zero) {
                            (true, true) => {
                                nt_tile::<true, false>(&apack, kb_len, 0, 0, stripe, &mut acc)
                            }
                            (true, false) => {
                                nt_tile::<false, false>(&apack, kb_len, 0, 0, stripe, &mut acc)
                            }
                            (false, true) => {
                                nt_tile::<true, AT>(ad, a_stride, row0 + i, kb, stripe, &mut acc)
                            }
                            (false, false) => {
                                nt_tile::<false, AT>(ad, a_stride, row0 + i, kb, stripe, &mut acc)
                            }
                        }
                        for (r, acc_row) in acc.iter().enumerate() {
                            let at = (i + r) * n + j;
                            out_block[at..at + NR].copy_from_slice(acc_row);
                        }
                    }
                }
            }
        }
    });
    let tail_skip = SKIP && !b_all_finite;
    if n_main < n {
        for r in 0..rows_main {
            nt_row_tail::<AT>(
                ad,
                a_stride,
                row0 + r,
                k,
                bd,
                n,
                n_main,
                &mut out_block[r * n..(r + 1) * n],
                tail_skip,
            );
        }
    }
    for r in rows_main..rows {
        nt_row_tail::<AT>(
            ad,
            a_stride,
            row0 + r,
            k,
            bd,
            n,
            0,
            &mut out_block[r * n..(r + 1) * n],
            tail_skip,
        );
    }
}

/// The register tile's `p` loop over one packed `B` stripe (`kb_len`
/// consecutive `NR`-wide rows). `CHECK` selects the zero-skipping variant,
/// used only when the hoisted panel scan actually found a zero.
#[inline(always)]
fn nt_tile<const CHECK: bool, const AT: bool>(
    ad: &[f32],
    a_stride: usize,
    row: usize,
    kb: usize,
    stripe: &[f32],
    acc: &mut [[f32; NR]; MR],
) {
    for (pi, b_run) in stripe.chunks_exact(NR).enumerate() {
        let b_tile: &[f32; NR] = b_run.try_into().unwrap();
        let p = kb + pi;
        for (r, acc_row) in acc.iter_mut().enumerate() {
            let a_ip = a_at::<AT>(ad, a_stride, row + r, p);
            if CHECK && a_ip == 0.0 {
                continue;
            }
            for (o, &b_pj) in acc_row.iter_mut().zip(b_tile) {
                *o += a_ip * b_pj;
            }
        }
    }
}

/// Single-row fallback covering columns `j0..n`: the plain ikj loop, i.e.
/// the same p-ascending single-accumulator order as the register tile.
/// `skip` is the zero-skip requirement after the caller's `B` finiteness
/// check — false whenever `B` is all-finite, which lets the loop run
/// branch-free (the compiler unswitches on the loop-invariant flag).
#[allow(clippy::too_many_arguments)]
fn nt_row_tail<const AT: bool>(
    ad: &[f32],
    a_stride: usize,
    row: usize,
    k: usize,
    bd: &[f32],
    n: usize,
    j0: usize,
    out_row: &mut [f32],
    skip: bool,
) {
    for p in 0..k {
        let a_ip = a_at::<AT>(ad, a_stride, row, p);
        if skip && a_ip == 0.0 {
            continue;
        }
        let b_row = &bd[p * n + j0..(p + 1) * n];
        for (o, &b_pj) in out_row[j0..].iter_mut().zip(b_row) {
            *o += a_ip * b_pj;
        }
    }
}

/// Matrix transpose of a `[m, n]` tensor, copied tile by tile so both the
/// read and the write side stay cache-resident.
pub fn transpose(a: &Tensor) -> Tensor {
    let mut out = Tensor::empty();
    transpose_into(a, &mut out);
    out
}

/// [`transpose`] writing into a reusable output tensor.
pub fn transpose_into(a: &Tensor, out: &mut Tensor) {
    const TB: usize = 32;
    let (m, n) = as_matrix_dims(a, "transpose");
    let ad = a.data();
    out.resize_to(&[n, m]);
    let od = out.data_mut();
    for i0 in (0..m).step_by(TB) {
        let i_end = (i0 + TB).min(m);
        for j0 in (0..n).step_by(TB) {
            let j_end = (j0 + TB).min(n);
            for i in i0..i_end {
                let row = &ad[i * n..(i + 1) * n];
                for j in j0..j_end {
                    od[j * m + i] = row[j];
                }
            }
        }
    }
}

/// Add a row vector `bias` (`[n]`) to every row of a `[m, n]` matrix in place.
pub fn add_bias_rows(a: &mut Tensor, bias: &Tensor) {
    let (_, n) = as_matrix_dims(a, "add_bias_rows matrix");
    assert_eq!(bias.numel(), n, "bias length must equal column count");
    let bd = bias.data();
    for row in a.data_mut().chunks_exact_mut(n) {
        for (o, &bv) in row.iter_mut().zip(bd.iter()) {
            *o += bv;
        }
    }
}

/// Sum over rows of a `[m, n]` matrix, producing a `[n]` vector
/// (used for bias gradients).
pub fn sum_rows(a: &Tensor) -> Tensor {
    let mut out = Tensor::empty();
    sum_rows_into(a, &mut out);
    out
}

/// [`sum_rows`] writing into a reusable output tensor.
pub fn sum_rows_into(a: &Tensor, out: &mut Tensor) {
    let (_, n) = as_matrix_dims(a, "sum_rows");
    out.resize_to(&[n]);
    out.fill(0.0);
    let od = out.data_mut();
    for row in a.data().chunks_exact(n) {
        for (o, &v) in od.iter_mut().zip(row.iter()) {
            *o += v;
        }
    }
}

fn as_matrix_dims(t: &Tensor, what: &str) -> (usize, usize) {
    let dims = t.shape().dims();
    assert_eq!(
        dims.len(),
        2,
        "{what}: expected a rank-2 tensor, got {:?}",
        dims
    );
    (dims[0], dims[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn mat(rows: usize, cols: usize, data: &[f32]) -> Tensor {
        Tensor::from_vec(Shape::matrix(rows, cols), data.to_vec())
    }

    /// Reference kernels: the pre-tiled scalar loops, verbatim. The tiled
    /// kernels must reproduce them bit for bit at every shape.
    fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = as_matrix_dims(a, "matmul lhs");
        let (k2, n) = as_matrix_dims(b, "matmul rhs");
        assert_eq!(k, k2);
        let mut out = vec![0.0f32; m * n];
        let ad = a.data();
        let bd = b.data();
        for i in 0..m {
            let a_row = &ad[i * k..(i + 1) * k];
            let out_row = &mut out[i * n..(i + 1) * n];
            for (p, &a_ip) in a_row.iter().enumerate() {
                if a_ip == 0.0 {
                    continue;
                }
                let b_row = &bd[p * n..(p + 1) * n];
                for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ip * b_pj;
                }
            }
        }
        Tensor::from_vec(Shape::matrix(m, n), out)
    }

    fn a_bt_reference(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = as_matrix_dims(a, "lhs");
        let (n, k2) = as_matrix_dims(b, "rhs");
        assert_eq!(k, k2);
        let mut out = vec![0.0f32; m * n];
        let ad = a.data();
        let bd = b.data();
        for i in 0..m {
            let a_row = &ad[i * k..(i + 1) * k];
            for (j, o) in out[i * n..(i + 1) * n].iter_mut().enumerate() {
                let b_row = &bd[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (x, y) in a_row.iter().zip(b_row.iter()) {
                    acc += x * y;
                }
                *o = acc;
            }
        }
        Tensor::from_vec(Shape::matrix(m, n), out)
    }

    #[test]
    fn matmul_small_known() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let eye = mat(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &eye).data(), a.data());
        assert_eq!(matmul(&eye, &a).data(), a.data());
    }

    #[test]
    fn tiled_kernels_are_bit_identical_to_scalar_reference() {
        // Shapes straddling every tile boundary: sub-tile, exact multiples
        // of (MR, NR), and ragged remainders in both directions.
        let shapes = [
            (1, 1, 1),
            (3, 5, 7),
            (6, 8, 16),
            (7, 9, 17),
            (12, 33, 32),
            (13, 4, 49),
            (25, 31, 19),
        ];
        let mut rng = Xoshiro256::new(11);
        for &(m, k, n) in &shapes {
            let mut a = Tensor::rand_uniform(Shape::matrix(m, k), -2.0, 2.0, &mut rng);
            // Sprinkle exact zeros so the skip path is exercised.
            for v in a.data_mut().iter_mut().step_by(3) {
                *v = 0.0;
            }
            let b = Tensor::rand_uniform(Shape::matrix(k, n), -2.0, 2.0, &mut rng);
            let reference = matmul_reference(&a, &b);
            assert_eq!(
                matmul(&a, &b).data(),
                reference.data(),
                "matmul {m}x{k}x{n} diverged from the scalar kernel"
            );
            let b_nk = Tensor::rand_uniform(Shape::matrix(n, k), -2.0, 2.0, &mut rng);
            assert_eq!(
                matmul_a_bt(&a, &b_nk).data(),
                a_bt_reference(&a, &b_nk).data(),
                "matmul_a_bt {m}x{k}x{n} diverged from the scalar kernel"
            );
        }
    }

    #[test]
    fn zero_skip_semantics_preserved_for_non_finite_b() {
        // The historical contract: a zero `A` entry contributes nothing even
        // when the `B` row it faces holds non-finite values — the finiteness
        // fast path must not change that. NaN-safe comparison via to_bits.
        let mut rng = Xoshiro256::new(17);
        for &(m, k, n) in &[(3usize, 5usize, 7usize), (7, 9, 17), (13, 4, 49)] {
            let mut a = Tensor::rand_uniform(Shape::matrix(m, k), -2.0, 2.0, &mut rng);
            for v in a.data_mut().iter_mut().step_by(3) {
                *v = 0.0;
            }
            let mut b = Tensor::rand_uniform(Shape::matrix(k, n), -2.0, 2.0, &mut rng);
            b.data_mut()[0] = f32::INFINITY;
            b.data_mut()[(k * n) / 2] = f32::NAN;
            b.data_mut()[k * n - 1] = f32::NEG_INFINITY;
            let reference = matmul_reference(&a, &b);
            let tiled = matmul(&a, &b);
            for (i, (x, y)) in tiled.data().iter().zip(reference.data().iter()).enumerate() {
                assert_eq!(
                    x.to_bits(),
                    y.to_bits(),
                    "matmul {m}x{k}x{n} with non-finite B diverged at {i}: {x} vs {y}"
                );
            }
        }
        // A fully zero A row must stay zero even against an all-inf B row.
        let a = mat(1, 2, &[0.0, 1.0]);
        let b = mat(2, 2, &[f32::INFINITY, f32::NAN, 2.0, 3.0]);
        assert_eq!(matmul(&a, &b).data(), &[2.0, 3.0]);
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let mut rng = Xoshiro256::new(5);
        let a = Tensor::rand_uniform(Shape::matrix(37, 23), -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform(Shape::matrix(23, 41), -1.0, 1.0, &mut rng);
        let b_nk = Tensor::rand_uniform(Shape::matrix(41, 23), -1.0, 1.0, &mut rng);
        let a_t = Tensor::rand_uniform(Shape::matrix(23, 37), -1.0, 1.0, &mut rng);
        let one = matmul_with_threads(&a, &b, 1);
        let one_bt = matmul_a_bt_with_threads(&a, &b_nk, 1);
        let one_at = matmul_at_b_with_threads(&a_t, &b, 1);
        for threads in [2, 3, 8] {
            assert_eq!(matmul_with_threads(&a, &b, threads).data(), one.data());
            assert_eq!(
                matmul_a_bt_with_threads(&a, &b_nk, threads).data(),
                one_bt.data()
            );
            assert_eq!(
                matmul_at_b_with_threads(&a_t, &b, threads).data(),
                one_at.data()
            );
        }
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = mat(3, 2, &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]); // A is [3,2]
        let b = mat(3, 2, &[7.0, 10.0, 8.0, 11.0, 9.0, 12.0]);
        let via_helper = matmul_at_b(&a, &b);
        let via_transpose = matmul(&transpose(&a), &b);
        assert_eq!(via_helper.data(), via_transpose.data());
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(
            4,
            3,
            &[1.0, 0.0, 2.0, 3.0, 1.0, 1.0, 0.0, 2.0, 2.0, 1.0, 1.0, 0.0],
        );
        let via_helper = matmul_a_bt(&a, &b);
        let via_transpose = matmul(&a, &transpose(&b));
        assert_eq!(via_helper.data(), via_transpose.data());
    }

    #[test]
    fn transpose_involution() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let tt = transpose(&transpose(&a));
        assert_eq!(tt.data(), a.data());
        assert_eq!(tt.shape().dims(), &[2, 3]);
    }

    #[test]
    fn transpose_tiled_matches_naive_at_ragged_shapes() {
        let mut rng = Xoshiro256::new(9);
        for &(m, n) in &[(1usize, 1usize), (31, 33), (32, 32), (65, 7), (5, 100)] {
            let a = Tensor::rand_uniform(Shape::matrix(m, n), -1.0, 1.0, &mut rng);
            let t = transpose(&a);
            assert_eq!(t.shape().dims(), &[n, m]);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(t.data()[j * m + i], a.data()[i * n + j]);
                }
            }
        }
    }

    #[test]
    fn bias_and_row_sum() {
        let mut a = mat(2, 3, &[0.0; 6]);
        let bias = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        add_bias_rows(&mut a, &bias);
        assert_eq!(a.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let s = sum_rows(&a);
        assert_eq!(s.data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn into_variants_match_allocating_ones_bit_for_bit() {
        let mut rng = Xoshiro256::new(21);
        let mut out = Tensor::empty();
        let mut bt = Tensor::empty();
        // Reused across shapes on purpose: stale sizes/contents must not leak.
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (7, 9, 17),
            (13, 33, 20),
            (6, 8, 16),
        ] {
            let a = Tensor::rand_uniform(Shape::matrix(m, k), -1.0, 1.0, &mut rng);
            let b = Tensor::rand_uniform(Shape::matrix(k, n), -1.0, 1.0, &mut rng);
            matmul_into(&a, &b, &mut out);
            assert_eq!(out, matmul(&a, &b), "matmul_into {m}x{k}x{n}");

            let a_km = Tensor::rand_uniform(Shape::matrix(k, m), -1.0, 1.0, &mut rng);
            matmul_at_b_into(&a_km, &b, &mut out);
            assert_eq!(out, matmul_at_b(&a_km, &b), "matmul_at_b_into {m}x{k}x{n}");

            let b_nk = Tensor::rand_uniform(Shape::matrix(n, k), -1.0, 1.0, &mut rng);
            matmul_a_bt_into(&a, &b_nk, &mut bt, &mut out);
            assert_eq!(out, matmul_a_bt(&a, &b_nk), "matmul_a_bt_into {m}x{k}x{n}");
            assert_eq!(bt, transpose(&b_nk));

            let mut sums = Tensor::empty();
            sum_rows_into(&a, &mut sums);
            assert_eq!(sums, sum_rows(&a), "sum_rows_into {m}x{k}");
        }
    }

    #[test]
    #[should_panic]
    fn matmul_dim_mismatch_panics() {
        let a = mat(2, 3, &[0.0; 6]);
        let b = mat(2, 2, &[0.0; 4]);
        matmul(&a, &b);
    }
}
