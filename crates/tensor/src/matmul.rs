//! Matrix multiplication and related linear-algebra kernels.
//!
//! The kernels are written as straightforward cache-friendly loops (ikj order
//! with a blocked inner loop) — fast enough to train the simulator's models on
//! CPU while staying dependency-free and easy to audit.

use crate::shape::Shape;
use crate::tensor::Tensor;

/// `C = A @ B` where `A` is `[m, k]` and `B` is `[k, n]`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = as_matrix_dims(a, "matmul lhs");
    let (k2, n) = as_matrix_dims(b, "matmul rhs");
    assert_eq!(k, k2, "matmul: inner dimensions differ ({k} vs {k2})");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (p, &a_ip) in a_row.iter().enumerate() {
            if a_ip == 0.0 {
                continue;
            }
            let b_row = &bd[p * n..(p + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_ip * b_pj;
            }
        }
    }
    Tensor::from_vec(Shape::matrix(m, n), out)
}

/// `C = A^T @ B` where `A` is `[k, m]` and `B` is `[k, n]` — used for weight
/// gradients (`dW = X^T @ dY`).
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = as_matrix_dims(a, "matmul_at_b lhs");
    let (k2, n) = as_matrix_dims(b, "matmul_at_b rhs");
    assert_eq!(
        k, k2,
        "matmul_at_b: leading dimensions differ ({k} vs {k2})"
    );
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for p in 0..k {
        let a_row = &ad[p * m..(p + 1) * m];
        let b_row = &bd[p * n..(p + 1) * n];
        for (i, &a_pi) in a_row.iter().enumerate() {
            if a_pi == 0.0 {
                continue;
            }
            let out_row = &mut out[i * n..(i + 1) * n];
            for (o, &b_pj) in out_row.iter_mut().zip(b_row.iter()) {
                *o += a_pi * b_pj;
            }
        }
    }
    Tensor::from_vec(Shape::matrix(m, n), out)
}

/// `C = A @ B^T` where `A` is `[m, k]` and `B` is `[n, k]` — used for input
/// gradients (`dX = dY @ W^T` with `W` stored `[in, out]` transposed access).
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = as_matrix_dims(a, "matmul_a_bt lhs");
    let (n, k2) = as_matrix_dims(b, "matmul_a_bt rhs");
    assert_eq!(k, k2, "matmul_a_bt: inner dimensions differ ({k} vs {k2})");
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let a_row = &ad[i * k..(i + 1) * k];
        let out_row = &mut out[i * n..(i + 1) * n];
        for (j, o) in out_row.iter_mut().enumerate() {
            let b_row = &bd[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (x, y) in a_row.iter().zip(b_row.iter()) {
                acc += x * y;
            }
            *o = acc;
        }
    }
    Tensor::from_vec(Shape::matrix(m, n), out)
}

/// Matrix transpose of a `[m, n]` tensor.
pub fn transpose(a: &Tensor) -> Tensor {
    let (m, n) = as_matrix_dims(a, "transpose");
    let ad = a.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = ad[i * n + j];
        }
    }
    Tensor::from_vec(Shape::matrix(n, m), out)
}

/// Add a row vector `bias` (`[n]`) to every row of a `[m, n]` matrix in place.
pub fn add_bias_rows(a: &mut Tensor, bias: &Tensor) {
    let (m, n) = as_matrix_dims(a, "add_bias_rows matrix");
    assert_eq!(bias.numel(), n, "bias length must equal column count");
    let bd = bias.data().to_vec();
    let ad = a.data_mut();
    for i in 0..m {
        for j in 0..n {
            ad[i * n + j] += bd[j];
        }
    }
}

/// Sum over rows of a `[m, n]` matrix, producing a `[n]` vector
/// (used for bias gradients).
pub fn sum_rows(a: &Tensor) -> Tensor {
    let (m, n) = as_matrix_dims(a, "sum_rows");
    let ad = a.data();
    let mut out = vec![0.0f32; n];
    for i in 0..m {
        for j in 0..n {
            out[j] += ad[i * n + j];
        }
    }
    Tensor::from_vec(Shape::vector(n), out)
}

fn as_matrix_dims(t: &Tensor, what: &str) -> (usize, usize) {
    let dims = t.shape().dims();
    assert_eq!(
        dims.len(),
        2,
        "{what}: expected a rank-2 tensor, got {:?}",
        dims
    );
    (dims[0], dims[1])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mat(rows: usize, cols: usize, data: &[f32]) -> Tensor {
        Tensor::from_vec(Shape::matrix(rows, cols), data.to_vec())
    }

    #[test]
    fn matmul_small_known() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(3, 2, &[7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = matmul(&a, &b);
        assert_eq!(c.shape().dims(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = mat(2, 2, &[1.0, 2.0, 3.0, 4.0]);
        let eye = mat(2, 2, &[1.0, 0.0, 0.0, 1.0]);
        assert_eq!(matmul(&a, &eye).data(), a.data());
        assert_eq!(matmul(&eye, &a).data(), a.data());
    }

    #[test]
    fn at_b_matches_explicit_transpose() {
        let a = mat(3, 2, &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]); // A is [3,2]
        let b = mat(3, 2, &[7.0, 10.0, 8.0, 11.0, 9.0, 12.0]);
        let via_helper = matmul_at_b(&a, &b);
        let via_transpose = matmul(&transpose(&a), &b);
        assert_eq!(via_helper.data(), via_transpose.data());
    }

    #[test]
    fn a_bt_matches_explicit_transpose() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = mat(
            4,
            3,
            &[1.0, 0.0, 2.0, 3.0, 1.0, 1.0, 0.0, 2.0, 2.0, 1.0, 1.0, 0.0],
        );
        let via_helper = matmul_a_bt(&a, &b);
        let via_transpose = matmul(&a, &transpose(&b));
        assert_eq!(via_helper.data(), via_transpose.data());
    }

    #[test]
    fn transpose_involution() {
        let a = mat(2, 3, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let tt = transpose(&transpose(&a));
        assert_eq!(tt.data(), a.data());
        assert_eq!(tt.shape().dims(), &[2, 3]);
    }

    #[test]
    fn bias_and_row_sum() {
        let mut a = mat(2, 3, &[0.0; 6]);
        let bias = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        add_bias_rows(&mut a, &bias);
        assert_eq!(a.data(), &[1.0, 2.0, 3.0, 1.0, 2.0, 3.0]);
        let s = sum_rows(&a);
        assert_eq!(s.data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    #[should_panic]
    fn matmul_dim_mismatch_panics() {
        let a = mat(2, 3, &[0.0; 6]);
        let b = mat(2, 2, &[0.0; 4]);
        matmul(&a, &b);
    }
}
