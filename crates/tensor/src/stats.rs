//! Small statistics helpers used by the experiment reports: running means,
//! histograms (for the overlap-degree distribution of Fig. 4) and simple
//! summary statistics.

use serde::{Deserialize, Serialize};

/// Mean of a slice (0 when empty).
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Population variance of a slice (0 when fewer than 2 elements).
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64
}

/// Population standard deviation.
pub fn std_dev(xs: &[f64]) -> f64 {
    variance(xs).sqrt()
}

/// Minimum of a slice (+inf when empty).
pub fn min(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(f64::INFINITY, f64::min)
}

/// Maximum of a slice (-inf when empty).
pub fn max(xs: &[f64]) -> f64 {
    xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}

/// Online mean/variance accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RunningStats {
    count: u64,
    mean: f64,
    m2: f64,
}

impl RunningStats {
    /// Fresh accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean (0 before any observation).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Current population variance.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Current population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
}

/// An integer-bucket histogram over values `1..=max_value`, used to summarise
/// the degree-of-overlap distribution (how many clients retained each
/// parameter after Top-K).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
}

impl Histogram {
    /// Histogram with buckets for values `1..=max_value`.
    pub fn new(max_value: usize) -> Self {
        Self {
            counts: vec![0; max_value],
        }
    }

    /// Record one observation of `value` (1-based). Values outside the range
    /// are clamped into the last bucket.
    pub fn record(&mut self, value: usize) {
        if self.counts.is_empty() {
            return;
        }
        let idx = value.clamp(1, self.counts.len()) - 1;
        self.counts[idx] += 1;
    }

    /// Raw bucket counts, index `i` holds the count for value `i + 1`.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Fraction of observations in each bucket (empty histogram gives zeros).
    pub fn fractions(&self) -> Vec<f64> {
        let total = self.total();
        if total == 0 {
            return vec![0.0; self.counts.len()];
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / total as f64)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_stats() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(mean(&xs), 2.5);
        assert!((variance(&xs) - 1.25).abs() < 1e-12);
        assert_eq!(min(&xs), 1.0);
        assert_eq!(max(&xs), 4.0);
    }

    #[test]
    fn empty_slices_are_safe() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(variance(&[]), 0.0);
        assert!(min(&[]).is_infinite());
    }

    #[test]
    fn running_stats_matches_batch() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut rs = RunningStats::new();
        for &x in &xs {
            rs.push(x);
        }
        assert_eq!(rs.count(), 8);
        assert!((rs.mean() - mean(&xs)).abs() < 1e-12);
        assert!((rs.variance() - variance(&xs)).abs() < 1e-12);
        assert!((rs.std_dev() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_counts_and_fractions() {
        let mut h = Histogram::new(5);
        for v in [1, 1, 1, 2, 3, 5, 9] {
            h.record(v);
        }
        assert_eq!(h.counts(), &[3, 1, 1, 0, 2]); // 9 clamps into last bucket
        assert_eq!(h.total(), 7);
        let f = h.fractions();
        assert!((f[0] - 3.0 / 7.0).abs() < 1e-12);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_zero_buckets_is_noop() {
        let mut h = Histogram::new(0);
        h.record(1);
        assert_eq!(h.total(), 0);
    }
}
