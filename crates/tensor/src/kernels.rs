//! Fused in-place element-wise kernels for the training hot path.
//!
//! These are the update primitives behind `Sgd::step` and the error-feedback
//! residual update. Each kernel touches every element exactly once, writing the
//! result in place instead of allocating an intermediate tensor, and is written
//! as a stream of independent per-element updates so the autovectorizer (the
//! workspace pins `x86-64-v3`) can unroll and vectorize it freely.
//!
//! Bit-identity contract: every kernel computes *exactly* the same f32
//! expression per element as the allocate-and-copy code it replaces. The
//! manual 8-wide unrolling below only regroups independent elements; it never
//! reassociates the arithmetic within one element.

const UNROLL: usize = 8;

/// `y[i] += alpha * x[i]` (BLAS axpy), fused and unrolled.
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy: size mismatch");
    let mut yc = y.chunks_exact_mut(UNROLL);
    let mut xc = x.chunks_exact(UNROLL);
    for (yv, xv) in yc.by_ref().zip(xc.by_ref()) {
        for j in 0..UNROLL {
            yv[j] += alpha * xv[j];
        }
    }
    for (yv, xv) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yv += alpha * *xv;
    }
}

/// `y[i] = beta * y[i] + x[i]` (scale-and-add), fused and unrolled.
pub fn scale_add(beta: f32, y: &mut [f32], x: &[f32]) {
    assert_eq!(x.len(), y.len(), "scale_add: size mismatch");
    let mut yc = y.chunks_exact_mut(UNROLL);
    let mut xc = x.chunks_exact(UNROLL);
    for (yv, xv) in yc.by_ref().zip(xc.by_ref()) {
        for j in 0..UNROLL {
            yv[j] = beta * yv[j] + xv[j];
        }
    }
    for (yv, xv) in yc.into_remainder().iter_mut().zip(xc.remainder()) {
        *yv = beta * *yv + *xv;
    }
}

/// Plain SGD with L2 weight decay: `p[i] -= lr * (g[i] + wd * p[i])`.
///
/// Exactly the expression the allocating optimizer used, fused over the
/// parameter tensor in place.
pub fn sgd_step(lr: f32, wd: f32, p: &mut [f32], g: &[f32]) {
    assert_eq!(p.len(), g.len(), "sgd_step: size mismatch");
    let mut pc = p.chunks_exact_mut(UNROLL);
    let mut gc = g.chunks_exact(UNROLL);
    for (pv, gv) in pc.by_ref().zip(gc.by_ref()) {
        for j in 0..UNROLL {
            pv[j] -= lr * (gv[j] + wd * pv[j]);
        }
    }
    for (pv, gv) in pc.into_remainder().iter_mut().zip(gc.remainder()) {
        *pv -= lr * (*gv + wd * *pv);
    }
}

/// Momentum SGD: `v[i] = mu * v[i] + g[i] + wd * p[i]`, then
/// `p[i] += -lr * v[i]` — the two statements the allocating optimizer
/// performed per element, fused into one pass.
pub fn sgd_momentum_step(lr: f32, mu: f32, wd: f32, p: &mut [f32], v: &mut [f32], g: &[f32]) {
    assert_eq!(
        p.len(),
        g.len(),
        "sgd_momentum_step: param/grad size mismatch"
    );
    assert_eq!(
        p.len(),
        v.len(),
        "sgd_momentum_step: param/velocity size mismatch"
    );
    let mut pc = p.chunks_exact_mut(UNROLL);
    let mut vc = v.chunks_exact_mut(UNROLL);
    let mut gc = g.chunks_exact(UNROLL);
    for ((pv, vv), gv) in pc.by_ref().zip(vc.by_ref()).zip(gc.by_ref()) {
        for j in 0..UNROLL {
            vv[j] = mu * vv[j] + gv[j] + wd * pv[j];
            pv[j] += -lr * vv[j];
        }
    }
    for ((pv, vv), gv) in pc
        .into_remainder()
        .iter_mut()
        .zip(vc.into_remainder().iter_mut())
        .zip(gc.remainder())
    {
        *vv = mu * *vv + *gv + wd * *pv;
        *pv += -lr * *vv;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp(n: usize, scale: f32) -> Vec<f32> {
        (0..n)
            .map(|i| (i as f32 - n as f32 / 3.0) * scale)
            .collect()
    }

    #[test]
    fn axpy_matches_scalar_loop() {
        for n in [0, 1, 7, 8, 9, 31, 64, 100] {
            let x = ramp(n, 0.37);
            let mut y = ramp(n, -0.11);
            let mut expect = y.clone();
            for (e, xv) in expect.iter_mut().zip(x.iter()) {
                *e += 0.77 * *xv;
            }
            axpy(0.77, &x, &mut y);
            let yb: Vec<u32> = y.iter().map(|v| v.to_bits()).collect();
            let eb: Vec<u32> = expect.iter().map(|v| v.to_bits()).collect();
            assert_eq!(yb, eb, "n={n}");
        }
    }

    #[test]
    fn scale_add_matches_scalar_loop() {
        for n in [0, 3, 8, 17, 100] {
            let x = ramp(n, 0.5);
            let mut y = ramp(n, 1.25);
            let mut expect = y.clone();
            for (e, xv) in expect.iter_mut().zip(x.iter()) {
                *e = 0.9 * *e + *xv;
            }
            scale_add(0.9, &mut y, &x);
            assert_eq!(y, expect, "n={n}");
        }
    }

    #[test]
    fn sgd_step_matches_scalar_loop() {
        for n in [0, 1, 8, 13, 100] {
            let g = ramp(n, 0.21);
            let mut p = ramp(n, -0.63);
            let mut expect = p.clone();
            for (e, gv) in expect.iter_mut().zip(g.iter()) {
                *e -= 0.05 * (*gv + 0.001 * *e);
            }
            sgd_step(0.05, 0.001, &mut p, &g);
            let pb: Vec<u32> = p.iter().map(|v| v.to_bits()).collect();
            let eb: Vec<u32> = expect.iter().map(|v| v.to_bits()).collect();
            assert_eq!(pb, eb, "n={n}");
        }
    }

    #[test]
    fn sgd_momentum_step_matches_scalar_loop() {
        for n in [0, 2, 8, 9, 57] {
            let g = ramp(n, 0.33);
            let mut p = ramp(n, -0.17);
            let mut v = ramp(n, 0.05);
            let mut ep = p.clone();
            let mut ev = v.clone();
            for i in 0..n {
                ev[i] = 0.9 * ev[i] + g[i] + 0.002 * ep[i];
                ep[i] += -0.1 * ev[i];
            }
            sgd_momentum_step(0.1, 0.9, 0.002, &mut p, &mut v, &g);
            let pb: Vec<u32> = p.iter().map(|x| x.to_bits()).collect();
            let epb: Vec<u32> = ep.iter().map(|x| x.to_bits()).collect();
            assert_eq!(pb, epb, "params n={n}");
            let vb: Vec<u32> = v.iter().map(|x| x.to_bits()).collect();
            let evb: Vec<u32> = ev.iter().map(|x| x.to_bits()).collect();
            assert_eq!(vb, evb, "velocity n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "axpy: size mismatch")]
    fn axpy_rejects_length_mismatch() {
        let x = [1.0f32; 4];
        let mut y = [0.0f32; 3];
        axpy(1.0, &x, &mut y);
    }
}
