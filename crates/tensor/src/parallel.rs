//! Minimal data-parallel helpers built on scoped threads.
//!
//! The federated-learning runner trains the selected clients of a round in
//! parallel; each client's work is independent, so a simple chunked map over
//! scoped threads is all that is needed. The number of worker threads adapts
//! to the machine (`available_parallelism`) and can be capped explicitly.

use std::num::NonZeroUsize;

/// Number of worker threads to use by default: the machine's available
/// parallelism, but never zero.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Apply `f` to every item of `items`, possibly in parallel, returning the
/// outputs in input order.
///
/// `max_threads = 1` (or a single item) degrades to a plain sequential map, so
/// results are identical regardless of thread count — important because
/// experiment reproducibility must not depend on the host's core count.
pub fn parallel_map<T, U, F>(items: Vec<T>, max_threads: usize, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let n = items.len();
    let threads = max_threads.max(1).min(n.max(1));
    if threads <= 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }

    let mut slots: Vec<Option<U>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    let work: Vec<(usize, T)> = items.into_iter().enumerate().collect();
    let chunk = n.div_ceil(threads);
    let chunks: Vec<Vec<(usize, T)>> = {
        let mut out = Vec::new();
        let mut it = work.into_iter().peekable();
        while it.peek().is_some() {
            out.push(it.by_ref().take(chunk).collect());
        }
        out
    };

    let mut chunk_results: Vec<Vec<(usize, U)>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| {
                scope.spawn(|| {
                    c.into_iter()
                        .map(|(i, item)| (i, f(item)))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        for h in handles {
            chunk_results.push(h.join().expect("parallel_map worker panicked"));
        }
    });

    for (i, u) in chunk_results.into_iter().flatten() {
        slots[i] = Some(u);
    }
    slots
        .into_iter()
        .map(|s| s.expect("parallel_map produced a hole"))
        .collect()
}

/// Evaluate `f(start, end)` over fixed-size shards `[0, s)`, `[s, 2s)`, …
/// covering `0..len`, possibly in parallel, and return the per-shard results
/// **in shard order**.
///
/// Unlike [`parallel_chunks`], the shard boundaries depend only on
/// `shard_size` — never on the thread count — so a reduction that folds
/// within each shard and then merges the returned partials left to right
/// produces bit-identical results on any machine. This is the primitive the
/// round engine's sharded aggregation tree is built on: floating-point
/// accumulation is non-associative, so determinism requires the *reduction
/// shape*, not just the item order, to be fixed.
///
/// `len == 0` returns an empty vector. Panics if `shard_size == 0`.
pub fn parallel_fixed_shards<A, F>(
    len: usize,
    shard_size: usize,
    max_threads: usize,
    f: F,
) -> Vec<A>
where
    A: Send,
    F: Fn(usize, usize) -> A + Sync,
{
    assert!(shard_size > 0, "shard_size must be positive");
    let bounds: Vec<(usize, usize)> = (0..len.div_ceil(shard_size))
        .map(|s| (s * shard_size, ((s + 1) * shard_size).min(len)))
        .collect();
    parallel_map(bounds, max_threads, |(start, end)| f(start, end))
}

/// Split a row-major buffer into contiguous blocks of whole rows and run
/// `f(first_row, block)` on each, possibly in parallel.
///
/// The blocks are disjoint `&mut` views, so this is the primitive for
/// writing independent output rows (matmul) without interior mutability.
/// Block boundaries depend only on `max_threads` through *which* rows land
/// together — never on what `f` computes per row — so any kernel whose rows
/// are independent is bit-identical for every thread count.
///
/// `data.len()` must be a multiple of `row_len`. Panics if `row_len == 0`
/// (unless `data` is empty, which is a no-op).
pub fn parallel_row_blocks<T, F>(data: &mut [T], row_len: usize, max_threads: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    if data.is_empty() {
        return;
    }
    assert!(row_len > 0, "row_len must be positive");
    assert_eq!(
        data.len() % row_len,
        0,
        "buffer length must be a whole number of rows"
    );
    let rows = data.len() / row_len;
    let threads = max_threads.max(1).min(rows);
    if threads <= 1 {
        f(0, data);
        return;
    }
    let block_rows = rows.div_ceil(threads);
    std::thread::scope(|scope| {
        for (b, chunk) in data.chunks_mut(block_rows * row_len).enumerate() {
            let f = &f;
            scope.spawn(move || f(b * block_rows, chunk));
        }
    });
}

/// Run `f(start, end)` over disjoint index ranges covering `0..len`, possibly
/// in parallel. Useful for chunked in-place updates where the caller handles
/// the split of mutable state.
pub fn parallel_chunks<F>(len: usize, max_threads: usize, f: F)
where
    F: Fn(usize, usize) + Sync,
{
    let threads = max_threads.max(1).min(len.max(1));
    if threads <= 1 || len == 0 {
        f(0, len);
        return;
    }
    let chunk = len.div_ceil(threads);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let start = t * chunk;
            let end = ((t + 1) * chunk).min(len);
            if start >= end {
                break;
            }
            let f = &f;
            scope.spawn(move || f(start, end));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(items.clone(), 4, |x| x * 2);
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn map_sequential_equals_parallel() {
        let items: Vec<usize> = (0..57).collect();
        let seq = parallel_map(items.clone(), 1, |x| x * x + 1);
        let par = parallel_map(items, 8, |x| x * x + 1);
        assert_eq!(seq, par);
    }

    #[test]
    fn map_empty_and_single() {
        let empty: Vec<usize> = vec![];
        assert!(parallel_map(empty, 4, |x| x).is_empty());
        assert_eq!(parallel_map(vec![7], 4, |x| x + 1), vec![8]);
    }

    #[test]
    fn fixed_shards_are_thread_count_invariant() {
        // The shard boundaries must depend only on the shard size: the same
        // (start, end) pairs come back in the same order for any thread cap.
        let reference = parallel_fixed_shards(103, 32, 1, |s, e| (s, e));
        assert_eq!(reference, vec![(0, 32), (32, 64), (64, 96), (96, 103)]);
        for threads in [2, 4, 16] {
            assert_eq!(
                parallel_fixed_shards(103, 32, threads, |s, e| (s, e)),
                reference
            );
        }
    }

    #[test]
    fn fixed_shards_empty_and_single() {
        assert!(parallel_fixed_shards(0, 32, 4, |s, e| (s, e)).is_empty());
        assert_eq!(parallel_fixed_shards(5, 32, 4, |s, e| (s, e)), vec![(0, 5)]);
    }

    #[test]
    #[should_panic]
    fn fixed_shards_reject_zero_shard_size() {
        parallel_fixed_shards(10, 0, 1, |s, e| (s, e));
    }

    #[test]
    fn row_blocks_cover_all_rows_disjointly() {
        let mut data = vec![0u32; 7 * 5];
        parallel_row_blocks(&mut data, 5, 3, |first_row, block| {
            for (r, row) in block.chunks_exact_mut(5).enumerate() {
                for v in row {
                    *v += (first_row + r) as u32 + 1;
                }
            }
        });
        for (r, row) in data.chunks_exact(5).enumerate() {
            assert!(row.iter().all(|&v| v == r as u32 + 1), "row {r}: {row:?}");
        }
    }

    #[test]
    fn row_blocks_empty_and_single_thread() {
        let mut empty: Vec<u8> = vec![];
        parallel_row_blocks(&mut empty, 4, 8, |_, _| panic!("no rows, no calls"));
        let mut data = vec![1u8; 12];
        parallel_row_blocks(&mut data, 4, 1, |first_row, block| {
            assert_eq!(first_row, 0);
            assert_eq!(block.len(), 12);
        });
    }

    #[test]
    fn chunks_cover_everything_exactly_once() {
        let covered = AtomicUsize::new(0);
        parallel_chunks(1000, 4, |start, end| {
            covered.fetch_add(end - start, Ordering::Relaxed);
        });
        assert_eq!(covered.load(Ordering::Relaxed), 1000);
    }

    #[test]
    fn chunks_zero_length_is_safe() {
        parallel_chunks(0, 4, |start, end| {
            assert_eq!(start, 0);
            assert_eq!(end, 0);
        });
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }
}
