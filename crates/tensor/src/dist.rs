//! Probability distributions built on top of the [`Rng`] trait.
//!
//! The simulator needs: Uniform and Normal draws for the network model
//! (bandwidth ~ N(1 Mbit/s, 0.2), latency ~ U(50 ms, 200 ms]), Gamma/Dirichlet
//! for the non-IID label-skew partition (`p_k ~ Dir(beta)`), and categorical
//! sampling for synthetic data generation.

use crate::rng::Rng;

/// Continuous uniform distribution on `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Create a uniform distribution; requires `hi > lo`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(hi > lo, "Uniform requires hi > lo (got [{lo}, {hi}))");
        Self { lo, hi }
    }

    /// Draw one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        self.lo + (self.hi - self.lo) * rng.next_f64()
    }
}

/// Normal (Gaussian) distribution, sampled with the Box–Muller transform.
#[derive(Clone, Copy, Debug)]
pub struct Normal {
    mean: f64,
    std: f64,
}

impl Normal {
    /// Create a normal distribution; requires `std >= 0`.
    pub fn new(mean: f64, std: f64) -> Self {
        assert!(std >= 0.0, "Normal requires a non-negative std (got {std})");
        Self { mean, std }
    }

    /// Draw one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        // Box–Muller; u1 is kept away from 0 so ln(u1) is finite.
        let u1 = rng.next_f64().max(f64::MIN_POSITIVE);
        let u2 = rng.next_f64();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.mean + self.std * r * theta.cos()
    }

    /// Draw one sample truncated below at `floor` (re-draws up to a bounded
    /// number of times, then clamps). Used for bandwidth generation, which
    /// must remain strictly positive.
    pub fn sample_truncated_below<R: Rng>(&self, rng: &mut R, floor: f64) -> f64 {
        for _ in 0..64 {
            let x = self.sample(rng);
            if x > floor {
                return x;
            }
        }
        floor.max(self.mean.max(floor))
    }
}

/// Gamma distribution (shape `alpha`, scale 1), Marsaglia–Tsang method.
#[derive(Clone, Copy, Debug)]
pub struct Gamma {
    alpha: f64,
}

impl Gamma {
    /// Create a Gamma(alpha, 1) distribution; requires `alpha > 0`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0, "Gamma requires alpha > 0 (got {alpha})");
        Self { alpha }
    }

    /// Draw one sample.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> f64 {
        if self.alpha < 1.0 {
            // Boost: Gamma(a) = Gamma(a+1) * U^(1/a)
            let g = Gamma::new(self.alpha + 1.0).sample(rng);
            let u = rng.next_f64().max(f64::MIN_POSITIVE);
            return g * u.powf(1.0 / self.alpha);
        }
        let d = self.alpha - 1.0 / 3.0;
        let c = 1.0 / (9.0 * d).sqrt();
        let normal = Normal::new(0.0, 1.0);
        loop {
            let x = normal.sample(rng);
            let v = (1.0 + c * x).powi(3);
            if v <= 0.0 {
                continue;
            }
            let u = rng.next_f64().max(f64::MIN_POSITIVE);
            if u.ln() < 0.5 * x * x + d - d * v + d * v.ln() {
                return d * v;
            }
        }
    }
}

/// Symmetric Dirichlet distribution with concentration `beta` over `k` categories.
///
/// This is the distribution used by the paper (and by Li et al.'s non-IID
/// benchmark) to allocate each class's samples across clients: lower `beta`
/// means more severe label skew.
#[derive(Clone, Copy, Debug)]
pub struct Dirichlet {
    beta: f64,
    k: usize,
}

impl Dirichlet {
    /// Create a symmetric Dirichlet; requires `beta > 0` and `k >= 1`.
    pub fn new(beta: f64, k: usize) -> Self {
        assert!(beta > 0.0, "Dirichlet requires beta > 0 (got {beta})");
        assert!(k >= 1, "Dirichlet requires at least one category");
        Self { beta, k }
    }

    /// Draw one probability vector of length `k` (sums to 1).
    pub fn sample<R: Rng>(&self, rng: &mut R) -> Vec<f64> {
        let gamma = Gamma::new(self.beta);
        let mut draws: Vec<f64> = (0..self.k).map(|_| gamma.sample(rng)).collect();
        let total: f64 = draws.iter().sum();
        if total <= 0.0 || !total.is_finite() {
            // Degenerate fallback: uniform allocation.
            return vec![1.0 / self.k as f64; self.k];
        }
        draws.iter_mut().for_each(|x| *x /= total);
        draws
    }
}

/// Categorical distribution over arbitrary non-negative weights.
#[derive(Clone, Debug)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Create from (unnormalised) non-negative weights; at least one must be positive.
    pub fn new(weights: &[f64]) -> Self {
        assert!(
            !weights.is_empty(),
            "Categorical requires at least one weight"
        );
        assert!(
            weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "Categorical weights must be finite and non-negative"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "Categorical requires a positive total weight");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            acc += w / total;
            cumulative.push(acc);
        }
        // Guard against floating-point shortfall in the last bucket.
        if let Some(last) = cumulative.last_mut() {
            *last = 1.0;
        }
        Self { cumulative }
    }

    /// Draw one category index.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u = rng.next_f64();
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&u).unwrap())
        {
            Ok(i) => (i + 1).min(self.cumulative.len() - 1),
            Err(i) => i.min(self.cumulative.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    fn mean_std(samples: &[f64]) -> (f64, f64) {
        let n = samples.len() as f64;
        let mean = samples.iter().sum::<f64>() / n;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        (mean, var.sqrt())
    }

    #[test]
    fn uniform_range_and_mean() {
        let mut rng = Xoshiro256::new(1);
        let d = Uniform::new(0.05, 0.2);
        let xs: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!(xs.iter().all(|&x| (0.05..0.2).contains(&x)));
        let (m, _) = mean_std(&xs);
        assert!((m - 0.125).abs() < 0.005);
    }

    #[test]
    fn normal_moments() {
        let mut rng = Xoshiro256::new(2);
        let d = Normal::new(1.0, 0.2);
        let xs: Vec<f64> = (0..50_000).map(|_| d.sample(&mut rng)).collect();
        let (m, s) = mean_std(&xs);
        assert!((m - 1.0).abs() < 0.01, "mean was {m}");
        assert!((s - 0.2).abs() < 0.01, "std was {s}");
    }

    #[test]
    fn truncated_normal_positive() {
        let mut rng = Xoshiro256::new(3);
        let d = Normal::new(0.1, 1.0);
        for _ in 0..1000 {
            assert!(d.sample_truncated_below(&mut rng, 0.01) > 0.0);
        }
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut rng = Xoshiro256::new(4);
        for &alpha in &[0.1, 0.5, 1.0, 3.0] {
            let d = Gamma::new(alpha);
            let xs: Vec<f64> = (0..30_000).map(|_| d.sample(&mut rng)).collect();
            let (m, _) = mean_std(&xs);
            assert!(
                (m - alpha).abs() < 0.1 * alpha.max(0.3),
                "alpha={alpha}, mean={m}"
            );
            assert!(xs.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn dirichlet_sums_to_one_and_skews() {
        let mut rng = Xoshiro256::new(5);
        let severe = Dirichlet::new(0.1, 10);
        let moderate = Dirichlet::new(5.0, 10);
        let mut max_severe = 0.0;
        let mut max_moderate = 0.0;
        for _ in 0..200 {
            let p = severe.sample(&mut rng);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            max_severe += p.iter().cloned().fold(0.0, f64::max);
            let q = moderate.sample(&mut rng);
            max_moderate += q.iter().cloned().fold(0.0, f64::max);
        }
        // Lower beta concentrates mass on fewer categories.
        assert!(max_severe > max_moderate * 1.5);
    }

    #[test]
    fn categorical_frequency_matches_weights() {
        let mut rng = Xoshiro256::new(6);
        let d = Categorical::new(&[1.0, 3.0, 6.0]);
        let mut counts = [0usize; 3];
        for _ in 0..60_000 {
            counts[d.sample(&mut rng)] += 1;
        }
        assert!((counts[0] as f64 / 60_000.0 - 0.1).abs() < 0.02);
        assert!((counts[1] as f64 / 60_000.0 - 0.3).abs() < 0.02);
        assert!((counts[2] as f64 / 60_000.0 - 0.6).abs() < 0.02);
    }

    #[test]
    #[should_panic]
    fn categorical_rejects_zero_total() {
        Categorical::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic]
    fn dirichlet_rejects_nonpositive_beta() {
        Dirichlet::new(0.0, 3);
    }
}
