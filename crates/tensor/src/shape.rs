//! Tensor shapes and row-major index arithmetic.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The shape of a dense tensor (up to 4 dimensions are used in practice:
/// `[batch, channels, height, width]` for images, `[rows, cols]` for
/// matrices, `[len]` for vectors).
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Create a shape from its dimensions. Empty shapes (scalars) are allowed.
    pub fn new(dims: &[usize]) -> Self {
        Self {
            dims: dims.to_vec(),
        }
    }

    /// A 1-D shape of length `n`.
    pub fn vector(n: usize) -> Self {
        Self::new(&[n])
    }

    /// A 2-D shape `[rows, cols]`.
    pub fn matrix(rows: usize, cols: usize) -> Self {
        Self::new(&[rows, cols])
    }

    /// Dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Replace the dimensions in place, reusing the existing `Vec` capacity.
    /// Once a shape has held its maximum rank, later `set_dims` calls never
    /// touch the heap — this is what keeps workspace tensors that cycle
    /// through several shapes per batch allocation-free.
    pub fn set_dims(&mut self, dims: &[usize]) {
        self.dims.clear();
        self.dims.extend_from_slice(dims);
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Size of dimension `i`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Row-major strides.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Linear offset of a multi-dimensional index. Panics if the index is out
    /// of range or has the wrong rank.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.dims.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.dims.len()
        );
        let mut off = 0usize;
        let strides = self.strides();
        for (i, (&ix, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            assert!(ix < d, "index {ix} out of range for dim {i} of size {d}");
            off += ix * strides[i];
        }
        off
    }

    /// True if both shapes hold the same number of elements (reshape-compatible).
    pub fn same_numel(&self, other: &Shape) -> bool {
        self.numel() == other.numel()
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.dims)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(d: &[usize]) -> Self {
        Shape::new(d)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(d: Vec<usize>) -> Self {
        Shape { dims: d }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dim(1), 3);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::new(&[]);
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_roundtrip() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 23);
        assert_eq!(s.offset(&[1, 0, 2]), 14);
    }

    #[test]
    #[should_panic]
    fn offset_out_of_range_panics() {
        let s = Shape::new(&[2, 2]);
        s.offset(&[2, 0]);
    }

    #[test]
    fn matrix_and_vector_helpers() {
        assert_eq!(Shape::matrix(3, 5).dims(), &[3, 5]);
        assert_eq!(Shape::vector(7).dims(), &[7]);
    }

    #[test]
    fn same_numel_reshape_compat() {
        assert!(Shape::new(&[2, 6]).same_numel(&Shape::new(&[3, 4])));
        assert!(!Shape::new(&[2, 6]).same_numel(&Shape::new(&[5])));
    }
}
