//! `fl-tensor` — dense tensors, deterministic random number generation and
//! sampling primitives used throughout the bwfl federated-learning simulator.
//!
//! The crate intentionally re-implements a small, fully deterministic numeric
//! substrate instead of binding to an external ML framework: every experiment
//! in the paper reproduction must be exactly replayable from a single `u64`
//! seed, across platforms, with no global state.
//!
//! # Overview
//!
//! * [`Shape`] / [`Tensor`] — row-major dense `f32` tensors with the small set
//!   of operations a feed-forward training loop needs (element-wise ops,
//!   matrix multiplication, reductions).
//! * [`rng::SplitMix64`] / [`rng::Xoshiro256`] — counter-seedable PRNGs.
//! * [`dist`] — Uniform, Normal, Gamma, Dirichlet and categorical samplers
//!   (the Dirichlet sampler drives the paper's non-IID label-skew partition).
//! * [`stats`] — mean / variance / histogram helpers used by the overlap
//!   analysis and the experiment reports.
//! * [`parallel`] — a tiny chunked `parallel_for` built on scoped threads.
//! * [`kernels`] — fused in-place element-wise update kernels (axpy,
//!   SGD steps) behind the allocation-free training hot path.

pub mod dist;
pub mod kernels;
pub mod matmul;
pub mod parallel;
pub mod rng;
pub mod shape;
pub mod stats;
pub mod tensor;

pub use dist::{Categorical, Dirichlet, Gamma, Normal, Uniform};
pub use rng::{Rng, SplitMix64, Xoshiro256};
pub use shape::Shape;
pub use tensor::Tensor;
