//! Deterministic pseudo-random number generators.
//!
//! Every stochastic decision in the simulator (weight initialisation, data
//! generation, client sampling, bandwidth draws, mini-batch shuffling) flows
//! through these generators so that a single `u64` experiment seed fully
//! determines the run.

/// Minimal RNG interface used by the rest of the workspace.
pub trait Rng {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform `f64` in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[0, 1)`.
    fn next_f32(&mut self) -> f32 {
        self.next_f64() as f32
    }

    /// Uniform integer in `[0, n)`. Panics if `n == 0`.
    fn next_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_below(0) is undefined");
        // Multiply-shift rejection-free mapping; bias is negligible for the
        // ranges used here (n << 2^64) and determinism matters more.
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    fn next_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(hi > lo, "empty range");
        lo + self.next_below(hi - lo)
    }

    /// Bernoulli draw with probability `p`.
    fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i + 1);
            slice.swap(i, j);
        }
    }

    /// Sample `k` distinct indices from `[0, n)` without replacement
    /// (partial Fisher–Yates). Panics if `k > n`.
    fn sample_without_replacement(&mut self, n: usize, k: usize) -> Vec<usize> {
        assert!(k <= n, "cannot sample {k} items from a population of {n}");
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..k {
            let j = self.next_range(i, n);
            idx.swap(i, j);
        }
        idx.truncate(k);
        // Truncation keeps the O(n) capacity; callers store the draw long
        // term (round records hold the selected cohort), so hand back a
        // buffer sized to k rather than to the whole population.
        idx.shrink_to_fit();
        idx
    }
}

/// SplitMix64 — tiny, fast generator; also used to seed [`Xoshiro256`].
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl Rng for SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256** — the workhorse generator for data and simulation sampling.
///
/// `PartialEq` compares the full generator state: two equal streams produce
/// the same draw sequence forever (used by the session roster's stream
/// handback tests).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Seed the generator; internal state is expanded with SplitMix64.
    pub fn new(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for slot in &mut s {
            *slot = sm.next_u64();
        }
        // All-zero state is invalid for xoshiro.
        if s.iter().all(|&x| x == 0) {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        Self { s }
    }

    /// Derive an independent child generator (used to give every simulated
    /// client its own stream).
    pub fn fork(&mut self, stream: u64) -> Xoshiro256 {
        let a = self.next_u64();
        Xoshiro256::new(a ^ stream.wrapping_mul(0xA24B_AED4_963E_E407))
    }
}

impl Rng for Xoshiro256 {
    fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // First outputs for seed 0 from the reference implementation.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn determinism_same_seed() {
        let mut a = Xoshiro256::new(123);
        let mut b = Xoshiro256::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Xoshiro256::new(1);
        let mut b = Xoshiro256::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Xoshiro256::new(7);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_uniformish() {
        let mut r = Xoshiro256::new(11);
        let mut counts = [0usize; 10];
        for _ in 0..100_000 {
            counts[r.next_below(10)] += 1;
        }
        for &c in &counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} out of range"
            );
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Xoshiro256::new(5);
        let mut v: Vec<usize> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_without_replacement_distinct() {
        let mut r = Xoshiro256::new(9);
        let s = r.sample_without_replacement(20, 10);
        assert_eq!(s.len(), 10);
        let mut dedup = s.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), 10);
        assert!(s.iter().all(|&x| x < 20));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut root = Xoshiro256::new(77);
        let mut c1 = root.fork(0);
        let mut c2 = root.fork(1);
        let same = (0..64).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    #[should_panic]
    fn next_below_zero_panics() {
        let mut r = SplitMix64::new(0);
        r.next_below(0);
    }
}
