//! Dense row-major `f32` tensors.

use crate::rng::Rng;
use crate::shape::Shape;
use serde::{Deserialize, Serialize};

/// A dense, row-major tensor of `f32` values.
///
/// This is the only numeric container used by the neural-network engine and
/// the federated-learning simulator. It deliberately supports just the
/// operations required by a feed-forward training loop; anything fancier
/// (views, broadcasting beyond scalars) is out of scope.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Default for Tensor {
    /// The empty tensor (see [`Tensor::empty`]).
    fn default() -> Self {
        Self::empty()
    }
}

impl std::fmt::Debug for Tensor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tensor(shape={}, numel={})", self.shape, self.data.len())
    }
}

impl Tensor {
    /// Tensor of zeros with the given shape.
    pub fn zeros(shape: Shape) -> Self {
        let n = shape.numel();
        Self {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Tensor filled with a constant value.
    pub fn full(shape: Shape, value: f32) -> Self {
        let n = shape.numel();
        Self {
            shape,
            data: vec![value; n],
        }
    }

    /// Build a tensor from raw data; the data length must match the shape.
    pub fn from_vec(shape: Shape, data: Vec<f32>) -> Self {
        assert_eq!(
            shape.numel(),
            data.len(),
            "shape {} incompatible with data of length {}",
            shape,
            data.len()
        );
        Self { shape, data }
    }

    /// 1-D tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Self::from_vec(Shape::vector(data.len()), data.to_vec())
    }

    /// Tensor with entries drawn i.i.d. from `U(lo, hi)`.
    pub fn rand_uniform<R: Rng>(shape: Shape, lo: f32, hi: f32, rng: &mut R) -> Self {
        let n = shape.numel();
        let data = (0..n).map(|_| lo + (hi - lo) * rng.next_f32()).collect();
        Self { shape, data }
    }

    /// Tensor with entries drawn i.i.d. from `N(mean, std^2)` (Box–Muller).
    pub fn rand_normal<R: Rng>(shape: Shape, mean: f32, std: f32, rng: &mut R) -> Self {
        let n = shape.numel();
        let normal = crate::dist::Normal::new(mean as f64, std as f64);
        let data = (0..n).map(|_| normal.sample(rng) as f32).collect();
        Self { shape, data }
    }

    /// Kaiming/He-style initialisation for a layer with `fan_in` inputs.
    pub fn kaiming<R: Rng>(shape: Shape, fan_in: usize, rng: &mut R) -> Self {
        let std = (2.0 / fan_in.max(1) as f64).sqrt() as f32;
        Self::rand_normal(shape, 0.0, std, rng)
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Number of elements.
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the underlying buffer.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reshape in place; the element count must be preserved.
    pub fn reshape(&mut self, shape: Shape) {
        assert!(
            self.shape.same_numel(&shape),
            "cannot reshape {} into {}",
            self.shape,
            shape
        );
        self.shape = shape;
    }

    /// Value at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Set the value at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Fill every element with `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|x| *x = value);
    }

    /// An empty (zero-element) tensor, the initial state of a reusable
    /// workspace buffer before its first [`Tensor::resize_to`].
    pub fn empty() -> Self {
        Self {
            shape: Shape::vector(0),
            data: Vec::new(),
        }
    }

    /// Resize this tensor in place to `dims`, reusing the existing buffer
    /// capacity. Newly exposed elements are zero; existing elements up to the
    /// new length keep their values. When `dims` already matches the current
    /// shape this is a no-op, so steady-state reuse performs no heap
    /// allocation at all.
    pub fn resize_to(&mut self, dims: &[usize]) {
        if self.shape.dims() != dims {
            self.shape.set_dims(dims);
        }
        let n = self.shape.numel();
        if self.data.len() != n {
            self.data.resize(n, 0.0);
        }
    }

    /// Make this tensor an exact copy of `src` (shape and data), reusing the
    /// existing buffer capacity — the allocation-free analogue of
    /// `*self = src.clone()`.
    pub fn copy_from(&mut self, src: &Tensor) {
        self.resize_to(src.shape.dims());
        self.data.copy_from_slice(&src.data);
    }

    // ---- element-wise arithmetic -------------------------------------------------

    /// `self += other` (element-wise). Shapes must hold the same element count.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.numel(), other.numel(), "add_assign: size mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += *b;
        }
    }

    /// `self -= other` (element-wise).
    pub fn sub_assign(&mut self, other: &Tensor) {
        assert_eq!(self.numel(), other.numel(), "sub_assign: size mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= *b;
        }
    }

    /// `self *= scalar`.
    pub fn scale(&mut self, s: f32) {
        self.data.iter_mut().for_each(|x| *x *= s);
    }

    /// `self += alpha * other` (BLAS axpy), via the fused unrolled kernel.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) {
        assert_eq!(self.numel(), other.numel(), "axpy: size mismatch");
        crate::kernels::axpy(alpha, &other.data, &mut self.data);
    }

    /// Element-wise difference `self - other` as a new tensor.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.numel(), other.numel(), "sub: size mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Element-wise sum `self + other` as a new tensor.
    pub fn add(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.numel(), other.numel(), "add: size mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Element-wise (Hadamard) product as a new tensor.
    pub fn hadamard(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.numel(), other.numel(), "hadamard: size mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .collect();
        Tensor {
            shape: self.shape.clone(),
            data,
        }
    }

    /// Apply a function to every element in place.
    pub fn map_inplace<F: Fn(f32) -> f32>(&mut self, f: F) {
        self.data.iter_mut().for_each(|x| *x = f(*x));
    }

    // ---- reductions --------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Dot product between two tensors of equal element count.
    pub fn dot(&self, other: &Tensor) -> f32 {
        assert_eq!(self.numel(), other.numel(), "dot: size mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm_l2(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// L1 norm (sum of absolute values).
    pub fn norm_l1(&self) -> f32 {
        self.data.iter().map(|x| x.abs()).sum()
    }

    /// Maximum absolute value (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0_f32, |m, x| m.max(x.abs()))
    }

    /// Index of the maximum element (ties broken towards the lower index).
    pub fn argmax(&self) -> usize {
        let mut best = 0usize;
        let mut best_v = f32::NEG_INFINITY;
        for (i, &v) in self.data.iter().enumerate() {
            if v > best_v {
                best_v = v;
                best = i;
            }
        }
        best
    }

    /// Count of non-zero elements.
    pub fn count_nonzero(&self) -> usize {
        self.data.iter().filter(|x| **x != 0.0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SplitMix64;

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(Shape::new(&[2, 3]));
        assert_eq!(z.numel(), 6);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let f = Tensor::full(Shape::vector(4), 2.5);
        assert!(f.data().iter().all(|&x| x == 2.5));
    }

    #[test]
    #[should_panic]
    fn from_vec_rejects_bad_length() {
        Tensor::from_vec(Shape::new(&[2, 2]), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let b = Tensor::from_slice(&[4.0, 5.0, 6.0]);
        assert_eq!(a.add(&b).data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.hadamard(&b).data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.dot(&b), 32.0);
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        let b = Tensor::from_slice(&[2.0, 4.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[2.0, 3.0]);
        a.scale(2.0);
        assert_eq!(a.data(), &[4.0, 6.0]);
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_slice(&[3.0, -4.0, 0.0]);
        assert_eq!(a.sum(), -1.0);
        assert_eq!(a.norm_l2(), 5.0);
        assert_eq!(a.norm_l1(), 7.0);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.argmax(), 0);
        assert_eq!(a.count_nonzero(), 2);
    }

    #[test]
    fn indexing_and_reshape() {
        let mut a = Tensor::zeros(Shape::new(&[2, 3]));
        a.set(&[1, 2], 7.0);
        assert_eq!(a.at(&[1, 2]), 7.0);
        a.reshape(Shape::new(&[3, 2]));
        assert_eq!(a.shape().dims(), &[3, 2]);
        assert_eq!(a.at(&[2, 1]), 7.0);
    }

    #[test]
    fn resize_to_reuses_capacity_and_zeroes_growth() {
        let mut t = Tensor::empty();
        t.resize_to(&[2, 3]);
        assert_eq!(t.shape().dims(), &[2, 3]);
        assert!(t.data().iter().all(|&x| x == 0.0));
        t.fill(5.0);
        t.resize_to(&[4]);
        assert_eq!(t.data(), &[5.0, 5.0, 5.0, 5.0]);
        let cap_ptr = t.data().as_ptr();
        t.resize_to(&[2, 3]);
        assert_eq!(
            t.data().as_ptr(),
            cap_ptr,
            "shrink-then-grow must not realloc"
        );
        assert_eq!(t.data(), &[5.0, 5.0, 5.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn copy_from_matches_clone() {
        let src = Tensor::from_vec(Shape::new(&[2, 2]), vec![1.0, -2.0, 3.5, 0.25]);
        let mut dst = Tensor::empty();
        dst.copy_from(&src);
        assert_eq!(dst, src);
    }

    #[test]
    fn random_init_is_deterministic() {
        let mut r1 = SplitMix64::new(42);
        let mut r2 = SplitMix64::new(42);
        let a = Tensor::rand_normal(Shape::vector(100), 0.0, 1.0, &mut r1);
        let b = Tensor::rand_normal(Shape::vector(100), 0.0, 1.0, &mut r2);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn kaiming_scale_shrinks_with_fan_in() {
        let mut rng = SplitMix64::new(7);
        let small = Tensor::kaiming(Shape::vector(10_000), 10, &mut rng);
        let large = Tensor::kaiming(Shape::vector(10_000), 1000, &mut rng);
        let var = |t: &Tensor| t.data().iter().map(|x| x * x).sum::<f32>() / t.numel() as f32;
        assert!(var(&small) > var(&large) * 5.0);
    }

    #[test]
    fn uniform_bounds_respected() {
        let mut rng = SplitMix64::new(3);
        let t = Tensor::rand_uniform(Shape::vector(1000), -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&x| (-0.5..=0.5).contains(&x)));
    }
}
