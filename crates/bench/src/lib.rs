//! `fl-bench` — shared plumbing for the experiment binaries that regenerate
//! every table and figure of the paper.
//!
//! Each binary in `src/bin/` reproduces one artifact (see DESIGN.md §3 for
//! the full index). They all accept the same flags, parsed by [`BenchArgs`]:
//!
//! * `--rounds N`        — communication rounds per run (default: per-binary);
//! * `--scale F`         — synthetic dataset scale factor (default: per-binary);
//! * `--seed N`          — master seed (default 42);
//! * `--quick`           — very small settings for smoke runs;
//! * `--full`            — the paper's full settings (200 rounds, scale 1.0);
//! * `--csv`             — print machine-readable CSV only (no prose);
//! * `--eval-every N`    — evaluate the global model every N rounds;
//! * `--sweep-threads N` — worker threads for the parallel sweep driver
//!   (0 = auto). Grid binaries run their experiments through
//!   `fl_core::sweep::run_sweep_threaded`, which also shares dataset
//!   generation across the grid;
//! * `--cost-basis analytic|encoded` — how the simulator prices transfers:
//!   the paper's closed-form `2·V·CR` accounting (default) or the bytes each
//!   codec actually encoded;
//! * `--downlink SPEC`   — simulate the server→client broadcast through the
//!   given codec spec (e.g. `topk`, `ef-topk`, `qsgd:8`) instead of
//!   teleporting it for free;
//! * `--layer-compressors PLAN` — assign uplink codecs per model layer with a
//!   first-match glob plan (e.g. `'conv*=topk;*.bias=dense;*=qsgd:8'`).
//!   Applied to every run `bench_config` builds; `table2_main` instead adds
//!   dedicated plan rows so its OPWA grid rows stay valid;
//! * `--adaptive-plan SPEC` — let a plan policy re-resolve the per-layer
//!   codec assignment every round (`layer-bcrs`,
//!   `layer-bcrs:efficiency=0.8`, or `static:PLAN` for the pinned
//!   fallback). Mutually exclusive with `--layer-compressors`;
//! * `--layer-csv`        — with `--csv`, append the per-layer byte
//!   breakdown (`round,layer,uplink_bytes,downlink_bytes,spec,ratio` rows)
//!   after the per-round table, separated by a blank line;
//! * `--scenario SPEC`   — run the fleet through a dynamic scenario
//!   (`diurnal`, `churn:leave=0.1`, `towers:groups=4`, `tiered`,
//!   `trace:path.trace`, …) instead of the paper's static always-on fleet.
//!   `fig14_scenarios` instead uses it to replace its dynamic scenario rows.
//!
//! The Criterion benches under `benches/` cover the micro-performance of the
//! building blocks (compression, aggregation, scheduling, training step).

use fl_compress::{CompressorSpec, LayerPlan};
use fl_core::{AdaptivePlanSpec, Algorithm, ExperimentConfig, ExperimentResult, ModelPreset};
use fl_data::DatasetPreset;
use fl_netsim::{CostBasis, ScenarioSpec};

/// Command-line arguments shared by every experiment binary.
#[derive(Clone, Debug)]
pub struct BenchArgs {
    /// Number of communication rounds (overrides the binary's default).
    pub rounds: Option<usize>,
    /// Dataset scale factor (overrides the binary's default).
    pub scale: Option<f64>,
    /// Master seed.
    pub seed: u64,
    /// Reduced smoke-test settings.
    pub quick: bool,
    /// Paper-scale settings.
    pub full: bool,
    /// Emit CSV only.
    pub csv: bool,
    /// Print one stderr line per completed sweep run (`--progress`); long
    /// grids otherwise run silently until the whole table is ready.
    pub progress: bool,
    /// Evaluate the global model every N rounds (None = config default).
    pub eval_every: Option<usize>,
    /// Worker threads for the parallel sweep driver (0 = auto).
    pub sweep_threads: usize,
    /// Transfer pricing override (`--cost-basis analytic|encoded`); `None`
    /// keeps each binary's default basis.
    pub cost_basis: Option<CostBasis>,
    /// Broadcast codec for the downlink leg (`--downlink SPEC`); `None`
    /// keeps the paper's free broadcast.
    pub downlink: Option<CompressorSpec>,
    /// Layer-aware uplink codec plan (`--layer-compressors PLAN`); `None`
    /// keeps the flat codec path.
    pub layer_compressors: Option<LayerPlan>,
    /// Adaptive per-round plan policy (`--adaptive-plan SPEC`, e.g.
    /// `layer-bcrs` or `static:*=topk`); `None` keeps static plans.
    pub adaptive_plan: Option<AdaptivePlanSpec>,
    /// With `--csv`, also emit the per-layer byte breakdown (`--layer-csv`).
    pub layer_csv: bool,
    /// Fleet scenario (`--scenario NAME[:k=v,...]`, e.g. `diurnal:period=8`
    /// or `trace:runs/fleet.trace`); `None` keeps the static fleet.
    pub scenario: Option<ScenarioSpec>,
    /// Extra flags not recognised by the common parser (binary-specific).
    pub extra: Vec<String>,
}

impl Default for BenchArgs {
    fn default() -> Self {
        Self {
            rounds: None,
            scale: None,
            seed: 42,
            quick: false,
            full: false,
            csv: false,
            progress: false,
            eval_every: None,
            sweep_threads: 0,
            cost_basis: None,
            downlink: None,
            layer_compressors: None,
            adaptive_plan: None,
            layer_csv: false,
            scenario: None,
            extra: Vec::new(),
        }
    }
}

impl BenchArgs {
    /// Parse from `std::env::args()` (skipping the program name).
    pub fn parse() -> Self {
        Self::from_args(std::env::args().skip(1))
    }

    /// Parse from an explicit iterator (used by tests).
    pub fn from_args<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--rounds" => {
                    out.rounds = it.next().and_then(|v| v.parse().ok());
                }
                "--scale" => {
                    out.scale = it.next().and_then(|v| v.parse().ok());
                }
                "--seed" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        out.seed = v;
                    }
                }
                "--quick" => out.quick = true,
                "--full" => out.full = true,
                "--csv" => out.csv = true,
                "--progress" => out.progress = true,
                "--eval-every" => {
                    out.eval_every = it.next().and_then(|v| v.parse().ok());
                }
                "--sweep-threads" => {
                    if let Some(v) = it.next().and_then(|v| v.parse().ok()) {
                        out.sweep_threads = v;
                    }
                }
                "--cost-basis" => {
                    let value = it
                        .next()
                        .unwrap_or_else(|| panic!("--cost-basis needs a value: analytic|encoded"));
                    out.cost_basis = Some(match value.as_str() {
                        "analytic" => CostBasis::Analytic,
                        "encoded" => CostBasis::Encoded,
                        other => panic!("--cost-basis: expected analytic|encoded, got {other:?}"),
                    });
                }
                "--downlink" => {
                    let value = it.next().unwrap_or_else(|| {
                        panic!("--downlink needs a codec spec, e.g. topk or ef-topk")
                    });
                    out.downlink = Some(
                        value
                            .parse()
                            .unwrap_or_else(|e| panic!("--downlink: cannot parse {value:?}: {e}")),
                    );
                }
                "--layer-compressors" => {
                    let value = it.next().unwrap_or_else(|| {
                        panic!("--layer-compressors needs a plan, e.g. 'conv*=topk;*=qsgd:8'")
                    });
                    out.layer_compressors = Some(value.parse().unwrap_or_else(|e| {
                        panic!("--layer-compressors: cannot parse {value:?}: {e}")
                    }));
                }
                "--adaptive-plan" => {
                    let value = it.next().unwrap_or_else(|| {
                        panic!("--adaptive-plan needs a spec, e.g. layer-bcrs or static:*=topk")
                    });
                    out.adaptive_plan = Some(value.parse().unwrap_or_else(|e| {
                        panic!("--adaptive-plan: cannot parse {value:?}: {e}")
                    }));
                }
                "--layer-csv" => out.layer_csv = true,
                "--scenario" => {
                    let value = it.next().unwrap_or_else(|| {
                        panic!("--scenario needs a spec, e.g. diurnal or churn:leave=0.1")
                    });
                    out.scenario = Some(
                        value
                            .parse()
                            .unwrap_or_else(|e| panic!("--scenario: cannot parse {value:?}: {e}")),
                    );
                }
                other => out.extra.push(other.to_string()),
            }
        }
        out
    }

    /// True if a binary-specific flag was passed.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.extra.iter().any(|f| f == flag)
    }

    /// The value following a binary-specific `--flag value` pair, if present.
    pub fn flag_value(&self, flag: &str) -> Option<&str> {
        self.extra
            .iter()
            .position(|f| f == flag)
            .and_then(|i| self.extra.get(i + 1))
            .map(String::as_str)
    }

    /// Resolve the effective number of rounds given the binary's default.
    pub fn effective_rounds(&self, default_rounds: usize) -> usize {
        if let Some(r) = self.rounds {
            return r;
        }
        if self.full {
            200
        } else if self.quick {
            (default_rounds / 4).max(2)
        } else {
            default_rounds
        }
    }

    /// Resolve the effective dataset scale given the binary's default.
    pub fn effective_scale(&self, default_scale: f64) -> f64 {
        if let Some(s) = self.scale {
            return s;
        }
        if self.full {
            1.0
        } else if self.quick {
            (default_scale / 2.0).max(0.05)
        } else {
            default_scale
        }
    }
}

/// The benchmark-suite default configuration: the paper's hyper-parameters
/// with a reduced round count and dataset scale so the entire suite runs on a
/// single CPU core in minutes (pass `--full` for the paper's 200-round runs).
pub fn bench_config(
    algorithm: Algorithm,
    dataset: DatasetPreset,
    beta: f64,
    compression_ratio: f64,
    args: &BenchArgs,
) -> ExperimentConfig {
    let mut config = ExperimentConfig::paper_setting(algorithm, dataset, beta, compression_ratio);
    config.rounds = args.effective_rounds(40);
    config.dataset_scale = args.effective_scale(0.3);
    config.model = ModelPreset::Mlp {
        hidden1: 128,
        hidden2: 64,
    };
    config.seed = args.seed;
    if let Some(eval_every) = args.eval_every {
        config.eval_every = eval_every.max(1);
    }
    if let Some(basis) = args.cost_basis {
        config.cost_basis = basis;
    }
    if let Some(downlink) = &args.downlink {
        config.downlink_compressor = Some(downlink.clone());
    }
    if let Some(plan) = &args.layer_compressors {
        config.layer_compressors = Some(plan.clone());
    }
    if let Some(spec) = &args.adaptive_plan {
        config.adaptive_plan = Some(spec.clone());
    }
    if let Some(spec) = &args.scenario {
        config.scenario = Some(spec.clone());
    }
    config
}

/// Format a table row with fixed-width columns.
pub fn row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths.iter())
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect::<Vec<_>>()
        .join("  ")
}

/// A compact one-line summary of a finished run.
pub fn summarize(result: &ExperimentResult) -> String {
    let last = result.records.last();
    format!(
        "{:<10} beta={:<4} CR={:<5} final_acc={:.4} best_acc={:.4} comm={:.1}s (max {:.1}s)",
        result.config.algorithm.name(),
        result.config.beta,
        result.config.compression_ratio,
        result.final_accuracy,
        result.best_accuracy,
        last.map(|r| r.cumulative_actual_s).unwrap_or(0.0),
        last.map(|r| r.cumulative_max_s).unwrap_or(0.0),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> BenchArgs {
        BenchArgs::from_args(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_common_flags() {
        let a = parse(&["--rounds", "17", "--scale", "0.5", "--seed", "9", "--csv"]);
        assert_eq!(a.rounds, Some(17));
        assert_eq!(a.scale, Some(0.5));
        assert_eq!(a.seed, 9);
        assert!(a.csv);
        assert!(!a.quick);
    }

    #[test]
    fn unknown_flags_go_to_extra() {
        let a = parse(&["--ablation", "--quick"]);
        assert!(a.has_flag("--ablation"));
        assert!(!a.has_flag("--other"));
        assert!(a.quick);
    }

    #[test]
    fn flag_values_read_from_extra() {
        let a = parse(&["--compressors", "qsgd:8,topk+qsgd:4", "--quick"]);
        assert_eq!(a.flag_value("--compressors"), Some("qsgd:8,topk+qsgd:4"));
        assert_eq!(a.flag_value("--missing"), None);
        let b = parse(&["--compressors"]);
        assert_eq!(b.flag_value("--compressors"), None);
    }

    #[test]
    fn effective_rounds_precedence() {
        assert_eq!(parse(&["--rounds", "7", "--full"]).effective_rounds(40), 7);
        assert_eq!(parse(&["--full"]).effective_rounds(40), 200);
        assert_eq!(parse(&["--quick"]).effective_rounds(40), 10);
        assert_eq!(parse(&[]).effective_rounds(40), 40);
    }

    #[test]
    fn effective_scale_precedence() {
        assert_eq!(parse(&["--scale", "0.9"]).effective_scale(0.3), 0.9);
        assert_eq!(parse(&["--full"]).effective_scale(0.3), 1.0);
        assert_eq!(parse(&[]).effective_scale(0.3), 0.3);
    }

    #[test]
    fn parses_sweep_and_eval_flags() {
        let a = parse(&["--eval-every", "5", "--sweep-threads", "3"]);
        assert_eq!(a.eval_every, Some(5));
        assert_eq!(a.sweep_threads, 3);
        let c = bench_config(Algorithm::TopK, DatasetPreset::Cifar10Like, 0.5, 0.1, &a);
        assert_eq!(c.eval_every, 5);
        let d = parse(&[]);
        assert_eq!(d.eval_every, None);
        assert_eq!(d.sweep_threads, 0);
    }

    #[test]
    fn parses_cost_basis_and_downlink_flags() {
        let a = parse(&["--cost-basis", "encoded", "--downlink", "ef-topk"]);
        assert_eq!(a.cost_basis, Some(CostBasis::Encoded));
        assert_eq!(a.downlink.as_ref().unwrap().to_string(), "ef-topk");
        let c = bench_config(Algorithm::TopK, DatasetPreset::Cifar10Like, 0.5, 0.1, &a);
        assert_eq!(c.cost_basis, CostBasis::Encoded);
        assert_eq!(
            c.downlink_compressor.as_ref().unwrap().to_string(),
            "ef-topk"
        );
        assert!(c.validate().is_ok());

        let b = parse(&["--cost-basis", "analytic"]);
        assert_eq!(b.cost_basis, Some(CostBasis::Analytic));

        // Unset flags leave the binary's defaults alone.
        let d = parse(&[]);
        assert_eq!(d.cost_basis, None);
        assert_eq!(d.downlink, None);
        let c = bench_config(Algorithm::TopK, DatasetPreset::Cifar10Like, 0.5, 0.1, &d);
        assert_eq!(c.cost_basis, CostBasis::Analytic);
        assert_eq!(c.downlink_compressor, None);
    }

    #[test]
    fn parses_layer_compressors_flag() {
        let a = parse(&["--layer-compressors", "conv*=topk;*=qsgd:8"]);
        assert_eq!(
            a.layer_compressors.as_ref().unwrap().to_string(),
            "conv*=topk;*=qsgd:8"
        );
        let c = bench_config(Algorithm::TopK, DatasetPreset::Cifar10Like, 0.5, 0.1, &a);
        assert_eq!(
            c.layer_compressors.as_ref().unwrap().to_string(),
            "conv*=topk;*=qsgd:8"
        );
        assert!(c.validate().is_ok());
        // Unset leaves the flat path alone.
        let d = parse(&[]);
        assert_eq!(d.layer_compressors, None);
        let c = bench_config(Algorithm::TopK, DatasetPreset::Cifar10Like, 0.5, 0.1, &d);
        assert_eq!(c.layer_compressors, None);
    }

    #[test]
    fn parses_adaptive_plan_and_layer_csv_flags() {
        let a = parse(&["--adaptive-plan", "layer-bcrs", "--csv", "--layer-csv"]);
        assert_eq!(a.adaptive_plan.as_ref().unwrap().to_string(), "layer-bcrs");
        assert!(a.layer_csv);
        let c = bench_config(Algorithm::TopK, DatasetPreset::Cifar10Like, 0.5, 0.1, &a);
        assert_eq!(c.adaptive_plan.as_ref().unwrap().to_string(), "layer-bcrs");
        assert!(c.validate().is_ok());

        let b = parse(&["--adaptive-plan", "static:*.bias=dense;*=topk"]);
        assert_eq!(
            b.adaptive_plan.as_ref().unwrap().to_string(),
            "static:*.bias=dense;*=topk"
        );

        // Unset keeps static plans and the per-round-only CSV.
        let d = parse(&[]);
        assert_eq!(d.adaptive_plan, None);
        assert!(!d.layer_csv);
        let c = bench_config(Algorithm::TopK, DatasetPreset::Cifar10Like, 0.5, 0.1, &d);
        assert_eq!(c.adaptive_plan, None);
    }

    #[test]
    #[should_panic(expected = "--adaptive-plan")]
    fn bad_adaptive_plan_spec_panics() {
        parse(&["--adaptive-plan", "magic"]);
    }

    #[test]
    fn parses_scenario_flag() {
        let a = parse(&["--scenario", "churn:leave=0.1,join=0.4"]);
        assert_eq!(
            a.scenario.as_ref().unwrap().to_string(),
            "churn:leave=0.1,join=0.4"
        );
        let c = bench_config(Algorithm::TopK, DatasetPreset::Cifar10Like, 0.5, 0.1, &a);
        assert_eq!(
            c.scenario.as_ref().unwrap().to_string(),
            "churn:leave=0.1,join=0.4"
        );
        assert!(c.validate().is_ok());
        // Unset keeps the static fleet.
        let d = parse(&[]);
        assert_eq!(d.scenario, None);
        let c = bench_config(Algorithm::TopK, DatasetPreset::Cifar10Like, 0.5, 0.1, &d);
        assert_eq!(c.scenario, None);
    }

    #[test]
    #[should_panic(expected = "--scenario")]
    fn bad_scenario_spec_panics() {
        parse(&["--scenario", "blizzard"]);
    }

    #[test]
    #[should_panic(expected = "--layer-compressors")]
    fn bad_layer_plan_panics() {
        parse(&["--layer-compressors", "not-a-plan"]);
    }

    #[test]
    #[should_panic(expected = "--cost-basis")]
    fn bad_cost_basis_value_panics() {
        parse(&["--cost-basis", "bogus"]);
    }

    #[test]
    #[should_panic(expected = "--downlink")]
    fn bad_downlink_spec_panics() {
        parse(&["--downlink", "+nope"]);
    }

    #[test]
    fn bench_config_is_valid() {
        let args = parse(&["--quick"]);
        let c = bench_config(
            Algorithm::Bcrs,
            DatasetPreset::Cifar10Like,
            0.1,
            0.01,
            &args,
        );
        assert!(c.validate().is_ok());
        assert_eq!(c.beta, 0.1);
        assert_eq!(c.compression_ratio, 0.01);
    }

    #[test]
    fn row_formatting_aligns() {
        let r = row(&["a".into(), "bb".into()], &[3, 4]);
        assert_eq!(r, "  a    bb");
    }
}
