//! Table 3 — communication time (seconds) to reach a target accuracy on the
//! CIFAR-10-like benchmark under β = 0.1: Actual / Max / Min accumulated
//! times for FedAvg, Top-K, EF-Top-K and BCRS at CR ∈ {0.1, 0.01}.
//!
//! All eight runs execute concurrently through the parallel sweep driver
//! (`fl_core::sweep::run_sweep_threaded`) with shared dataset generation.
//!
//! The target accuracy defaults to 40% (the paper's choice) and can be set
//! with `--target 0.35`.
//!
//! `cargo run --release -p fl-bench --bin table3_time_to_acc [-- --target 0.4]`

use fl_bench::{bench_config, BenchArgs};
use fl_core::sweep::run_sweep_threaded;
use fl_core::Algorithm;
use fl_data::DatasetPreset;

fn main() {
    let args = BenchArgs::parse();
    let target = args
        .extra
        .iter()
        .position(|f| f == "--target")
        .and_then(|i| args.extra.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(0.40);

    let mut configs = Vec::new();
    for &alg in &[
        Algorithm::FedAvg,
        Algorithm::TopK,
        Algorithm::EfTopK,
        Algorithm::Bcrs,
    ] {
        for &cr in &[0.1, 0.01] {
            configs.push(bench_config(
                alg,
                DatasetPreset::Cifar10Like,
                0.1,
                cr,
                &args,
            ));
        }
    }
    let results = run_sweep_threaded(&configs, args.sweep_threads);

    println!("algorithm,cr,target_acc,reached,rounds,actual_s,max_s,min_s");
    for result in &results {
        let alg = result.config.algorithm;
        let cr = result.config.compression_ratio;
        match result.time_to_accuracy(target) {
            Some((round, actual, max, min)) => {
                // The paper leaves Max/Min blank for BCRS because its whole
                // point is that clients finish together; we print them as
                // "-" for parity with Table 3.
                let (max_s, min_s) = if alg.uses_bcrs() {
                    ("-".to_string(), "-".to_string())
                } else {
                    (format!("{max:.1}"), format!("{min:.1}"))
                };
                println!(
                    "{},{cr},{target},yes,{},{:.1},{},{}",
                    alg.name(),
                    round + 1,
                    actual,
                    max_s,
                    min_s
                );
            }
            None => {
                println!(
                    "{},{cr},{target},no,-,-,-,- (best acc {:.3} in {} rounds)",
                    alg.name(),
                    result.best_accuracy,
                    result.records.len()
                );
            }
        }
    }
    if !args.csv {
        eprintln!("# Max/Min are accumulated straggler / fastest-client times;");
        eprintln!("# BCRS rows leave them blank because it equalizes client upload times.");
    }
}
