//! Table 4 / Fig. 11 — OPWA accuracy as a function of the enlarge rate γ on
//! the CIFAR-10-like benchmark (β ∈ {0.1, 0.5} × CR ∈ {0.1, 0.01}).
//!
//! Prints both the per-γ final accuracies (Table 4) and the full training
//! curves (Fig. 11) when `--curves` is passed.
//!
//! `cargo run --release -p fl-bench --bin table4_fig11_gamma [-- --curves]`

use fl_bench::{bench_config, BenchArgs};
use fl_core::{run_experiment, Algorithm};
use fl_data::DatasetPreset;

fn main() {
    let args = BenchArgs::parse();
    let gammas = [1.0f32, 3.0, 5.0, 7.0, 8.0];
    let curves = args.has_flag("--curves");

    println!("beta,cr,gamma,final_accuracy,best_accuracy");
    let mut curve_rows: Vec<String> = Vec::new();
    for &beta in &[0.1, 0.5] {
        for &cr in &[0.1, 0.01] {
            // FedAvg reference row (the last row of Table 4).
            let fedavg = run_experiment(&bench_config(
                Algorithm::FedAvg,
                DatasetPreset::Cifar10Like,
                beta,
                cr,
                &args,
            ));
            for &gamma in &gammas {
                let mut config = bench_config(
                    Algorithm::BcrsOpwa,
                    DatasetPreset::Cifar10Like,
                    beta,
                    cr,
                    &args,
                );
                config.gamma = gamma;
                let result = run_experiment(&config);
                println!(
                    "{beta},{cr},{gamma},{:.4},{:.4}",
                    result.final_accuracy, result.best_accuracy
                );
                if curves {
                    for r in &result.records {
                        curve_rows.push(format!(
                            "{beta},{cr},{gamma},{},{:.4}",
                            r.round, r.test_accuracy
                        ));
                    }
                }
            }
            println!(
                "{beta},{cr},fedavg,{:.4},{:.4}",
                fedavg.final_accuracy, fedavg.best_accuracy
            );
        }
    }
    if curves {
        println!();
        println!("beta,cr,gamma,round,test_accuracy");
        for row in curve_rows {
            println!("{row}");
        }
    }
}
