//! Table 4 / Fig. 11 — OPWA accuracy as a function of the enlarge rate γ on
//! the CIFAR-10-like benchmark (β ∈ {0.1, 0.5} × CR ∈ {0.1, 0.01}).
//!
//! Prints both the per-γ final accuracies (Table 4) and the full training
//! curves (Fig. 11) when `--curves` is passed.
//!
//! The γ axis is not a [`fl_core::SweepGrid`] dimension, so the grid is built
//! as an explicit configuration list — per (β, CR) cell the five γ variants
//! followed by the FedAvg reference — and executed through
//! [`fl_core::sweep::run_sweep_threaded`] (shared dataset generation,
//! `--sweep-threads` workers). Results return in input order, which is the
//! historical printing order, so the CSV is unchanged byte for byte.
//!
//! `cargo run --release -p fl-bench --bin table4_fig11_gamma [-- --curves]`

use fl_bench::{bench_config, BenchArgs};
use fl_core::{run_sweep_threaded, Algorithm};
use fl_data::DatasetPreset;

fn main() {
    let args = BenchArgs::parse();
    let gammas = [1.0f32, 3.0, 5.0, 7.0, 8.0];
    let curves = args.has_flag("--curves");

    // Per (β, CR) cell: the γ sweep rows, then the FedAvg reference row (the
    // last row of Table 4).
    let mut configs = Vec::new();
    for &beta in &[0.1, 0.5] {
        for &cr in &[0.1, 0.01] {
            for &gamma in &gammas {
                let mut config = bench_config(
                    Algorithm::BcrsOpwa,
                    DatasetPreset::Cifar10Like,
                    beta,
                    cr,
                    &args,
                );
                config.gamma = gamma;
                configs.push(config);
            }
            configs.push(bench_config(
                Algorithm::FedAvg,
                DatasetPreset::Cifar10Like,
                beta,
                cr,
                &args,
            ));
        }
    }
    let results = run_sweep_threaded(&configs, args.sweep_threads);

    println!("beta,cr,gamma,final_accuracy,best_accuracy");
    let mut curve_rows: Vec<String> = Vec::new();
    for result in &results {
        let c = &result.config;
        let (beta, cr) = (c.beta, c.compression_ratio);
        match c.algorithm {
            Algorithm::FedAvg => println!(
                "{beta},{cr},fedavg,{:.4},{:.4}",
                result.final_accuracy, result.best_accuracy
            ),
            _ => {
                let gamma = c.gamma;
                println!(
                    "{beta},{cr},{gamma},{:.4},{:.4}",
                    result.final_accuracy, result.best_accuracy
                );
                if curves {
                    for r in &result.records {
                        curve_rows.push(format!(
                            "{beta},{cr},{gamma},{},{:.4}",
                            r.round, r.test_accuracy
                        ));
                    }
                }
            }
        }
    }
    if curves {
        println!();
        println!("beta,cr,gamma,round,test_accuracy");
        for row in curve_rows {
            println!("{row}");
        }
    }
}
