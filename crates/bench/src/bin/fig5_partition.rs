//! Fig. 5 — non-IID class allocation across clients for β = 0.5 and β = 0.1
//! (the client × class heat-map of the CIFAR-10-like dataset).
//!
//! This binary intentionally does **not** run through the
//! [`fl_core::sweep`] driver that the experiment grids use: it executes no
//! federated rounds at all, only two `dirichlet_partition` calls over one
//! shared dataset, so there is nothing for `run_sweep_threaded` to
//! parallelise or deduplicate.
//!
//! `cargo run --release -p fl-bench --bin fig5_partition`

use fl_bench::BenchArgs;
use fl_data::{dirichlet_partition, DatasetPreset, PartitionStats};

fn main() {
    let args = BenchArgs::parse();
    let spec = DatasetPreset::Cifar10Like.spec(args.effective_scale(1.0));
    let (train, _) = spec.generate(args.seed);

    for &beta in &[0.5, 0.1] {
        let parts = dirichlet_partition(&train, 10, beta, 8, args.seed);
        let stats = PartitionStats::from_partition(&parts, &train);
        if args.csv {
            println!("# beta = {beta}");
            print!("{}", stats.to_csv());
        } else {
            println!("== beta = {beta} (rows: clients, columns: classes) ==");
            for (client, row) in stats.counts.iter().enumerate() {
                let cells: Vec<String> = row.iter().map(|c| format!("{c:>5}")).collect();
                println!("client {client}: {}", cells.join(" "));
            }
            println!(
                "label skew (mean max-class share per client): {:.3}\n",
                stats.label_skew()
            );
        }
    }
}
