//! Fig. 4 — distribution of the degree of overlap of retained parameters
//! after Top-K compression, for β ∈ {0.1, 0.5} × CR ∈ {0.01, 0.1}.
//!
//! Runs a short training simulation with overlap recording enabled and prints
//! the per-degree histogram (counts and percentages), the same quantities the
//! paper plots as bar charts.
//!
//! `cargo run --release -p fl-bench --bin fig4_overlap`

use fl_bench::{bench_config, BenchArgs};
use fl_core::{run_experiment, Algorithm};
use fl_data::DatasetPreset;

fn main() {
    let args = BenchArgs::parse();
    println!("beta,cr,degree,count,fraction");
    for &beta in &[0.1, 0.5] {
        for &cr in &[0.01, 0.1] {
            let mut config =
                bench_config(Algorithm::TopK, DatasetPreset::Cifar10Like, beta, cr, &args);
            config.rounds = args.effective_rounds(10);
            config.record_overlap = true;
            let result = run_experiment(&config);
            let overlap = result
                .merged_overlap()
                .expect("overlap recording was enabled");
            for (i, (&count, &frac)) in overlap
                .histogram_counts
                .iter()
                .zip(overlap.fractions.iter())
                .enumerate()
            {
                println!("{beta},{cr},{},{count},{frac:.4}", i + 1);
            }
            if !args.csv {
                eprintln!(
                    "# beta={beta} CR={cr}: {} retained coordinates, {:.1}% singletons",
                    overlap.total_retained,
                    overlap.singleton_fraction() * 100.0
                );
            }
        }
    }
}
