//! Fig. 4 — distribution of the degree of overlap of retained parameters
//! after Top-K compression, for β ∈ {0.1, 0.5} × CR ∈ {0.01, 0.1}.
//!
//! The four (β, CR) cells form a `SweepGrid` executed in parallel by the
//! sweep driver (shared dataset generation, worker count set by
//! `--sweep-threads`, results in grid order: β outer, CR inner). Each run
//! records the per-round overlap histogram; the merged per-degree counts and
//! percentages are the quantities the paper plots as bar charts.
//!
//! `cargo run --release -p fl-bench --bin fig4_overlap`

use fl_bench::{bench_config, BenchArgs};
use fl_core::sweep::{run_sweep_threaded_progress, SweepGrid};
use fl_core::Algorithm;
use fl_data::DatasetPreset;

fn main() {
    let args = BenchArgs::parse();
    let mut base = bench_config(
        Algorithm::TopK,
        DatasetPreset::Cifar10Like,
        0.1,
        0.01,
        &args,
    );
    base.rounds = args.effective_rounds(10);
    base.record_overlap = true;
    let grid = SweepGrid::new(base)
        .betas([0.1, 0.5])
        .compression_ratios([0.01, 0.1]);
    let results = run_sweep_threaded_progress(&grid.configs(), args.sweep_threads, args.progress);

    println!("beta,cr,degree,count,fraction");
    for result in &results {
        let (beta, cr) = (result.config.beta, result.config.compression_ratio);
        let overlap = result
            .merged_overlap()
            .expect("overlap recording was enabled");
        for (i, (&count, &frac)) in overlap
            .histogram_counts
            .iter()
            .zip(overlap.fractions.iter())
            .enumerate()
        {
            println!("{beta},{cr},{},{count},{frac:.4}", i + 1);
        }
        if !args.csv {
            eprintln!(
                "# beta={beta} CR={cr}: {} retained coordinates, {:.1}% singletons",
                overlap.total_retained,
                overlap.singleton_fraction() * 100.0
            );
        }
    }
}
