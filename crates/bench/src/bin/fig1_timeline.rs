//! Fig. 1 — round timelines of three clients under (a) no compression,
//! (b) uniform compression and (c) BCRS adaptive compression.
//!
//! Prints, for each scheme, every client's download / training / upload /
//! waiting split plus the round duration, showing that adaptive compression
//! removes the waiting time without extending the round.
//!
//! `cargo run --release -p fl-bench --bin fig1_timeline`

use fl_bench::BenchArgs;
use fl_core::BcrsScheduler;
use fl_netsim::{CommModel, Link, RoundTimeline};

fn main() {
    let args = BenchArgs::parse();
    // Three clients with B1 > B2 > B3, as in the figure.
    let links = [
        Link::from_mbps_ms(1.6, 60.0),
        Link::from_mbps_ms(1.0, 100.0),
        Link::from_mbps_ms(0.5, 180.0),
    ];
    let model_bytes = 101_672.0; // the default MLP (~25k parameters)
    let training_s = [10.0, 10.0, 10.0];
    let download_s = [0.5, 0.5, 0.5];
    let comm = CommModel::paper_default();
    let base_ratio = 0.1;

    let schemes: Vec<(&str, Vec<f64>)> = vec![
        (
            "uncompressed",
            links
                .iter()
                .map(|l| comm.dense_uplink_time(l, model_bytes))
                .collect(),
        ),
        (
            "uniform-compression",
            links
                .iter()
                .map(|l| comm.sparse_uplink_time(l, model_bytes, base_ratio))
                .collect(),
        ),
        (
            "adaptive-compression (BCRS)",
            BcrsScheduler::new(comm)
                .schedule(&links, model_bytes, base_ratio)
                .scheduled_times,
        ),
    ];

    if args.csv {
        println!("scheme,client,download_s,training_s,upload_s,waiting_s,round_s");
    }
    for (name, uploads) in schemes {
        let tl = RoundTimeline::synchronous(&download_s, &training_s, &uploads);
        if args.csv {
            for c in tl.clients() {
                println!(
                    "{name},{},{:.3},{:.3},{:.3},{:.3},{:.3}",
                    c.client_id,
                    c.download_s,
                    c.training_s,
                    c.upload_s,
                    c.waiting_s,
                    tl.duration_s()
                );
            }
        } else {
            println!("== {name} ==");
            println!(
                "  round duration: {:.2} s, total waiting: {:.2} s ({:.0}% of client time)",
                tl.duration_s(),
                tl.total_waiting_s(),
                tl.waiting_fraction() * 100.0
            );
            for c in tl.clients() {
                println!(
                    "  C{}: train {:.1}s | upload {:>6.2}s | wait {:>6.2}s",
                    c.client_id + 1,
                    c.training_s,
                    c.upload_s,
                    c.waiting_s
                );
            }
            println!();
        }
    }
}
