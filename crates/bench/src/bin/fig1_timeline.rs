//! Fig. 1 — round timelines of three clients under (a) no compression,
//! (b) uniform compression and (c) BCRS adaptive compression.
//!
//! Prints, for each scheme, every client's download / training / upload /
//! waiting split plus the round duration, showing that adaptive compression
//! removes the waiting time without extending the round.
//!
//! By default the download bar is the figure's flat 0.5 s placeholder; with
//! `--downlink SPEC` it is priced per link by the cost model's download leg
//! instead (dense for the uncompressed scheme, the analytic `2·V·CR`
//! broadcast for the compressed ones), so the timeline attributes the
//! bidirectional cost the way the round engine charges it. Note this figure
//! is purely analytic — the flag's *presence* switches the download leg on,
//! but the spec value itself does not change the analytic times (all codecs
//! are priced at the base ratio; run an experiment binary under
//! `--cost-basis encoded` to compare codecs by their real bytes).
//!
//! `cargo run --release -p fl-bench --bin fig1_timeline`

use fl_bench::BenchArgs;
use fl_core::BcrsScheduler;
use fl_netsim::{CommModel, Link, RoundTimeline};

fn main() {
    let args = BenchArgs::parse();
    // Three clients with B1 > B2 > B3, as in the figure.
    let links = [
        Link::from_mbps_ms(1.6, 60.0),
        Link::from_mbps_ms(1.0, 100.0),
        Link::from_mbps_ms(0.5, 180.0),
    ];
    let model_bytes = 101_672.0; // the default MLP (~25k parameters)
    let training_s = [10.0, 10.0, 10.0];
    let comm = CommModel::paper_default();
    let base_ratio = 0.1;

    // Download attribution: the figure's flat placeholder, or — when the
    // downlink leg is simulated — the cost model's per-link download times
    // (dense broadcast for the uncompressed scheme, the analytic compressed
    // broadcast for the others).
    let flat_download = [0.5, 0.5, 0.5];
    let dense_download: Vec<f64> = links
        .iter()
        .map(|l| comm.dense_downlink_time(l, model_bytes))
        .collect();
    let sparse_download: Vec<f64> = links
        .iter()
        .map(|l| comm.sparse_downlink_time(l, model_bytes, base_ratio))
        .collect();
    let simulate_downlink = args.downlink.is_some();

    let schemes: Vec<(&str, Vec<f64>, Vec<f64>)> = vec![
        (
            "uncompressed",
            if simulate_downlink {
                dense_download
            } else {
                flat_download.to_vec()
            },
            links
                .iter()
                .map(|l| comm.dense_uplink_time(l, model_bytes))
                .collect(),
        ),
        (
            "uniform-compression",
            if simulate_downlink {
                sparse_download.clone()
            } else {
                flat_download.to_vec()
            },
            links
                .iter()
                .map(|l| comm.sparse_uplink_time(l, model_bytes, base_ratio))
                .collect(),
        ),
        (
            "adaptive-compression (BCRS)",
            if simulate_downlink {
                sparse_download
            } else {
                flat_download.to_vec()
            },
            BcrsScheduler::new(comm)
                .schedule(&links, model_bytes, base_ratio)
                .scheduled_times,
        ),
    ];

    if args.csv {
        println!("scheme,client,download_s,training_s,upload_s,waiting_s,round_s");
    }
    for (name, download_s, uploads) in schemes {
        let tl = RoundTimeline::synchronous(&download_s, &training_s, &uploads);
        if args.csv {
            for c in tl.clients() {
                println!(
                    "{name},{},{:.3},{:.3},{:.3},{:.3},{:.3}",
                    c.client_id,
                    c.download_s,
                    c.training_s,
                    c.upload_s,
                    c.waiting_s,
                    tl.duration_s()
                );
            }
        } else {
            println!("== {name} ==");
            println!(
                "  round duration: {:.2} s, total waiting: {:.2} s ({:.0}% of client time)",
                tl.duration_s(),
                tl.total_waiting_s(),
                tl.waiting_fraction() * 100.0
            );
            for c in tl.clients() {
                println!(
                    "  C{}: train {:.1}s | upload {:>6.2}s | wait {:>6.2}s",
                    c.client_id + 1,
                    c.training_s,
                    c.upload_s,
                    c.waiting_s
                );
            }
            println!();
        }
    }
}
