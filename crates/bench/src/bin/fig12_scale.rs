//! Fig. 12 grown into a population scale-out harness.
//!
//! Default mode sweeps a clients × cohort × model grid over the virtualized
//! round engine and emits one machine-readable JSON document
//! (`BENCH_scale.json` in the repository root is a committed run):
//!
//! * populations N ∈ {10^3, 10^4, 10^5} (`--full` adds 10^6, `--quick`
//!   keeps only the 10^4 smoke point);
//! * fixed cohort sizes, so `participation = cohort / N` shrinks as the
//!   population grows — exactly the regime the roster virtualization is for;
//! * per grid point the harness checks the O(cohort) instantiation claim
//!   (`round_instantiated == |cohort|`, `peak_resident <= |cohort|`) and
//!   records the roster counters plus wall time as evidence;
//! * an embedded bit-identity check replays the paper-scale N = 16 / N = 20
//!   settings with 1 and 8 worker threads and requires identical records
//!   (the sharded aggregation tree must be thread-count invariant).
//!
//! The synthetic datasets stay paper-sized, so at 10^5+ clients most clients
//! legitimately own zero samples; the harness measures engine scaling, not
//! model quality.
//!
//! `cargo run --release -p fl-bench --bin fig12_scale -- [--quick|--full]
//!  [--rounds N] [--scale F] [--out FILE] [--csv]`
//!
//! The original Fig. 12 experiment (optimal enlarge rate γ at N = 16 and
//! N = 20) is preserved verbatim behind `--gamma`.

use fl_bench::{bench_config, BenchArgs};
use fl_core::{run_experiment, Algorithm, ExperimentConfig, ModelPreset, SessionBuilder};
use fl_data::DatasetPreset;

fn main() {
    let args = BenchArgs::parse();
    if args.has_flag("--gamma") {
        gamma_mode(&args);
    } else {
        scale_mode(&args);
    }
}

/// The legacy Fig. 12 experiment: optimal enlarge rate γ at N = 16 and
/// N = 20 clients (selection fraction 0.5); the best γ grows roughly in
/// proportion to the number of selected clients. Output is the historical
/// CSV, byte for byte.
fn gamma_mode(args: &BenchArgs) {
    println!("num_clients,gamma,final_accuracy,best_accuracy");
    for &n in &[16usize, 20] {
        let gammas: Vec<f32> = [0.5f32, 0.8, 1.0, 1.25, 1.5]
            .iter()
            .map(|f| (f * n as f32 / 2.0).round().max(1.0))
            .collect();
        let mut best: Option<(f32, f64)> = None;
        for &gamma in &gammas {
            let mut config = bench_config(
                Algorithm::BcrsOpwa,
                DatasetPreset::Cifar10Like,
                0.1,
                0.1,
                args,
            );
            config.num_clients = n;
            config.gamma = gamma;
            let result = run_experiment(&config);
            println!(
                "{n},{gamma},{:.4},{:.4}",
                result.final_accuracy, result.best_accuracy
            );
            if best
                .map(|(_, acc)| result.best_accuracy > acc)
                .unwrap_or(true)
            {
                best = Some((gamma, result.best_accuracy));
            }
        }
        // Baselines for reference: FedAvg and uniform Top-K at this scale.
        for alg in [Algorithm::FedAvg, Algorithm::TopK] {
            let mut config = bench_config(alg, DatasetPreset::Cifar10Like, 0.1, 0.1, args);
            config.num_clients = n;
            let result = run_experiment(&config);
            println!(
                "{n},{},{:.4},{:.4}",
                alg.name(),
                result.final_accuracy,
                result.best_accuracy
            );
        }
        if let Some((gamma, acc)) = best {
            if !args.csv {
                eprintln!(
                    "# N={n}: best gamma {gamma} (selected clients: {}), best accuracy {acc:.3}",
                    n / 2
                );
            }
        }
    }
}

/// One measured point of the scaling grid.
struct ScalePoint {
    num_clients: usize,
    cohort: usize,
    model: &'static str,
    model_params: usize,
    rounds: usize,
    wall_time_s: f64,
    final_accuracy: f64,
    round_instantiated: usize,
    peak_resident: usize,
    resident_after: usize,
    total_instantiated: usize,
    residual_clients: usize,
    residual_total_norm: f64,
}

/// Render an `f64` as a JSON number (finite values only; the harness never
/// emits NaN/infinity).
fn json_f64(x: f64) -> String {
    assert!(x.is_finite(), "cannot serialise {x} as a JSON number");
    format!("{x:.6}")
}

fn scale_mode(args: &BenchArgs) {
    // `--full` / `--quick` choose the grid here, not the round horizon, so
    // the per-point settings are explicit instead of `effective_rounds`.
    let rounds = args.rounds.unwrap_or(2);
    let scale = args.scale.unwrap_or(0.5);
    let populations: Vec<usize> = if args.quick {
        vec![10_000]
    } else if args.full {
        vec![1_000, 10_000, 100_000, 1_000_000]
    } else {
        vec![1_000, 10_000, 100_000]
    };
    let cohorts: Vec<usize> = if args.quick { vec![64] } else { vec![32, 128] };
    let models: Vec<(&'static str, ModelPreset)> = if args.quick {
        vec![("linear", ModelPreset::Linear)]
    } else {
        vec![
            ("linear", ModelPreset::Linear),
            (
                "mlp_32x16",
                ModelPreset::Mlp {
                    hidden1: 32,
                    hidden2: 16,
                },
            ),
        ]
    };

    // --- Bit-identity check: the sharded aggregation tree must produce the
    // same records regardless of worker-thread count. -----------------------
    let mut identity_lines = Vec::new();
    for &n in &[16usize, 20] {
        let mut config = ExperimentConfig::quick(Algorithm::BcrsOpwa);
        config.num_clients = n;
        config.rounds = 3;
        config.seed = args.seed;
        let serial = SessionBuilder::from_config(&config)
            .threads(1)
            .build()
            .run();
        let threaded = SessionBuilder::from_config(&config)
            .threads(8)
            .build()
            .run();
        // `{:?}` round-trips every float exactly, so string equality here is
        // bit equality of the full record set.
        let identical = format!("{:?}", serial.records) == format!("{:?}", threaded.records);
        assert!(
            identical,
            "N={n}: records diverge between 1 and 8 worker threads"
        );
        if !args.csv {
            eprintln!("# identity check N={n}: 1-thread and 8-thread records identical");
        }
        identity_lines.push(format!(
            "    {{\"num_clients\": {n}, \"rounds\": 3, \"threads_compared\": [1, 8], \
             \"records_identical\": true}}"
        ));
    }

    // --- The scaling grid ---------------------------------------------------
    let mut points = Vec::new();
    for &n in &populations {
        for &cohort in &cohorts {
            for (model_name, model) in &models {
                let mut config = ExperimentConfig::paper_setting(
                    Algorithm::EfTopK,
                    DatasetPreset::Cifar10Like,
                    0.5,
                    0.1,
                );
                config.num_clients = n;
                config.participation = cohort as f64 / n as f64;
                config.model = *model;
                config.rounds = rounds;
                config.dataset_scale = scale;
                config.seed = args.seed;
                // Evaluate only the final round: the harness measures engine
                // scaling, and evaluation cost is independent of N.
                config.eval_every = args.eval_every.unwrap_or(rounds).max(1);
                assert_eq!(
                    config.clients_per_round(),
                    cohort,
                    "participation must round back to the requested cohort"
                );

                let start = std::time::Instant::now();
                let mut session = SessionBuilder::from_config(&config).build();
                while !session.is_finished() {
                    session.run_round();
                }
                let roster = session.roster();
                let selected = session
                    .records()
                    .last()
                    .map(|r| r.selected_clients.len())
                    .unwrap_or(0);
                // The O(cohort) claims, checked on every grid point.
                assert_eq!(
                    roster.round_instantiated(),
                    selected,
                    "N={n}: the final round instantiated more clients than it selected"
                );
                assert!(
                    roster.peak_resident() <= cohort,
                    "N={n}: peak resident clients {} exceeded the cohort {cohort}",
                    roster.peak_resident()
                );
                assert_eq!(roster.resident(), 0, "N={n}: clients leaked past checkin");

                let point = ScalePoint {
                    num_clients: n,
                    cohort,
                    model: model_name,
                    model_params: session.model_params(),
                    rounds,
                    wall_time_s: start.elapsed().as_secs_f64(),
                    final_accuracy: session
                        .records()
                        .last()
                        .map(|r| r.test_accuracy)
                        .unwrap_or(0.0),
                    round_instantiated: roster.round_instantiated(),
                    peak_resident: roster.peak_resident(),
                    resident_after: roster.resident(),
                    total_instantiated: roster.total_instantiated(),
                    residual_clients: roster.residual_clients(),
                    residual_total_norm: roster.residual_total_norm(),
                };
                if !args.csv {
                    eprintln!(
                        "# N={:>7} cohort={:>3} model={:<9} params={:>6} wall={:>7.2}s \
                         peak_resident={:>3} residual_clients={}",
                        point.num_clients,
                        point.cohort,
                        point.model,
                        point.model_params,
                        point.wall_time_s,
                        point.peak_resident,
                        point.residual_clients,
                    );
                }
                points.push(point);
            }
        }
    }

    // --- Emit JSON (hand-rendered: the vendored serde shim has no JSON
    // serialiser, and the schema is small enough to write directly). --------
    let point_lines: Vec<String> = points
        .iter()
        .map(|p| {
            format!(
                "    {{\"num_clients\": {}, \"cohort\": {}, \"model\": \"{}\", \
                 \"model_params\": {}, \"rounds\": {}, \"wall_time_s\": {}, \
                 \"final_accuracy\": {}, \"round_instantiated\": {}, \
                 \"peak_resident\": {}, \"resident_after\": {}, \
                 \"total_instantiated\": {}, \"residual_clients\": {}, \
                 \"residual_total_norm\": {}}}",
                p.num_clients,
                p.cohort,
                p.model,
                p.model_params,
                p.rounds,
                json_f64(p.wall_time_s),
                json_f64(p.final_accuracy),
                p.round_instantiated,
                p.peak_resident,
                p.resident_after,
                p.total_instantiated,
                p.residual_clients,
                json_f64(p.residual_total_norm),
            )
        })
        .collect();
    let mode = if args.quick {
        "quick"
    } else if args.full {
        "full"
    } else {
        "default"
    };
    let json = format!(
        "{{\n  \"schema\": \"bwfl-scale-v1\",\n  \"generated_by\": \"fig12_scale\",\n  \
         \"mode\": \"{mode}\",\n  \"seed\": {seed},\n  \"rounds_per_point\": {rounds},\n  \
         \"dataset\": \"{dataset}\",\n  \"dataset_scale\": {scale},\n  \
         \"algorithm\": \"{algorithm}\",\n  \"identity_checks\": [\n{identities}\n  ],\n  \
         \"points\": [\n{points}\n  ]\n}}\n",
        seed = args.seed,
        dataset = "cifar10-like",
        scale = json_f64(scale),
        algorithm = Algorithm::EfTopK.name(),
        identities = identity_lines.join(",\n"),
        points = point_lines.join(",\n"),
    );
    match args.flag_value("--out") {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            if !args.csv {
                eprintln!("# wrote {path}");
            }
        }
        None => print!("{json}"),
    }
}
