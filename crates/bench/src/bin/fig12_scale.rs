//! Fig. 12 — optimal enlarge rate γ at larger system scales (N = 16 and
//! N = 20 clients, selection fraction 0.5): the best γ grows roughly in
//! proportion to the number of selected clients.
//!
//! `cargo run --release -p fl-bench --bin fig12_scale`

use fl_bench::{bench_config, BenchArgs};
use fl_core::{run_experiment, Algorithm};
use fl_data::DatasetPreset;

fn main() {
    let args = BenchArgs::parse();
    println!("num_clients,gamma,final_accuracy,best_accuracy");
    for &n in &[16usize, 20] {
        let gammas: Vec<f32> = [0.5f32, 0.8, 1.0, 1.25, 1.5]
            .iter()
            .map(|f| (f * n as f32 / 2.0).round().max(1.0))
            .collect();
        let mut best: Option<(f32, f64)> = None;
        for &gamma in &gammas {
            let mut config = bench_config(
                Algorithm::BcrsOpwa,
                DatasetPreset::Cifar10Like,
                0.1,
                0.1,
                &args,
            );
            config.num_clients = n;
            config.gamma = gamma;
            let result = run_experiment(&config);
            println!(
                "{n},{gamma},{:.4},{:.4}",
                result.final_accuracy, result.best_accuracy
            );
            if best
                .map(|(_, acc)| result.best_accuracy > acc)
                .unwrap_or(true)
            {
                best = Some((gamma, result.best_accuracy));
            }
        }
        // Baselines for reference: FedAvg and uniform Top-K at this scale.
        for alg in [Algorithm::FedAvg, Algorithm::TopK] {
            let mut config = bench_config(alg, DatasetPreset::Cifar10Like, 0.1, 0.1, &args);
            config.num_clients = n;
            let result = run_experiment(&config);
            println!(
                "{n},{},{:.4},{:.4}",
                alg.name(),
                result.final_accuracy,
                result.best_accuracy
            );
        }
        if let Some((gamma, acc)) = best {
            if !args.csv {
                eprintln!(
                    "# N={n}: best gamma {gamma} (selected clients: {}), best accuracy {acc:.3}",
                    n / 2
                );
            }
        }
    }
}
