//! Figs. 13–15 — test accuracy vs round for BCRS+OPWA against every baseline
//! (FedAvg, Top-K, EF-Top-K, BCRS) on CIFAR-10-like, CIFAR-100-like and
//! SVHN-like, under β ∈ {0.1, 0.5} × CR ∈ {0.1, 0.01}.
//!
//! Only CIFAR-10-like (Fig. 13) runs by default; `--all-datasets` adds
//! Figs. 14 and 15.
//!
//! `cargo run --release -p fl-bench --bin fig13_15_opwa_curves [-- --all-datasets]`

use fl_bench::{bench_config, BenchArgs};
use fl_core::{run_experiment, Algorithm};
use fl_data::DatasetPreset;

fn main() {
    let args = BenchArgs::parse();
    let datasets: Vec<DatasetPreset> = if args.has_flag("--all-datasets") || args.full {
        vec![
            DatasetPreset::Cifar10Like,
            DatasetPreset::Cifar100Like,
            DatasetPreset::SvhnLike,
        ]
    } else {
        vec![DatasetPreset::Cifar10Like]
    };
    println!("dataset,beta,cr,algorithm,round,test_accuracy");
    for &dataset in &datasets {
        for &beta in &[0.1, 0.5] {
            for &cr in &[0.1, 0.01] {
                for &alg in &Algorithm::paper_lineup() {
                    let config = bench_config(alg, dataset, beta, cr, &args);
                    let result = run_experiment(&config);
                    for r in &result.records {
                        println!(
                            "{},{beta},{cr},{},{},{:.4}",
                            dataset.name(),
                            alg.name(),
                            r.round,
                            r.test_accuracy
                        );
                    }
                }
            }
        }
    }
}
