//! Figs. 13–15 — test accuracy vs round for BCRS+OPWA against every baseline
//! (FedAvg, Top-K, EF-Top-K, BCRS) on CIFAR-10-like, CIFAR-100-like and
//! SVHN-like, under β ∈ {0.1, 0.5} × CR ∈ {0.1, 0.01}.
//!
//! Only CIFAR-10-like (Fig. 13) runs by default; `--all-datasets` adds
//! Figs. 14 and 15.
//!
//! The grid runs through [`fl_core::sweep::run_sweep_threaded`] (shared
//! dataset generation, `--sweep-threads` workers); [`SweepGrid`]'s cartesian
//! nesting — dataset → β → CR → algorithm — is exactly this binary's
//! historical loop order, so the CSV rows come out byte-identical to the old
//! sequential runs.
//!
//! `cargo run --release -p fl-bench --bin fig13_15_opwa_curves [-- --all-datasets]`

use fl_bench::{bench_config, BenchArgs};
use fl_core::{run_sweep_threaded_progress, Algorithm, SweepGrid};
use fl_data::DatasetPreset;

fn main() {
    let args = BenchArgs::parse();
    let datasets: Vec<DatasetPreset> = if args.has_flag("--all-datasets") || args.full {
        vec![
            DatasetPreset::Cifar10Like,
            DatasetPreset::Cifar100Like,
            DatasetPreset::SvhnLike,
        ]
    } else {
        vec![DatasetPreset::Cifar10Like]
    };
    let lineup = Algorithm::paper_lineup();
    let base = bench_config(lineup[0], datasets[0], 0.1, 0.1, &args);
    let grid = SweepGrid::new(base)
        .datasets(datasets.clone())
        .betas([0.1, 0.5])
        .compression_ratios([0.1, 0.01])
        .algorithms(lineup);
    let configs = grid.configs();
    let results = run_sweep_threaded_progress(&configs, args.sweep_threads, args.progress);

    println!("dataset,beta,cr,algorithm,round,test_accuracy");
    for result in &results {
        let c = &result.config;
        for r in &result.records {
            println!(
                "{},{},{},{},{},{:.4}",
                c.dataset.name(),
                c.beta,
                c.compression_ratio,
                c.algorithm.name(),
                r.round,
                r.test_accuracy
            );
        }
    }
}
