//! Fig. 14 (repo extension): the seven algorithms under dynamic fleets.
//!
//! The paper evaluates every algorithm on a static always-on fleet. This
//! harness re-runs the full algorithm roster through the scenario engine
//! (`fl_netsim::scenario` driven by `fl_core::scenario`) and emits one
//! machine-readable JSON document (`BENCH_scenarios.json` in the repository
//! root is a committed run):
//!
//! * one sweep row per fleet scenario — the static baseline, a diurnal
//!   participation wave, Poisson churn, correlated tower outages, and
//!   (outside `--quick`) tiered link-class jitter — each crossed with all
//!   seven algorithms through the sweep driver's scenario axis;
//! * per scenario the per-round `available_clients` trajectory (identical
//!   across algorithms by construction: the fleet stream is seeded from
//!   `scenario_seed`, not the algorithm), asserted — when running the
//!   default roster — to give ≥ 3 distinct trajectories under the one
//!   master seed;
//! * an embedded record-then-replay check: the diurnal generator is recorded
//!   to a `bwfl-trace-v1` file, replayed through `trace:PATH`, and the replay
//!   run's records must be bit-identical to the generator run's;
//! * an embedded thread-identity check: the busiest configuration
//!   (BCRS+OPWA under churn) must produce identical records with 1 and 8
//!   worker threads.
//!
//! `--scenario SPEC` replaces the dynamic rows with the given spec (the
//! static baseline row is kept for reference). `--csv` prints one line per
//! round per run instead of prose; the JSON document still goes to `--out`
//! when given.
//!
//! `cargo run --release -p fl-bench --bin fig14_scenarios -- [--quick|--full]
//!  [--scenario SPEC] [--rounds N] [--out FILE] [--csv]`

use fl_bench::{bench_config, BenchArgs};
use fl_core::{
    record_scenario_trace, run_experiment, run_sweep_threaded_progress, Algorithm,
    ExperimentConfig, ModelPreset, RoundRecord, SessionBuilder, SweepGrid,
};
use fl_data::DatasetPreset;
use fl_netsim::ScenarioSpec;

const ALL_ALGORITHMS: [Algorithm; 7] = [
    Algorithm::FedAvg,
    Algorithm::TopK,
    Algorithm::EfTopK,
    Algorithm::RandK,
    Algorithm::TopKOpwa,
    Algorithm::Bcrs,
    Algorithm::BcrsOpwa,
];

/// Render an `f64` as a JSON number (finite values only).
fn json_f64(x: f64) -> String {
    assert!(x.is_finite(), "cannot serialise {x} as a JSON number");
    format!("{x:.6}")
}

/// The per-round fleet size, falling back to the full population for
/// static-fleet records (which carry no scenario telemetry).
fn available(record: &RoundRecord, num_clients: usize) -> usize {
    record.scenario.map(|t| t.available).unwrap_or(num_clients)
}

fn base_config(args: &BenchArgs) -> ExperimentConfig {
    let mut config = bench_config(
        Algorithm::FedAvg,
        DatasetPreset::Cifar10Like,
        0.5,
        0.1,
        args,
    );
    config.rounds = args.effective_rounds(40);
    config.dataset_scale = args.effective_scale(0.4);
    config.num_clients = 32;
    config.participation = 0.5;
    config.model = ModelPreset::Mlp {
        hidden1: 32,
        hidden2: 16,
    };
    config
}

fn main() {
    let args = BenchArgs::parse();
    let base = base_config(&args);
    let rounds = base.rounds;
    let num_clients = base.num_clients;

    // --- The scenario rows --------------------------------------------------
    let mut rows: Vec<Option<ScenarioSpec>> = vec![None];
    if let Some(spec) = &args.scenario {
        rows.push(Some(spec.clone()));
    } else {
        rows.push(Some(
            "diurnal:period=8,min_up=0.25,max_up=0.95".parse().unwrap(),
        ));
        rows.push(Some("churn:leave=0.08,join=0.3".parse().unwrap()));
        rows.push(Some(
            "towers:groups=4,outage=0.25,repair=0.5".parse().unwrap(),
        ));
        if !args.quick {
            rows.push(Some("tiered:resample=0.3,sigma=0.3".parse().unwrap()));
        }
    }
    let row_label = |row: &Option<ScenarioSpec>| match row {
        Some(spec) => spec.name().to_string(),
        None => "static".to_string(),
    };

    // --- Record-then-replay: the diurnal generator, recorded to a trace
    // file, must replay bit-identically through `trace:PATH`. ----------------
    let mut recorded = base.clone();
    recorded.scenario = Some("diurnal:period=8,min_up=0.25,max_up=0.95".parse().unwrap());
    let trace = record_scenario_trace(&recorded, rounds)
        .unwrap_or_else(|e| panic!("cannot record the diurnal trace: {e}"));
    let trace_path = std::env::temp_dir().join(format!("bwfl_fig14_replay_{}.trace", args.seed));
    let trace_path = trace_path.to_str().expect("temp path is UTF-8").to_string();
    std::fs::write(&trace_path, &trace)
        .unwrap_or_else(|e| panic!("cannot write {trace_path}: {e}"));
    let mut replayed = base.clone();
    replayed.scenario = Some(ScenarioSpec::Trace {
        path: trace_path.clone(),
    });
    let generated_run = run_experiment(&recorded);
    let replayed_run = run_experiment(&replayed);
    // `{:?}` round-trips every float exactly, so string equality here is bit
    // equality of the full record set.
    let trace_replay_identical =
        format!("{:?}", generated_run.records) == format!("{:?}", replayed_run.records);
    assert!(
        trace_replay_identical,
        "replaying the recorded diurnal trace diverged from the generator run"
    );
    let _ = std::fs::remove_file(&trace_path);
    if !args.csv {
        eprintln!(
            "# replay check: recorded diurnal trace ({} rounds) replays bit-identically",
            rounds
        );
    }

    // --- Thread identity: the scenario driver must not perturb the engine's
    // thread-count invariance. ----------------------------------------------
    let mut identity = base.clone();
    identity.algorithm = Algorithm::BcrsOpwa;
    identity.scenario = Some("churn:leave=0.08,join=0.3".parse().unwrap());
    identity.rounds = rounds.min(4);
    let serial = SessionBuilder::from_config(&identity)
        .threads(1)
        .build()
        .run();
    let threaded = SessionBuilder::from_config(&identity)
        .threads(8)
        .build()
        .run();
    let threads_identical = format!("{:?}", serial.records) == format!("{:?}", threaded.records);
    assert!(
        threads_identical,
        "records diverge between 1 and 8 worker threads under churn"
    );
    if !args.csv {
        eprintln!("# identity check: 1-thread and 8-thread records identical under churn");
    }

    // --- The grid: every algorithm × every scenario row ---------------------
    let grid = SweepGrid::new(base.clone())
        .algorithms(ALL_ALGORITHMS)
        .scenario_options(rows.clone());
    let configs = grid.configs();
    let results = run_sweep_threaded_progress(&configs, args.sweep_threads, args.progress);

    // The scenario axis is inner to the algorithm axis, so run index is
    // `alg_idx * rows.len() + row_idx`.
    let run = |alg_idx: usize, row_idx: usize| &results[alg_idx * rows.len() + row_idx];

    // --- Distinct trajectories: the per-round fleet sizes must actually
    // differ between scenarios (same master seed throughout). ----------------
    let trajectories: Vec<Vec<usize>> = (0..rows.len())
        .map(|row_idx| {
            let records = &run(0, row_idx).records;
            records.iter().map(|r| available(r, num_clients)).collect()
        })
        .collect();
    for (row_idx, row) in rows.iter().enumerate() {
        for alg_idx in 1..ALL_ALGORITHMS.len() {
            let got: Vec<usize> = run(alg_idx, row_idx)
                .records
                .iter()
                .map(|r| available(r, num_clients))
                .collect();
            assert_eq!(
                got,
                trajectories[row_idx],
                "{}: fleet trajectory depends on the algorithm",
                row_label(row)
            );
        }
    }
    let mut distinct: Vec<&Vec<usize>> = Vec::new();
    for t in &trajectories {
        if !distinct.contains(&t) {
            distinct.push(t);
        }
    }
    // Only the default roster promises >= 3 distinct trajectories; a
    // `--scenario` override runs two rows, and a link-only spec (tiered)
    // legitimately shares the static availability trajectory.
    if args.scenario.is_none() {
        assert!(
            distinct.len() >= 3,
            "expected >= 3 distinct fleet trajectories, got {}",
            distinct.len()
        );
    }
    if !args.csv {
        eprintln!(
            "# {} scenarios produced {} distinct fleet trajectories",
            rows.len(),
            distinct.len()
        );
    }

    // --- CSV: one line per round per run ------------------------------------
    if args.csv {
        println!(
            "scenario,algorithm,round,available_clients,selected,joined,departed,link_changes,\
             comm_actual_s,cum_actual_s,test_accuracy"
        );
        for (row_idx, row) in rows.iter().enumerate() {
            for (alg_idx, algorithm) in ALL_ALGORITHMS.iter().enumerate() {
                for r in &run(alg_idx, row_idx).records {
                    let t = r.scenario.unwrap_or(fl_netsim::ScenarioTelemetry {
                        available: num_clients,
                        joined: 0,
                        departed: 0,
                        link_changes: 0,
                    });
                    println!(
                        "{},{},{},{},{},{},{},{},{:.4},{:.4},{:.4}",
                        row_label(row),
                        algorithm.name(),
                        r.round,
                        t.available,
                        r.selected_clients.len(),
                        t.joined,
                        t.departed,
                        t.link_changes,
                        r.comm_actual_s,
                        r.cumulative_actual_s,
                        r.test_accuracy,
                    );
                }
            }
        }
    }

    // --- JSON ---------------------------------------------------------------
    let scenario_blocks: Vec<String> = rows
        .iter()
        .enumerate()
        .map(|(row_idx, row)| {
            let spec = match row {
                Some(s) => format!("\"{s}\""),
                None => "null".to_string(),
            };
            let trajectory = trajectories[row_idx]
                .iter()
                .map(|n| n.to_string())
                .collect::<Vec<_>>()
                .join(", ");
            let runs: Vec<String> = ALL_ALGORITHMS
                .iter()
                .enumerate()
                .map(|(alg_idx, algorithm)| {
                    let result = run(alg_idx, row_idx);
                    let last = result.records.last().expect("runs have records");
                    let (joined, departed, link_changes) = result.records.iter().fold(
                        (0usize, 0usize, 0usize),
                        |(j, d, l), r| match r.scenario {
                            Some(t) => (j + t.joined, d + t.departed, l + t.link_changes),
                            None => (j, d, l),
                        },
                    );
                    format!(
                        "        {{\"algorithm\": \"{}\", \"final_accuracy\": {}, \
                         \"best_accuracy\": {}, \"cum_actual_s\": {}, \"uplink_bytes\": {}, \
                         \"total_joined\": {joined}, \"total_departed\": {departed}, \
                         \"total_link_changes\": {link_changes}}}",
                        algorithm.name(),
                        json_f64(result.final_accuracy),
                        json_f64(result.best_accuracy),
                        json_f64(last.cumulative_actual_s),
                        result.records.iter().map(|r| r.uplink_bytes).sum::<usize>(),
                    )
                })
                .collect();
            format!(
                "    {{\"scenario\": \"{}\", \"spec\": {spec}, \
                 \"available_per_round\": [{trajectory}],\n      \"runs\": [\n{}\n      ]}}",
                row_label(row),
                runs.join(",\n"),
            )
        })
        .collect();
    let mode = if args.quick {
        "quick"
    } else if args.full {
        "full"
    } else {
        "default"
    };
    let json = format!(
        "{{\n  \"schema\": \"bwfl-scenarios-v1\",\n  \"generated_by\": \"fig14_scenarios\",\n  \
         \"mode\": \"{mode}\",\n  \"seed\": {seed},\n  \"rounds\": {rounds},\n  \
         \"num_clients\": {num_clients},\n  \"cohort\": {cohort},\n  \
         \"dataset\": \"cifar10-like\",\n  \"dataset_scale\": {scale},\n  \
         \"trace_replay_identical\": {trace_replay_identical},\n  \
         \"threads_compared\": [1, 8],\n  \"records_identical\": {threads_identical},\n  \
         \"distinct_trajectories\": {distinct},\n  \"scenarios\": [\n{blocks}\n  ]\n}}\n",
        seed = args.seed,
        cohort = base.clients_per_round(),
        scale = json_f64(base.dataset_scale),
        distinct = distinct.len(),
        blocks = scenario_blocks.join(",\n"),
    );
    match args.flag_value("--out") {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            if !args.csv {
                eprintln!("# wrote {path}");
            }
        }
        None => {
            if !args.csv {
                print!("{json}");
            }
        }
    }
}
