//! Table 2 — final test accuracy of FedAvg, Top-K, EF-Top-K, BCRS and
//! BCRS+OPWA across datasets × heterogeneity (β) × compression ratio (CR).
//!
//! The whole grid is built with `fl_core::sweep::SweepGrid` and executed in
//! parallel by the sweep driver (shared dataset generation, worker count set
//! by `--sweep-threads`, results in table order).
//!
//! Defaults to a reduced grid (CIFAR-10-like only, shortened runs); pass
//! `--all-datasets` for all three datasets and `--full` for the paper's
//! 200-round, full-scale settings. `--with-ef-bcrs` adds the
//! error-feedback-under-BCRS ablation row.
//!
//! `--compressors spec1,spec2,…` appends extra scenario rows sweeping the
//! listed codec specs (e.g. `qsgd:8,topk+qsgd:4,ef-topk`) through the same
//! dataset × β × CR grid. These rows default to `CostBasis::Encoded`, so
//! their communication times are priced from the bytes each codec actually
//! encoded; `--cost-basis analytic|encoded` overrides the basis for *every*
//! row (main grid and codec rows alike), and `--downlink SPEC` simulates the
//! server→client broadcast through a codec instead of teleporting it.
//!
//! `--layer-compressors PLAN` likewise appends layer-aware scenario rows
//! (e.g. `'conv*=topk;*=qsgd:8'`): the plan runs through the grid as Top-K
//! rows under the encoded basis (the main grid keeps the flat path — its
//! OPWA rows reject dense-decoding plan rules), with the per-layer byte
//! breakdown summarised on stderr.
//!
//! `cargo run --release -p fl-bench --bin table2_main [-- --all-datasets --full]`

use fl_bench::{bench_config, summarize, BenchArgs};
use fl_compress::CompressorSpec;
use fl_core::sweep::{run_sweep_threaded_progress, SweepGrid};
use fl_core::Algorithm;
use fl_data::DatasetPreset;
use fl_netsim::CostBasis;

fn main() {
    let args = BenchArgs::parse();
    // The main grid always runs the flat codec path: a layer plan with
    // dense-decoding rules (e.g. `*=qsgd:8`) is invalid for the OPWA rows,
    // so `--layer-compressors` becomes dedicated scenario rows below instead.
    let mut grid_args = args.clone();
    grid_args.layer_compressors = None;
    let datasets: Vec<DatasetPreset> = if args.has_flag("--all-datasets") || args.full {
        vec![
            DatasetPreset::Cifar10Like,
            DatasetPreset::SvhnLike,
            DatasetPreset::Cifar100Like,
        ]
    } else {
        vec![DatasetPreset::Cifar10Like]
    };
    let betas = [0.1, 0.5];
    let ratios = [0.1, 0.01];
    let algorithms = Algorithm::paper_lineup();

    // Grid nesting (dataset → β → CR → algorithm) matches the table order.
    let grid = SweepGrid::new(bench_config(
        algorithms[0],
        datasets[0],
        betas[0],
        ratios[0],
        &grid_args,
    ))
    .datasets(datasets.clone())
    .betas(betas)
    .compression_ratios(ratios)
    .algorithms(algorithms);
    let configs = grid.configs();
    let results = run_sweep_threaded_progress(&configs, args.sweep_threads, args.progress);

    // The ablation reruns EF-Top-K at each BCRS run's achieved mean CR, so it
    // depends on the main grid; collect its configs and sweep them too.
    let ablation_results = if args.has_flag("--with-ef-bcrs") {
        let ef_configs: Vec<_> = results
            .iter()
            .filter(|r| r.config.algorithm == Algorithm::Bcrs)
            .map(|bcrs_probe| {
                // Ablation: BCRS scheduling with error-feedback residuals is
                // approximated by running EF-Top-K at the BCRS mean CR.
                let mean_cr = bcrs_probe.records[0].mean_compression_ratio.min(1.0);
                let mut ef = bcrs_probe.config.clone();
                ef.algorithm = Algorithm::EfTopK;
                ef.compression_ratio = mean_cr;
                ef
            })
            .collect();
        run_sweep_threaded_progress(&ef_configs, args.sweep_threads, args.progress)
    } else {
        Vec::new()
    };
    let mut ablation_iter = ablation_results.iter();

    println!("dataset,beta,cr,algorithm,final_accuracy,best_accuracy,cum_comm_s,uplink_bytes");
    // One (dataset, beta, cr) block per `algorithms.len()` results.
    for block in results.chunks(algorithms.len()) {
        let (dataset, beta, cr) = (
            block[0].config.dataset,
            block[0].config.beta,
            block[0].config.compression_ratio,
        );
        for result in block {
            let last = result.records.last().unwrap();
            println!(
                "{},{beta},{cr},{},{:.4},{:.4},{:.1},{}",
                dataset.name(),
                result.config.algorithm.name(),
                result.final_accuracy,
                result.best_accuracy,
                last.cumulative_actual_s,
                total_uplink_bytes(result)
            );
            if !args.csv {
                eprintln!("# {}", summarize(result));
                if let Some(spec) = &result.config.downlink_compressor {
                    let down_kb = result
                        .records
                        .iter()
                        .map(|r| r.downlink_bytes as f64)
                        .sum::<f64>()
                        / 1e3;
                    eprintln!("#   downlink {spec}: {down_kb:.1} kB total encoded broadcast");
                }
            }
        }
        if let Some(result) = ablation_iter.next() {
            println!(
                "{},{beta},{cr},eftopk@bcrs-cr,{:.4},{:.4},{:.1},{}",
                dataset.name(),
                result.final_accuracy,
                result.best_accuracy,
                result.records.last().unwrap().cumulative_actual_s,
                total_uplink_bytes(result)
            );
        }
    }

    // Extra scenario rows: sweep the requested codec specs through the same
    // grid as first-class rows, priced from the bytes each codec encoded.
    // Pure quantizers (`qsgd:<bits>`) ignore the target ratio, so they run
    // once per (dataset, β) instead of once per ratio, with `-` in the CR
    // column.
    if let Some(list) = args.flag_value("--compressors") {
        let specs: Vec<CompressorSpec> = list
            .split(',')
            .map(|s| {
                s.parse().unwrap_or_else(|e| {
                    panic!("--compressors: cannot parse {s:?}: {e}");
                })
            })
            .collect();
        let (ratio_free, ratio_bound): (Vec<CompressorSpec>, Vec<CompressorSpec>) =
            specs.into_iter().partition(|s| s.produces_dense());
        let mut base = configs[0].clone();
        base.algorithm = Algorithm::TopK;
        base.cost_basis = args.cost_basis.unwrap_or(CostBasis::Encoded);
        let basis_tag = basis_tag(base.cost_basis);
        let mut codec_configs = Vec::new();
        if !ratio_bound.is_empty() {
            codec_configs.extend(
                SweepGrid::new(base.clone())
                    .datasets(datasets.clone())
                    .betas(betas)
                    .compression_ratios(ratios)
                    .compressors(ratio_bound)
                    .configs(),
            );
        }
        if !ratio_free.is_empty() {
            codec_configs.extend(
                SweepGrid::new(base)
                    .datasets(datasets.clone())
                    .betas(betas)
                    .compressors(ratio_free)
                    .configs(),
            );
        }
        let codec_results =
            run_sweep_threaded_progress(&codec_configs, args.sweep_threads, args.progress);
        for result in &codec_results {
            let last = result.records.last().unwrap();
            let spec = result
                .config
                .compressor
                .as_ref()
                .expect("codec rows always carry a spec");
            let cr_cell = if spec.produces_dense() {
                "-".to_string()
            } else {
                result.config.compression_ratio.to_string()
            };
            println!(
                "{},{},{cr_cell},{spec}@{basis_tag},{:.4},{:.4},{:.1},{}",
                result.config.dataset.name(),
                result.config.beta,
                result.final_accuracy,
                result.best_accuracy,
                last.cumulative_actual_s,
                total_uplink_bytes(result)
            );
            if !args.csv {
                let total_mb = result
                    .records
                    .iter()
                    .map(|r| r.uplink_bytes as f64)
                    .sum::<f64>()
                    / 1e6;
                eprintln!(
                    "# codec {spec}: {} | {total_mb:.2} MB total encoded uplink",
                    summarize(result)
                );
            }
        }
    }

    // Layer-aware scenario rows: run the requested plan through the same
    // dataset × β × CR grid as Top-K rows priced from the encoded bytes, and
    // summarise the per-layer breakdown a mixed plan records. A plan that
    // resolves every segment of the model to a ratio-ignoring codec (pure
    // quantizers and the raw-f32 `dense` codec) runs once per (dataset, β)
    // with `-` in the CR column, like the ratio-free codec rows above.
    if let Some(plan) = &args.layer_compressors {
        let ratio_free = configs[0]
            .model
            .segment_names()
            .iter()
            .all(|name| plan.spec_for(name).is_some_and(spec_ignores_ratio));
        let mut base = configs[0].clone();
        base.algorithm = Algorithm::TopK;
        base.compressor = None;
        base.cost_basis = args.cost_basis.unwrap_or(CostBasis::Encoded);
        let basis_tag = basis_tag(base.cost_basis);
        let mut grid = SweepGrid::new(base)
            .datasets(datasets.clone())
            .betas(betas)
            .layer_plans([plan.clone()]);
        if !ratio_free {
            grid = grid.compression_ratios(ratios);
        }
        let plan_configs = grid.configs();
        let plan_results =
            run_sweep_threaded_progress(&plan_configs, args.sweep_threads, args.progress);
        for result in &plan_results {
            let last = result.records.last().unwrap();
            let cr_cell = if ratio_free {
                "-".to_string()
            } else {
                result.config.compression_ratio.to_string()
            };
            println!(
                "{},{},{cr_cell},{plan}@{basis_tag},{:.4},{:.4},{:.1},{}",
                result.config.dataset.name(),
                result.config.beta,
                result.final_accuracy,
                result.best_accuracy,
                last.cumulative_actual_s,
                total_uplink_bytes(result)
            );
            if !args.csv {
                eprintln!("# plan {plan}: {}", summarize(result));
                // Sum the per-layer uplink bytes over the run (present only
                // for genuinely mixed plans — uniform plans collapse to the
                // flat codec and record no breakdown).
                let mut per_layer: Vec<(String, usize)> = Vec::new();
                for r in &result.records {
                    if let Some(layers) = &r.layer_bytes {
                        if per_layer.is_empty() {
                            per_layer = layers
                                .iter()
                                .map(|l| (l.layer.clone(), l.uplink_bytes))
                                .collect();
                        } else {
                            for (acc, l) in per_layer.iter_mut().zip(layers.iter()) {
                                acc.1 += l.uplink_bytes;
                            }
                        }
                    }
                }
                for (layer, bytes) in &per_layer {
                    eprintln!("#   {layer}: {:.1} kB encoded uplink", *bytes as f64 / 1e3);
                }
            }
        }
    }
}

/// Total uplink bytes a run transferred, summed over its rounds — the
/// trailing CSV column. Under `CostBasis::Encoded` this is the exact encoded
/// byte count, which is what the CI smoke step compares across codecs.
fn total_uplink_bytes(result: &fl_core::ExperimentResult) -> u64 {
    result.records.iter().map(|r| r.uplink_bytes as u64).sum()
}

/// The label suffix naming the basis a scenario row's times were priced
/// under (`--cost-basis` may override the encoded default).
fn basis_tag(basis: CostBasis) -> &'static str {
    match basis {
        CostBasis::Encoded => "encoded",
        CostBasis::Analytic => "analytic",
    }
}

/// True when a spec's encode ignores the target ratio entirely: pure
/// quantizers (`qsgd:<bits>`) and the raw-f32 `dense` codec.
fn spec_ignores_ratio(spec: &CompressorSpec) -> bool {
    spec.produces_dense() || (spec.stages.len() == 1 && spec.stages[0].name == "dense")
}
