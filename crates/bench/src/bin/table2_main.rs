//! Table 2 — final test accuracy of FedAvg, Top-K, EF-Top-K, BCRS and
//! BCRS+OPWA across datasets × heterogeneity (β) × compression ratio (CR).
//!
//! Defaults to a reduced grid (CIFAR-10-like only, shortened runs); pass
//! `--all-datasets` for all three datasets and `--full` for the paper's
//! 200-round, full-scale settings. `--with-ef-bcrs` adds the
//! error-feedback-under-BCRS ablation row.
//!
//! `cargo run --release -p fl-bench --bin table2_main [-- --all-datasets --full]`

use fl_bench::{bench_config, summarize, BenchArgs};
use fl_core::{run_experiment, Algorithm};
use fl_data::DatasetPreset;

fn main() {
    let args = BenchArgs::parse();
    let datasets: Vec<DatasetPreset> = if args.has_flag("--all-datasets") || args.full {
        vec![
            DatasetPreset::Cifar10Like,
            DatasetPreset::SvhnLike,
            DatasetPreset::Cifar100Like,
        ]
    } else {
        vec![DatasetPreset::Cifar10Like]
    };
    let betas = [0.1, 0.5];
    let ratios = [0.1, 0.01];
    let algorithms = Algorithm::paper_lineup();

    println!("dataset,beta,cr,algorithm,final_accuracy,best_accuracy,cum_comm_s");
    for &dataset in &datasets {
        for &beta in &betas {
            for &cr in &ratios {
                for &alg in &algorithms {
                    let config = bench_config(alg, dataset, beta, cr, &args);
                    let result = run_experiment(&config);
                    let last = result.records.last().unwrap();
                    println!(
                        "{},{beta},{cr},{},{:.4},{:.4},{:.1}",
                        dataset.name(),
                        alg.name(),
                        result.final_accuracy,
                        result.best_accuracy,
                        last.cumulative_actual_s
                    );
                    if !args.csv {
                        eprintln!("# {}", summarize(&result));
                    }
                }
                if args.has_flag("--with-ef-bcrs") {
                    // Ablation: BCRS scheduling with error-feedback residuals
                    // is approximated by running EF-Top-K at the BCRS mean CR.
                    let probe = bench_config(Algorithm::Bcrs, dataset, beta, cr, &args);
                    let bcrs_probe = run_experiment(&probe);
                    let mean_cr = bcrs_probe.records[0].mean_compression_ratio.min(1.0);
                    let mut ef = bench_config(Algorithm::EfTopK, dataset, beta, mean_cr, &args);
                    ef.compression_ratio = mean_cr;
                    let result = run_experiment(&ef);
                    println!(
                        "{},{beta},{cr},eftopk@bcrs-cr,{:.4},{:.4},{:.1}",
                        dataset.name(),
                        result.final_accuracy,
                        result.best_accuracy,
                        result.records.last().unwrap().cumulative_actual_s
                    );
                }
            }
        }
    }
}
