//! Table 2 — final test accuracy of FedAvg, Top-K, EF-Top-K, BCRS and
//! BCRS+OPWA across datasets × heterogeneity (β) × compression ratio (CR).
//!
//! The whole grid is built with `fl_core::sweep::SweepGrid` and executed in
//! parallel by the sweep driver (shared dataset generation, worker count set
//! by `--sweep-threads`, results in table order).
//!
//! Defaults to a reduced grid (CIFAR-10-like only, shortened runs); pass
//! `--all-datasets` for all three datasets and `--full` for the paper's
//! 200-round, full-scale settings. `--with-ef-bcrs` adds the
//! error-feedback-under-BCRS ablation row.
//!
//! `--compressors spec1,spec2,…` appends extra scenario rows sweeping the
//! listed codec specs (e.g. `qsgd:8,topk+qsgd:4,ef-topk`) through the same
//! dataset × β × CR grid. These rows default to `CostBasis::Encoded`, so
//! their communication times are priced from the bytes each codec actually
//! encoded; `--cost-basis analytic|encoded` overrides the basis for *every*
//! row (main grid and codec rows alike), and `--downlink SPEC` simulates the
//! server→client broadcast through a codec instead of teleporting it.
//!
//! `cargo run --release -p fl-bench --bin table2_main [-- --all-datasets --full]`

use fl_bench::{bench_config, summarize, BenchArgs};
use fl_compress::CompressorSpec;
use fl_core::sweep::{run_sweep_threaded, SweepGrid};
use fl_core::Algorithm;
use fl_data::DatasetPreset;
use fl_netsim::CostBasis;

fn main() {
    let args = BenchArgs::parse();
    let datasets: Vec<DatasetPreset> = if args.has_flag("--all-datasets") || args.full {
        vec![
            DatasetPreset::Cifar10Like,
            DatasetPreset::SvhnLike,
            DatasetPreset::Cifar100Like,
        ]
    } else {
        vec![DatasetPreset::Cifar10Like]
    };
    let betas = [0.1, 0.5];
    let ratios = [0.1, 0.01];
    let algorithms = Algorithm::paper_lineup();

    // Grid nesting (dataset → β → CR → algorithm) matches the table order.
    let grid = SweepGrid::new(bench_config(
        algorithms[0],
        datasets[0],
        betas[0],
        ratios[0],
        &args,
    ))
    .datasets(datasets.clone())
    .betas(betas)
    .compression_ratios(ratios)
    .algorithms(algorithms);
    let configs = grid.configs();
    let results = run_sweep_threaded(&configs, args.sweep_threads);

    // The ablation reruns EF-Top-K at each BCRS run's achieved mean CR, so it
    // depends on the main grid; collect its configs and sweep them too.
    let ablation_results = if args.has_flag("--with-ef-bcrs") {
        let ef_configs: Vec<_> = results
            .iter()
            .filter(|r| r.config.algorithm == Algorithm::Bcrs)
            .map(|bcrs_probe| {
                // Ablation: BCRS scheduling with error-feedback residuals is
                // approximated by running EF-Top-K at the BCRS mean CR.
                let mean_cr = bcrs_probe.records[0].mean_compression_ratio.min(1.0);
                let mut ef = bcrs_probe.config.clone();
                ef.algorithm = Algorithm::EfTopK;
                ef.compression_ratio = mean_cr;
                ef
            })
            .collect();
        run_sweep_threaded(&ef_configs, args.sweep_threads)
    } else {
        Vec::new()
    };
    let mut ablation_iter = ablation_results.iter();

    println!("dataset,beta,cr,algorithm,final_accuracy,best_accuracy,cum_comm_s");
    // One (dataset, beta, cr) block per `algorithms.len()` results.
    for block in results.chunks(algorithms.len()) {
        let (dataset, beta, cr) = (
            block[0].config.dataset,
            block[0].config.beta,
            block[0].config.compression_ratio,
        );
        for result in block {
            let last = result.records.last().unwrap();
            println!(
                "{},{beta},{cr},{},{:.4},{:.4},{:.1}",
                dataset.name(),
                result.config.algorithm.name(),
                result.final_accuracy,
                result.best_accuracy,
                last.cumulative_actual_s
            );
            if !args.csv {
                eprintln!("# {}", summarize(result));
                if let Some(spec) = &result.config.downlink_compressor {
                    let down_kb = result
                        .records
                        .iter()
                        .map(|r| r.downlink_bytes as f64)
                        .sum::<f64>()
                        / 1e3;
                    eprintln!("#   downlink {spec}: {down_kb:.1} kB total encoded broadcast");
                }
            }
        }
        if let Some(result) = ablation_iter.next() {
            println!(
                "{},{beta},{cr},eftopk@bcrs-cr,{:.4},{:.4},{:.1}",
                dataset.name(),
                result.final_accuracy,
                result.best_accuracy,
                result.records.last().unwrap().cumulative_actual_s
            );
        }
    }

    // Extra scenario rows: sweep the requested codec specs through the same
    // grid as first-class rows, priced from the bytes each codec encoded.
    // Pure quantizers (`qsgd:<bits>`) ignore the target ratio, so they run
    // once per (dataset, β) instead of once per ratio, with `-` in the CR
    // column.
    if let Some(list) = args.flag_value("--compressors") {
        let specs: Vec<CompressorSpec> = list
            .split(',')
            .map(|s| {
                s.parse().unwrap_or_else(|e| {
                    panic!("--compressors: cannot parse {s:?}: {e}");
                })
            })
            .collect();
        let (ratio_free, ratio_bound): (Vec<CompressorSpec>, Vec<CompressorSpec>) =
            specs.into_iter().partition(|s| s.produces_dense());
        let mut base = configs[0].clone();
        base.algorithm = Algorithm::TopK;
        base.cost_basis = args.cost_basis.unwrap_or(CostBasis::Encoded);
        let mut codec_configs = Vec::new();
        if !ratio_bound.is_empty() {
            codec_configs.extend(
                SweepGrid::new(base.clone())
                    .datasets(datasets.clone())
                    .betas(betas)
                    .compression_ratios(ratios)
                    .compressors(ratio_bound)
                    .configs(),
            );
        }
        if !ratio_free.is_empty() {
            codec_configs.extend(
                SweepGrid::new(base)
                    .datasets(datasets)
                    .betas(betas)
                    .compressors(ratio_free)
                    .configs(),
            );
        }
        let codec_results = run_sweep_threaded(&codec_configs, args.sweep_threads);
        for result in &codec_results {
            let last = result.records.last().unwrap();
            let spec = result
                .config
                .compressor
                .as_ref()
                .expect("codec rows always carry a spec");
            let cr_cell = if spec.produces_dense() {
                "-".to_string()
            } else {
                result.config.compression_ratio.to_string()
            };
            println!(
                "{},{},{cr_cell},{spec}@encoded,{:.4},{:.4},{:.1}",
                result.config.dataset.name(),
                result.config.beta,
                result.final_accuracy,
                result.best_accuracy,
                last.cumulative_actual_s
            );
            if !args.csv {
                let total_mb = result
                    .records
                    .iter()
                    .map(|r| r.uplink_bytes as f64)
                    .sum::<f64>()
                    / 1e6;
                eprintln!(
                    "# codec {spec}: {} | {total_mb:.2} MB total encoded uplink",
                    summarize(result)
                );
            }
        }
    }
}
