//! Table 2 — final test accuracy of FedAvg, Top-K, EF-Top-K, BCRS and
//! BCRS+OPWA across datasets × heterogeneity (β) × compression ratio (CR).
//!
//! The whole grid is built with `fl_core::sweep::SweepGrid` and executed in
//! parallel by the sweep driver (shared dataset generation, worker count set
//! by `--sweep-threads`, results in table order).
//!
//! Defaults to a reduced grid (CIFAR-10-like only, shortened runs); pass
//! `--all-datasets` for all three datasets and `--full` for the paper's
//! 200-round, full-scale settings. `--with-ef-bcrs` adds the
//! error-feedback-under-BCRS ablation row.
//!
//! `cargo run --release -p fl-bench --bin table2_main [-- --all-datasets --full]`

use fl_bench::{bench_config, summarize, BenchArgs};
use fl_core::sweep::{run_sweep_threaded, SweepGrid};
use fl_core::Algorithm;
use fl_data::DatasetPreset;

fn main() {
    let args = BenchArgs::parse();
    let datasets: Vec<DatasetPreset> = if args.has_flag("--all-datasets") || args.full {
        vec![
            DatasetPreset::Cifar10Like,
            DatasetPreset::SvhnLike,
            DatasetPreset::Cifar100Like,
        ]
    } else {
        vec![DatasetPreset::Cifar10Like]
    };
    let betas = [0.1, 0.5];
    let ratios = [0.1, 0.01];
    let algorithms = Algorithm::paper_lineup();

    // Grid nesting (dataset → β → CR → algorithm) matches the table order.
    let grid = SweepGrid::new(bench_config(
        algorithms[0],
        datasets[0],
        betas[0],
        ratios[0],
        &args,
    ))
    .datasets(datasets)
    .betas(betas)
    .compression_ratios(ratios)
    .algorithms(algorithms);
    let configs = grid.configs();
    let results = run_sweep_threaded(&configs, args.sweep_threads);

    // The ablation reruns EF-Top-K at each BCRS run's achieved mean CR, so it
    // depends on the main grid; collect its configs and sweep them too.
    let ablation_results = if args.has_flag("--with-ef-bcrs") {
        let ef_configs: Vec<_> = results
            .iter()
            .filter(|r| r.config.algorithm == Algorithm::Bcrs)
            .map(|bcrs_probe| {
                // Ablation: BCRS scheduling with error-feedback residuals is
                // approximated by running EF-Top-K at the BCRS mean CR.
                let mean_cr = bcrs_probe.records[0].mean_compression_ratio.min(1.0);
                let mut ef = bcrs_probe.config.clone();
                ef.algorithm = Algorithm::EfTopK;
                ef.compression_ratio = mean_cr;
                ef
            })
            .collect();
        run_sweep_threaded(&ef_configs, args.sweep_threads)
    } else {
        Vec::new()
    };
    let mut ablation_iter = ablation_results.iter();

    println!("dataset,beta,cr,algorithm,final_accuracy,best_accuracy,cum_comm_s");
    // One (dataset, beta, cr) block per `algorithms.len()` results.
    for block in results.chunks(algorithms.len()) {
        let (dataset, beta, cr) = (
            block[0].config.dataset,
            block[0].config.beta,
            block[0].config.compression_ratio,
        );
        for result in block {
            let last = result.records.last().unwrap();
            println!(
                "{},{beta},{cr},{},{:.4},{:.4},{:.1}",
                dataset.name(),
                result.config.algorithm.name(),
                result.final_accuracy,
                result.best_accuracy,
                last.cumulative_actual_s
            );
            if !args.csv {
                eprintln!("# {}", summarize(result));
            }
        }
        if let Some(result) = ablation_iter.next() {
            println!(
                "{},{beta},{cr},eftopk@bcrs-cr,{:.4},{:.4},{:.1}",
                dataset.name(),
                result.final_accuracy,
                result.best_accuracy,
                result.records.last().unwrap().cumulative_actual_s
            );
        }
    }
}
