//! Fig. 10 — test accuracy vs accumulated communication time on the
//! CIFAR-10-like benchmark (β ∈ {0.1, 0.5} × CR ∈ {0.1, 0.01}), for BCRS and
//! the baselines.
//!
//! `cargo run --release -p fl-bench --bin fig10_time_curves`

use fl_bench::{bench_config, BenchArgs};
use fl_core::{run_experiment, Algorithm};
use fl_data::DatasetPreset;

fn main() {
    let args = BenchArgs::parse();
    let algorithms = [
        Algorithm::Bcrs,
        Algorithm::FedAvg,
        Algorithm::TopK,
        Algorithm::EfTopK,
    ];
    println!("beta,cr,algorithm,round,cumulative_comm_s,test_accuracy");
    for &beta in &[0.1, 0.5] {
        for &cr in &[0.1, 0.01] {
            for &alg in &algorithms {
                let config = bench_config(alg, DatasetPreset::Cifar10Like, beta, cr, &args);
                let result = run_experiment(&config);
                for r in &result.records {
                    println!(
                        "{beta},{cr},{},{},{:.2},{:.4}",
                        alg.name(),
                        r.round,
                        r.cumulative_actual_s,
                        r.test_accuracy
                    );
                }
            }
        }
    }
}
