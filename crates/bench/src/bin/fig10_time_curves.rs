//! Fig. 10 — test accuracy vs accumulated communication time on the
//! CIFAR-10-like benchmark (β ∈ {0.1, 0.5} × CR ∈ {0.1, 0.01}), for BCRS and
//! the baselines.
//!
//! The grid runs through `fl_core::sweep::SweepGrid` and the parallel sweep
//! driver (shared dataset generation, worker count set by `--sweep-threads`,
//! rows printed in grid order).
//!
//! `cargo run --release -p fl-bench --bin fig10_time_curves`

use fl_bench::{bench_config, BenchArgs};
use fl_core::sweep::{run_sweep_threaded_progress, SweepGrid};
use fl_core::Algorithm;
use fl_data::DatasetPreset;

fn main() {
    let args = BenchArgs::parse();
    let algorithms = [
        Algorithm::Bcrs,
        Algorithm::FedAvg,
        Algorithm::TopK,
        Algorithm::EfTopK,
    ];
    let grid = SweepGrid::new(bench_config(
        algorithms[0],
        DatasetPreset::Cifar10Like,
        0.1,
        0.1,
        &args,
    ))
    .betas([0.1, 0.5])
    .compression_ratios([0.1, 0.01])
    .algorithms(algorithms);
    let results = run_sweep_threaded_progress(&grid.configs(), args.sweep_threads, args.progress);

    println!("beta,cr,algorithm,round,cumulative_comm_s,test_accuracy");
    for result in &results {
        for r in &result.records {
            println!(
                "{},{},{},{},{:.2},{:.4}",
                result.config.beta,
                result.config.compression_ratio,
                result.config.algorithm.name(),
                r.round,
                r.cumulative_actual_s,
                r.test_accuracy
            );
        }
    }
}
