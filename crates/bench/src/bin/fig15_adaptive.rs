//! Fig. 15 (repo extension): adaptive per-layer scheduling vs static plans.
//!
//! The paper schedules one compression ratio per client per round (BCRS);
//! every per-layer plan in the repo so far was pinned for the whole run. This
//! harness closes the telemetry loop: a `LayerBcrsPolicy` re-resolves the
//! per-layer codec assignment every round from the previous round's byte
//! telemetry, aggregated gradient mass and the cohort's link snapshot, and is
//! raced against the best *static* uniform plan at the same base ratio under
//! `CostBasis::Encoded` (real encoded bytes, not the analytic formula).
//!
//! One JSON document comes out (`BENCH_adaptive.json` in the repository root
//! is a committed run):
//!
//! * one run per static uniform plan — EF Top-K at full float precision and
//!   its 8-bit quantized twin — plus one adaptive `layer-bcrs` run, all at
//!   equal rounds, equal seed and equal base ratio;
//! * an embedded byte-win assert: the adaptive run's total uplink bytes must
//!   be *strictly* below every static run's — the mass-proportional budgets
//!   spend `efficiency < 1` of the uniform coordinate budget, so losing this
//!   race means the policy regressed;
//! * the adaptive run's final per-layer decisions (segment → spec → ratio)
//!   and the number of distinct plan epochs, so the "adaptivity" is visible
//!   in the artifact rather than inferred.
//!
//! `--adaptive-plan SPEC` swaps in a different policy (e.g.
//! `layer-bcrs:efficiency=0.8` or `static:PLAN`); the byte-win assert is only
//! armed for the default `layer-bcrs` policy. `--csv` prints one line per
//! round per run (`run,round,...` — the run label is the first column);
//! `--layer-csv` appends each run's per-layer byte breakdown.
//!
//! `cargo run --release -p fl-bench --bin fig15_adaptive -- [--quick|--full]
//!  [--adaptive-plan SPEC] [--rounds N] [--out FILE] [--csv] [--layer-csv]`

use fl_bench::{bench_config, BenchArgs};
use fl_core::{
    run_sweep_threaded_progress, AdaptivePlanSpec, Algorithm, ExperimentConfig, ExperimentResult,
    ModelPreset,
};
use fl_data::DatasetPreset;
use fl_netsim::CostBasis;

/// The static uniform competitors: the same EF Top-K family the adaptive
/// policy draws from, at full float precision and quantized to 8 bits.
const STATIC_PLANS: [&str; 2] = ["*=ef-topk", "*=ef-topk+qsgd:8"];

/// Render an `f64` as a JSON number (finite values only).
fn json_f64(x: f64) -> String {
    assert!(x.is_finite(), "cannot serialise {x} as a JSON number");
    format!("{x:.6}")
}

fn total_uplink(result: &ExperimentResult) -> usize {
    result.records.iter().map(|r| r.uplink_bytes).sum()
}

fn total_downlink(result: &ExperimentResult) -> usize {
    result.records.iter().map(|r| r.downlink_bytes).sum()
}

fn base_config(args: &BenchArgs) -> ExperimentConfig {
    let mut config = bench_config(Algorithm::TopK, DatasetPreset::Cifar10Like, 0.5, 0.1, args);
    config.rounds = args.effective_rounds(24);
    config.dataset_scale = args.effective_scale(0.4);
    config.num_clients = 32;
    config.participation = 0.5;
    config.model = ModelPreset::Mlp {
        hidden1: 32,
        hidden2: 16,
    };
    // The race is over real encoded bytes; the analytic 2·V·CR formula would
    // price every sparse plan identically and hide the win.
    config.cost_basis = CostBasis::Encoded;
    // `bench_config` applies --layer-compressors / --adaptive-plan to every
    // run; here the rows themselves own those fields.
    config.layer_compressors = None;
    config.adaptive_plan = None;
    config
}

fn main() {
    let args = BenchArgs::parse();
    let base = base_config(&args);
    let rounds = base.rounds;

    let adaptive_spec: AdaptivePlanSpec = match &args.adaptive_plan {
        Some(spec) => spec.clone(),
        None => "layer-bcrs".parse().expect("default policy parses"),
    };
    // A swapped-in policy (say `static:*=topk`) makes no byte promise.
    let byte_win_armed = matches!(adaptive_spec, AdaptivePlanSpec::LayerBcrs { .. });

    // --- The rows: every static uniform plan, then the adaptive policy -----
    let mut labels: Vec<String> = Vec::new();
    let mut configs: Vec<ExperimentConfig> = Vec::new();
    for plan in STATIC_PLANS {
        let mut c = base.clone();
        c.layer_compressors = Some(plan.parse().expect("static plan parses"));
        labels.push(format!("static:{plan}"));
        configs.push(c);
    }
    let mut adaptive = base.clone();
    adaptive.adaptive_plan = Some(adaptive_spec.clone());
    labels.push(format!("adaptive:{adaptive_spec}"));
    configs.push(adaptive);
    for c in &configs {
        c.validate()
            .unwrap_or_else(|e| panic!("invalid run config: {e}"));
    }
    let results = run_sweep_threaded_progress(&configs, args.sweep_threads, args.progress);
    let adaptive_run = results.last().expect("adaptive run present");

    // --- The byte-win assert ------------------------------------------------
    let adaptive_uplink = total_uplink(adaptive_run);
    let static_uplinks: Vec<usize> = results[..STATIC_PLANS.len()]
        .iter()
        .map(total_uplink)
        .collect();
    let best_static = *static_uplinks.iter().min().expect("static rows present");
    if byte_win_armed {
        for (label, &bytes) in labels.iter().zip(&static_uplinks) {
            assert!(
                adaptive_uplink < bytes,
                "adaptive plan lost the byte race: {adaptive_uplink} >= {bytes} ({label})"
            );
        }
    }

    // --- The adaptivity must be visible: telemetry on every round -----------
    let mut epochs: Vec<u64> = Vec::new();
    for r in &adaptive_run.records {
        let plan = r
            .plan
            .as_ref()
            .unwrap_or_else(|| panic!("round {} has no plan telemetry", r.round));
        assert!(!plan.assignments.is_empty(), "empty plan decision");
        if epochs.last() != Some(&plan.epoch) {
            epochs.push(plan.epoch);
        }
    }
    if !args.csv {
        eprintln!(
            "# byte race: adaptive {adaptive_uplink} vs best static {best_static} \
             ({:+.1}% over {} rounds, {} plan epochs)",
            100.0 * (adaptive_uplink as f64 - best_static as f64) / best_static as f64,
            rounds,
            epochs.len(),
        );
    }

    // --- CSV: one line per round per run ------------------------------------
    if args.csv {
        println!(
            "run,round,test_accuracy,mean_cr,uplink_bytes,downlink_bytes,cum_actual_s,\
             plan_policy,plan"
        );
        for (label, result) in labels.iter().zip(&results) {
            for r in &result.records {
                let (policy, plan) = match &r.plan {
                    Some(p) => (p.policy.as_str(), p.plan.as_str()),
                    None => ("", ""),
                };
                println!(
                    "{label},{},{:.4},{:.4},{},{},{:.4},{policy},\"{plan}\"",
                    r.round,
                    r.test_accuracy,
                    r.mean_compression_ratio,
                    r.uplink_bytes,
                    r.downlink_bytes,
                    r.cumulative_actual_s,
                );
            }
        }
        if args.layer_csv {
            for (label, result) in labels.iter().zip(&results) {
                println!();
                println!("# layers: {label}");
                print!("{}", result.to_layer_csv());
            }
        }
    }

    // --- JSON ---------------------------------------------------------------
    let run_blocks: Vec<String> = labels
        .iter()
        .zip(&results)
        .map(|(label, result)| {
            let kind = if result.config.adaptive_plan.is_some() {
                "adaptive"
            } else {
                "static"
            };
            format!(
                "    {{\"run\": \"{label}\", \"kind\": \"{kind}\", \
                 \"final_accuracy\": {}, \"best_accuracy\": {}, \
                 \"uplink_bytes\": {}, \"downlink_bytes\": {}, \"cum_actual_s\": {}}}",
                json_f64(result.final_accuracy),
                json_f64(result.best_accuracy),
                total_uplink(result),
                total_downlink(result),
                json_f64(
                    result
                        .records
                        .last()
                        .map(|r| r.cumulative_actual_s)
                        .unwrap_or(0.0)
                ),
            )
        })
        .collect();
    let last_plan = adaptive_run
        .records
        .last()
        .and_then(|r| r.plan.as_ref())
        .expect("adaptive run ends with a plan decision");
    let decisions: Vec<String> = last_plan
        .assignments
        .iter()
        .map(|a| {
            format!(
                "    {{\"segment\": \"{}\", \"spec\": \"{}\", \"ratio\": {}}}",
                a.segment,
                a.spec,
                json_f64(a.ratio)
            )
        })
        .collect();
    let mode = if args.quick {
        "quick"
    } else if args.full {
        "full"
    } else {
        "default"
    };
    let json = format!(
        "{{\n  \"schema\": \"bwfl-adaptive-v1\",\n  \"generated_by\": \"fig15_adaptive\",\n  \
         \"mode\": \"{mode}\",\n  \"seed\": {seed},\n  \"rounds\": {rounds},\n  \
         \"num_clients\": {num_clients},\n  \"cohort\": {cohort},\n  \
         \"dataset\": \"cifar10-like\",\n  \"dataset_scale\": {scale},\n  \
         \"cost_basis\": \"encoded\",\n  \"base_ratio\": {ratio},\n  \
         \"policy\": \"{policy}\",\n  \"plan_epochs\": {epochs},\n  \
         \"adaptive_uplink_bytes\": {adaptive_uplink},\n  \
         \"best_static_uplink_bytes\": {best_static},\n  \
         \"adaptive_beats_every_static\": {beats},\n  \
         \"final_plan\": \"{final_plan}\",\n  \"final_decisions\": [\n{decisions}\n  ],\n  \
         \"runs\": [\n{blocks}\n  ]\n}}\n",
        seed = args.seed,
        num_clients = base.num_clients,
        cohort = base.clients_per_round(),
        scale = json_f64(base.dataset_scale),
        ratio = json_f64(base.compression_ratio),
        policy = adaptive_spec,
        epochs = epochs.len(),
        beats = static_uplinks.iter().all(|&b| adaptive_uplink < b),
        final_plan = last_plan.plan,
        decisions = decisions.join(",\n"),
        blocks = run_blocks.join(",\n"),
    );
    match args.flag_value("--out") {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            if !args.csv {
                eprintln!("# wrote {path}");
            }
        }
        None => {
            if !args.csv {
                print!("{json}");
            }
        }
    }
}
