//! Round-throughput harness for the allocation-free training hot path.
//!
//! Two measurements, one JSON document (`BENCH_train.json` in the repository
//! root is a committed run):
//!
//! * **Session throughput** — full federated rounds (local SGD on every
//!   client, aggregation, final-round evaluation) over a model × cohort
//!   grid with `participation = 1.0`, reported as rounds/s and batches/s.
//!   The batch count is exact: with `drop_last = false` every client runs
//!   `ceil(n_i / batch_size)` batches per local epoch.
//! * **Step microbench** — the single-client training step on the default
//!   experiment MLP, fused (workspace `forward_in`/`backward_in` +
//!   `Sgd::step`'s fused kernels) vs the allocating wrapper path, reported
//!   as batches/s. Before timing, the harness trains both paths from
//!   identical initialisation and requires bit-identical parameters — the
//!   fused path must be a pure performance change.
//!
//! `cargo run --release -p fl-bench --bin fig16_throughput --
//!  [--quick|--full] [--rounds N] [--scale F] [--out FILE] [--csv]`
//!
//! CSV mode emits uniform rows `kind,model,detail,rounds_per_s,batches_per_s`
//! (session rows carry both rates; step rows have no round notion and report
//! 0 rounds/s), which CI greps to assert fused ≥ allocating.

use fl_bench::BenchArgs;
use fl_core::{Algorithm, ExperimentConfig, ModelPreset, SessionBuilder};
use fl_data::DatasetPreset;
use fl_nn::{mlp, Sequential, Sgd, SoftmaxCrossEntropy, Workspace};
use fl_tensor::rng::Xoshiro256;
use fl_tensor::{Shape, Tensor};
use std::hint::black_box;

/// One measured grid point of full federated rounds.
struct SessionPoint {
    model: &'static str,
    cohort: usize,
    rounds: usize,
    batches_per_round: usize,
    wall_time_s: f64,
    rounds_per_s: f64,
    batches_per_s: f64,
    final_accuracy: f64,
}

/// One timed variant of the single-client step microbench.
struct StepPoint {
    kind: &'static str,
    steps: usize,
    wall_time_s: f64,
    batches_per_s: f64,
}

/// Render an `f64` as a JSON number (finite values only).
fn json_f64(x: f64) -> String {
    assert!(x.is_finite(), "cannot serialise {x} as a JSON number");
    format!("{x:.6}")
}

const STEP_FEATURES: usize = 384;
const STEP_BATCH: usize = 64;
const STEP_CLASSES: usize = 10;
const STEP_MODEL: &str = "mlp_384x128x64";

fn step_setup(seed: u64) -> (Sequential, Tensor, Vec<usize>) {
    let mut rng = Xoshiro256::new(seed);
    let model = mlp(STEP_FEATURES, &[128, 64], STEP_CLASSES, &mut rng);
    let x = Tensor::rand_normal(Shape::matrix(STEP_BATCH, STEP_FEATURES), 0.0, 1.0, &mut rng);
    let y: Vec<usize> = (0..STEP_BATCH).map(|i| i % STEP_CLASSES).collect();
    (model, x, y)
}

/// Train `n_steps` batches through the allocating wrapper path.
fn run_alloc_steps(model: &mut Sequential, x: &Tensor, y: &[usize], n_steps: usize) {
    let mut loss = SoftmaxCrossEntropy::new();
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    for _ in 0..n_steps {
        model.zero_grad();
        let logits = model.forward(black_box(x));
        loss.forward(&logits, y);
        let g = loss.backward();
        model.backward(&g);
        opt.step(model);
    }
}

/// Train `n_steps` batches through the fused workspace path.
fn run_fused_steps(model: &mut Sequential, x: &Tensor, y: &[usize], n_steps: usize) {
    let mut loss = SoftmaxCrossEntropy::new();
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut ws = Workspace::new();
    let mut grad = Tensor::empty();
    for _ in 0..n_steps {
        model.zero_grad();
        let logits = model.forward_in(black_box(x), &mut ws);
        loss.forward(logits, y);
        loss.backward_in(&mut grad);
        model.backward_in(&grad, &mut ws);
        opt.step(model);
    }
}

/// The embedded bit-identity gate: both step paths must land on identical
/// parameter bits after several momentum + weight-decay steps.
fn assert_step_paths_identical(seed: u64, n_steps: usize) {
    let (mut reference, x, y) = step_setup(seed);
    let (mut subject, _, _) = step_setup(seed);
    run_alloc_steps(&mut reference, &x, &y, n_steps);
    run_fused_steps(&mut subject, &x, &y, n_steps);
    for (i, (sp, rp)) in subject
        .params()
        .iter()
        .zip(reference.params().iter())
        .enumerate()
    {
        assert_eq!(sp.shape().dims(), rp.shape().dims());
        for (a, b) in sp.data().iter().zip(rp.data().iter()) {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "fused and allocating step paths diverged in param tensor {i}"
            );
        }
    }
}

fn microbench(args: &BenchArgs) -> (usize, Vec<StepPoint>) {
    let identity_steps = 5;
    assert_step_paths_identical(args.seed, identity_steps);
    if !args.csv {
        eprintln!(
            "# step identity check: fused and allocating paths bit-identical \
             after {identity_steps} steps"
        );
    }

    // Paired interleaved slices: the two variants alternate in short bursts
    // and each accumulates its own wall time, so slow timing drift (thermal
    // throttling, a background process ramping up) hits both sides equally
    // instead of landing on whichever variant happened to run second. The
    // CI gate compares the two throughputs directly — an unpaired design
    // flakes on exactly that drift.
    const SLICE_STEPS: usize = 10;
    let slices = if args.quick { 30 } else { 100 };
    let steps = slices * SLICE_STEPS;
    let warmup = steps / 10;

    // Both runners keep their model, loss, optimizer (momentum) and — for
    // the fused side — workspace alive across slices: a fresh workspace per
    // slice would re-allocate the very buffers whose reuse is being measured.
    let mut run_alloc_slice = {
        let (mut model, x, y) = step_setup(args.seed);
        let mut loss = SoftmaxCrossEntropy::new();
        let mut opt = Sgd::new(0.05, 0.9, 1e-4);
        move |n_steps: usize| {
            for _ in 0..n_steps {
                model.zero_grad();
                let logits = model.forward(black_box(&x));
                loss.forward(&logits, &y);
                let g = loss.backward();
                model.backward(&g);
                opt.step(&mut model);
            }
        }
    };
    let mut run_fused_slice = {
        let (mut model, x, y) = step_setup(args.seed);
        let mut loss = SoftmaxCrossEntropy::new();
        let mut opt = Sgd::new(0.05, 0.9, 1e-4);
        let mut ws = Workspace::new();
        let mut grad = Tensor::empty();
        move |n_steps: usize| {
            for _ in 0..n_steps {
                model.zero_grad();
                let logits = model.forward_in(black_box(&x), &mut ws);
                loss.forward(logits, &y);
                loss.backward_in(&mut grad);
                model.backward_in(&grad, &mut ws);
                opt.step(&mut model);
            }
        }
    };
    run_alloc_slice(warmup);
    run_fused_slice(warmup);

    // Throughput is computed from each variant's *fastest* slice: scheduler
    // noise only ever adds time, so over enough short slices the minimum
    // converges to the undisturbed per-step cost — the estimator a direct
    // two-variant comparison needs (sums/means keep whatever interference
    // happened to land inside them).
    let mut alloc_best = f64::INFINITY;
    let mut fused_best = f64::INFINITY;
    for _ in 0..slices {
        let t = std::time::Instant::now();
        run_alloc_slice(SLICE_STEPS);
        alloc_best = alloc_best.min(t.elapsed().as_secs_f64());
        let t = std::time::Instant::now();
        run_fused_slice(SLICE_STEPS);
        fused_best = fused_best.min(t.elapsed().as_secs_f64());
    }
    let alloc_wall = alloc_best * slices as f64;
    let fused_wall = fused_best * slices as f64;

    let mut points = Vec::new();
    // Alphabetical order keeps the CSV stable: alloc first, fused second.
    for (kind, wall) in [("alloc", alloc_wall), ("fused", fused_wall)] {
        points.push(StepPoint {
            kind,
            steps,
            wall_time_s: wall,
            batches_per_s: steps as f64 / wall,
        });
        if !args.csv {
            let p = points.last().unwrap();
            eprintln!(
                "# step {kind:<5} model={STEP_MODEL} batch={STEP_BATCH} \
                 steps={steps} wall={:.3}s batches/s={:.1}",
                p.wall_time_s, p.batches_per_s
            );
        }
    }
    (identity_steps, points)
}

fn session_grid(args: &BenchArgs) -> (usize, f64, Vec<SessionPoint>) {
    let rounds = args.rounds.unwrap_or(if args.quick { 3 } else { 8 });
    let scale = args.scale.unwrap_or(if args.quick { 0.2 } else { 0.4 });
    let cohorts: Vec<usize> = if args.quick {
        vec![8, 16]
    } else {
        vec![8, 16, 32]
    };
    let models: Vec<(&'static str, ModelPreset)> = vec![
        ("linear", ModelPreset::Linear),
        ("mlp_128x64", ModelPreset::default_mlp()),
    ];

    let mut points = Vec::new();
    for (model_name, model) in &models {
        for &cohort in &cohorts {
            let mut config = ExperimentConfig::paper_setting(
                Algorithm::FedAvg,
                DatasetPreset::Cifar10Like,
                0.5,
                1.0,
            );
            config.model = *model;
            config.num_clients = cohort;
            // Every client trains every round, so the exact number of
            // batches per round is the sum over the whole partition.
            config.participation = 1.0;
            config.rounds = rounds;
            config.dataset_scale = scale;
            config.seed = args.seed;
            // Evaluate only the final round: the harness measures the
            // training hot path, and a per-round eval would dominate it.
            config.eval_every = args.eval_every.unwrap_or(rounds).max(1);

            let mut session = SessionBuilder::from_config(&config).build();
            let start = std::time::Instant::now();
            while !session.is_finished() {
                session.run_round();
            }
            let wall = start.elapsed().as_secs_f64();
            let result = session.into_result();
            let batches_per_round: usize = result
                .partition
                .client_totals()
                .iter()
                .map(|&n| n.div_ceil(config.batch_size))
                .sum::<usize>()
                * config.local_epochs;
            let total_batches = batches_per_round * rounds;
            let point = SessionPoint {
                model: model_name,
                cohort,
                rounds,
                batches_per_round,
                wall_time_s: wall,
                rounds_per_s: rounds as f64 / wall,
                batches_per_s: total_batches as f64 / wall,
                final_accuracy: result.final_accuracy,
            };
            if !args.csv {
                eprintln!(
                    "# session model={:<10} cohort={:>2} rounds={} wall={:>6.2}s \
                     rounds/s={:>6.2} batches/s={:>7.1}",
                    point.model,
                    point.cohort,
                    point.rounds,
                    point.wall_time_s,
                    point.rounds_per_s,
                    point.batches_per_s,
                );
            }
            points.push(point);
        }
    }
    (rounds, scale, points)
}

fn main() {
    let args = BenchArgs::parse();
    let (identity_steps, steps) = microbench(&args);
    let (rounds, scale, sessions) = session_grid(&args);

    if args.csv {
        println!("kind,model,detail,rounds_per_s,batches_per_s");
        for p in &steps {
            println!(
                "step,{STEP_MODEL},{},0.000000,{}",
                p.kind,
                json_f64(p.batches_per_s)
            );
        }
        for p in &sessions {
            println!(
                "session,{},cohort={},{},{}",
                p.model,
                p.cohort,
                json_f64(p.rounds_per_s),
                json_f64(p.batches_per_s)
            );
        }
        return;
    }

    // Hand-rendered JSON: the vendored serde shim has no JSON serialiser and
    // the schema is small enough to write directly.
    let step_lines: Vec<String> = steps
        .iter()
        .map(|p| {
            format!(
                "    {{\"kind\": \"{}\", \"model\": \"{STEP_MODEL}\", \"batch\": {STEP_BATCH}, \
                 \"steps\": {}, \"wall_time_s\": {}, \"batches_per_s\": {}}}",
                p.kind,
                p.steps,
                json_f64(p.wall_time_s),
                json_f64(p.batches_per_s),
            )
        })
        .collect();
    let session_lines: Vec<String> = sessions
        .iter()
        .map(|p| {
            format!(
                "    {{\"model\": \"{}\", \"cohort\": {}, \"rounds\": {}, \
                 \"batches_per_round\": {}, \"wall_time_s\": {}, \"rounds_per_s\": {}, \
                 \"batches_per_s\": {}, \"final_accuracy\": {}}}",
                p.model,
                p.cohort,
                p.rounds,
                p.batches_per_round,
                json_f64(p.wall_time_s),
                json_f64(p.rounds_per_s),
                json_f64(p.batches_per_s),
                json_f64(p.final_accuracy),
            )
        })
        .collect();
    let mode = if args.quick {
        "quick"
    } else if args.full {
        "full"
    } else {
        "default"
    };
    let json = format!(
        "{{\n  \"schema\": \"bwfl-train-v1\",\n  \"generated_by\": \"fig16_throughput\",\n  \
         \"mode\": \"{mode}\",\n  \"seed\": {seed},\n  \"rounds_per_point\": {rounds},\n  \
         \"dataset\": \"{dataset}\",\n  \"dataset_scale\": {scale},\n  \
         \"algorithm\": \"{algorithm}\",\n  \
         \"step_identity\": {{\"steps\": {identity_steps}, \"paths_bit_identical\": true}},\n  \
         \"microbench\": [\n{steps_json}\n  ],\n  \"sessions\": [\n{sessions_json}\n  ]\n}}\n",
        seed = args.seed,
        dataset = "cifar10-like",
        scale = json_f64(scale),
        algorithm = Algorithm::FedAvg.name(),
        steps_json = step_lines.join(",\n"),
        sessions_json = session_lines.join(",\n"),
    );
    match args.flag_value("--out") {
        Some(path) => {
            std::fs::write(path, &json).unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("# wrote {path}");
        }
        None => print!("{json}"),
    }
}
