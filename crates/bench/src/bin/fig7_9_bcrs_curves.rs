//! Figs. 7–9 — test accuracy vs communication round for BCRS against the
//! baselines (FedAvg, Top-K, EF-Top-K) on CIFAR-10-like, SVHN-like and
//! CIFAR-100-like, under β ∈ {0.1, 0.5} × CR ∈ {0.1, 0.01}.
//!
//! By default only the CIFAR-10-like grid (Fig. 7) is produced; pass
//! `--all-datasets` for Figs. 8 and 9 as well.
//!
//! `cargo run --release -p fl-bench --bin fig7_9_bcrs_curves [-- --all-datasets]`

use fl_bench::{bench_config, BenchArgs};
use fl_core::{run_experiment, Algorithm};
use fl_data::DatasetPreset;

fn main() {
    let args = BenchArgs::parse();
    let datasets: Vec<DatasetPreset> = if args.has_flag("--all-datasets") || args.full {
        vec![
            DatasetPreset::Cifar10Like,
            DatasetPreset::SvhnLike,
            DatasetPreset::Cifar100Like,
        ]
    } else {
        vec![DatasetPreset::Cifar10Like]
    };
    let algorithms = [
        Algorithm::FedAvg,
        Algorithm::TopK,
        Algorithm::EfTopK,
        Algorithm::Bcrs,
    ];

    println!("dataset,beta,cr,algorithm,round,test_accuracy");
    for &dataset in &datasets {
        for &beta in &[0.1, 0.5] {
            for &cr in &[0.1, 0.01] {
                for &alg in &algorithms {
                    let config = bench_config(alg, dataset, beta, cr, &args);
                    let result = run_experiment(&config);
                    for r in &result.records {
                        println!(
                            "{},{beta},{cr},{},{},{:.4}",
                            dataset.name(),
                            alg.name(),
                            r.round,
                            r.test_accuracy
                        );
                    }
                }
            }
        }
    }
}
