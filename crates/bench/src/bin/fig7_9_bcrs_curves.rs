//! Figs. 7–9 — test accuracy vs communication round for BCRS against the
//! baselines (FedAvg, Top-K, EF-Top-K) on CIFAR-10-like, SVHN-like and
//! CIFAR-100-like, under β ∈ {0.1, 0.5} × CR ∈ {0.1, 0.01}.
//!
//! The whole grid runs through `fl_core::sweep::SweepGrid` and the parallel
//! sweep driver (shared dataset generation, worker count set by
//! `--sweep-threads`, rows printed in grid order).
//!
//! By default only the CIFAR-10-like grid (Fig. 7) is produced; pass
//! `--all-datasets` for Figs. 8 and 9 as well.
//!
//! `cargo run --release -p fl-bench --bin fig7_9_bcrs_curves [-- --all-datasets]`

use fl_bench::{bench_config, BenchArgs};
use fl_core::sweep::{run_sweep_threaded_progress, SweepGrid};
use fl_core::Algorithm;
use fl_data::DatasetPreset;

fn main() {
    let args = BenchArgs::parse();
    let datasets: Vec<DatasetPreset> = if args.has_flag("--all-datasets") || args.full {
        vec![
            DatasetPreset::Cifar10Like,
            DatasetPreset::SvhnLike,
            DatasetPreset::Cifar100Like,
        ]
    } else {
        vec![DatasetPreset::Cifar10Like]
    };
    let algorithms = [
        Algorithm::FedAvg,
        Algorithm::TopK,
        Algorithm::EfTopK,
        Algorithm::Bcrs,
    ];

    // Grid nesting (dataset → β → CR → algorithm) matches the loop order the
    // figures are read in, so the sweep's results print in figure order.
    let grid = SweepGrid::new(bench_config(algorithms[0], datasets[0], 0.1, 0.1, &args))
        .datasets(datasets)
        .betas([0.1, 0.5])
        .compression_ratios([0.1, 0.01])
        .algorithms(algorithms);
    let results = run_sweep_threaded_progress(&grid.configs(), args.sweep_threads, args.progress);

    println!("dataset,beta,cr,algorithm,round,test_accuracy");
    for result in &results {
        for r in &result.records {
            println!(
                "{},{},{},{},{},{:.4}",
                result.config.dataset.name(),
                result.config.beta,
                result.config.compression_ratio,
                result.config.algorithm.name(),
                r.round,
                r.test_accuracy
            );
        }
    }
}
