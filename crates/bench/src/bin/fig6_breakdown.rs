//! Fig. 6 — time breakdown of one FL round: compression/decompression,
//! local training, uncompressed communication, and BCRS-scheduled
//! communication, for CR = 0.01 and CR = 0.1. With `--downlink SPEC` the
//! broadcast leg is simulated too: `bcrs_comm_s` (and the uncompressed
//! reference) then cover the full bidirectional round, and `downlink_comm_s`
//! reports the broadcast's *of-which* share — it is already included in the
//! other two communication columns, so do not add it to them (0 when the
//! downlink is not simulated).
//!
//! Both CR cells run through the parallel sweep driver (`SweepGrid` over the
//! compression-ratio axis, shared dataset generation, worker count set by
//! `--sweep-threads`). Communication times are simulated and deterministic;
//! the compression and training bars are measured on this machine's CPU, so
//! they vary slightly with sweep parallelism.
//!
//! `cargo run --release -p fl-bench --bin fig6_breakdown`

use fl_bench::{bench_config, BenchArgs};
use fl_core::sweep::{run_sweep_threaded_progress, SweepGrid};
use fl_core::Algorithm;
use fl_data::DatasetPreset;

fn main() {
    let args = BenchArgs::parse();
    let mut base = bench_config(
        Algorithm::Bcrs,
        DatasetPreset::Cifar10Like,
        0.1,
        0.01,
        &args,
    );
    base.rounds = args.effective_rounds(10);
    let grid = SweepGrid::new(base).compression_ratios([0.01, 0.1]);
    let results = run_sweep_threaded_progress(&grid.configs(), args.sweep_threads, args.progress);

    println!("cr,compress_s,training_s,uncompressed_comm_s,bcrs_comm_s,downlink_comm_s");
    for result in &results {
        let cr = result.config.compression_ratio;
        let b = result.breakdown;
        println!(
            "{cr},{:.4},{:.4},{:.4},{:.4},{:.4}",
            b.compress_s,
            b.training_s,
            b.uncompressed_comm_s,
            b.scheduled_comm_s,
            b.downlink_comm_s
        );
        if !args.csv {
            eprintln!(
                "# CR={cr}: BCRS reduces communication from {:.1}s to {:.1}s per round \
                 ({:.0}x); training is measured on this machine's CPU, communication is simulated.",
                b.uncompressed_comm_s,
                b.scheduled_comm_s,
                b.uncompressed_comm_s / b.scheduled_comm_s.max(1e-9)
            );
        }
    }
}
