//! Fig. 6 — time breakdown of one FL round: compression/decompression,
//! local training, uncompressed communication, and BCRS-scheduled
//! communication, for CR = 0.01 and CR = 0.1.
//!
//! `cargo run --release -p fl-bench --bin fig6_breakdown`

use fl_bench::{bench_config, BenchArgs};
use fl_core::{run_experiment, Algorithm};
use fl_data::DatasetPreset;

fn main() {
    let args = BenchArgs::parse();
    println!("cr,compress_s,training_s,uncompressed_comm_s,bcrs_comm_s");
    for &cr in &[0.01, 0.1] {
        let mut config = bench_config(Algorithm::Bcrs, DatasetPreset::Cifar10Like, 0.1, cr, &args);
        config.rounds = args.effective_rounds(10);
        let result = run_experiment(&config);
        let b = result.breakdown;
        println!(
            "{cr},{:.4},{:.4},{:.4},{:.4}",
            b.compress_s, b.training_s, b.uncompressed_comm_s, b.scheduled_comm_s
        );
        if !args.csv {
            eprintln!(
                "# CR={cr}: BCRS reduces communication from {:.1}s to {:.1}s per round \
                 ({:.0}x); training is measured on this machine's CPU, communication is simulated.",
                b.uncompressed_comm_s,
                b.scheduled_comm_s,
                b.uncompressed_comm_s / b.scheduled_comm_s.max(1e-9)
            );
        }
    }
}
