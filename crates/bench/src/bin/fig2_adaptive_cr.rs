//! Fig. 2 — adaptive compression ratios as a function of client bandwidth:
//! higher-bandwidth clients retain more information while nobody exceeds the
//! uniform-compression round time.
//!
//! `--measured` additionally runs short BCRS experiments at both base ratios
//! through the parallel sweep driver (`fl_core::sweep`) and reports the mean
//! compression ratio the scheduler actually achieved in every round (the
//! static schedule table stays instant without it).
//!
//! `--ablation` additionally compares the paper's benchmark choice (slowest
//! client's compressed time) against a mean-time benchmark, the design-choice
//! ablation called out in DESIGN.md §5.
//!
//! `cargo run --release -p fl-bench --bin fig2_adaptive_cr [-- --ablation --measured]`

use fl_bench::{bench_config, BenchArgs};
use fl_core::sweep::run_sweep_threaded_progress;
use fl_core::{Algorithm, BcrsScheduler};
use fl_data::DatasetPreset;
use fl_netsim::{CommModel, LinkGenerator};

fn main() {
    let args = BenchArgs::parse();
    let model_bytes = 101_672.0;
    let comm = CommModel::paper_default();
    let links = LinkGenerator::paper_default().generate(10, args.seed);
    let mut sorted = links.clone();
    sorted.sort_by(|a, b| b.bandwidth_bps.partial_cmp(&a.bandwidth_bps).unwrap());

    println!(
        "base_ratio,client,bandwidth_mbps,latency_ms,scheduled_ratio,scheduled_time_s,t_bench_s"
    );
    for &base_ratio in &[0.01, 0.1] {
        let schedule = BcrsScheduler::new(comm).schedule(&sorted, model_bytes, base_ratio);
        for (i, link) in sorted.iter().enumerate() {
            println!(
                "{base_ratio},{i},{:.3},{:.1},{:.4},{:.3},{:.3}",
                link.bandwidth_mbps(),
                link.latency_ms(),
                schedule.ratios[i],
                schedule.scheduled_times[i],
                schedule.t_bench
            );
        }
    }

    // Measured counterpart (opt-in): actual BCRS experiments at both base
    // ratios, run concurrently by the sweep driver. The per-round mean CR
    // shows the scheduler adapting to whichever cohort was selected.
    if args.has_flag("--measured") {
        let configs: Vec<_> = [0.01, 0.1]
            .iter()
            .map(|&base_ratio| {
                let mut c = bench_config(
                    Algorithm::Bcrs,
                    DatasetPreset::Cifar10Like,
                    0.1,
                    base_ratio,
                    &args,
                );
                c.rounds = args.effective_rounds(8);
                c
            })
            .collect();
        let results = run_sweep_threaded_progress(&configs, args.sweep_threads, args.progress);
        if !args.csv {
            eprintln!("# measured per-round mean CR from BCRS experiments (sweep driver)");
        }
        println!();
        println!("base_ratio,round,measured_mean_cr");
        for result in &results {
            for record in &result.records {
                println!(
                    "{},{},{:.4}",
                    result.config.compression_ratio, record.round, record.mean_compression_ratio
                );
            }
        }
    }

    if args.has_flag("--ablation") {
        println!();
        println!("# ablation: benchmark = slowest compressed client (paper) vs mean client time");
        println!("benchmark,base_ratio,mean_ratio,makespan_s,straggler_uniform_s");
        for &base_ratio in &[0.01, 0.1] {
            let paper = BcrsScheduler::new(comm).schedule(&sorted, model_bytes, base_ratio);
            let uniform_straggler = paper.uniform_times.iter().cloned().fold(0.0f64, f64::max);
            println!(
                "slowest,{base_ratio},{:.4},{:.3},{:.3}",
                paper.mean_ratio(),
                paper.makespan(),
                uniform_straggler
            );
            // Mean-time benchmark: schedule against the mean uniform time.
            let mean_budget =
                paper.uniform_times.iter().sum::<f64>() / paper.uniform_times.len() as f64;
            let ratios: Vec<f64> = sorted
                .iter()
                .map(|l| {
                    comm.ratio_for_budget(l, model_bytes, mean_budget)
                        .clamp(0.0, 1.0)
                })
                .collect();
            let times: Vec<f64> = sorted
                .iter()
                .zip(ratios.iter())
                .map(|(l, &r)| comm.sparse_uplink_time(l, model_bytes, r.max(1e-6)))
                .collect();
            let mean_ratio = ratios.iter().sum::<f64>() / ratios.len() as f64;
            println!(
                "mean,{base_ratio},{:.4},{:.3},{:.3}",
                mean_ratio,
                times.iter().cloned().fold(0.0f64, f64::max),
                uniform_straggler
            );
        }
        println!("# the mean benchmark ships less data and starves slow clients (ratio -> 0),");
        println!("# which is why the paper anchors on the slowest client's compressed time.");
    }
}
