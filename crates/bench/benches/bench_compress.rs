//! Micro-benchmarks of the compression substrate: Top-K, Rand-K, Threshold,
//! QSGD and error feedback at the update sizes and compression ratios the
//! experiments use.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fl_compress::{Compressor, ErrorFeedback, Qsgd, RandK, SparseUpdate, Threshold, TopK};
use fl_tensor::rng::{Rng, Xoshiro256};
use std::hint::black_box;

fn dense_update(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256::new(seed);
    (0..n).map(|_| rng.next_f32() - 0.5).collect()
}

fn bench_sparsifiers(c: &mut Criterion) {
    let mut group = c.benchmark_group("sparsify");
    for &n in &[25_418usize, 100_000] {
        let dense = dense_update(n, 1);
        for &ratio in &[0.01, 0.1] {
            group.bench_with_input(
                BenchmarkId::new(format!("topk_n{n}"), ratio),
                &ratio,
                |b, &r| b.iter(|| black_box(TopK::new().compress(black_box(&dense), r))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("randk_n{n}"), ratio),
                &ratio,
                |b, &r| b.iter(|| black_box(RandK::new(7).compress(black_box(&dense), r))),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("threshold_n{n}"), ratio),
                &ratio,
                |b, &r| b.iter(|| black_box(Threshold::new().compress(black_box(&dense), r))),
            );
        }
    }
    group.finish();
}

fn bench_quantizer_and_ef(c: &mut Criterion) {
    let mut group = c.benchmark_group("quantize_and_ef");
    let dense = dense_update(25_418, 2);
    group.bench_function("qsgd_16_levels", |b| {
        b.iter(|| black_box(Qsgd::new(15, 3).compress(black_box(&dense), 1.0)))
    });
    group.bench_function("ef_topk_round", |b| {
        let mut ef = ErrorFeedback::new(TopK::new(), dense.len());
        b.iter(|| black_box(ef.compress_with_feedback(black_box(&dense), 0.1)))
    });
    group.finish();
}

fn bench_wire_format(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_format");
    let dense = dense_update(100_000, 3);
    let sparse = TopK::new()
        .compress(&dense, 0.1)
        .as_sparse()
        .unwrap()
        .clone();
    group.bench_function("serialize_10k_coords", |b| {
        b.iter(|| black_box(sparse.to_wire()))
    });
    let wire = sparse.to_wire();
    group.bench_function("deserialize_10k_coords", |b| {
        b.iter(|| black_box(SparseUpdate::from_wire(wire.clone()).unwrap()))
    });
    group.finish();
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_sparsifiers, bench_quantizer_and_ef, bench_wire_format
}
criterion_main!(benches);
