//! Micro-benchmarks of server-side aggregation: plain weighted sparse
//! aggregation, OPWA-masked aggregation, and the overlap analysis that feeds
//! the mask.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fl_compress::{Compressor, SparseUpdate, TopK};
use fl_core::aggregate::aggregate_sparse;
use fl_core::{OpwaMask, OverlapCounts};
use fl_tensor::rng::{Rng, Xoshiro256};
use std::hint::black_box;

fn cohort(n_params: usize, cohort: usize, ratio: f64) -> Vec<SparseUpdate> {
    let mut rng = Xoshiro256::new(11);
    (0..cohort)
        .map(|_| {
            let dense: Vec<f32> = (0..n_params).map(|_| rng.next_f32() - 0.5).collect();
            TopK::new()
                .compress(&dense, ratio)
                .as_sparse()
                .unwrap()
                .clone()
        })
        .collect()
}

fn bench_overlap_and_mask(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlap");
    for &ratio in &[0.01, 0.1] {
        let updates = cohort(25_418, 5, ratio);
        let refs: Vec<&SparseUpdate> = updates.iter().collect();
        group.bench_with_input(BenchmarkId::new("count", ratio), &ratio, |b, _| {
            b.iter(|| black_box(OverlapCounts::from_updates(black_box(&refs))))
        });
        let counts = OverlapCounts::from_updates(&refs);
        group.bench_with_input(BenchmarkId::new("mask", ratio), &ratio, |b, _| {
            b.iter(|| black_box(OpwaMask::from_overlap(black_box(&counts), 5.0, 1)))
        });
    }
    group.finish();
}

fn bench_aggregation(c: &mut Criterion) {
    let mut group = c.benchmark_group("aggregate");
    for &(cohort_size, ratio) in &[(5usize, 0.1f64), (10, 0.1), (5, 0.01)] {
        let updates = cohort(25_418, cohort_size, ratio);
        let refs: Vec<&SparseUpdate> = updates.iter().collect();
        let coeffs = vec![1.0 / cohort_size as f64; cohort_size];
        let counts = OverlapCounts::from_updates(&refs);
        let mask = OpwaMask::from_overlap(&counts, 5.0, 1);
        group.bench_function(format!("plain_c{cohort_size}_r{ratio}"), |b| {
            b.iter(|| black_box(aggregate_sparse(black_box(&refs), &coeffs, None)))
        });
        group.bench_function(format!("opwa_c{cohort_size}_r{ratio}"), |b| {
            b.iter(|| black_box(aggregate_sparse(black_box(&refs), &coeffs, Some(&mask))))
        });
    }
    group.finish();
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_overlap_and_mask, bench_aggregation
}
criterion_main!(benches);
