//! Micro-benchmarks of the BCRS scheduler and the communication model: the
//! per-round cost of computing the schedule is negligible next to training
//! and transmission, which is part of the paper's practicality argument.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fl_core::BcrsScheduler;
use fl_netsim::{CommModel, LinkGenerator};
use std::hint::black_box;

fn bench_schedule(c: &mut Criterion) {
    let mut group = c.benchmark_group("bcrs_schedule");
    let comm = CommModel::paper_default();
    let scheduler = BcrsScheduler::new(comm);
    for &n in &[5usize, 10, 50, 200] {
        let links = LinkGenerator::paper_default().generate(n, 3);
        group.bench_with_input(BenchmarkId::new("cohort", n), &n, |b, _| {
            b.iter(|| black_box(scheduler.schedule(black_box(&links), 101_672.0, 0.01)))
        });
    }
    group.finish();
}

fn bench_coefficients(c: &mut Criterion) {
    let comm = CommModel::paper_default();
    let scheduler = BcrsScheduler::new(comm);
    let links = LinkGenerator::paper_default().generate(50, 5);
    let schedule = scheduler.schedule(&links, 101_672.0, 0.01);
    let fractions = vec![1.0 / 50.0; 50];
    c.bench_function("bcrs_adjusted_coefficients_50", |b| {
        b.iter(|| black_box(schedule.adjusted_coefficients(black_box(&fractions), 0.3)))
    });
}

fn bench_link_generation(c: &mut Criterion) {
    let gen = LinkGenerator::paper_default();
    c.bench_function("link_generation_1000", |b| {
        b.iter(|| black_box(gen.generate(1000, 9)))
    });
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_schedule, bench_coefficients, bench_link_generation
}
criterion_main!(benches);
