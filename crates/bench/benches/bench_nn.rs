//! Micro-benchmarks of the training substrate: one local SGD step of the
//! default experiment model, parameter flattening, and evaluation — the
//! components that dominate the simulator's wall-clock time.

use criterion::{criterion_group, criterion_main, Criterion};
use fl_data::{BatchLoader, DatasetPreset};
use fl_nn::{flatten_params, mlp, unflatten_params, Sgd, SoftmaxCrossEntropy};
use fl_tensor::rng::Xoshiro256;
use std::hint::black_box;

fn bench_training_step(c: &mut Criterion) {
    let spec = DatasetPreset::Cifar10Like.spec(0.1);
    let (train, _) = spec.generate(1);
    let mut rng = Xoshiro256::new(1);
    let mut model = mlp(
        train.feature_dim(),
        &[128, 64],
        train.num_classes(),
        &mut rng,
    );
    let loader = BatchLoader::new(64, false);
    let batches = loader.epoch_batches(&train, &mut rng);
    let (x, y) = &batches[0];
    let mut loss = SoftmaxCrossEntropy::new();
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);

    c.bench_function("sgd_step_batch64_mlp25k", |b| {
        b.iter(|| {
            model.zero_grad();
            let logits = model.forward(black_box(x));
            loss.forward(&logits, y);
            let g = loss.backward();
            model.backward(&g);
            opt.step(&mut model);
        })
    });
}

fn bench_param_flattening(c: &mut Criterion) {
    let mut rng = Xoshiro256::new(2);
    let mut model = mlp(128, &[128, 64], 10, &mut rng);
    let flat = flatten_params(&model);
    c.bench_function("flatten_params_25k", |b| {
        b.iter(|| black_box(flatten_params(black_box(&model))))
    });
    c.bench_function("unflatten_params_25k", |b| {
        b.iter(|| unflatten_params(&mut model, black_box(&flat)))
    });
}

fn bench_evaluation(c: &mut Criterion) {
    let spec = DatasetPreset::Cifar10Like.spec(0.1);
    let (_, test) = spec.generate(3);
    let mut rng = Xoshiro256::new(3);
    let mut model = mlp(test.feature_dim(), &[128, 64], test.num_classes(), &mut rng);
    c.bench_function("evaluate_test_split", |b| {
        b.iter(|| black_box(fl_core::eval::evaluate(&mut model, black_box(&test), 64)))
    });
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_training_step, bench_param_flattening, bench_evaluation
}
criterion_main!(benches);
