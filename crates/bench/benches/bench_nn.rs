//! Micro-benchmarks of the training substrate: one local SGD step of the
//! default experiment model, parameter flattening, and evaluation — the
//! components that dominate the simulator's wall-clock time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fl_data::{BatchLoader, DatasetPreset};
use fl_nn::{flatten_params, mlp, unflatten_params, Sgd, SoftmaxCrossEntropy};
use fl_tensor::rng::Xoshiro256;
use std::hint::black_box;

fn bench_training_step(c: &mut Criterion) {
    let spec = DatasetPreset::Cifar10Like.spec(0.1);
    let (train, _) = spec.generate(1);
    let mut rng = Xoshiro256::new(1);
    let mut model = mlp(
        train.feature_dim(),
        &[128, 64],
        train.num_classes(),
        &mut rng,
    );
    let loader = BatchLoader::new(64, false);
    let batches = loader.epoch_batches(&train, &mut rng);
    let (x, y) = &batches[0];
    let mut loss = SoftmaxCrossEntropy::new();
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);

    c.bench_function("sgd_step_batch64_mlp25k", |b| {
        b.iter(|| {
            model.zero_grad();
            let logits = model.forward(black_box(x));
            loss.forward(&logits, y);
            let g = loss.backward();
            model.backward(&g);
            opt.step(&mut model);
        })
    });
}

fn bench_param_flattening(c: &mut Criterion) {
    let mut rng = Xoshiro256::new(2);
    let mut model = mlp(128, &[128, 64], 10, &mut rng);
    let flat = flatten_params(&model);
    c.bench_function("flatten_params_25k", |b| {
        b.iter(|| black_box(flatten_params(black_box(&model))))
    });
    c.bench_function("unflatten_params_25k", |b| {
        b.iter(|| unflatten_params(&mut model, black_box(&flat)))
    });
}

/// Matmul shape grid over the three kernels the training loop calls:
/// `matmul` (forward), `matmul_at_b` (dW), `matmul_a_bt` (dX / conv). The
/// square shapes are the committed `BENCH_matmul.json` reference points; the
/// rectangular one is the forward pass of the default experiment MLP.
fn bench_matmul(c: &mut Criterion) {
    use fl_tensor::matmul::{matmul, matmul_a_bt, matmul_at_b};
    use fl_tensor::{Shape, Tensor};
    let mut rng = Xoshiro256::new(7);
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);
    for &(m, k, n) in &[
        (64usize, 3072usize, 128usize),
        (256, 256, 256),
        (512, 512, 512),
    ] {
        let a = Tensor::rand_uniform(Shape::matrix(m, k), -1.0, 1.0, &mut rng);
        let b_mk = Tensor::rand_uniform(Shape::matrix(k, n), -1.0, 1.0, &mut rng);
        group.bench_function(BenchmarkId::new("matmul", format!("{m}x{k}x{n}")), |be| {
            be.iter(|| black_box(matmul(black_box(&a), black_box(&b_mk))))
        });
        // A^T B: A is [k, m] so the product is again [m, .] x [., n].
        let a_t = Tensor::rand_uniform(Shape::matrix(k, m), -1.0, 1.0, &mut rng);
        group.bench_function(
            BenchmarkId::new("matmul_at_b", format!("{m}x{k}x{n}")),
            |be| be.iter(|| black_box(matmul_at_b(black_box(&a_t), black_box(&b_mk)))),
        );
        // A B^T: B is [n, k] so the product is [m, n].
        let b_nk = Tensor::rand_uniform(Shape::matrix(n, k), -1.0, 1.0, &mut rng);
        group.bench_function(
            BenchmarkId::new("matmul_a_bt", format!("{m}x{k}x{n}")),
            |be| be.iter(|| black_box(matmul_a_bt(black_box(&a), black_box(&b_nk)))),
        );
    }
    group.finish();
}

fn bench_evaluation(c: &mut Criterion) {
    let spec = DatasetPreset::Cifar10Like.spec(0.1);
    let (_, test) = spec.generate(3);
    let mut rng = Xoshiro256::new(3);
    let model = mlp(test.feature_dim(), &[128, 64], test.num_classes(), &mut rng);
    c.bench_function("evaluate_test_split", |b| {
        b.iter(|| black_box(fl_core::eval::evaluate(&model, black_box(&test), 64)))
    });
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_training_step, bench_param_flattening, bench_matmul, bench_evaluation
}
criterion_main!(benches);
