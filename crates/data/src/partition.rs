//! Dirichlet label-skew partitioning of a dataset across federated clients.
//!
//! This reproduces the distribution-based label-skew protocol the paper uses
//! (Section 5.1, Fig. 5): for every class `k`, a proportion vector
//! `p_k ~ Dir(beta)` over the `N` clients is drawn and the class's samples are
//! split accordingly. Lower `beta` produces more severe heterogeneity.

use crate::dataset::Dataset;
use fl_tensor::dist::Dirichlet;
use fl_tensor::rng::{Rng, Xoshiro256};
use serde::{Deserialize, Serialize};

/// One client's shard of the training data.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ClientPartition {
    /// Client index in `[0, N)`.
    pub client_id: usize,
    /// Indices into the source dataset owned by this client.
    pub indices: Vec<usize>,
}

impl ClientPartition {
    /// Number of samples on this client.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True if this client received no samples.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Materialise this client's local dataset.
    pub fn dataset(&self, source: &Dataset) -> Dataset {
        source.subset(&self.indices)
    }
}

/// Summary statistics of a partition (the client × class matrix of Fig. 5).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PartitionStats {
    /// `counts[client][class]` = number of samples of `class` on `client`.
    pub counts: Vec<Vec<usize>>,
}

impl PartitionStats {
    /// Compute the matrix from a partition and its source dataset.
    pub fn from_partition(parts: &[ClientPartition], source: &Dataset) -> Self {
        let mut counts = vec![vec![0usize; source.num_classes()]; parts.len()];
        for p in parts {
            for &i in &p.indices {
                counts[p.client_id][source.labels()[i]] += 1;
            }
        }
        Self { counts }
    }

    /// Total samples per client.
    pub fn client_totals(&self) -> Vec<usize> {
        self.counts.iter().map(|row| row.iter().sum()).collect()
    }

    /// A scalar heterogeneity measure: the mean, over clients, of the maximum
    /// class share on that client (1.0 = every client holds a single class,
    /// 1/num_classes = perfectly uniform).
    pub fn label_skew(&self) -> f64 {
        let mut acc = 0.0;
        let mut counted = 0usize;
        for row in &self.counts {
            let total: usize = row.iter().sum();
            if total == 0 {
                continue;
            }
            let max = *row.iter().max().unwrap();
            acc += max as f64 / total as f64;
            counted += 1;
        }
        if counted == 0 {
            0.0
        } else {
            acc / counted as f64
        }
    }

    /// Render the matrix as CSV rows (`client_id, count_class0, count_class1, …`).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for (client, row) in self.counts.iter().enumerate() {
            out.push_str(&client.to_string());
            for c in row {
                out.push(',');
                out.push_str(&c.to_string());
            }
            out.push('\n');
        }
        out
    }
}

/// Split `dataset` across `num_clients` clients with Dirichlet label skew
/// `beta`. Every client is guaranteed at least `min_samples` samples
/// (re-sampling the allocation if needed, as is standard in non-IID FL
/// benchmarks), so no client ends up untrainable.
pub fn dirichlet_partition(
    dataset: &Dataset,
    num_clients: usize,
    beta: f64,
    min_samples: usize,
    seed: u64,
) -> Vec<ClientPartition> {
    assert!(num_clients >= 1, "need at least one client");
    assert!(beta > 0.0, "beta must be positive");
    assert!(
        dataset.len() >= num_clients * min_samples,
        "dataset too small to guarantee {min_samples} samples per client"
    );
    let mut rng = Xoshiro256::new(seed);
    let dirichlet = Dirichlet::new(beta, num_clients);

    // Group sample indices by class.
    let mut by_class: Vec<Vec<usize>> = vec![Vec::new(); dataset.num_classes()];
    for (i, &y) in dataset.labels().iter().enumerate() {
        by_class[y].push(i);
    }

    const MAX_TRIES: usize = 100;
    for attempt in 0..MAX_TRIES {
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); num_clients];
        for class_indices in by_class.iter() {
            if class_indices.is_empty() {
                continue;
            }
            let mut shuffled = class_indices.clone();
            rng.shuffle(&mut shuffled);
            let props = dirichlet.sample(&mut rng);
            // Convert proportions into split points over this class's samples.
            let n = shuffled.len();
            let mut cum = 0.0f64;
            let mut start = 0usize;
            for (client, &p) in props.iter().enumerate() {
                cum += p;
                let end = if client + 1 == num_clients {
                    n
                } else {
                    ((cum * n as f64).round() as usize).min(n)
                };
                if end > start {
                    assignment[client].extend_from_slice(&shuffled[start..end]);
                }
                start = end;
            }
        }
        let smallest = assignment.iter().map(Vec::len).min().unwrap_or(0);
        if smallest >= min_samples || attempt + 1 == MAX_TRIES {
            if smallest < min_samples {
                // Last resort: steal samples from the largest clients so every
                // client can run at least one mini-batch.
                rebalance_minimum(&mut assignment, min_samples);
            }
            return assignment
                .into_iter()
                .enumerate()
                .map(|(client_id, indices)| ClientPartition { client_id, indices })
                .collect();
        }
    }
    unreachable!("partition loop always returns within MAX_TRIES");
}

fn rebalance_minimum(assignment: &mut [Vec<usize>], min_samples: usize) {
    loop {
        let (small_idx, small_len) = assignment
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v.len()))
            .min_by_key(|&(_, l)| l)
            .unwrap();
        if small_len >= min_samples {
            break;
        }
        let (big_idx, big_len) = assignment
            .iter()
            .enumerate()
            .map(|(i, v)| (i, v.len()))
            .max_by_key(|&(_, l)| l)
            .unwrap();
        if big_len <= min_samples {
            break; // nothing left to steal without violating the donor
        }
        let moved = assignment[big_idx].pop().unwrap();
        assignment[small_idx].push(moved);
    }
}

/// IID (uniform random) partition, used as a control in tests and ablations.
pub fn iid_partition(dataset: &Dataset, num_clients: usize, seed: u64) -> Vec<ClientPartition> {
    assert!(num_clients >= 1, "need at least one client");
    let mut rng = Xoshiro256::new(seed);
    let mut indices: Vec<usize> = (0..dataset.len()).collect();
    rng.shuffle(&mut indices);
    let mut parts: Vec<ClientPartition> = (0..num_clients)
        .map(|client_id| ClientPartition {
            client_id,
            indices: Vec::new(),
        })
        .collect();
    for (i, idx) in indices.into_iter().enumerate() {
        parts[i % num_clients].indices.push(idx);
    }
    parts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::DatasetPreset;

    fn toy_dataset() -> Dataset {
        let spec = DatasetPreset::Cifar10Like.spec(0.2);
        spec.generate(3).0
    }

    #[test]
    fn partition_covers_every_sample_exactly_once() {
        let ds = toy_dataset();
        let parts = dirichlet_partition(&ds, 10, 0.5, 2, 1);
        let mut all: Vec<usize> = parts.iter().flat_map(|p| p.indices.clone()).collect();
        all.sort_unstable();
        assert_eq!(all, (0..ds.len()).collect::<Vec<_>>());
    }

    #[test]
    fn every_client_has_minimum_samples() {
        let ds = toy_dataset();
        for &beta in &[0.1, 0.5] {
            let parts = dirichlet_partition(&ds, 10, beta, 10, 2);
            assert!(parts.iter().all(|p| p.len() >= 10));
        }
    }

    #[test]
    fn lower_beta_is_more_skewed() {
        let ds = toy_dataset();
        let severe = dirichlet_partition(&ds, 10, 0.1, 2, 5);
        let moderate = dirichlet_partition(&ds, 10, 5.0, 2, 5);
        let skew_severe = PartitionStats::from_partition(&severe, &ds).label_skew();
        let skew_moderate = PartitionStats::from_partition(&moderate, &ds).label_skew();
        assert!(
            skew_severe > skew_moderate,
            "beta=0.1 skew {skew_severe} should exceed beta=5 skew {skew_moderate}"
        );
    }

    #[test]
    fn partition_is_deterministic() {
        let ds = toy_dataset();
        let a = dirichlet_partition(&ds, 8, 0.5, 2, 9);
        let b = dirichlet_partition(&ds, 8, 0.5, 2, 9);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.indices, y.indices);
        }
    }

    #[test]
    fn stats_matrix_dimensions_and_totals() {
        let ds = toy_dataset();
        let parts = dirichlet_partition(&ds, 10, 0.5, 2, 11);
        let stats = PartitionStats::from_partition(&parts, &ds);
        assert_eq!(stats.counts.len(), 10);
        assert_eq!(stats.counts[0].len(), ds.num_classes());
        assert_eq!(stats.client_totals().iter().sum::<usize>(), ds.len());
        let csv = stats.to_csv();
        assert_eq!(csv.lines().count(), 10);
    }

    #[test]
    fn iid_partition_is_balanced() {
        let ds = toy_dataset();
        let parts = iid_partition(&ds, 10, 4);
        let sizes: Vec<usize> = parts.iter().map(|p| p.len()).collect();
        let min = *sizes.iter().min().unwrap();
        let max = *sizes.iter().max().unwrap();
        assert!(max - min <= 1);
        let skew = PartitionStats::from_partition(&parts, &ds).label_skew();
        assert!(
            skew < 0.25,
            "IID skew should be near 1/num_classes, got {skew}"
        );
    }

    #[test]
    fn client_dataset_materialisation() {
        let ds = toy_dataset();
        let parts = dirichlet_partition(&ds, 5, 0.5, 2, 12);
        let local = parts[0].dataset(&ds);
        assert_eq!(local.len(), parts[0].len());
        assert_eq!(local.feature_dim(), ds.feature_dim());
    }

    #[test]
    #[should_panic]
    fn too_small_dataset_rejected() {
        let ds = Dataset::new(vec![0.0; 8], vec![0, 0, 1, 1], 2, 2);
        dirichlet_partition(&ds, 10, 0.5, 5, 1);
    }
}
