//! In-memory classification dataset.

use fl_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// A classification dataset: a dense `[n, feature_dim]` feature matrix plus
/// integer class labels.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dataset {
    features: Vec<f32>,
    labels: Vec<usize>,
    feature_dim: usize,
    num_classes: usize,
}

impl Dataset {
    /// Build a dataset; `features.len()` must equal `labels.len() * feature_dim`
    /// and every label must be `< num_classes`.
    pub fn new(
        features: Vec<f32>,
        labels: Vec<usize>,
        feature_dim: usize,
        num_classes: usize,
    ) -> Self {
        assert!(feature_dim > 0, "feature_dim must be positive");
        assert_eq!(
            features.len(),
            labels.len() * feature_dim,
            "feature buffer size does not match label count"
        );
        assert!(
            labels.iter().all(|&y| y < num_classes),
            "label out of range for {num_classes} classes"
        );
        Self {
            features,
            labels,
            feature_dim,
            num_classes,
        }
    }

    /// Empty dataset with the given dimensions.
    pub fn empty(feature_dim: usize, num_classes: usize) -> Self {
        Self::new(Vec::new(), Vec::new(), feature_dim, num_classes)
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if the dataset holds no samples.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Feature dimensionality of every sample.
    pub fn feature_dim(&self) -> usize {
        self.feature_dim
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Labels of every sample.
    pub fn labels(&self) -> &[usize] {
        &self.labels
    }

    /// Feature vector of sample `i`.
    pub fn sample(&self, i: usize) -> &[f32] {
        &self.features[i * self.feature_dim..(i + 1) * self.feature_dim]
    }

    /// Append one sample.
    pub fn push(&mut self, features: &[f32], label: usize) {
        assert_eq!(features.len(), self.feature_dim, "wrong feature length");
        assert!(label < self.num_classes, "label out of range");
        self.features.extend_from_slice(features);
        self.labels.push(label);
    }

    /// Build a `[k, feature_dim]` batch tensor plus label vector for the given
    /// sample indices.
    pub fn gather_batch(&self, indices: &[usize]) -> (Tensor, Vec<usize>) {
        let mut x = Tensor::empty();
        let mut y = Vec::new();
        self.gather_batch_into(indices, &mut x, &mut y);
        (x, y)
    }

    /// Gather the given sample indices into reusable buffers: `x` becomes the
    /// `[k, feature_dim]` batch tensor and `y` the label vector. Steady-state
    /// calls with a same-sized batch perform no heap allocation.
    pub fn gather_batch_into(&self, indices: &[usize], x: &mut Tensor, y: &mut Vec<usize>) {
        x.resize_to(&[indices.len(), self.feature_dim]);
        let xd = x.data_mut();
        y.clear();
        y.reserve(indices.len());
        for (row, &i) in indices.iter().enumerate() {
            xd[row * self.feature_dim..(row + 1) * self.feature_dim]
                .copy_from_slice(self.sample(i));
            y.push(self.labels[i]);
        }
    }

    /// Batch over the contiguous index range `start..end` — a single
    /// `memcpy` of the feature rows instead of a per-sample gather. Used by
    /// evaluation and other sequential scans.
    pub fn gather_range(&self, start: usize, end: usize) -> (Tensor, Vec<usize>) {
        let mut x = Tensor::empty();
        let mut y = Vec::new();
        self.gather_range_into(start, end, &mut x, &mut y);
        (x, y)
    }

    /// [`gather_range`](Self::gather_range) into reusable buffers.
    pub fn gather_range_into(&self, start: usize, end: usize, x: &mut Tensor, y: &mut Vec<usize>) {
        assert!(
            start <= end && end <= self.len(),
            "range {start}..{end} out of bounds for {} samples",
            self.len()
        );
        x.resize_to(&[end - start, self.feature_dim]);
        x.data_mut()
            .copy_from_slice(&self.features[start * self.feature_dim..end * self.feature_dim]);
        y.clear();
        y.extend_from_slice(&self.labels[start..end]);
    }

    /// The whole dataset as one batch.
    pub fn full_batch(&self) -> (Tensor, Vec<usize>) {
        self.gather_range(0, self.len())
    }

    /// Dataset restricted to the given sample indices (copies the data).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut out = Dataset::empty(self.feature_dim, self.num_classes);
        for &i in indices {
            out.push(self.sample(i), self.labels[i]);
        }
        out
    }

    /// Per-class sample counts.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_classes];
        for &y in &self.labels {
            counts[y] += 1;
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Dataset {
        Dataset::new(vec![0.0, 0.1, 1.0, 1.1, 2.0, 2.1], vec![0, 1, 1], 2, 3)
    }

    #[test]
    fn basic_accessors() {
        let d = toy();
        assert_eq!(d.len(), 3);
        assert_eq!(d.feature_dim(), 2);
        assert_eq!(d.num_classes(), 3);
        assert_eq!(d.sample(1), &[1.0, 1.1]);
        assert_eq!(d.labels(), &[0, 1, 1]);
    }

    #[test]
    fn class_counts_counted() {
        assert_eq!(toy().class_counts(), vec![1, 2, 0]);
    }

    #[test]
    fn gather_batch_shapes() {
        let d = toy();
        let (x, y) = d.gather_batch(&[2, 0]);
        assert_eq!(x.shape().dims(), &[2, 2]);
        assert_eq!(x.data(), &[2.0, 2.1, 0.0, 0.1]);
        assert_eq!(y, vec![1, 0]);
    }

    #[test]
    fn gather_range_matches_indexed_gather() {
        let d = toy();
        for (start, end) in [(0, 3), (1, 3), (0, 0), (2, 2), (1, 2)] {
            let indices: Vec<usize> = (start..end).collect();
            let (xi, yi) = d.gather_batch(&indices);
            let (xr, yr) = d.gather_range(start, end);
            assert_eq!(xr.shape().dims(), xi.shape().dims());
            assert_eq!(xr.data(), xi.data());
            assert_eq!(yr, yi);
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn gather_range_rejects_overrun() {
        toy().gather_range(1, 4);
    }

    #[test]
    fn gather_batch_into_reuses_buffers() {
        let d = toy();
        let mut x = Tensor::empty();
        let mut y = Vec::new();
        d.gather_batch_into(&[2, 0], &mut x, &mut y);
        assert_eq!(x.data(), &[2.0, 2.1, 0.0, 0.1]);
        assert_eq!(y, vec![1, 0]);
        let ptr = x.data().as_ptr();
        d.gather_batch_into(&[1, 2], &mut x, &mut y);
        assert_eq!(x.data(), &[1.0, 1.1, 2.0, 2.1]);
        assert_eq!(y, vec![1, 1]);
        assert_eq!(
            ptr,
            x.data().as_ptr(),
            "same-size regather must not realloc"
        );
    }

    #[test]
    fn subset_copies_requested_samples() {
        let d = toy();
        let s = d.subset(&[1]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.sample(0), &[1.0, 1.1]);
        assert_eq!(s.labels(), &[1]);
    }

    #[test]
    fn push_appends() {
        let mut d = Dataset::empty(2, 3);
        d.push(&[5.0, 6.0], 2);
        assert_eq!(d.len(), 1);
        assert_eq!(d.sample(0), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic]
    fn mismatched_feature_buffer_rejected() {
        Dataset::new(vec![0.0; 5], vec![0, 1], 2, 2);
    }

    #[test]
    #[should_panic]
    fn out_of_range_label_rejected() {
        Dataset::new(vec![0.0; 4], vec![0, 5], 2, 2);
    }
}
