//! `fl-data` — synthetic federated datasets and non-IID partitioning.
//!
//! The paper evaluates on CIFAR-10, CIFAR-100 and SVHN partitioned across
//! clients with a Dirichlet label-skew (`p_k ~ Dir(beta)`, Li et al.'s
//! protocol). Real image datasets are not available in this offline
//! environment, so this crate provides *synthetic class-conditional
//! datasets* with matching class counts and configurable difficulty, plus the
//! identical Dirichlet partitioner. See DESIGN.md §4 for the substitution
//! rationale.
//!
//! * [`dataset::Dataset`] — a flat feature matrix plus integer labels.
//! * [`synthetic`] — class-conditional Gaussian generators and the
//!   `cifar10_like` / `cifar100_like` / `svhn_like` presets.
//! * [`partition`] — Dirichlet label-skew partitioning into client shards and
//!   the client × class count matrix of Fig. 5.
//! * [`loader`] — shuffled mini-batch iteration.

pub mod dataset;
pub mod loader;
pub mod partition;
pub mod synthetic;

pub use dataset::Dataset;
pub use loader::BatchLoader;
pub use partition::{dirichlet_partition, ClientPartition, PartitionStats};
pub use synthetic::{DatasetPreset, SyntheticSpec};
