//! Shuffled mini-batch loading.

use crate::dataset::Dataset;
use fl_tensor::rng::Rng;
use fl_tensor::Tensor;

/// Iterates over a dataset in shuffled mini-batches.
///
/// Shuffling happens once per epoch via [`BatchLoader::epoch_batches`]; the
/// caller supplies the RNG so the full experiment stays seed-deterministic.
#[derive(Clone, Debug)]
pub struct BatchLoader {
    batch_size: usize,
    drop_last: bool,
}

impl BatchLoader {
    /// Create a loader. `drop_last` discards a trailing partial batch.
    pub fn new(batch_size: usize, drop_last: bool) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self {
            batch_size,
            drop_last,
        }
    }

    /// Configured batch size.
    pub fn batch_size(&self) -> usize {
        self.batch_size
    }

    /// Number of batches one epoch over `n` samples will produce.
    pub fn num_batches(&self, n: usize) -> usize {
        if self.drop_last {
            n / self.batch_size
        } else {
            n.div_ceil(self.batch_size)
        }
    }

    /// Produce the shuffled batches (feature tensor + labels) for one epoch.
    pub fn epoch_batches<R: Rng>(
        &self,
        dataset: &Dataset,
        rng: &mut R,
    ) -> Vec<(Tensor, Vec<usize>)> {
        let mut order: Vec<usize> = (0..dataset.len()).collect();
        rng.shuffle(&mut order);
        let mut batches = Vec::with_capacity(self.num_batches(dataset.len()));
        let mut start = 0usize;
        while start < order.len() {
            let end = (start + self.batch_size).min(order.len());
            if self.drop_last && end - start < self.batch_size {
                break;
            }
            batches.push(dataset.gather_batch(&order[start..end]));
            start = end;
        }
        batches
    }

    /// Shuffle one epoch's sample order into the caller's reusable `order`
    /// buffer — the allocation-free counterpart of
    /// [`epoch_batches`](Self::epoch_batches). The caller walks the returned
    /// order in `batch_size` strides (honouring `drop_last` via
    /// [`batch_ranges`](Self::batch_ranges)) and gathers each slice with
    /// [`Dataset::gather_batch_into`]. Shuffle draw order and batch
    /// boundaries are identical to `epoch_batches`.
    pub fn shuffle_epoch<R: Rng>(&self, dataset: &Dataset, rng: &mut R, order: &mut Vec<usize>) {
        order.clear();
        order.extend(0..dataset.len());
        rng.shuffle(order);
    }

    /// Iterator over the `[start, end)` index ranges of one epoch's batches.
    pub fn batch_ranges(&self, n: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        let bs = self.batch_size;
        let drop_last = self.drop_last;
        (0..n.div_ceil(bs).max(1))
            .map(move |b| (b * bs, ((b + 1) * bs).min(n)))
            .filter(move |&(s, e)| s < e && (!drop_last || e - s == bs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_tensor::rng::Xoshiro256;

    fn toy() -> Dataset {
        let mut d = Dataset::empty(1, 2);
        for i in 0..10 {
            d.push(&[i as f32], i % 2);
        }
        d
    }

    #[test]
    fn batches_cover_all_samples() {
        let loader = BatchLoader::new(3, false);
        let mut rng = Xoshiro256::new(1);
        let batches = loader.epoch_batches(&toy(), &mut rng);
        assert_eq!(batches.len(), 4);
        let total: usize = batches.iter().map(|(_, y)| y.len()).sum();
        assert_eq!(total, 10);
        let mut seen: Vec<f32> = batches
            .iter()
            .flat_map(|(x, _)| x.data().to_vec())
            .collect();
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(seen, (0..10).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    fn drop_last_discards_partial() {
        let loader = BatchLoader::new(3, true);
        let mut rng = Xoshiro256::new(1);
        let batches = loader.epoch_batches(&toy(), &mut rng);
        assert_eq!(batches.len(), 3);
        assert!(batches.iter().all(|(_, y)| y.len() == 3));
    }

    #[test]
    fn num_batches_formula() {
        let l = BatchLoader::new(4, false);
        assert_eq!(l.num_batches(10), 3);
        let l2 = BatchLoader::new(4, true);
        assert_eq!(l2.num_batches(10), 2);
        assert_eq!(l.num_batches(0), 0);
    }

    #[test]
    fn shuffling_depends_on_rng() {
        let loader = BatchLoader::new(10, false);
        let mut r1 = Xoshiro256::new(1);
        let mut r2 = Xoshiro256::new(2);
        let b1 = loader.epoch_batches(&toy(), &mut r1);
        let b2 = loader.epoch_batches(&toy(), &mut r2);
        assert_ne!(b1[0].0.data(), b2[0].0.data());
        // Same seed, same order.
        let mut r3 = Xoshiro256::new(1);
        let b3 = loader.epoch_batches(&toy(), &mut r3);
        assert_eq!(b1[0].0.data(), b3[0].0.data());
    }

    #[test]
    #[should_panic]
    fn zero_batch_size_rejected() {
        BatchLoader::new(0, false);
    }

    #[test]
    fn in_place_epoch_matches_epoch_batches() {
        let d = toy();
        let loader = BatchLoader::new(3, false);
        let mut r1 = Xoshiro256::new(7);
        let reference = loader.epoch_batches(&d, &mut r1);

        let mut r2 = Xoshiro256::new(7);
        let mut order = Vec::new();
        loader.shuffle_epoch(&d, &mut r2, &mut order);
        let mut x = Tensor::empty();
        let mut y = Vec::new();
        let ranges: Vec<_> = loader.batch_ranges(d.len()).collect();
        assert_eq!(ranges.len(), reference.len());
        for ((s, e), (rx, ry)) in ranges.into_iter().zip(reference.iter()) {
            d.gather_batch_into(&order[s..e], &mut x, &mut y);
            assert_eq!(x.data(), rx.data());
            assert_eq!(&y, ry);
        }
    }

    #[test]
    fn batch_ranges_honours_drop_last() {
        let l = BatchLoader::new(4, true);
        assert_eq!(l.batch_ranges(10).collect::<Vec<_>>(), vec![(0, 4), (4, 8)]);
        let l2 = BatchLoader::new(4, false);
        assert_eq!(
            l2.batch_ranges(10).collect::<Vec<_>>(),
            vec![(0, 4), (4, 8), (8, 10)]
        );
        assert_eq!(l2.batch_ranges(0).count(), 0);
    }
}
