//! Synthetic class-conditional datasets standing in for CIFAR-10, CIFAR-100
//! and SVHN.
//!
//! Each class `c` gets a random prototype vector `mu_c`; samples of class `c`
//! are `mu_c + noise`, with a per-preset noise level controlling task
//! difficulty. A fraction of the feature dimensions is shared across classes
//! ("nuisance" dimensions) so the model cannot solve the task with a single
//! coordinate, which keeps Top-K retention patterns non-trivial — the property
//! the paper's overlap analysis depends on.

use crate::dataset::Dataset;
use fl_tensor::dist::Normal;
use fl_tensor::rng::Xoshiro256;
use serde::{Deserialize, Serialize};

/// Named dataset presets mirroring the paper's three benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum DatasetPreset {
    /// 10 classes, moderate difficulty — stands in for CIFAR-10.
    Cifar10Like,
    /// 100 classes, hard — stands in for CIFAR-100.
    Cifar100Like,
    /// 10 classes, easier (digit-like) — stands in for SVHN.
    SvhnLike,
}

impl DatasetPreset {
    /// Human-readable name used in experiment reports.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetPreset::Cifar10Like => "cifar10-like",
            DatasetPreset::Cifar100Like => "cifar100-like",
            DatasetPreset::SvhnLike => "svhn-like",
        }
    }

    /// Default generation spec for this preset, scaled by `scale`
    /// (1.0 = full experiment size, smaller values for quick runs).
    pub fn spec(&self, scale: f64) -> SyntheticSpec {
        let scale = scale.clamp(0.01, 10.0);
        match self {
            // Separation/noise levels are tuned so a well-trained centralized
            // classifier lands in the paper's accuracy ballpark for the
            // corresponding real dataset (CIFAR-10 ≈ 0.75–0.9, SVHN ≈ 0.9+,
            // CIFAR-100 ≈ 0.5–0.6) instead of saturating at 100%; this keeps
            // the relative ordering of the FL algorithms meaningful.
            DatasetPreset::Cifar10Like => SyntheticSpec {
                num_classes: 10,
                feature_dim: 128,
                train_per_class: ((500.0 * scale) as usize).max(8),
                test_per_class: ((100.0 * scale) as usize).max(4),
                class_separation: 0.45,
                noise_std: 1.0,
                informative_fraction: 0.5,
            },
            DatasetPreset::Cifar100Like => SyntheticSpec {
                num_classes: 100,
                feature_dim: 128,
                train_per_class: ((50.0 * scale) as usize).max(4),
                test_per_class: ((10.0 * scale) as usize).max(2),
                class_separation: 0.50,
                noise_std: 1.0,
                informative_fraction: 0.5,
            },
            DatasetPreset::SvhnLike => SyntheticSpec {
                num_classes: 10,
                feature_dim: 128,
                train_per_class: ((600.0 * scale) as usize).max(8),
                test_per_class: ((120.0 * scale) as usize).max(4),
                class_separation: 0.60,
                noise_std: 0.9,
                informative_fraction: 0.6,
            },
        }
    }
}

/// Parameters of the synthetic class-conditional generator.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SyntheticSpec {
    /// Number of classes.
    pub num_classes: usize,
    /// Feature dimensionality of every sample.
    pub feature_dim: usize,
    /// Training samples generated per class.
    pub train_per_class: usize,
    /// Test samples generated per class.
    pub test_per_class: usize,
    /// Distance scale between class prototypes (larger = easier).
    pub class_separation: f64,
    /// Standard deviation of the additive sample noise.
    pub noise_std: f64,
    /// Fraction of feature dimensions that carry class signal; the rest are
    /// shared nuisance dimensions.
    pub informative_fraction: f64,
}

impl SyntheticSpec {
    /// Total number of training samples this spec will generate.
    pub fn train_size(&self) -> usize {
        self.num_classes * self.train_per_class
    }

    /// Total number of test samples this spec will generate.
    pub fn test_size(&self) -> usize {
        self.num_classes * self.test_per_class
    }

    /// Generate the (train, test) dataset pair from a seed.
    pub fn generate(&self, seed: u64) -> (Dataset, Dataset) {
        assert!(self.num_classes >= 2, "need at least two classes");
        assert!(
            self.feature_dim >= 2,
            "need at least two feature dimensions"
        );
        assert!(
            (0.0..=1.0).contains(&self.informative_fraction),
            "informative_fraction must be in [0, 1]"
        );
        let mut rng = Xoshiro256::new(seed);
        let proto_dist = Normal::new(0.0, self.class_separation);
        let n_informative =
            ((self.feature_dim as f64 * self.informative_fraction).round() as usize).max(1);

        // Class prototypes: signal only in the informative dimensions.
        let mut prototypes = vec![vec![0.0f32; self.feature_dim]; self.num_classes];
        for proto in prototypes.iter_mut() {
            for slot in proto.iter_mut().take(n_informative) {
                *slot = proto_dist.sample(&mut rng) as f32;
            }
        }

        let noise = Normal::new(0.0, self.noise_std);
        let gen_split = |per_class: usize, rng: &mut Xoshiro256| {
            let mut ds = Dataset::empty(self.feature_dim, self.num_classes);
            let mut buf = vec![0.0f32; self.feature_dim];
            for (class, proto) in prototypes.iter().enumerate() {
                for _ in 0..per_class {
                    for (j, slot) in buf.iter_mut().enumerate() {
                        *slot = proto[j] + noise.sample(rng) as f32;
                    }
                    ds.push(&buf, class);
                }
            }
            ds
        };

        let train = gen_split(self.train_per_class, &mut rng);
        let test = gen_split(self.test_per_class, &mut rng);
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_expected_class_counts() {
        assert_eq!(DatasetPreset::Cifar10Like.spec(1.0).num_classes, 10);
        assert_eq!(DatasetPreset::Cifar100Like.spec(1.0).num_classes, 100);
        assert_eq!(DatasetPreset::SvhnLike.spec(1.0).num_classes, 10);
    }

    #[test]
    fn generation_sizes_match_spec() {
        let spec = DatasetPreset::Cifar10Like.spec(0.1);
        let (train, test) = spec.generate(1);
        assert_eq!(train.len(), spec.train_size());
        assert_eq!(test.len(), spec.test_size());
        assert_eq!(train.feature_dim(), spec.feature_dim);
        // Balanced classes.
        let counts = train.class_counts();
        assert!(counts.iter().all(|&c| c == spec.train_per_class));
    }

    #[test]
    fn generation_is_deterministic() {
        let spec = DatasetPreset::SvhnLike.spec(0.05);
        let (a, _) = spec.generate(42);
        let (b, _) = spec.generate(42);
        assert_eq!(a.sample(0), b.sample(0));
        assert_eq!(a.labels(), b.labels());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = DatasetPreset::Cifar10Like.spec(0.05);
        let (a, _) = spec.generate(1);
        let (b, _) = spec.generate(2);
        assert_ne!(a.sample(0), b.sample(0));
    }

    #[test]
    fn classes_are_separated() {
        // Distance between per-class means should exceed within-class spread.
        let spec = DatasetPreset::Cifar10Like.spec(0.2);
        let (train, _) = spec.generate(7);
        let dim = train.feature_dim();
        let mut means = vec![vec![0.0f64; dim]; spec.num_classes];
        let counts = train.class_counts();
        for i in 0..train.len() {
            let y = train.labels()[i];
            for (j, &v) in train.sample(i).iter().enumerate() {
                means[y][j] += v as f64 / counts[y] as f64;
            }
        }
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter()
                .zip(b.iter())
                .map(|(x, y)| (x - y).powi(2))
                .sum::<f64>()
                .sqrt()
        };
        let d01 = dist(&means[0], &means[1]);
        assert!(d01 > 1.0, "class means should be separated, got {d01}");
    }

    #[test]
    fn scale_clamps_to_minimum_sizes() {
        let spec = DatasetPreset::Cifar100Like.spec(0.0001);
        assert!(spec.train_per_class >= 4);
        assert!(spec.test_per_class >= 2);
    }
}
