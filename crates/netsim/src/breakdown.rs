//! Per-round time breakdown (the four bars of the paper's Fig. 6).

use serde::{Deserialize, Serialize};

/// How one FL round's wall-clock time splits across phases.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundBreakdown {
    /// Time spent compressing and decompressing updates (seconds).
    pub compress_s: f64,
    /// Time spent on local training across the cohort (seconds, straggler view).
    pub training_s: f64,
    /// Communication time without compression (seconds).
    pub uncompressed_comm_s: f64,
    /// Communication time with the evaluated scheduler (seconds). When a
    /// downlink codec is active this is the full bidirectional straggler
    /// bound (download + upload per client).
    pub scheduled_comm_s: f64,
    /// Portion of the round spent on the server→client broadcast (straggler
    /// view; 0 when the downlink is not simulated).
    pub downlink_comm_s: f64,
}

impl RoundBreakdown {
    /// Element-wise accumulation of another breakdown.
    pub fn accumulate(&mut self, other: &RoundBreakdown) {
        self.compress_s += other.compress_s;
        self.training_s += other.training_s;
        self.uncompressed_comm_s += other.uncompressed_comm_s;
        self.scheduled_comm_s += other.scheduled_comm_s;
        self.downlink_comm_s += other.downlink_comm_s;
    }

    /// Divide every component by `n` (producing a per-round average).
    pub fn averaged_over(&self, n: usize) -> RoundBreakdown {
        if n == 0 {
            return *self;
        }
        let d = n as f64;
        RoundBreakdown {
            compress_s: self.compress_s / d,
            training_s: self.training_s / d,
            uncompressed_comm_s: self.uncompressed_comm_s / d,
            scheduled_comm_s: self.scheduled_comm_s / d,
            downlink_comm_s: self.downlink_comm_s / d,
        }
    }

    /// The communication time saved by the scheduler relative to no compression.
    pub fn comm_saving_s(&self) -> f64 {
        self.uncompressed_comm_s - self.scheduled_comm_s
    }

    /// CSV row
    /// (`compress,training,uncompressed_comm,scheduled_comm,downlink_comm`).
    pub fn to_csv_row(&self) -> String {
        format!(
            "{:.6},{:.6},{:.6},{:.6},{:.6}",
            self.compress_s,
            self.training_s,
            self.uncompressed_comm_s,
            self.scheduled_comm_s,
            self.downlink_comm_s
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate_and_average() {
        let mut total = RoundBreakdown::default();
        for _ in 0..4 {
            total.accumulate(&RoundBreakdown {
                compress_s: 0.25,
                training_s: 10.0,
                uncompressed_comm_s: 48.0,
                scheduled_comm_s: 1.0,
                downlink_comm_s: 0.5,
            });
        }
        assert_eq!(total.training_s, 40.0);
        assert_eq!(total.downlink_comm_s, 2.0);
        let avg = total.averaged_over(4);
        assert_eq!(avg.compress_s, 0.25);
        assert_eq!(avg.uncompressed_comm_s, 48.0);
        assert_eq!(avg.downlink_comm_s, 0.5);
        assert_eq!(avg.comm_saving_s(), 47.0);
    }

    #[test]
    fn average_over_zero_is_identity() {
        let b = RoundBreakdown {
            compress_s: 1.0,
            ..Default::default()
        };
        assert_eq!(b.averaged_over(0), b);
    }

    #[test]
    fn csv_row_has_five_fields() {
        let b = RoundBreakdown::default();
        assert_eq!(b.to_csv_row().split(',').count(), 5);
    }
}
