//! The paper's three communication-time metrics (Section 5.2) and their
//! accumulation across rounds.

use serde::{Deserialize, Serialize};

/// Per-round communication timing.
///
/// * `actual` — the time the round actually took under the algorithm being
///   evaluated (for synchronous algorithms this is the slowest client's time
///   *with that algorithm's compression*);
/// * `max` — the slowest client's time under uniform compression — the
///   straggler-bound duration that plain FedAvg would experience;
/// * `min` — the fastest client's time, the unattainable ideal.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct RoundTiming {
    /// Actual communication time of this round (seconds).
    pub actual: f64,
    /// Maximum (straggler) communication time of this round (seconds).
    pub max: f64,
    /// Minimum (fastest-client) communication time of this round (seconds).
    pub min: f64,
}

impl RoundTiming {
    /// Build a round timing from per-client communication times.
    ///
    /// * `algorithm_times` — each selected client's uplink time under the
    ///   algorithm being evaluated (its compression / scheduling applied);
    /// * `dense_times` — each client's uplink time for the uncompressed model
    ///   (what plain FedAvg would pay).
    ///
    /// `actual` is the straggler under the algorithm, `max` the straggler of
    /// the uncompressed transfer, `min` the fastest client under the
    /// algorithm. Both slices must be non-empty and the same length.
    pub fn from_client_times(algorithm_times: &[f64], dense_times: &[f64]) -> Self {
        assert!(!algorithm_times.is_empty(), "no client times provided");
        assert_eq!(
            algorithm_times.len(),
            dense_times.len(),
            "client count mismatch between algorithm and dense times"
        );
        let actual = algorithm_times.iter().cloned().fold(0.0f64, f64::max);
        let max = dense_times.iter().cloned().fold(0.0f64, f64::max);
        let min = algorithm_times
            .iter()
            .cloned()
            .fold(f64::INFINITY, f64::min);
        Self { actual, max, min }
    }
}

/// Accumulates [`RoundTiming`] values over the course of training, yielding
/// the cumulative Actual / Max / Min times the paper reports in Table 3.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct TimeAccumulator {
    rounds: Vec<RoundTiming>,
    cumulative_actual: Vec<f64>,
    cumulative_max: Vec<f64>,
    cumulative_min: Vec<f64>,
}

impl TimeAccumulator {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one round.
    pub fn push(&mut self, timing: RoundTiming) {
        let prev_actual = self.cumulative_actual.last().copied().unwrap_or(0.0);
        let prev_max = self.cumulative_max.last().copied().unwrap_or(0.0);
        let prev_min = self.cumulative_min.last().copied().unwrap_or(0.0);
        self.cumulative_actual.push(prev_actual + timing.actual);
        self.cumulative_max.push(prev_max + timing.max);
        self.cumulative_min.push(prev_min + timing.min);
        self.rounds.push(timing);
    }

    /// Number of recorded rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// True if no rounds have been recorded.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Per-round timings.
    pub fn rounds(&self) -> &[RoundTiming] {
        &self.rounds
    }

    /// Cumulative actual time after each round.
    pub fn cumulative_actual(&self) -> &[f64] {
        &self.cumulative_actual
    }

    /// Cumulative maximum (straggler) time after each round.
    pub fn cumulative_max(&self) -> &[f64] {
        &self.cumulative_max
    }

    /// Cumulative minimum (fastest-client) time after each round.
    pub fn cumulative_min(&self) -> &[f64] {
        &self.cumulative_min
    }

    /// Total actual time so far.
    pub fn total_actual(&self) -> f64 {
        self.cumulative_actual.last().copied().unwrap_or(0.0)
    }

    /// Total maximum (straggler) time so far.
    pub fn total_max(&self) -> f64 {
        self.cumulative_max.last().copied().unwrap_or(0.0)
    }

    /// Total minimum time so far.
    pub fn total_min(&self) -> f64 {
        self.cumulative_min.last().copied().unwrap_or(0.0)
    }

    /// The cumulative *actual* time at the first round whose `reached`
    /// predicate is true — used for "time to reach X% accuracy" (Table 3).
    /// Returns `None` if the predicate never fires.
    pub fn time_to<F: Fn(usize) -> bool>(&self, reached: F) -> Option<f64> {
        (0..self.rounds.len())
            .find(|&r| reached(r))
            .map(|r| self.cumulative_actual[r])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_client_times_extremes() {
        let t = RoundTiming::from_client_times(&[1.0, 2.0, 1.5], &[3.0, 5.0, 4.0]);
        assert_eq!(t.actual, 2.0);
        assert_eq!(t.max, 5.0);
        assert_eq!(t.min, 1.0);
    }

    #[test]
    #[should_panic]
    fn empty_client_times_rejected() {
        RoundTiming::from_client_times(&[], &[]);
    }

    #[test]
    fn accumulation_is_prefix_sum() {
        let mut acc = TimeAccumulator::new();
        acc.push(RoundTiming {
            actual: 1.0,
            max: 2.0,
            min: 0.5,
        });
        acc.push(RoundTiming {
            actual: 1.5,
            max: 3.0,
            min: 0.25,
        });
        assert_eq!(acc.len(), 2);
        assert_eq!(acc.cumulative_actual(), &[1.0, 2.5]);
        assert_eq!(acc.cumulative_max(), &[2.0, 5.0]);
        assert_eq!(acc.cumulative_min(), &[0.5, 0.75]);
        assert_eq!(acc.total_actual(), 2.5);
        assert_eq!(acc.total_max(), 5.0);
        assert_eq!(acc.total_min(), 0.75);
    }

    #[test]
    fn time_to_predicate() {
        let mut acc = TimeAccumulator::new();
        for i in 0..5 {
            acc.push(RoundTiming {
                actual: 1.0 + i as f64,
                max: 0.0,
                min: 0.0,
            });
        }
        // Accuracy reaches the target at round index 2.
        let t = acc.time_to(|r| r >= 2);
        assert_eq!(t, Some(1.0 + 2.0 + 3.0));
        assert_eq!(acc.time_to(|_| false), None);
    }

    #[test]
    fn empty_accumulator_totals_zero() {
        let acc = TimeAccumulator::new();
        assert!(acc.is_empty());
        assert_eq!(acc.total_actual(), 0.0);
    }
}
