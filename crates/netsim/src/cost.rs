//! The latency/bandwidth communication cost model (paper Eq. 4 and Alg. 2).

use crate::link::Link;
use serde::{Deserialize, Serialize};

/// What the simulator charges for a compressed uplink.
///
/// The paper's communication model is *analytic*: a sparsified update costs
/// `2 × V × CR` bytes regardless of what any encoder actually produces.
/// Since the codec pipeline emits real byte buffers, the simulator can
/// alternatively charge the bytes that were actually encoded.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CostBasis {
    /// The paper's closed-form `2·V·CR` accounting (default; keeps results
    /// bit-identical to the analytic reproduction).
    #[default]
    Analytic,
    /// Charge the encoded `WireUpdate` length exactly — varint-compressed
    /// indices, bit-packed quantization levels and all.
    Encoded,
}

/// Communication-time model: `T = L + bits / B`.
///
/// For sparsified uplinks the paper charges `2 × V × CR` bytes — each retained
/// coordinate ships an index alongside its value — which is what
/// [`CommModel::sparse_uplink_time`] implements. `V` is the dense model size
/// in bytes. Under [`CostBasis::Encoded`] the round engine bypasses the
/// analytic formula and prices each upload via [`CommModel::transfer_time`]
/// on the encoded buffer's length.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct CommModel {
    /// If true (default, matches the paper) sparse transfers pay the 2× index
    /// overhead. Exposed so the ablation bench can quantify its impact.
    pub index_overhead: bool,
    /// Whether uplinks are priced by the analytic formula or by the bytes a
    /// codec actually produced.
    pub cost_basis: CostBasis,
}

/// Transfer time charged for a link with no usable bandwidth
/// (`bandwidth_bps <= 0`, or NaN): roughly 31.7 years, i.e. "this round never
/// finishes through that link". A finite saturation value keeps downstream
/// accumulators (`TimeAccumulator`, straggler bounds) free of `inf`/NaN while
/// still dominating any realistic transfer, so a dead link loses every
/// straggler comparison.
pub const SATURATED_TRANSFER_S: f64 = 1e9;

impl CommModel {
    /// Model with the paper's 2× index+value accounting.
    pub fn paper_default() -> Self {
        Self {
            index_overhead: true,
            cost_basis: CostBasis::Analytic,
        }
    }

    /// The same model pricing uplinks by encoded bytes.
    pub fn with_cost_basis(mut self, basis: CostBasis) -> Self {
        self.cost_basis = basis;
        self
    }

    /// Time in seconds to transmit `payload_bytes` over `link`.
    ///
    /// A link with zero, negative or NaN bandwidth (possible when links come
    /// from a scenario trace rather than [`Link::new`]) charges the
    /// saturating [`SATURATED_TRANSFER_S`] instead of dividing to `inf`/NaN.
    pub fn transfer_time(&self, link: &Link, payload_bytes: f64) -> f64 {
        assert!(payload_bytes >= 0.0, "payload must be non-negative");
        if link.bandwidth_bps.is_nan() || link.bandwidth_bps <= 0.0 {
            return SATURATED_TRANSFER_S;
        }
        link.latency_s + payload_bytes * 8.0 / link.bandwidth_bps
    }

    /// Uncompressed uplink time for a dense model of `model_bytes` bytes.
    pub fn dense_uplink_time(&self, link: &Link, model_bytes: f64) -> f64 {
        self.transfer_time(link, model_bytes)
    }

    /// Uplink time for a sparsified update at compression ratio `cr` of a
    /// dense model of `model_bytes` bytes: `L + 2·V·CR·8 / B` (Alg. 2 line 7).
    pub fn sparse_uplink_time(&self, link: &Link, model_bytes: f64, cr: f64) -> f64 {
        assert!(cr >= 0.0, "compression ratio must be non-negative");
        let factor = if self.index_overhead { 2.0 } else { 1.0 };
        self.transfer_time(link, factor * model_bytes * cr)
    }

    /// Uncompressed downlink (broadcast) time for a dense model of
    /// `model_bytes` bytes. Links are symmetric in this simulator — the same
    /// latency and bandwidth govern both directions — so this mirrors
    /// [`dense_uplink_time`](Self::dense_uplink_time); it exists so the
    /// round engine's download leg reads as what it is.
    pub fn dense_downlink_time(&self, link: &Link, model_bytes: f64) -> f64 {
        self.transfer_time(link, model_bytes)
    }

    /// Analytic downlink time for a compressed broadcast at ratio `cr`: the
    /// paper's bidirectional cost model charges the server→client leg with
    /// the same `L + 2·V·CR·8 / B` formula as the client upload (each
    /// retained coordinate ships an index alongside its value in either
    /// direction). Under `CostBasis::Encoded` the round engine bypasses this
    /// and prices the broadcast via [`transfer_time`](Self::transfer_time) on
    /// the encoded buffer's length.
    pub fn sparse_downlink_time(&self, link: &Link, model_bytes: f64, cr: f64) -> f64 {
        self.sparse_uplink_time(link, model_bytes, cr)
    }

    /// Invert the sparse uplink model: the compression ratio that makes the
    /// transfer finish in exactly `budget_s` seconds (clamped to `>= 0`).
    /// This is the core of BCRS (Alg. 2 line 13). A link with no usable
    /// bandwidth (zero/negative/NaN, mirroring
    /// [`transfer_time`](Self::transfer_time)) can ship nothing in any
    /// budget, so the ratio is 0.
    pub fn ratio_for_budget(&self, link: &Link, model_bytes: f64, budget_s: f64) -> f64 {
        if link.bandwidth_bps.is_nan() || link.bandwidth_bps <= 0.0 {
            return 0.0;
        }
        let factor = if self.index_overhead { 2.0 } else { 1.0 };
        let usable = (budget_s - link.latency_s).max(0.0);
        usable * link.bandwidth_bps / (factor * model_bytes * 8.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link_1mbps_100ms() -> Link {
        Link::from_mbps_ms(1.0, 100.0)
    }

    #[test]
    fn dense_transfer_time() {
        let m = CommModel::paper_default();
        // 1 Mbit/s, 125_000 bytes = 1 Mbit => 1 s + 0.1 s latency
        let t = m.dense_uplink_time(&link_1mbps_100ms(), 125_000.0);
        assert!((t - 1.1).abs() < 1e-9);
    }

    #[test]
    fn sparse_pays_double() {
        let m = CommModel::paper_default();
        let link = link_1mbps_100ms();
        let dense = m.dense_uplink_time(&link, 125_000.0);
        let sparse_full = m.sparse_uplink_time(&link, 125_000.0, 1.0);
        // CR = 1 with the 2x index overhead is slower than a dense transfer.
        assert!(sparse_full > dense);
        let sparse_tenth = m.sparse_uplink_time(&link, 125_000.0, 0.1);
        assert!(sparse_tenth < dense);
    }

    #[test]
    fn no_overhead_variant() {
        let m = CommModel {
            index_overhead: false,
            ..CommModel::paper_default()
        };
        let link = link_1mbps_100ms();
        let t1 = m.sparse_uplink_time(&link, 125_000.0, 1.0);
        let t2 = m.dense_uplink_time(&link, 125_000.0);
        assert!((t1 - t2).abs() < 1e-12);
    }

    #[test]
    fn ratio_for_budget_inverts_time() {
        let m = CommModel::paper_default();
        let link = link_1mbps_100ms();
        let v = 500_000.0;
        for &budget in &[0.2, 0.5, 2.0, 10.0] {
            let cr = m.ratio_for_budget(&link, v, budget);
            let t = m.sparse_uplink_time(&link, v, cr);
            assert!((t - budget).abs() < 1e-9, "budget {budget} gave time {t}");
        }
    }

    #[test]
    fn ratio_for_budget_below_latency_is_zero() {
        let m = CommModel::paper_default();
        let link = link_1mbps_100ms();
        assert_eq!(m.ratio_for_budget(&link, 1e6, 0.05), 0.0);
    }

    #[test]
    fn cost_basis_defaults_to_analytic() {
        assert_eq!(CostBasis::default(), CostBasis::Analytic);
        assert_eq!(CommModel::paper_default().cost_basis, CostBasis::Analytic);
        let m = CommModel::paper_default().with_cost_basis(CostBasis::Encoded);
        assert_eq!(m.cost_basis, CostBasis::Encoded);
        assert!(m.index_overhead, "basis switch leaves the formula intact");
    }

    #[test]
    fn downlink_legs_mirror_the_symmetric_uplink() {
        let m = CommModel::paper_default();
        let link = link_1mbps_100ms();
        assert_eq!(
            m.dense_downlink_time(&link, 125_000.0),
            m.dense_uplink_time(&link, 125_000.0)
        );
        assert_eq!(
            m.sparse_downlink_time(&link, 125_000.0, 0.1),
            m.sparse_uplink_time(&link, 125_000.0, 0.1)
        );
    }

    #[test]
    fn dead_links_saturate_instead_of_dividing() {
        let m = CommModel::paper_default();
        // Struct literals bypass `Link::new`'s positivity assert, exactly how
        // a hand-written trace or a buggy generator would produce dead links.
        for bw in [0.0, -1.0, f64::NAN] {
            let dead = Link {
                bandwidth_bps: bw,
                latency_s: 0.05,
            };
            let t = m.transfer_time(&dead, 125_000.0);
            assert_eq!(t, SATURATED_TRANSFER_S, "bw={bw}");
            assert!(t.is_finite());
            assert_eq!(m.sparse_uplink_time(&dead, 125_000.0, 0.1), t);
            assert_eq!(m.ratio_for_budget(&dead, 1e6, 10.0), 0.0, "bw={bw}");
        }
    }

    #[test]
    fn zero_payload_on_dead_link_still_saturates() {
        let m = CommModel::paper_default();
        let dead = Link {
            bandwidth_bps: 0.0,
            latency_s: 0.0,
        };
        // 0 * 8.0 / 0.0 would be NaN without the guard.
        let t = m.transfer_time(&dead, 0.0);
        assert_eq!(t, SATURATED_TRANSFER_S);
    }

    #[test]
    fn higher_bandwidth_is_faster() {
        let m = CommModel::paper_default();
        let fast = Link::from_mbps_ms(2.0, 100.0);
        let slow = Link::from_mbps_ms(0.5, 100.0);
        assert!(m.sparse_uplink_time(&fast, 1e6, 0.1) < m.sparse_uplink_time(&slow, 1e6, 0.1));
    }
}
