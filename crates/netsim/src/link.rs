//! Per-client network link parameters and their random generation.

use fl_tensor::dist::{Normal, Uniform};
use fl_tensor::rng::Xoshiro256;
use serde::{Deserialize, Serialize};

/// The uplink of one client: bandwidth in bits per second and latency in
/// seconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Uplink bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Per-message latency in seconds.
    pub latency_s: f64,
}

impl Link {
    /// Construct a link; bandwidth must be positive and latency non-negative.
    pub fn new(bandwidth_bps: f64, latency_s: f64) -> Self {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        assert!(latency_s >= 0.0, "latency must be non-negative");
        Self {
            bandwidth_bps,
            latency_s,
        }
    }

    /// Convenience constructor from Mbit/s and milliseconds.
    pub fn from_mbps_ms(bandwidth_mbps: f64, latency_ms: f64) -> Self {
        Self::new(bandwidth_mbps * 1e6, latency_ms * 1e-3)
    }

    /// Bandwidth in Mbit/s.
    pub fn bandwidth_mbps(&self) -> f64 {
        self.bandwidth_bps / 1e6
    }

    /// Latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.latency_s * 1e3
    }
}

/// Random generator of client links following the paper's Section 5.2:
/// bandwidth `~ N(mean, std)` truncated to stay positive, latency
/// `~ U(lo, hi]`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkGenerator {
    /// Mean bandwidth in Mbit/s (paper: 1.0).
    pub bandwidth_mean_mbps: f64,
    /// Bandwidth standard deviation in Mbit/s (paper: 0.2).
    pub bandwidth_std_mbps: f64,
    /// Lower latency bound in milliseconds (paper: 50, exclusive).
    pub latency_lo_ms: f64,
    /// Upper latency bound in milliseconds (paper: 200, inclusive).
    pub latency_hi_ms: f64,
    /// Truncation floor for the bandwidth draw, as a fraction of
    /// [`bandwidth_mean_mbps`](Self::bandwidth_mean_mbps). The normal draw is
    /// redrawn (then clamped) so no client falls below
    /// `bandwidth_mean_mbps * bandwidth_floor_frac` — "truncated normal"
    /// practice that keeps every simulated link usable. Default `0.05`;
    /// scenario tier classes reuse the same floor when jittering links
    /// (see [`floor_mbps`](Self::floor_mbps)).
    pub bandwidth_floor_frac: f64,
}

impl Default for LinkGenerator {
    fn default() -> Self {
        Self {
            bandwidth_mean_mbps: 1.0,
            bandwidth_std_mbps: 0.2,
            latency_lo_ms: 50.0,
            latency_hi_ms: 200.0,
            bandwidth_floor_frac: 0.05,
        }
    }
}

impl LinkGenerator {
    /// The paper's configuration (`N(1, 0.2)` Mbit/s, `U(50, 200]` ms).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// The absolute bandwidth floor in Mbit/s implied by
    /// [`bandwidth_floor_frac`](Self::bandwidth_floor_frac): no generated or
    /// jittered link drops below this value.
    pub fn floor_mbps(&self) -> f64 {
        self.bandwidth_mean_mbps * self.bandwidth_floor_frac
    }

    /// Draw one link from an externally managed RNG stream (bandwidth draw
    /// first, then latency — the order [`generate`](Self::generate) has always
    /// used). Scenario generators use this to mint links for joining clients
    /// or tier resamples without materialising a whole fleet.
    pub fn sample_with(&self, rng: &mut Xoshiro256) -> Link {
        let bw_dist = Normal::new(self.bandwidth_mean_mbps, self.bandwidth_std_mbps);
        let lat_dist = Uniform::new(self.latency_lo_ms, self.latency_hi_ms);
        let bw = bw_dist.sample_truncated_below(rng, self.floor_mbps());
        let lat = lat_dist.sample(rng);
        Link::from_mbps_ms(bw, lat)
    }

    /// Generate `n` client links deterministically from a seed.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Link> {
        assert!(
            self.bandwidth_mean_mbps > 0.0,
            "mean bandwidth must be positive"
        );
        assert!(
            self.bandwidth_std_mbps >= 0.0,
            "bandwidth std must be non-negative"
        );
        assert!(
            self.latency_hi_ms > self.latency_lo_ms,
            "latency range must be non-empty"
        );
        assert!(
            self.bandwidth_floor_frac >= 0.0 && self.bandwidth_floor_frac < 1.0,
            "bandwidth floor fraction must lie in [0, 1)"
        );
        let mut rng = Xoshiro256::new(seed);
        (0..n).map(|_| self.sample_with(&mut rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let l = Link::from_mbps_ms(1.0, 100.0);
        assert_eq!(l.bandwidth_bps, 1e6);
        assert!((l.latency_s - 0.1).abs() < 1e-12);
        assert!((l.bandwidth_mbps() - 1.0).abs() < 1e-12);
        assert!((l.latency_ms() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        Link::new(0.0, 0.1);
    }

    #[test]
    fn generator_matches_paper_statistics() {
        let gen = LinkGenerator::paper_default();
        let links = gen.generate(5000, 42);
        assert_eq!(links.len(), 5000);
        let mean_bw: f64 =
            links.iter().map(|l| l.bandwidth_mbps()).sum::<f64>() / links.len() as f64;
        assert!((mean_bw - 1.0).abs() < 0.02, "mean bandwidth {mean_bw}");
        let lat_in_range = links
            .iter()
            .all(|l| l.latency_ms() >= 50.0 && l.latency_ms() <= 200.0);
        assert!(lat_in_range);
        assert!(links.iter().all(|l| l.bandwidth_bps > 0.0));
    }

    #[test]
    fn generator_is_deterministic() {
        let gen = LinkGenerator::paper_default();
        assert_eq!(gen.generate(10, 7), gen.generate(10, 7));
        assert_ne!(gen.generate(10, 7), gen.generate(10, 8));
    }

    #[test]
    fn sample_with_matches_generate_stream() {
        let gen = LinkGenerator::paper_default();
        let batch = gen.generate(8, 21);
        let mut rng = Xoshiro256::new(21);
        let singles: Vec<Link> = (0..8).map(|_| gen.sample_with(&mut rng)).collect();
        assert_eq!(batch, singles);
    }

    #[test]
    fn bandwidth_floor_is_exposed_and_respected() {
        let gen = LinkGenerator {
            bandwidth_mean_mbps: 1.0,
            bandwidth_std_mbps: 5.0, // wild std so the floor actually binds
            bandwidth_floor_frac: 0.25,
            ..LinkGenerator::paper_default()
        };
        assert!((gen.floor_mbps() - 0.25).abs() < 1e-12);
        let links = gen.generate(2000, 13);
        assert!(links.iter().all(|l| l.bandwidth_mbps() >= 0.25));
    }

    #[test]
    fn heterogeneity_exists() {
        let gen = LinkGenerator::paper_default();
        let links = gen.generate(20, 3);
        let min = links
            .iter()
            .map(|l| l.bandwidth_bps)
            .fold(f64::INFINITY, f64::min);
        let max = links.iter().map(|l| l.bandwidth_bps).fold(0.0, f64::max);
        assert!(max > min * 1.1, "links should be heterogeneous");
    }
}
