//! Per-client network link parameters and their random generation.

use fl_tensor::dist::{Normal, Uniform};
use fl_tensor::rng::Xoshiro256;
use serde::{Deserialize, Serialize};

/// The uplink of one client: bandwidth in bits per second and latency in
/// seconds.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Uplink bandwidth in bits per second.
    pub bandwidth_bps: f64,
    /// Per-message latency in seconds.
    pub latency_s: f64,
}

impl Link {
    /// Construct a link; bandwidth must be positive and latency non-negative.
    pub fn new(bandwidth_bps: f64, latency_s: f64) -> Self {
        assert!(bandwidth_bps > 0.0, "bandwidth must be positive");
        assert!(latency_s >= 0.0, "latency must be non-negative");
        Self {
            bandwidth_bps,
            latency_s,
        }
    }

    /// Convenience constructor from Mbit/s and milliseconds.
    pub fn from_mbps_ms(bandwidth_mbps: f64, latency_ms: f64) -> Self {
        Self::new(bandwidth_mbps * 1e6, latency_ms * 1e-3)
    }

    /// Bandwidth in Mbit/s.
    pub fn bandwidth_mbps(&self) -> f64 {
        self.bandwidth_bps / 1e6
    }

    /// Latency in milliseconds.
    pub fn latency_ms(&self) -> f64 {
        self.latency_s * 1e3
    }
}

/// Random generator of client links following the paper's Section 5.2:
/// bandwidth `~ N(mean, std)` truncated to stay positive, latency
/// `~ U(lo, hi]`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LinkGenerator {
    /// Mean bandwidth in Mbit/s (paper: 1.0).
    pub bandwidth_mean_mbps: f64,
    /// Bandwidth standard deviation in Mbit/s (paper: 0.2).
    pub bandwidth_std_mbps: f64,
    /// Lower latency bound in milliseconds (paper: 50, exclusive).
    pub latency_lo_ms: f64,
    /// Upper latency bound in milliseconds (paper: 200, inclusive).
    pub latency_hi_ms: f64,
}

impl Default for LinkGenerator {
    fn default() -> Self {
        Self {
            bandwidth_mean_mbps: 1.0,
            bandwidth_std_mbps: 0.2,
            latency_lo_ms: 50.0,
            latency_hi_ms: 200.0,
        }
    }
}

impl LinkGenerator {
    /// The paper's configuration (`N(1, 0.2)` Mbit/s, `U(50, 200]` ms).
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Generate `n` client links deterministically from a seed.
    pub fn generate(&self, n: usize, seed: u64) -> Vec<Link> {
        assert!(
            self.bandwidth_mean_mbps > 0.0,
            "mean bandwidth must be positive"
        );
        assert!(
            self.bandwidth_std_mbps >= 0.0,
            "bandwidth std must be non-negative"
        );
        assert!(
            self.latency_hi_ms > self.latency_lo_ms,
            "latency range must be non-empty"
        );
        let mut rng = Xoshiro256::new(seed);
        let bw_dist = Normal::new(self.bandwidth_mean_mbps, self.bandwidth_std_mbps);
        let lat_dist = Uniform::new(self.latency_lo_ms, self.latency_hi_ms);
        // Keep bandwidth at least 5% of the mean so no simulated client is
        // pathologically slow (matches "truncated normal" practice).
        let floor = self.bandwidth_mean_mbps * 0.05;
        (0..n)
            .map(|_| {
                let bw = bw_dist.sample_truncated_below(&mut rng, floor);
                let lat = lat_dist.sample(&mut rng);
                Link::from_mbps_ms(bw, lat)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let l = Link::from_mbps_ms(1.0, 100.0);
        assert_eq!(l.bandwidth_bps, 1e6);
        assert!((l.latency_s - 0.1).abs() < 1e-12);
        assert!((l.bandwidth_mbps() - 1.0).abs() < 1e-12);
        assert!((l.latency_ms() - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn zero_bandwidth_rejected() {
        Link::new(0.0, 0.1);
    }

    #[test]
    fn generator_matches_paper_statistics() {
        let gen = LinkGenerator::paper_default();
        let links = gen.generate(5000, 42);
        assert_eq!(links.len(), 5000);
        let mean_bw: f64 =
            links.iter().map(|l| l.bandwidth_mbps()).sum::<f64>() / links.len() as f64;
        assert!((mean_bw - 1.0).abs() < 0.02, "mean bandwidth {mean_bw}");
        let lat_in_range = links
            .iter()
            .all(|l| l.latency_ms() >= 50.0 && l.latency_ms() <= 200.0);
        assert!(lat_in_range);
        assert!(links.iter().all(|l| l.bandwidth_bps > 0.0));
    }

    #[test]
    fn generator_is_deterministic() {
        let gen = LinkGenerator::paper_default();
        assert_eq!(gen.generate(10, 7), gen.generate(10, 7));
        assert_ne!(gen.generate(10, 7), gen.generate(10, 8));
    }

    #[test]
    fn heterogeneity_exists() {
        let gen = LinkGenerator::paper_default();
        let links = gen.generate(20, 3);
        let min = links
            .iter()
            .map(|l| l.bandwidth_bps)
            .fold(f64::INFINITY, f64::min);
        let max = links.iter().map(|l| l.bandwidth_bps).fold(0.0, f64::max);
        assert!(max > min * 1.1, "links should be heterogeneous");
    }
}
