//! `fl-netsim` — the communication-time simulator used by the paper's
//! evaluation.
//!
//! The paper models the uplink of every client with the classic latency +
//! bandwidth cost model of Thakur et al. (`T = L + V / B`, Eq. 4), doubles
//! the payload for sparse transfers (`2 × V × CR`, Alg. 2 — an index and a
//! value per retained coordinate) and draws each client's bandwidth from
//! `N(1 Mbit/s, 0.2)` and latency from `U(50 ms, 200 ms]` (Section 5.2).
//!
//! * [`link::Link`] / [`link::LinkGenerator`] — per-client network parameters;
//! * [`cost::CommModel`] — the uplink/downlink time model;
//! * [`metrics::RoundTiming`] / [`metrics::TimeAccumulator`] — the paper's
//!   Actual / Maximum / Minimum time metrics (Section 5.2) accumulated over
//!   rounds;
//! * [`timeline`] — per-client round timelines (waiting vs. transmitting),
//!   the data behind Fig. 1;
//! * [`breakdown::RoundBreakdown`] — compress / train / communicate time
//!   split of Fig. 6;
//! * [`scenario`] — trace-driven fleet dynamics (diurnal participation,
//!   churn, tiered links, correlated dropout) layered on top of the static
//!   link draw.

pub mod breakdown;
pub mod cost;
pub mod link;
pub mod metrics;
pub mod scenario;
pub mod timeline;

pub use breakdown::RoundBreakdown;
pub use cost::{CommModel, CostBasis, SATURATED_TRANSFER_S};
pub use link::{Link, LinkGenerator};
pub use metrics::{RoundTiming, TimeAccumulator};
pub use scenario::{
    ChurnScenario, CorrelatedDropoutScenario, DiurnalScenario, FleetError, FleetEvent, FleetState,
    RecordingScenario, Scenario, ScenarioError, ScenarioSpec, ScenarioTelemetry, TierClass,
    TieredScenario, TimedEvent, TraceError, TraceReader, TraceScenario,
};
pub use timeline::{ClientTimeline, RoundTimeline};
