//! String-form scenario specifications: `name[:key=value,...]`.
//!
//! Mirrors the compressor-spec grammar style: a compact text form that
//! `ExperimentConfig`, sweep axes and the `--scenario` CLI flag all share.
//! Examples:
//!
//! ```text
//! diurnal                                  — all defaults
//! diurnal:period=8,min_up=0.25             — partial override
//! churn:leave=0.08,join=0.3
//! tiered:resample=0.2,sigma=0.25
//! towers:groups=4,outage=0.25,repair=0.5
//! trace:runs/fleet.trace                   — replay a recorded trace file
//! ```
//!
//! `Display` prints the canonical fully-parameterised form (floats via
//! `{:?}`), so `parse(display(spec)) == spec` exactly.

use super::generators::{
    ChurnScenario, CorrelatedDropoutScenario, DiurnalScenario, TieredScenario,
};
use super::trace::{TraceError, TraceScenario};
use super::Scenario;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// Error parsing, validating or building a [`ScenarioSpec`].
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioError {
    /// The string form is malformed (unknown name, bad `k=v` syntax).
    Parse(String),
    /// A parameter failed to parse or is out of range.
    BadParam {
        /// The parameter key.
        key: String,
        /// Why its value was rejected.
        reason: String,
    },
    /// The parsed spec is semantically invalid.
    Invalid(String),
    /// Opening or validating a trace file failed.
    Trace(TraceError),
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Parse(msg) => write!(f, "cannot parse scenario spec: {msg}"),
            ScenarioError::BadParam { key, reason } => {
                write!(f, "bad scenario parameter `{key}`: {reason}")
            }
            ScenarioError::Invalid(msg) => write!(f, "invalid scenario: {msg}"),
            ScenarioError::Trace(e) => write!(f, "scenario trace: {e}"),
        }
    }
}

impl std::error::Error for ScenarioError {}

/// A parsed, validated-on-demand scenario description — the form experiment
/// configs store and sweep axes enumerate. [`build`](Self::build) turns it
/// into a live [`Scenario`] for one session.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ScenarioSpec {
    /// Diurnal sine-wave participation
    /// ([`DiurnalScenario`]).
    Diurnal {
        /// Rounds per full day/night cycle.
        period: f64,
        /// Trough participation fraction.
        min_up: f64,
        /// Peak participation fraction.
        max_up: f64,
    },
    /// Poisson join/leave churn ([`ChurnScenario`]).
    Churn {
        /// Per-capita per-round departure probability.
        leave: f64,
        /// Per-capita per-round re-join probability.
        join: f64,
    },
    /// Tiered link classes with lognormal jitter ([`TieredScenario`]).
    Tiered {
        /// Fraction of the fleet whose link is resampled each round.
        resample: f64,
        /// Lognormal jitter shape.
        sigma: f64,
    },
    /// Correlated shared-tower dropout ([`CorrelatedDropoutScenario`]).
    Towers {
        /// Number of tower groups.
        groups: usize,
        /// Per-round tower outage probability.
        outage: f64,
        /// Per-round tower repair probability.
        repair: f64,
    },
    /// Replay a recorded `bwfl-trace-v1` file ([`TraceScenario`]).
    Trace {
        /// Path to the trace file.
        path: String,
    },
}

impl ScenarioSpec {
    /// Short stable name of the scenario family.
    pub fn name(&self) -> &'static str {
        match self {
            ScenarioSpec::Diurnal { .. } => "diurnal",
            ScenarioSpec::Churn { .. } => "churn",
            ScenarioSpec::Tiered { .. } => "tiered",
            ScenarioSpec::Towers { .. } => "towers",
            ScenarioSpec::Trace { .. } => "trace",
        }
    }

    /// Check parameter ranges without building (used by
    /// `ExperimentConfig::validate`, where a panic would be hostile).
    pub fn validate(&self) -> Result<(), ScenarioError> {
        let finite_unit = |key: &str, v: f64| {
            if v.is_finite() && (0.0..=1.0).contains(&v) {
                Ok(())
            } else {
                Err(ScenarioError::BadParam {
                    key: key.to_string(),
                    reason: format!("must lie in [0, 1] (got {v})"),
                })
            }
        };
        match self {
            ScenarioSpec::Diurnal {
                period,
                min_up,
                max_up,
            } => {
                if !period.is_finite() || *period < 2.0 {
                    return Err(ScenarioError::BadParam {
                        key: "period".into(),
                        reason: format!("must be a finite number of rounds >= 2 (got {period})"),
                    });
                }
                finite_unit("min_up", *min_up)?;
                finite_unit("max_up", *max_up)?;
                if min_up >= max_up {
                    return Err(ScenarioError::Invalid(format!(
                        "diurnal needs min_up < max_up (got {min_up} >= {max_up})"
                    )));
                }
                Ok(())
            }
            ScenarioSpec::Churn { leave, join } => {
                finite_unit("leave", *leave)?;
                finite_unit("join", *join)
            }
            ScenarioSpec::Tiered { resample, sigma } => {
                finite_unit("resample", *resample)?;
                if !sigma.is_finite() || *sigma < 0.0 {
                    return Err(ScenarioError::BadParam {
                        key: "sigma".into(),
                        reason: format!("must be finite and >= 0 (got {sigma})"),
                    });
                }
                Ok(())
            }
            ScenarioSpec::Towers {
                groups,
                outage,
                repair,
            } => {
                if *groups == 0 {
                    return Err(ScenarioError::BadParam {
                        key: "groups".into(),
                        reason: "must be at least 1".into(),
                    });
                }
                finite_unit("outage", *outage)?;
                finite_unit("repair", *repair)
            }
            ScenarioSpec::Trace { path } => {
                if path.is_empty() {
                    return Err(ScenarioError::Invalid("trace path is empty".into()));
                }
                Ok(())
            }
        }
    }

    /// Instantiate the scenario for a `num_clients`-client fleet seeded by
    /// `seed`. Trace specs open the file here and insist its header matches
    /// the fleet size.
    pub fn build(&self, num_clients: usize, seed: u64) -> Result<Box<dyn Scenario>, ScenarioError> {
        self.validate()?;
        match self {
            ScenarioSpec::Diurnal {
                period,
                min_up,
                max_up,
            } => Ok(Box::new(DiurnalScenario::new(
                num_clients,
                seed,
                *period,
                *min_up,
                *max_up,
            ))),
            ScenarioSpec::Churn { leave, join } => Ok(Box::new(ChurnScenario::new(
                num_clients,
                seed,
                *leave,
                *join,
            ))),
            ScenarioSpec::Tiered { resample, sigma } => Ok(Box::new(TieredScenario::new(
                num_clients,
                seed,
                *resample,
                *sigma,
            ))),
            ScenarioSpec::Towers {
                groups,
                outage,
                repair,
            } => Ok(Box::new(CorrelatedDropoutScenario::new(
                num_clients,
                seed,
                *groups,
                *outage,
                *repair,
            ))),
            ScenarioSpec::Trace { path } => {
                let scenario = TraceScenario::open(path).map_err(ScenarioError::Trace)?;
                if scenario.num_clients() != num_clients {
                    return Err(ScenarioError::Invalid(format!(
                        "trace {path:?} was recorded for {} clients but the experiment has {num_clients}",
                        scenario.num_clients()
                    )));
                }
                Ok(Box::new(scenario))
            }
        }
    }
}

impl fmt::Display for ScenarioSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioSpec::Diurnal {
                period,
                min_up,
                max_up,
            } => write!(
                f,
                "diurnal:period={period:?},min_up={min_up:?},max_up={max_up:?}"
            ),
            ScenarioSpec::Churn { leave, join } => {
                write!(f, "churn:leave={leave:?},join={join:?}")
            }
            ScenarioSpec::Tiered { resample, sigma } => {
                write!(f, "tiered:resample={resample:?},sigma={sigma:?}")
            }
            ScenarioSpec::Towers {
                groups,
                outage,
                repair,
            } => write!(
                f,
                "towers:groups={groups},outage={outage:?},repair={repair:?}"
            ),
            ScenarioSpec::Trace { path } => write!(f, "trace:{path}"),
        }
    }
}

fn parse_f64(key: &str, value: &str) -> Result<f64, ScenarioError> {
    value.parse().map_err(|_| ScenarioError::BadParam {
        key: key.to_string(),
        reason: format!("{value:?} is not a number"),
    })
}

fn parse_usize(key: &str, value: &str) -> Result<usize, ScenarioError> {
    value.parse().map_err(|_| ScenarioError::BadParam {
        key: key.to_string(),
        reason: format!("{value:?} is not an unsigned integer"),
    })
}

impl FromStr for ScenarioSpec {
    type Err = ScenarioError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        let (name, params) = match s.split_once(':') {
            Some((n, p)) => (n, Some(p)),
            None => (s, None),
        };
        if name == "trace" {
            let path = params.unwrap_or("").to_string();
            if path.is_empty() {
                return Err(ScenarioError::Parse(
                    "trace spec needs a path: `trace:FILE`".into(),
                ));
            }
            return Ok(ScenarioSpec::Trace { path });
        }
        let mut spec = match name {
            "diurnal" => ScenarioSpec::Diurnal {
                period: 24.0,
                min_up: 0.3,
                max_up: 0.95,
            },
            "churn" => ScenarioSpec::Churn {
                leave: 0.05,
                join: 0.25,
            },
            "tiered" => ScenarioSpec::Tiered {
                resample: 0.2,
                sigma: 0.25,
            },
            "towers" => ScenarioSpec::Towers {
                groups: 8,
                outage: 0.1,
                repair: 0.5,
            },
            other => {
                return Err(ScenarioError::Parse(format!(
                    "unknown scenario {other:?} (expected diurnal, churn, tiered, towers or trace)"
                )))
            }
        };
        for pair in params.into_iter().flat_map(|p| p.split(',')) {
            let pair = pair.trim();
            if pair.is_empty() {
                continue;
            }
            let (key, value) = pair.split_once('=').ok_or_else(|| {
                ScenarioError::Parse(format!("expected key=value, found {pair:?}"))
            })?;
            let unknown = || {
                Err(ScenarioError::Parse(format!(
                    "scenario {name:?} has no parameter {key:?}"
                )))
            };
            match &mut spec {
                ScenarioSpec::Diurnal {
                    period,
                    min_up,
                    max_up,
                } => match key {
                    "period" => *period = parse_f64(key, value)?,
                    "min_up" => *min_up = parse_f64(key, value)?,
                    "max_up" => *max_up = parse_f64(key, value)?,
                    _ => return unknown(),
                },
                ScenarioSpec::Churn { leave, join } => match key {
                    "leave" => *leave = parse_f64(key, value)?,
                    "join" => *join = parse_f64(key, value)?,
                    _ => return unknown(),
                },
                ScenarioSpec::Tiered { resample, sigma } => match key {
                    "resample" => *resample = parse_f64(key, value)?,
                    "sigma" => *sigma = parse_f64(key, value)?,
                    _ => return unknown(),
                },
                ScenarioSpec::Towers {
                    groups,
                    outage,
                    repair,
                } => match key {
                    "groups" => *groups = parse_usize(key, value)?,
                    "outage" => *outage = parse_f64(key, value)?,
                    "repair" => *repair = parse_f64(key, value)?,
                    _ => return unknown(),
                },
                ScenarioSpec::Trace { .. } => unreachable!("trace handled above"),
            }
        }
        spec.validate()?;
        Ok(spec)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bare_names_parse_to_defaults() {
        assert_eq!(
            "diurnal".parse::<ScenarioSpec>().unwrap(),
            ScenarioSpec::Diurnal {
                period: 24.0,
                min_up: 0.3,
                max_up: 0.95
            }
        );
        assert_eq!(
            "towers".parse::<ScenarioSpec>().unwrap(),
            ScenarioSpec::Towers {
                groups: 8,
                outage: 0.1,
                repair: 0.5
            }
        );
    }

    #[test]
    fn partial_params_override_defaults() {
        let spec: ScenarioSpec = "diurnal:period=8,min_up=0.25".parse().unwrap();
        assert_eq!(
            spec,
            ScenarioSpec::Diurnal {
                period: 8.0,
                min_up: 0.25,
                max_up: 0.95
            }
        );
    }

    #[test]
    fn display_parse_round_trip() {
        for text in [
            "diurnal",
            "diurnal:period=7.5,min_up=0.125,max_up=0.875",
            "churn:leave=0.08,join=0.3",
            "tiered:resample=0.2,sigma=0.25",
            "towers:groups=4,outage=0.25,repair=0.5",
            "trace:runs/fleet.trace",
        ] {
            let spec: ScenarioSpec = text.parse().unwrap();
            let canon = spec.to_string();
            let back: ScenarioSpec = canon.parse().unwrap();
            assert_eq!(back, spec, "canonical form {canon:?}");
        }
    }

    #[test]
    fn trace_path_keeps_colons() {
        let spec: ScenarioSpec = "trace:a:b/c.trace".parse().unwrap();
        assert_eq!(
            spec,
            ScenarioSpec::Trace {
                path: "a:b/c.trace".into()
            }
        );
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "meteor",
            "diurnal:period",
            "diurnal:period=fast",
            "diurnal:tempo=3",
            "diurnal:period=1",
            "diurnal:min_up=0.9,max_up=0.5",
            "churn:leave=1.5",
            "towers:groups=0",
            "tiered:sigma=-1",
            "trace:",
            "trace",
        ] {
            assert!(
                bad.parse::<ScenarioSpec>().is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn build_produces_named_scenarios() {
        for (text, name) in [
            ("diurnal", "diurnal"),
            ("churn", "churn"),
            ("tiered", "tiered"),
            ("towers", "towers"),
        ] {
            let spec: ScenarioSpec = text.parse().unwrap();
            assert_eq!(spec.name(), name);
            let scenario = spec.build(16, 42).unwrap();
            assert_eq!(scenario.name(), name);
        }
    }

    #[test]
    fn build_rejects_missing_trace_file() {
        let spec = ScenarioSpec::Trace {
            path: "/nonexistent/definitely-not-here.trace".into(),
        };
        let err = match spec.build(4, 1) {
            Err(e) => e,
            Ok(_) => panic!("missing trace file must not build"),
        };
        assert!(matches!(err, ScenarioError::Trace(TraceError::Io(_))));
    }
}
