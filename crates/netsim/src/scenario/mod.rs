//! Trace-driven fleet scenarios: dynamic availability, churn and link
//! quality over the lifetime of an experiment.
//!
//! The static simulator draws one [`Link`] per client up front
//! and flips one i.i.d. dropout coin per round. Real federated fleets do not
//! behave like that: participation follows diurnal waves, devices join and
//! leave mid-experiment, link quality jitters and is tiered
//! (cellular/wifi/datacenter), and outages are *correlated* — a shared tower
//! takes its whole neighbourhood down at once. This module models all of
//! that as a stream of per-round [`FleetEvent`]s produced by a [`Scenario`]:
//!
//! ```text
//! Scenario (generator or trace file)
//!     │  events_for_round(r, &mut buf)        — streaming, O(events/round)
//!     ▼
//! FleetEvent  { Down | Up | LinkSet | Join | Leave }
//!     │  FleetState::apply                    — O(deviations) state
//!     ▼
//! FleetState  { down set, departed set, link overrides }
//!     │  is_active / link_for
//!     ▼
//! round engine: client selection + per-round CommModel pricing
//! ```
//!
//! Scenarios are deterministic functions of `(num_clients, seed)`: the same
//! inputs replay the same event stream forever, and a recorded trace (see
//! [`trace`]) replays bit-identically through [`TraceScenario`].
//!
//! * [`Scenario`] — the event-source trait; [`FleetEvent`] its vocabulary;
//! * [`FleetState`] — the materialised fleet view the round engine queries;
//! * [`generators`] — built-in diurnal / churn / tiered / correlated-dropout
//!   sources;
//! * [`trace`] — the `bwfl-trace-v1` text format, streaming reader and
//!   recording wrapper;
//! * [`spec`] — the `name[:k=v,...]` string form used by experiment configs
//!   and CLI flags.

use crate::link::Link;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

pub mod generators;
pub mod spec;
pub mod trace;

pub use generators::{
    ChurnScenario, CorrelatedDropoutScenario, DiurnalScenario, TierClass, TieredScenario,
};
pub use spec::{ScenarioError, ScenarioSpec};
pub use trace::{RecordingScenario, TimedEvent, TraceError, TraceReader, TraceScenario};

/// One mutation of the fleet, effective at the round it is emitted for.
///
/// Events speak in deltas, not snapshots: a round with no events means the
/// fleet is exactly as it was. `Down`/`Up` toggle temporary unavailability
/// (device asleep, tower outage); `Join`/`Leave` are churn — a departed
/// client holds no link override and cannot come back except via `Join`;
/// `LinkSet` rebinds a client's link (tier move, jitter resample).
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum FleetEvent {
    /// Client becomes unavailable (stays enrolled).
    Down {
        /// Index of the affected client.
        client: usize,
    },
    /// Client becomes available again.
    Up {
        /// Index of the affected client.
        client: usize,
    },
    /// Client's link changes to `link` from this round on.
    LinkSet {
        /// Index of the affected client.
        client: usize,
        /// The new link parameters.
        link: Link,
    },
    /// Client (re-)enrols with a fresh link, clearing any down/departed
    /// state it held.
    Join {
        /// Index of the joining client.
        client: usize,
        /// The link the client joins with.
        link: Link,
    },
    /// Client de-enrols; it is unavailable until a future `Join`.
    Leave {
        /// Index of the leaving client.
        client: usize,
    },
}

impl FleetEvent {
    /// The client index the event concerns.
    pub fn client(&self) -> usize {
        match *self {
            FleetEvent::Down { client }
            | FleetEvent::Up { client }
            | FleetEvent::LinkSet { client, .. }
            | FleetEvent::Join { client, .. }
            | FleetEvent::Leave { client } => client,
        }
    }
}

impl fmt::Display for FleetEvent {
    /// The event's trace-line form (sans round number): `down 3`, `up 3`,
    /// `link 3 1250000.0 0.07`, `join 3 1250000.0 0.07`, `leave 3`. Floats
    /// print via `{:?}` so parsing them back is exact.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetEvent::Down { client } => write!(f, "down {client}"),
            FleetEvent::Up { client } => write!(f, "up {client}"),
            FleetEvent::LinkSet { client, link } => {
                write!(
                    f,
                    "link {client} {:?} {:?}",
                    link.bandwidth_bps, link.latency_s
                )
            }
            FleetEvent::Join { client, link } => {
                write!(
                    f,
                    "join {client} {:?} {:?}",
                    link.bandwidth_bps, link.latency_s
                )
            }
            FleetEvent::Leave { client } => write!(f, "leave {client}"),
        }
    }
}

/// A deterministic source of per-round fleet events.
///
/// The driver visits rounds in order, exactly once each, starting at 0;
/// implementations may therefore stream from a file or advance internal RNG
/// state without rewind support. Events are appended to `out` (which the
/// caller clears) in a deterministic order — fleet evolution must be a pure
/// function of the constructor inputs.
pub trait Scenario: Send {
    /// Short stable identifier (used in logs and telemetry).
    fn name(&self) -> &'static str;

    /// Append the events effective at `round` to `out`.
    fn events_for_round(&mut self, round: usize, out: &mut Vec<FleetEvent>);
}

impl Scenario for Box<dyn Scenario> {
    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn events_for_round(&mut self, round: usize, out: &mut Vec<FleetEvent>) {
        (**self).events_for_round(round, out)
    }
}

/// Error applying a [`FleetEvent`] to a [`FleetState`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FleetError {
    /// The event names a client index `>= num_clients`.
    ClientOutOfRange {
        /// The offending client index.
        client: usize,
        /// The fleet size the index must stay below.
        num_clients: usize,
    },
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::ClientOutOfRange {
                client,
                num_clients,
            } => write!(
                f,
                "event targets client {client} but the fleet has {num_clients} clients"
            ),
        }
    }
}

impl std::error::Error for FleetError {}

/// The materialised fleet view: which clients are reachable right now and
/// which links deviate from the static base draw.
///
/// State is O(deviations) — a fleet of a million clients where a thousand
/// are down stores a thousand set entries, not a million flags. Iteration
/// everywhere uses `BTree` collections so the order (and therefore every
/// downstream RNG consumption) is deterministic.
#[derive(Clone, Debug)]
pub struct FleetState {
    num_clients: usize,
    down: BTreeSet<usize>,
    departed: BTreeSet<usize>,
    overrides: BTreeMap<usize, Link>,
}

impl FleetState {
    /// A fully-up fleet of `num_clients` clients with no link overrides.
    pub fn new(num_clients: usize) -> Self {
        Self {
            num_clients,
            down: BTreeSet::new(),
            departed: BTreeSet::new(),
            overrides: BTreeMap::new(),
        }
    }

    /// Fleet size (fixed index space; churn toggles membership within it).
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// Apply one event, mutating the state.
    pub fn apply(&mut self, event: &FleetEvent) -> Result<(), FleetError> {
        let client = event.client();
        if client >= self.num_clients {
            return Err(FleetError::ClientOutOfRange {
                client,
                num_clients: self.num_clients,
            });
        }
        match event {
            FleetEvent::Down { client } => {
                self.down.insert(*client);
            }
            FleetEvent::Up { client } => {
                self.down.remove(client);
            }
            FleetEvent::LinkSet { client, link } => {
                self.overrides.insert(*client, *link);
            }
            FleetEvent::Join { client, link } => {
                self.departed.remove(client);
                self.down.remove(client);
                self.overrides.insert(*client, *link);
            }
            FleetEvent::Leave { client } => {
                self.departed.insert(*client);
                self.overrides.remove(client);
            }
        }
        Ok(())
    }

    /// Is `client` currently reachable (enrolled and up)?
    pub fn is_active(&self, client: usize) -> bool {
        client < self.num_clients
            && !self.down.contains(&client)
            && !self.departed.contains(&client)
    }

    /// Indices of all currently reachable clients, ascending.
    pub fn active_clients(&self) -> Vec<usize> {
        (0..self.num_clients)
            .filter(|&c| self.is_active(c))
            .collect()
    }

    /// Number of currently reachable clients.
    pub fn active_count(&self) -> usize {
        let unavailable = self.down.union(&self.departed).count();
        self.num_clients - unavailable
    }

    /// The link `client` communicates over right now: its scenario override
    /// if one is set, else its entry in the static `base` draw.
    pub fn link_for(&self, client: usize, base: &[Link]) -> Link {
        self.overrides.get(&client).copied().unwrap_or(base[client])
    }
}

/// Per-round participation/churn counters derived from a round's events,
/// surfaced as `RoundRecord` telemetry columns.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioTelemetry {
    /// Reachable clients after this round's events (before any i.i.d.
    /// dropout the selector may add on top).
    pub available: usize,
    /// `Join` events this round.
    pub joined: usize,
    /// `Leave` events this round.
    pub departed: usize,
    /// `LinkSet` events this round (link quality churn).
    pub link_changes: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn link(mbps: f64) -> Link {
        Link::from_mbps_ms(mbps, 50.0)
    }

    #[test]
    fn fresh_fleet_is_fully_active() {
        let s = FleetState::new(5);
        assert_eq!(s.active_count(), 5);
        assert_eq!(s.active_clients(), vec![0, 1, 2, 3, 4]);
        assert!(s.is_active(4));
        assert!(!s.is_active(5));
    }

    #[test]
    fn down_up_round_trip() {
        let mut s = FleetState::new(4);
        s.apply(&FleetEvent::Down { client: 2 }).unwrap();
        assert!(!s.is_active(2));
        assert_eq!(s.active_count(), 3);
        s.apply(&FleetEvent::Up { client: 2 }).unwrap();
        assert!(s.is_active(2));
        assert_eq!(s.active_count(), 4);
    }

    #[test]
    fn leave_then_join_resets_everything() {
        let mut s = FleetState::new(4);
        let base = vec![link(1.0); 4];
        s.apply(&FleetEvent::LinkSet {
            client: 1,
            link: link(9.0),
        })
        .unwrap();
        s.apply(&FleetEvent::Down { client: 1 }).unwrap();
        s.apply(&FleetEvent::Leave { client: 1 }).unwrap();
        assert!(!s.is_active(1));
        // Leaving discards the override: a future naive query sees base.
        assert_eq!(s.link_for(1, &base), link(1.0));
        s.apply(&FleetEvent::Join {
            client: 1,
            link: link(3.0),
        })
        .unwrap();
        assert!(s.is_active(1), "join clears both departed and down");
        assert_eq!(s.link_for(1, &base), link(3.0));
    }

    #[test]
    fn down_and_departed_overlap_counts_once() {
        let mut s = FleetState::new(3);
        s.apply(&FleetEvent::Down { client: 0 }).unwrap();
        s.apply(&FleetEvent::Leave { client: 0 }).unwrap();
        assert_eq!(s.active_count(), 2, "one client, one unavailability");
    }

    #[test]
    fn out_of_range_rejected() {
        let mut s = FleetState::new(3);
        let err = s.apply(&FleetEvent::Down { client: 3 }).unwrap_err();
        assert_eq!(
            err,
            FleetError::ClientOutOfRange {
                client: 3,
                num_clients: 3
            }
        );
    }

    #[test]
    fn event_display_forms() {
        assert_eq!(FleetEvent::Down { client: 3 }.to_string(), "down 3");
        assert_eq!(FleetEvent::Up { client: 0 }.to_string(), "up 0");
        assert_eq!(FleetEvent::Leave { client: 7 }.to_string(), "leave 7");
        let e = FleetEvent::LinkSet {
            client: 2,
            link: Link {
                bandwidth_bps: 1_250_000.0,
                latency_s: 0.07,
            },
        };
        assert_eq!(e.to_string(), "link 2 1250000.0 0.07");
    }
}
