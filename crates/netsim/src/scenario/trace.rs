//! The `bwfl-trace-v1` text trace format: recording, streaming replay and
//! strict validation.
//!
//! A trace is a plain-text file:
//!
//! ```text
//! bwfl-trace-v1 clients=16
//! # comments and blank lines are skipped
//! 0 down 3
//! 0 link 5 1250000.0 0.07
//! 2 join 3 800000.0 0.12
//! 5 leave 9
//! ```
//!
//! Each event line is `<round> <verb> <args>` with rounds non-decreasing, so
//! a replay never needs to look ahead more than one line: [`TraceReader`]
//! streams events from any [`BufRead`] without loading the file, and
//! [`TraceScenario`] adapts that stream to the [`Scenario`] trait with a
//! single-event peek buffer. [`RecordingScenario`] is the inverse — it wraps
//! any scenario and tees its event stream into trace text, and replaying
//! that text reproduces the original run bit-identically.

use super::{FleetEvent, Scenario};
use crate::link::Link;
use std::fmt;
use std::fs::File;
use std::io::{BufRead, BufReader};
use std::path::Path;

/// Magic first token of a trace header line.
pub const TRACE_MAGIC: &str = "bwfl-trace-v1";

/// A [`FleetEvent`] stamped with the round it takes effect in.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TimedEvent {
    /// Round the event applies to (0-based).
    pub round: usize,
    /// The event itself.
    pub event: FleetEvent,
}

impl fmt::Display for TimedEvent {
    /// One trace line: `"<round> <event>"`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.round, self.event)
    }
}

fn parse_client(tok: Option<&str>) -> Result<usize, String> {
    tok.ok_or_else(|| "missing client index".to_string())?
        .parse::<usize>()
        .map_err(|_| "client index is not an unsigned integer".to_string())
}

fn parse_link(bw: Option<&str>, lat: Option<&str>) -> Result<Link, String> {
    let bw: f64 = bw
        .ok_or_else(|| "missing bandwidth".to_string())?
        .parse()
        .map_err(|_| "bandwidth is not a number".to_string())?;
    let lat: f64 = lat
        .ok_or_else(|| "missing latency".to_string())?
        .parse()
        .map_err(|_| "latency is not a number".to_string())?;
    if !bw.is_finite() || bw <= 0.0 {
        return Err(format!("bandwidth must be finite and positive (got {bw})"));
    }
    if !lat.is_finite() || lat < 0.0 {
        return Err(format!(
            "latency must be finite and non-negative (got {lat})"
        ));
    }
    Ok(Link {
        bandwidth_bps: bw,
        latency_s: lat,
    })
}

impl std::str::FromStr for TimedEvent {
    type Err = String;

    /// Parse one trace line, e.g. `"2 join 3 800000.0 0.12"`. The error is a
    /// human-readable reason (wrapped into [`TraceError::Line`] with its line
    /// number by [`TraceReader`]).
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut toks = s.split_whitespace();
        let round: usize = toks
            .next()
            .ok_or_else(|| "empty event line".to_string())?
            .parse()
            .map_err(|_| "round is not an unsigned integer".to_string())?;
        let verb = toks
            .next()
            .ok_or_else(|| "missing event verb".to_string())?;
        let event = match verb {
            "down" => FleetEvent::Down {
                client: parse_client(toks.next())?,
            },
            "up" => FleetEvent::Up {
                client: parse_client(toks.next())?,
            },
            "leave" => FleetEvent::Leave {
                client: parse_client(toks.next())?,
            },
            "link" => FleetEvent::LinkSet {
                client: parse_client(toks.next())?,
                link: parse_link(toks.next(), toks.next())?,
            },
            "join" => FleetEvent::Join {
                client: parse_client(toks.next())?,
                link: parse_link(toks.next(), toks.next())?,
            },
            other => return Err(format!("unknown event verb {other:?}")),
        };
        if let Some(extra) = toks.next() {
            return Err(format!("trailing token {extra:?}"));
        }
        Ok(TimedEvent { round, event })
    }
}

/// Error reading or validating a trace.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceError {
    /// Underlying I/O failure (message of the `std::io::Error`).
    Io(String),
    /// The input is empty — not even a header line.
    MissingHeader,
    /// The header line is present but malformed.
    Header(String),
    /// An event line failed to parse or validate.
    Line {
        /// 1-based line number in the input.
        line: usize,
        /// What was wrong with it.
        msg: String,
    },
    /// An event's round is smaller than a previously seen round.
    OutOfOrder {
        /// 1-based line number of the offending event.
        line: usize,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(msg) => write!(f, "trace I/O error: {msg}"),
            TraceError::MissingHeader => {
                write!(f, "trace is empty (expected a `{TRACE_MAGIC}` header)")
            }
            TraceError::Header(msg) => write!(f, "bad trace header: {msg}"),
            TraceError::Line { line, msg } => write!(f, "trace line {line}: {msg}"),
            TraceError::OutOfOrder { line } => {
                write!(f, "trace line {line}: event rounds must be non-decreasing")
            }
        }
    }
}

impl std::error::Error for TraceError {}

/// Streaming trace parser: pulls one line at a time from a [`BufRead`],
/// validating order and client range as it goes, so arbitrarily long traces
/// replay in constant memory.
///
/// Iteration yields `Result<TimedEvent, TraceError>`; after the first error
/// the iterator is fused to `None`.
#[derive(Debug)]
pub struct TraceReader<R: BufRead> {
    input: R,
    num_clients: usize,
    line_no: usize,
    last_round: usize,
    failed: bool,
}

impl<R: BufRead> TraceReader<R> {
    /// Wrap a reader, consuming and validating the header line.
    pub fn new(input: R) -> Result<Self, TraceError> {
        let mut reader = Self {
            input,
            num_clients: 0,
            line_no: 0,
            last_round: 0,
            failed: false,
        };
        let header = match reader.next_content_line()? {
            None => return Err(TraceError::MissingHeader),
            Some(line) => line,
        };
        let mut toks = header.split_whitespace();
        match toks.next() {
            Some(TRACE_MAGIC) => {}
            Some(other) => {
                return Err(TraceError::Header(format!(
                    "expected `{TRACE_MAGIC}`, found {other:?}"
                )))
            }
            None => return Err(TraceError::MissingHeader),
        }
        let clients_tok = toks
            .next()
            .ok_or_else(|| TraceError::Header("missing `clients=N`".to_string()))?;
        let n = clients_tok
            .strip_prefix("clients=")
            .and_then(|v| v.parse::<usize>().ok())
            .ok_or_else(|| TraceError::Header(format!("bad clients token {clients_tok:?}")))?;
        if n == 0 {
            return Err(TraceError::Header(
                "fleet must have at least one client".into(),
            ));
        }
        if let Some(extra) = toks.next() {
            return Err(TraceError::Header(format!("trailing token {extra:?}")));
        }
        reader.num_clients = n;
        Ok(reader)
    }

    /// The fleet size declared by the trace header.
    pub fn num_clients(&self) -> usize {
        self.num_clients
    }

    /// Next non-blank, non-comment line, or `None` at EOF.
    fn next_content_line(&mut self) -> Result<Option<String>, TraceError> {
        loop {
            let mut buf = String::new();
            let n = self
                .input
                .read_line(&mut buf)
                .map_err(|e| TraceError::Io(e.to_string()))?;
            if n == 0 {
                return Ok(None);
            }
            self.line_no += 1;
            let trimmed = buf.trim();
            if trimmed.is_empty() || trimmed.starts_with('#') {
                continue;
            }
            return Ok(Some(trimmed.to_string()));
        }
    }

    fn next_event(&mut self) -> Result<Option<TimedEvent>, TraceError> {
        let line = match self.next_content_line()? {
            None => return Ok(None),
            Some(l) => l,
        };
        let ev: TimedEvent = line.parse().map_err(|msg| TraceError::Line {
            line: self.line_no,
            msg,
        })?;
        if ev.round < self.last_round {
            return Err(TraceError::OutOfOrder { line: self.line_no });
        }
        self.last_round = ev.round;
        if ev.event.client() >= self.num_clients {
            return Err(TraceError::Line {
                line: self.line_no,
                msg: format!(
                    "client {} out of range for a {}-client fleet",
                    ev.event.client(),
                    self.num_clients
                ),
            });
        }
        Ok(Some(ev))
    }
}

impl<R: BufRead> Iterator for TraceReader<R> {
    type Item = Result<TimedEvent, TraceError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        match self.next_event() {
            Ok(Some(ev)) => Some(Ok(ev)),
            Ok(None) => None,
            Err(e) => {
                self.failed = true;
                Some(Err(e))
            }
        }
    }
}

/// Replays a recorded trace as a [`Scenario`], streaming events round by
/// round with a one-event peek buffer (the reader never rewinds, the whole
/// trace is never resident).
///
/// Construction validates the header eagerly; a corrupt line *mid-replay*
/// panics — by then the session is running and silently dropping tail events
/// would diverge from the recorded run.
pub struct TraceScenario<R: BufRead> {
    reader: TraceReader<R>,
    pending: Option<TimedEvent>,
}

impl TraceScenario<BufReader<File>> {
    /// Open a trace file for streaming replay.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let file = File::open(path.as_ref())
            .map_err(|e| TraceError::Io(format!("{}: {e}", path.as_ref().display())))?;
        Self::from_reader(BufReader::new(file))
    }
}

impl<R: BufRead> TraceScenario<R> {
    /// Wrap any buffered reader holding trace text.
    pub fn from_reader(input: R) -> Result<Self, TraceError> {
        Ok(Self {
            reader: TraceReader::new(input)?,
            pending: None,
        })
    }

    /// The fleet size declared by the trace header.
    pub fn num_clients(&self) -> usize {
        self.reader.num_clients()
    }

    fn pull(&mut self) -> Option<TimedEvent> {
        if let Some(ev) = self.pending.take() {
            return Some(ev);
        }
        match self.reader.next() {
            None => None,
            Some(Ok(ev)) => Some(ev),
            Some(Err(e)) => panic!("corrupt scenario trace: {e}"),
        }
    }
}

impl<R: BufRead + Send> Scenario for TraceScenario<R> {
    fn name(&self) -> &'static str {
        "trace"
    }

    fn events_for_round(&mut self, round: usize, out: &mut Vec<FleetEvent>) {
        while let Some(ev) = self.pull() {
            if ev.round > round {
                self.pending = Some(ev);
                return;
            }
            // Rounds are visited in order, so `ev.round <= round` means the
            // event is due now (events for skipped-over rounds cannot exist:
            // the driver visits every round).
            out.push(ev.event);
        }
    }
}

/// Wraps a scenario and tees every event it emits into `bwfl-trace-v1` text,
/// so any generated run can be archived and replayed bit-identically via
/// [`TraceScenario`].
pub struct RecordingScenario<S: Scenario> {
    inner: S,
    trace: String,
}

impl<S: Scenario> RecordingScenario<S> {
    /// Wrap `inner`, starting a trace for a `num_clients`-client fleet.
    pub fn new(inner: S, num_clients: usize) -> Self {
        Self {
            inner,
            trace: format!("{TRACE_MAGIC} clients={num_clients}\n"),
        }
    }

    /// The trace text recorded so far.
    pub fn trace(&self) -> &str {
        &self.trace
    }

    /// Consume the recorder, returning the trace text.
    pub fn into_trace(self) -> String {
        self.trace
    }
}

impl<S: Scenario> Scenario for RecordingScenario<S> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn events_for_round(&mut self, round: usize, out: &mut Vec<FleetEvent>) {
        let start = out.len();
        self.inner.events_for_round(round, out);
        for event in &out[start..] {
            use fmt::Write;
            let timed = TimedEvent {
                round,
                event: *event,
            };
            writeln!(self.trace, "{timed}").expect("writing to a String cannot fail");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn reader(text: &str) -> Result<TraceReader<Cursor<&[u8]>>, TraceError> {
        TraceReader::new(Cursor::new(text.as_bytes()))
    }

    #[test]
    fn parses_a_well_formed_trace() {
        let text = "bwfl-trace-v1 clients=8\n\
                    # a comment\n\
                    \n\
                    0 down 3\n\
                    0 link 5 1250000.0 0.07\n\
                    2 join 3 800000.0 0.12\n\
                    5 leave 7\n";
        let r = reader(text).unwrap();
        assert_eq!(r.num_clients(), 8);
        let events: Vec<TimedEvent> = r.map(|e| e.unwrap()).collect();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].round, 0);
        assert_eq!(events[0].event, FleetEvent::Down { client: 3 });
        assert_eq!(
            events[2].event,
            FleetEvent::Join {
                client: 3,
                link: Link {
                    bandwidth_bps: 800000.0,
                    latency_s: 0.12
                }
            }
        );
    }

    #[test]
    fn timed_event_display_parse_round_trip() {
        let cases = [
            TimedEvent {
                round: 0,
                event: FleetEvent::Down { client: 3 },
            },
            TimedEvent {
                round: 17,
                event: FleetEvent::LinkSet {
                    client: 2,
                    link: Link {
                        bandwidth_bps: 123456.789,
                        latency_s: 0.012345678901234567,
                    },
                },
            },
        ];
        for ev in cases {
            let line = ev.to_string();
            let back: TimedEvent = line.parse().unwrap();
            assert_eq!(back, ev, "line {line:?}");
        }
    }

    #[test]
    fn rejects_missing_header() {
        assert_eq!(reader("").unwrap_err(), TraceError::MissingHeader);
        assert!(matches!(
            reader("0 down 1\n").unwrap_err(),
            TraceError::Header(_)
        ));
    }

    #[test]
    fn rejects_bad_header_fields() {
        assert!(matches!(
            reader("bwfl-trace-v1\n").unwrap_err(),
            TraceError::Header(_)
        ));
        assert!(matches!(
            reader("bwfl-trace-v1 clients=zero\n").unwrap_err(),
            TraceError::Header(_)
        ));
        assert!(matches!(
            reader("bwfl-trace-v1 clients=0\n").unwrap_err(),
            TraceError::Header(_)
        ));
    }

    #[test]
    fn rejects_out_of_order_rounds() {
        let r = reader("bwfl-trace-v1 clients=4\n3 down 1\n1 up 1\n").unwrap();
        let results: Vec<_> = r.collect();
        assert!(results[0].is_ok());
        assert_eq!(results[1], Err(TraceError::OutOfOrder { line: 3 }));
        assert_eq!(results.len(), 2, "iterator fuses after the first error");
    }

    #[test]
    fn rejects_bad_event_lines() {
        for bad in [
            "0 explode 1",
            "0 down",
            "0 down x",
            "0 down 1 extra",
            "x down 1",
            "0 link 1 nan 0.1",
            "0 link 1 0.0 0.1",
            "0 link 1 -5.0 0.1",
            "0 join 1 1e6 -0.1",
            "0 link 1 1e6",
        ] {
            let text = format!("bwfl-trace-v1 clients=4\n{bad}\n");
            let r = reader(&text).unwrap();
            let results: Vec<_> = r.collect();
            assert!(
                matches!(results[0], Err(TraceError::Line { .. })),
                "line {bad:?} should be rejected, got {:?}",
                results[0]
            );
        }
    }

    #[test]
    fn rejects_out_of_range_client() {
        let r = reader("bwfl-trace-v1 clients=4\n0 down 4\n").unwrap();
        let results: Vec<_> = r.collect();
        assert!(matches!(results[0], Err(TraceError::Line { line: 2, .. })));
    }

    #[test]
    fn trace_scenario_buckets_events_by_round() {
        let text = "bwfl-trace-v1 clients=8\n0 down 3\n0 down 4\n2 up 3\n2 up 4\n";
        let mut s = TraceScenario::from_reader(Cursor::new(text.as_bytes())).unwrap();
        let mut buf = Vec::new();
        s.events_for_round(0, &mut buf);
        assert_eq!(buf.len(), 2);
        buf.clear();
        s.events_for_round(1, &mut buf);
        assert!(buf.is_empty());
        s.events_for_round(2, &mut buf);
        assert_eq!(buf.len(), 2);
        buf.clear();
        s.events_for_round(3, &mut buf);
        assert!(buf.is_empty());
    }

    #[test]
    fn recording_then_replaying_reproduces_events() {
        struct Scripted;
        impl Scenario for Scripted {
            fn name(&self) -> &'static str {
                "scripted"
            }
            fn events_for_round(&mut self, round: usize, out: &mut Vec<FleetEvent>) {
                if round == 0 {
                    out.push(FleetEvent::Down { client: 1 });
                    out.push(FleetEvent::LinkSet {
                        client: 2,
                        link: Link {
                            bandwidth_bps: 987654.321,
                            latency_s: 0.0625,
                        },
                    });
                } else if round == 3 {
                    out.push(FleetEvent::Up { client: 1 });
                }
            }
        }

        let mut rec = RecordingScenario::new(Scripted, 4);
        let mut original: Vec<Vec<FleetEvent>> = Vec::new();
        for round in 0..5 {
            let mut buf = Vec::new();
            rec.events_for_round(round, &mut buf);
            original.push(buf);
        }
        let trace = rec.into_trace();

        let mut replay =
            TraceScenario::from_reader(Cursor::new(trace.clone().into_bytes())).unwrap();
        assert_eq!(replay.num_clients(), 4);
        for (round, expected) in original.iter().enumerate() {
            let mut buf = Vec::new();
            replay.events_for_round(round, &mut buf);
            assert_eq!(&buf, expected, "round {round} (trace:\n{trace})");
        }
    }
}
