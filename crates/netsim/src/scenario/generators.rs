//! Built-in scenario generators: diurnal participation waves, Poisson
//! churn, tiered link classes with lognormal jitter, and spatially
//! correlated (shared-tower) dropout.
//!
//! All generators are pure functions of `(num_clients, seed)`: every random
//! decision flows through either a private [`Xoshiro256`] stream or a
//! per-client [`SplitMix64`] hash, so the same constructor inputs emit the
//! same event stream forever — the property the trace recorder and the
//! fingerprint tests rely on.

use super::{FleetEvent, Scenario};
use crate::link::{Link, LinkGenerator};
use fl_tensor::dist::{Normal, Uniform};
use fl_tensor::rng::{Rng, SplitMix64, Xoshiro256};

/// Stream constants separating the per-client hash domains of the different
/// generators (same trick as the session's seed-xor stream constants).
const STREAM_DIURNAL: u64 = 0xD1_u64;
const STREAM_TIER: u64 = 0x71E2;
const STREAM_TOWER: u64 = 0x70E2;

/// One stable 64-bit hash per `(seed, client, stream)` triple.
fn client_hash(seed: u64, client: usize, stream: u64) -> u64 {
    let mixed = seed
        ^ stream.wrapping_mul(0xA24B_AED4_963E_E407)
        ^ (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    SplitMix64::new(mixed).next_u64()
}

/// The hash mapped to a unit uniform in `[0, 1)`.
fn client_unit(seed: u64, client: usize, stream: u64) -> f64 {
    (client_hash(seed, client, stream) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Poisson draw. Knuth's product method below `lambda = 64`, a rounded
/// normal approximation above (the product method underflows), zero for a
/// non-positive rate.
fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 64.0 {
        let draw = Normal::new(lambda, lambda.sqrt()).sample(rng);
        return draw.round().max(0.0) as usize;
    }
    let limit = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.next_f64();
        if p <= limit {
            return k;
        }
        k += 1;
    }
}

/// Mean-one lognormal multiplier with shape `sigma`:
/// `exp(N(-sigma^2 / 2, sigma))`.
fn lognormal_jitter<R: Rng>(rng: &mut R, sigma: f64) -> f64 {
    Normal::new(-0.5 * sigma * sigma, sigma).sample(rng).exp()
}

/// Diurnal participation wave: the fraction of clients that are up follows
/// `min_up + (max_up - min_up) · (1 + sin(2π·round/period)) / 2`.
///
/// Each client holds a fixed hash position `u_i ∈ [0, 1)`; client `i` is up
/// whenever `u_i` lies below the current fraction. Rounds therefore only
/// emit events for clients whose position *crosses* the moving threshold —
/// the event stream is sparse even though the wave sweeps the whole fleet.
pub struct DiurnalScenario {
    num_clients: usize,
    seed: u64,
    period: f64,
    min_up: f64,
    max_up: f64,
    prev_frac: Option<f64>,
}

impl DiurnalScenario {
    /// Create a wave over `num_clients` clients: one full cycle every
    /// `period` rounds, participation oscillating between `min_up` and
    /// `max_up` (fractions of the fleet).
    pub fn new(num_clients: usize, seed: u64, period: f64, min_up: f64, max_up: f64) -> Self {
        assert!(period >= 2.0, "diurnal period must be at least 2 rounds");
        assert!(
            (0.0..=1.0).contains(&min_up) && (0.0..=1.0).contains(&max_up) && min_up < max_up,
            "diurnal fractions must satisfy 0 <= min_up < max_up <= 1"
        );
        Self {
            num_clients,
            seed,
            period,
            min_up,
            max_up,
            prev_frac: None,
        }
    }

    /// The target up-fraction at `round`.
    pub fn up_fraction(&self, round: usize) -> f64 {
        let phase = std::f64::consts::TAU * round as f64 / self.period;
        self.min_up + (self.max_up - self.min_up) * 0.5 * (1.0 + phase.sin())
    }
}

impl Scenario for DiurnalScenario {
    fn name(&self) -> &'static str {
        "diurnal"
    }

    fn events_for_round(&mut self, round: usize, out: &mut Vec<FleetEvent>) {
        let frac = self.up_fraction(round);
        let prev = self.prev_frac;
        self.prev_frac = Some(frac);
        for client in 0..self.num_clients {
            let u = client_unit(self.seed, client, STREAM_DIURNAL);
            let was_up = match prev {
                // The fleet starts fully up; round 0 establishes the wave.
                None => true,
                Some(p) => u < p,
            };
            let is_up = u < frac;
            if was_up && !is_up {
                out.push(FleetEvent::Down { client });
            } else if !was_up && is_up {
                out.push(FleetEvent::Up { client });
            }
        }
    }
}

/// Poisson device churn: every round, `Poisson(leave_rate · present)`
/// enrolled clients leave and `Poisson(join_rate · departed)` departed
/// clients re-join with a freshly drawn link.
///
/// `leave_rate` is a per-capita per-round departure probability;
/// `join_rate` governs how quickly the departed pool drains back in, so the
/// population hovers around `join / (join + leave)` of the fleet.
pub struct ChurnScenario {
    num_clients: usize,
    leave_rate: f64,
    join_rate: f64,
    /// Generator used to mint links for re-joining clients. Defaults to
    /// [`LinkGenerator::paper_default`]; swap it to churn a tiered fleet.
    pub links: LinkGenerator,
    rng: Xoshiro256,
    departed: Vec<usize>,
}

impl ChurnScenario {
    /// Create a churn process with the given per-capita rates (both in
    /// `[0, 1]`).
    pub fn new(num_clients: usize, seed: u64, leave_rate: f64, join_rate: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&leave_rate) && (0.0..=1.0).contains(&join_rate),
            "churn rates must lie in [0, 1]"
        );
        Self {
            num_clients,
            leave_rate,
            join_rate,
            links: LinkGenerator::paper_default(),
            rng: Xoshiro256::new(seed),
            departed: Vec::new(),
        }
    }
}

impl Scenario for ChurnScenario {
    fn name(&self) -> &'static str {
        "churn"
    }

    fn events_for_round(&mut self, _round: usize, out: &mut Vec<FleetEvent>) {
        // Re-joins draw from the pool as it stood at round start, so a
        // client cannot leave and re-join within one round.
        let rejoin_pool = self.departed.clone();

        let present: Vec<usize> = (0..self.num_clients)
            .filter(|c| !self.departed.contains(c))
            .collect();
        // Keep at least one client enrolled; an empty fleet has no rounds.
        let max_leaves = present.len().saturating_sub(1);
        let leaves = poisson(&mut self.rng, self.leave_rate * present.len() as f64).min(max_leaves);
        let leavers = self.rng.sample_without_replacement(present.len(), leaves);
        for &slot in &leavers {
            let client = present[slot];
            out.push(FleetEvent::Leave { client });
            self.departed.push(client);
        }

        let joins = poisson(&mut self.rng, self.join_rate * rejoin_pool.len() as f64)
            .min(rejoin_pool.len());
        let joiners = self
            .rng
            .sample_without_replacement(rejoin_pool.len(), joins);
        for &slot in &joiners {
            let client = rejoin_pool[slot];
            let link = self.links.sample_with(&mut self.rng);
            out.push(FleetEvent::Join { client, link });
            self.departed.retain(|&c| c != client);
        }
        self.departed.sort_unstable();
    }
}

/// One network tier: a named link-quality class with a population weight.
#[derive(Clone, Debug)]
pub struct TierClass {
    /// Human-readable tier name (`"cellular"`, `"wifi"`, ...).
    pub name: &'static str,
    /// Link distribution for clients in this tier.
    pub links: LinkGenerator,
    /// Relative share of the fleet assigned to this tier.
    pub weight: f64,
}

impl TierClass {
    /// The default three-tier fleet: half cellular (0.5 Mbit/s, 80–300 ms),
    /// a third wifi (2 Mbit/s, 20–100 ms), the rest datacenter
    /// (100 Mbit/s, 1–10 ms).
    pub fn default_tiers() -> Vec<TierClass> {
        let tier = |name, mean, std, lo, hi, weight| TierClass {
            name,
            links: LinkGenerator {
                bandwidth_mean_mbps: mean,
                bandwidth_std_mbps: std,
                latency_lo_ms: lo,
                latency_hi_ms: hi,
                ..LinkGenerator::paper_default()
            },
            weight,
        };
        vec![
            tier("cellular", 0.5, 0.15, 80.0, 300.0, 0.5),
            tier("wifi", 2.0, 0.5, 20.0, 100.0, 0.35),
            tier("datacenter", 100.0, 10.0, 1.0, 10.0, 0.15),
        ]
    }
}

/// Tiered links with lognormal jitter: each client is hashed into one
/// [`TierClass`], round 0 rebinds every link to its tier draw, and every
/// later round resamples a `resample` fraction of the fleet — new bandwidth
/// is the client's tier-base value times a mean-one lognormal with shape
/// `sigma`, clamped at the tier's [`LinkGenerator::floor_mbps`], with
/// latency redrawn from the tier's range.
pub struct TieredScenario {
    num_clients: usize,
    seed: u64,
    resample: f64,
    sigma: f64,
    tiers: Vec<TierClass>,
    rng: Xoshiro256,
}

impl TieredScenario {
    /// Create the default three-tier fleet (see [`TierClass::default_tiers`]).
    pub fn new(num_clients: usize, seed: u64, resample: f64, sigma: f64) -> Self {
        Self::with_tiers(
            num_clients,
            seed,
            resample,
            sigma,
            TierClass::default_tiers(),
        )
    }

    /// Create a tiered fleet with custom tier classes.
    pub fn with_tiers(
        num_clients: usize,
        seed: u64,
        resample: f64,
        sigma: f64,
        tiers: Vec<TierClass>,
    ) -> Self {
        assert!(!tiers.is_empty(), "tiered scenario needs at least one tier");
        assert!(
            (0.0..=1.0).contains(&resample),
            "resample fraction must lie in [0, 1]"
        );
        assert!(
            sigma >= 0.0 && sigma.is_finite(),
            "sigma must be finite and >= 0"
        );
        assert!(
            tiers.iter().all(|t| t.weight > 0.0),
            "tier weights must be positive"
        );
        Self {
            num_clients,
            seed,
            resample,
            sigma,
            tiers,
            rng: Xoshiro256::new(seed),
        }
    }

    /// The tier `client` is permanently assigned to.
    pub fn tier_of(&self, client: usize) -> &TierClass {
        let total: f64 = self.tiers.iter().map(|t| t.weight).sum();
        let u = client_unit(self.seed, client, STREAM_TIER) * total;
        let mut acc = 0.0;
        for tier in &self.tiers {
            acc += tier.weight;
            if u < acc {
                return tier;
            }
        }
        self.tiers.last().expect("tiers are non-empty")
    }

    /// The client's stable tier-base link (pure function of seed + client,
    /// so it is never stored).
    fn base_link(&self, client: usize) -> Link {
        let tier = self.tier_of(client);
        let mut rng = Xoshiro256::new(client_hash(self.seed, client, STREAM_TIER ^ 0xBA5E));
        tier.links.sample_with(&mut rng)
    }
}

impl Scenario for TieredScenario {
    fn name(&self) -> &'static str {
        "tiered"
    }

    fn events_for_round(&mut self, round: usize, out: &mut Vec<FleetEvent>) {
        if round == 0 {
            for client in 0..self.num_clients {
                let link = self.base_link(client);
                out.push(FleetEvent::LinkSet { client, link });
            }
            return;
        }
        let count = (self.resample * self.num_clients as f64).round() as usize;
        let count = count.min(self.num_clients);
        if count == 0 {
            return;
        }
        let chosen = self.rng.sample_without_replacement(self.num_clients, count);
        for client in chosen {
            let tier_links = self.tier_of(client).links.clone();
            let base = self.base_link(client);
            let jitter = lognormal_jitter(&mut self.rng, self.sigma);
            let bw_mbps = (base.bandwidth_mbps() * jitter).max(tier_links.floor_mbps());
            let lat_ms = Uniform::new(tier_links.latency_lo_ms, tier_links.latency_hi_ms)
                .sample(&mut self.rng);
            out.push(FleetEvent::LinkSet {
                client,
                link: Link::from_mbps_ms(bw_mbps, lat_ms),
            });
        }
    }
}

/// Spatially correlated dropout: clients are hashed into `groups` shared
/// towers, and a tower outage takes its whole membership down at once.
///
/// Every round each up tower fails with probability `outage` and each down
/// tower recovers with probability `repair`, so outages last
/// `1 / repair` rounds on average and the long-run fraction of towers down
/// is `outage / (outage + repair)`.
pub struct CorrelatedDropoutScenario {
    num_clients: usize,
    seed: u64,
    groups: usize,
    outage: f64,
    repair: f64,
    rng: Xoshiro256,
    down_towers: Vec<bool>,
}

impl CorrelatedDropoutScenario {
    /// Create a tower-outage process over `groups` towers.
    pub fn new(num_clients: usize, seed: u64, groups: usize, outage: f64, repair: f64) -> Self {
        assert!(groups >= 1, "need at least one tower group");
        assert!(
            (0.0..=1.0).contains(&outage) && (0.0..=1.0).contains(&repair),
            "outage/repair probabilities must lie in [0, 1]"
        );
        Self {
            num_clients,
            seed,
            groups,
            outage,
            repair,
            rng: Xoshiro256::new(seed),
            down_towers: vec![false; groups],
        }
    }

    /// The tower `client` is attached to.
    pub fn tower_of(&self, client: usize) -> usize {
        (client_hash(self.seed, client, STREAM_TOWER) % self.groups as u64) as usize
    }
}

impl Scenario for CorrelatedDropoutScenario {
    fn name(&self) -> &'static str {
        "towers"
    }

    fn events_for_round(&mut self, _round: usize, out: &mut Vec<FleetEvent>) {
        for tower in 0..self.groups {
            let flip = if self.down_towers[tower] {
                self.rng.next_bool(self.repair)
            } else {
                self.rng.next_bool(self.outage)
            };
            if !flip {
                continue;
            }
            let going_down = !self.down_towers[tower];
            self.down_towers[tower] = going_down;
            for client in 0..self.num_clients {
                if self.tower_of(client) != tower {
                    continue;
                }
                out.push(if going_down {
                    FleetEvent::Down { client }
                } else {
                    FleetEvent::Up { client }
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::FleetState;

    fn drive(mut s: impl Scenario, num_clients: usize, rounds: usize) -> Vec<Vec<FleetEvent>> {
        let mut all = Vec::new();
        let mut state = FleetState::new(num_clients);
        for round in 0..rounds {
            let mut buf = Vec::new();
            s.events_for_round(round, &mut buf);
            for ev in &buf {
                state.apply(ev).expect("generators stay in range");
            }
            all.push(buf);
        }
        all
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = Xoshiro256::new(1);
        for &lambda in &[0.5, 4.0, 30.0, 200.0] {
            let n = 20_000;
            let total: usize = (0..n).map(|_| poisson(&mut rng, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < 0.05 * lambda.max(1.0),
                "lambda={lambda}, mean={mean}"
            );
        }
        assert_eq!(poisson(&mut rng, 0.0), 0);
        assert_eq!(poisson(&mut rng, -3.0), 0);
    }

    #[test]
    fn lognormal_jitter_has_mean_one() {
        let mut rng = Xoshiro256::new(2);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| lognormal_jitter(&mut rng, 0.25)).sum();
        let mean = total / n as f64;
        assert!((mean - 1.0).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn diurnal_wave_tracks_the_sine() {
        let num = 400;
        let mut s = DiurnalScenario::new(num, 7, 8.0, 0.3, 0.95);
        let mut state = FleetState::new(num);
        let mut buf = Vec::new();
        let mut fracs = Vec::new();
        for round in 0..16 {
            buf.clear();
            let expected = s.up_fraction(round);
            s.events_for_round(round, &mut buf);
            for ev in &buf {
                state.apply(ev).unwrap();
            }
            let got = state.active_count() as f64 / num as f64;
            assert!(
                (got - expected).abs() < 0.08,
                "round {round}: active {got}, wave {expected}"
            );
            fracs.push(state.active_count());
        }
        let distinct: std::collections::BTreeSet<_> = fracs.iter().collect();
        assert!(distinct.len() > 4, "participation should actually vary");
    }

    #[test]
    fn diurnal_is_deterministic_and_sparse_after_round_zero() {
        let a = drive(DiurnalScenario::new(50, 3, 24.0, 0.3, 0.95), 50, 30);
        let b = drive(DiurnalScenario::new(50, 3, 24.0, 0.3, 0.95), 50, 30);
        assert_eq!(a, b);
        // Adjacent rounds move the threshold slightly; events per round
        // should be far below the fleet size.
        let later_max = a[1..].iter().map(|v| v.len()).max().unwrap();
        assert!(
            later_max < 25,
            "crossing deltas, not snapshots ({later_max})"
        );
    }

    #[test]
    fn churn_departs_and_rejoins() {
        let num = 60;
        let mut s = ChurnScenario::new(num, 11, 0.1, 0.3);
        let mut state = FleetState::new(num);
        let mut buf = Vec::new();
        let mut saw_leave = false;
        let mut saw_join = false;
        for round in 0..40 {
            buf.clear();
            s.events_for_round(round, &mut buf);
            for ev in &buf {
                saw_leave |= matches!(ev, FleetEvent::Leave { .. });
                saw_join |= matches!(ev, FleetEvent::Join { .. });
                state.apply(ev).unwrap();
            }
            assert!(state.active_count() >= 1, "fleet never fully empties");
        }
        assert!(saw_leave && saw_join);
        let again = drive(ChurnScenario::new(num, 11, 0.1, 0.3), num, 40);
        let first = drive(ChurnScenario::new(num, 11, 0.1, 0.3), num, 40);
        assert_eq!(again, first, "churn is deterministic");
    }

    #[test]
    fn tiers_produce_distinct_bandwidth_scales() {
        let num = 300;
        let mut s = TieredScenario::new(num, 5, 0.2, 0.25);
        let mut buf = Vec::new();
        s.events_for_round(0, &mut buf);
        assert_eq!(buf.len(), num, "round 0 rebinds every client");
        let mut by_tier: std::collections::BTreeMap<&str, Vec<f64>> = Default::default();
        let tiers: Vec<&str> = (0..num).map(|c| s.tier_of(c).name).collect();
        for (ev, tier) in buf.iter().zip(&tiers) {
            if let FleetEvent::LinkSet { link, .. } = ev {
                by_tier.entry(tier).or_default().push(link.bandwidth_mbps());
            }
        }
        assert_eq!(by_tier.len(), 3, "all three default tiers populated");
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(mean(&by_tier["datacenter"]) > 10.0 * mean(&by_tier["wifi"]));
        assert!(mean(&by_tier["wifi"]) > 2.0 * mean(&by_tier["cellular"]));
    }

    #[test]
    fn tiered_jitter_resamples_a_fraction() {
        let num = 100;
        let a = drive(TieredScenario::new(num, 9, 0.2, 0.25), num, 10);
        let b = drive(TieredScenario::new(num, 9, 0.2, 0.25), num, 10);
        assert_eq!(a, b, "tiered is deterministic");
        for round_events in &a[1..] {
            assert_eq!(round_events.len(), 20, "resample=0.2 of 100 clients");
        }
    }

    #[test]
    fn tower_outages_are_correlated() {
        let num = 120;
        let mut s = CorrelatedDropoutScenario::new(num, 13, 4, 0.3, 0.5);
        let towers: Vec<usize> = (0..num).map(|c| s.tower_of(c)).collect();
        let mut buf = Vec::new();
        let mut saw_group_down = false;
        for round in 0..30 {
            buf.clear();
            s.events_for_round(round, &mut buf);
            let downs: Vec<usize> = buf
                .iter()
                .filter_map(|e| match e {
                    FleetEvent::Down { client } => Some(*client),
                    _ => None,
                })
                .collect();
            if !downs.is_empty() {
                // Every Down in one round belongs to a whole tower: the
                // affected tower set fully covers its membership.
                let affected: std::collections::BTreeSet<usize> =
                    downs.iter().map(|&c| towers[c]).collect();
                let expected: usize = towers.iter().filter(|t| affected.contains(t)).count();
                // Some members may already be down from a previous outage of
                // another tower? No: towers are disjoint, so counts match.
                assert_eq!(downs.len(), expected, "round {round}");
                saw_group_down = true;
            }
        }
        assert!(saw_group_down, "0.3 outage over 30 rounds should fire");
        let a = drive(
            CorrelatedDropoutScenario::new(num, 13, 4, 0.3, 0.5),
            num,
            30,
        );
        let b = drive(
            CorrelatedDropoutScenario::new(num, 13, 4, 0.3, 0.5),
            num,
            30,
        );
        assert_eq!(a, b);
    }
}
