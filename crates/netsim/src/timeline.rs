//! Per-client round timelines: who was transmitting and who was waiting.
//!
//! This is the data behind the paper's Fig. 1 (uncompressed vs. uniform
//! compression vs. adaptive compression) — for each client the round is split
//! into a busy phase (training + uploading) and a waiting phase (idle until
//! the straggler finishes).

use serde::{Deserialize, Serialize};

/// One client's view of a communication round.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClientTimeline {
    /// Client index within the selected cohort.
    pub client_id: usize,
    /// Time spent downloading the global model (seconds).
    pub download_s: f64,
    /// Time spent on local training (seconds).
    pub training_s: f64,
    /// Time spent uploading the (possibly compressed) update (seconds).
    pub upload_s: f64,
    /// Idle time waiting for the slowest client (seconds).
    pub waiting_s: f64,
}

impl ClientTimeline {
    /// Time this client is busy (download + training + upload).
    pub fn busy_s(&self) -> f64 {
        self.download_s + self.training_s + self.upload_s
    }

    /// Total wall-clock time including waiting.
    pub fn total_s(&self) -> f64 {
        self.busy_s() + self.waiting_s
    }
}

/// The timeline of one full round across the selected clients.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct RoundTimeline {
    clients: Vec<ClientTimeline>,
}

impl RoundTimeline {
    /// Build the round timeline from per-client busy phases; waiting times are
    /// derived so every client finishes together with the straggler
    /// (synchronous FL).
    pub fn synchronous(download_s: &[f64], training_s: &[f64], upload_s: &[f64]) -> Self {
        assert!(!download_s.is_empty(), "at least one client required");
        assert_eq!(download_s.len(), training_s.len());
        assert_eq!(download_s.len(), upload_s.len());
        let busy: Vec<f64> = (0..download_s.len())
            .map(|i| download_s[i] + training_s[i] + upload_s[i])
            .collect();
        let round_end = busy.iter().cloned().fold(0.0f64, f64::max);
        let clients = (0..download_s.len())
            .map(|i| ClientTimeline {
                client_id: i,
                download_s: download_s[i],
                training_s: training_s[i],
                upload_s: upload_s[i],
                waiting_s: round_end - busy[i],
            })
            .collect();
        Self { clients }
    }

    /// Per-client timelines.
    pub fn clients(&self) -> &[ClientTimeline] {
        &self.clients
    }

    /// Round duration (the straggler's busy time).
    pub fn duration_s(&self) -> f64 {
        self.clients
            .iter()
            .map(|c| c.busy_s())
            .fold(0.0f64, f64::max)
    }

    /// Total idle time summed over clients — the "wasted" resource BCRS
    /// reclaims by letting fast clients send more data.
    pub fn total_waiting_s(&self) -> f64 {
        self.clients.iter().map(|c| c.waiting_s).sum()
    }

    /// Fraction of total client-time that is spent waiting.
    pub fn waiting_fraction(&self) -> f64 {
        let total: f64 = self.clients.iter().map(|c| c.total_s()).sum();
        if total == 0.0 {
            0.0
        } else {
            self.total_waiting_s() / total
        }
    }

    /// Render as CSV (`client,download,training,upload,waiting`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("client,download_s,training_s,upload_s,waiting_s\n");
        for c in &self.clients {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6}\n",
                c.client_id, c.download_s, c.training_s, c.upload_s, c.waiting_s
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synchronous_waiting_derivation() {
        let tl = RoundTimeline::synchronous(&[0.1, 0.1, 0.1], &[1.0, 1.0, 1.0], &[0.5, 1.5, 2.5]);
        assert_eq!(tl.duration_s(), 3.6);
        let waits: Vec<f64> = tl.clients().iter().map(|c| c.waiting_s).collect();
        assert!((waits[0] - 2.0).abs() < 1e-9);
        assert!((waits[1] - 1.0).abs() < 1e-9);
        assert!((waits[2] - 0.0).abs() < 1e-9);
        // Every client ends at the same wall-clock time.
        for c in tl.clients() {
            assert!((c.total_s() - 3.6).abs() < 1e-9);
        }
    }

    #[test]
    fn waiting_fraction_bounds() {
        let tl = RoundTimeline::synchronous(&[0.0, 0.0], &[1.0, 1.0], &[1.0, 3.0]);
        let f = tl.waiting_fraction();
        assert!(f > 0.0 && f < 1.0);
        // Homogeneous clients => no waiting.
        let tl2 = RoundTimeline::synchronous(&[0.0; 3], &[1.0; 3], &[1.0; 3]);
        assert_eq!(tl2.waiting_fraction(), 0.0);
    }

    #[test]
    fn csv_has_header_and_rows() {
        let tl = RoundTimeline::synchronous(&[0.1, 0.1], &[1.0, 1.0], &[0.2, 0.4]);
        let csv = tl.to_csv();
        assert_eq!(csv.lines().count(), 3);
        assert!(csv.starts_with("client,"));
    }

    #[test]
    #[should_panic]
    fn empty_round_rejected() {
        RoundTimeline::synchronous(&[], &[], &[]);
    }
}
