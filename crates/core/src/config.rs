//! Experiment configuration: one struct that fully determines a run.

use crate::algorithm::Algorithm;
use fl_compress::{CodecRegistry, CompressorSpec, LayerPlan};
use fl_data::DatasetPreset;
use fl_netsim::{CostBasis, LinkGenerator, ScenarioSpec};
use serde::{Deserialize, Serialize};

/// Which model architecture the clients train.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub enum ModelPreset {
    /// Multi-layer perceptron with two hidden layers (default; see DESIGN.md
    /// §4 for why this substitutes for the paper's ResNet-18).
    Mlp {
        /// First hidden layer width.
        hidden1: usize,
        /// Second hidden layer width.
        hidden2: usize,
    },
    /// Single linear layer (logistic regression) — cheapest, used in tests.
    Linear,
}

impl ModelPreset {
    /// The default MLP used by the experiment suite.
    pub fn default_mlp() -> Self {
        ModelPreset::Mlp {
            hidden1: 128,
            hidden2: 64,
        }
    }

    /// The segment names of this preset's [`fl_nn::ParamLayout`]. They depend
    /// only on the architecture, not the dataset dimensions, so validation
    /// can check a layer plan's coverage before any data exists (a probe
    /// model with unit dimensions is built to stay aligned with the real
    /// layout derivation).
    pub fn segment_names(&self) -> Vec<String> {
        let mut rng = fl_tensor::rng::Xoshiro256::new(0);
        let probe = crate::client::build_model(self, 1, 1, &mut rng);
        fl_nn::ParamLayout::of(&probe)
            .names()
            .map(String::from)
            .collect()
    }
}

/// Everything needed to run one federated-learning experiment.
///
/// ```
/// use fl_core::{Algorithm, ExperimentConfig};
/// use fl_data::DatasetPreset;
///
/// // The paper's Table-2 cell "BCRS+OPWA, CIFAR-10, beta = 0.1, CR = 0.01".
/// let config = ExperimentConfig::paper_setting(
///     Algorithm::BcrsOpwa,
///     DatasetPreset::Cifar10Like,
///     0.1,
///     0.01,
/// );
/// assert!(config.validate().is_ok());
/// assert_eq!(config.rounds, 200);
/// assert_eq!(config.clients_per_round(), 5);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentConfig {
    /// Algorithm under evaluation.
    pub algorithm: Algorithm,
    /// Dataset preset (CIFAR-10-like, CIFAR-100-like, SVHN-like).
    pub dataset: DatasetPreset,
    /// Dataset scale factor (1.0 = full synthetic size; smaller for quick runs).
    pub dataset_scale: f64,
    /// Model architecture.
    pub model: ModelPreset,
    /// Total number of clients `N` (paper: 10, 16, 20).
    pub num_clients: usize,
    /// Fraction of clients selected per round `C` (paper: 0.5).
    pub participation: f64,
    /// Number of communication rounds `T` (paper: 200).
    pub rounds: usize,
    /// Local epochs per round `E` (paper: 1).
    pub local_epochs: usize,
    /// Mini-batch size (paper: 64).
    pub batch_size: usize,
    /// Local SGD learning rate `η`.
    pub local_lr: f32,
    /// Local SGD momentum.
    pub momentum: f32,
    /// Local weight decay.
    pub weight_decay: f32,
    /// Server learning rate applied to the aggregated update.
    pub server_lr: f32,
    /// Dirichlet heterogeneity level `β` (paper: 0.1 severe, 0.5 moderate).
    pub beta: f64,
    /// Base/uniform compression ratio `CR` (paper: 0.1 or 0.01).
    pub compression_ratio: f64,
    /// BCRS averaging-coefficient scale `α` (Eq. 6; paper tunes over
    /// {0.01, 0.03, 0.1, 0.3, 1}).
    pub alpha: f64,
    /// OPWA enlarge rate `γ` (Alg. 3; paper explores 1..N).
    pub gamma: f32,
    /// OPWA overlap threshold `D`: coordinates retained by at most `D`
    /// clients are enlarged (paper default: 1).
    pub overlap_threshold: usize,
    /// Ablation switch: disable the Eq. 6 coefficient clamp and use plain
    /// data-fraction weights with BCRS.
    pub disable_coefficient_adjustment: bool,
    /// Network link generator (paper Section 5.2 defaults).
    pub links: LinkGenerator,
    /// Master seed; every random decision in the run derives from it.
    pub seed: u64,
    /// Maximum worker threads for parallel client training (0 = auto).
    pub max_threads: usize,
    /// Record the overlap-degree histogram every round (costs a little time;
    /// needed only by the Fig. 4 experiment).
    pub record_overlap: bool,
    /// Evaluate the global model every this many rounds (1 = every round,
    /// the paper's setting). The final round is always evaluated; skipped
    /// rounds repeat the most recent evaluation in their records (NaN before
    /// the first evaluation point). Larger values speed up long sweeps.
    pub eval_every: usize,
    /// Per-round, per-client dropout probability in `[0, 1)`. When positive
    /// the session uses the availability-aware selector (cohorts shrink when
    /// clients are down); `0.0` is the paper's always-available setting.
    pub dropout_rate: f64,
    /// Server momentum `β` in `[0, 1)` (FedAvgM-style heavy ball applied to
    /// the aggregated update); `0.0` is the paper's plain server update.
    pub server_momentum: f32,
    /// Codec override for the clients' uplink compression. `None` (default)
    /// uses the algorithm-implied codec (`topk`, `ef-topk` or `randk`, see
    /// [`crate::policy::default_codec_spec`]); any parseable
    /// [`CompressorSpec`] — `"qsgd:8"`, `"threshold:0.01"`, `"topk+qsgd:4"`,
    /// … — runs the same algorithm over that codec instead.
    pub compressor: Option<CompressorSpec>,
    /// Layer-aware codec plan for the clients' uplink compression. `None`
    /// (default) keeps the flat, whole-vector codec path. `Some(plan)`
    /// assigns one codec per named parameter segment of the model's
    /// [`fl_nn::ParamLayout`] via first-match glob rules —
    /// `"conv*=topk;*.bias=dense;*=ef-topk+qsgd:4"` — resolved through the
    /// same [`CodecRegistry`] as flat specs. Mutually exclusive with
    /// [`compressor`](Self::compressor): a plan *is* the uplink codec
    /// assignment. A uniform plan (`"*=topk"`) collapses to the flat codec
    /// and reproduces its records bit for bit; a genuinely mixed plan frames
    /// per-segment payloads into the `Segmented` wire kind, `RoundRecord`
    /// gains a per-layer byte breakdown, and the framing overhead is charged
    /// exactly under [`CostBasis::Encoded`]. The flat pipeline's
    /// OPWA/overlap restrictions apply **per rule**: any rule whose spec
    /// decodes dense (pure quantizers) is rejected in combination with OPWA
    /// algorithms or `record_overlap`.
    pub layer_compressors: Option<LayerPlan>,
    /// Codec for the server→client broadcast (downlink) leg. `None` (default,
    /// the paper's setting) teleports the global model to the clients for
    /// free, exactly as the analytic reproduction always has. `Some(spec)`
    /// simulates the broadcast honestly: each round the aggregated global
    /// delta is encoded once through this codec (resolved via the same
    /// [`CodecRegistry`] as the uplink, at the base `compression_ratio`),
    /// clients train from the decoded — lossy — view, `RoundRecord` reports
    /// the encoded buffer's length as `downlink_bytes`, and the per-client
    /// download time joins the round's straggler bound. Error-feedback specs
    /// (`"ef-topk"`, …) keep their residual server-side. Dense-decoding specs
    /// (`"qsgd:8"`) are fine here even with OPWA algorithms — the overlap
    /// machinery concerns the *uplink* updates only.
    pub downlink_compressor: Option<CompressorSpec>,
    /// How the network simulator prices transfers:
    /// [`CostBasis::Analytic`] (default) charges the paper's `2·V·CR`
    /// formula on both legs, [`CostBasis::Encoded`] charges the encoded wire
    /// bytes exactly.
    pub cost_basis: CostBasis,
    /// Fleet-dynamics scenario layered on top of the static link draw.
    /// `None` (default) keeps the paper's static fleet — every client always
    /// reachable over its up-front link — and is bit-identical to builds
    /// without the scenario engine. `Some(spec)` drives per-round
    /// [`fl_netsim::FleetEvent`]s (diurnal participation waves, Poisson
    /// churn, tiered link jitter, correlated tower outages, or a recorded
    /// `trace:<file>` replay; see [`ScenarioSpec`]): the session selects its
    /// cohorts from the currently reachable clients via
    /// [`crate::scenario::ScenarioSelector`], prices transfers over the
    /// scenario's per-round link overrides, and reports participation/churn
    /// telemetry in each [`crate::runner::RoundRecord`]. Scenario randomness
    /// draws from a dedicated seed stream
    /// ([`crate::scenario::scenario_seed`]), so enabling a scenario never
    /// perturbs the training/data/selection streams.
    pub scenario: Option<ScenarioSpec>,
    /// Layer-aware codec plan for the server→client broadcast (downlink)
    /// leg. `None` (default) keeps the flat downlink path
    /// ([`downlink_compressor`](Self::downlink_compressor), or the free
    /// teleport when that is `None` too). `Some(plan)` resolves one codec
    /// per named parameter segment — exactly like
    /// [`layer_compressors`](Self::layer_compressors), but for the broadcast
    /// — and always frames the broadcast as a `Segmented` wire buffer, so
    /// [`crate::runner::RoundRecord::layer_bytes`] reports honest per-layer
    /// downlink splits. Mutually exclusive with
    /// [`downlink_compressor`](Self::downlink_compressor). Rules are
    /// validated per rule against the codec registry and must cover every
    /// model segment; dense-decoding rules (pure quantizers) are fine here
    /// even with OPWA algorithms — the overlap machinery concerns the
    /// *uplink* updates only.
    pub downlink_layer_compressors: Option<LayerPlan>,
    /// Adaptive per-layer plan policy for the clients' uplink compression
    /// (see [`crate::policy::AdaptivePlanSpec`]). `None` (default) keeps
    /// every static path bit-identical. `Some(spec)` re-resolves the
    /// per-segment codec plan every round in the select stage:
    /// `static:<plan>` pins a fixed plan (record fields other than the plan
    /// telemetry match a `layer_compressors` run exactly), `layer-bcrs`
    /// re-splits the round's coordinate budget by observed per-layer
    /// gradient mass through the BCRS scheduler. Mutually exclusive with
    /// [`compressor`](Self::compressor) and
    /// [`layer_compressors`](Self::layer_compressors): an adaptive plan *is*
    /// the uplink codec assignment. Static plans are validated exactly like
    /// `layer_compressors` plans (per-rule registry + OPWA/dense checks,
    /// full segment coverage).
    pub adaptive_plan: Option<crate::policy::AdaptivePlanSpec>,
}

impl Default for ExperimentConfig {
    fn default() -> Self {
        Self {
            algorithm: Algorithm::BcrsOpwa,
            dataset: DatasetPreset::Cifar10Like,
            dataset_scale: 1.0,
            model: ModelPreset::default_mlp(),
            num_clients: 10,
            participation: 0.5,
            rounds: 200,
            local_epochs: 1,
            batch_size: 64,
            local_lr: 0.05,
            momentum: 0.9,
            weight_decay: 1e-4,
            server_lr: 1.0,
            beta: 0.5,
            compression_ratio: 0.1,
            alpha: 0.3,
            gamma: 5.0,
            overlap_threshold: 1,
            disable_coefficient_adjustment: false,
            links: LinkGenerator::paper_default(),
            seed: 42,
            max_threads: 0,
            record_overlap: false,
            eval_every: 1,
            dropout_rate: 0.0,
            server_momentum: 0.0,
            compressor: None,
            layer_compressors: None,
            downlink_compressor: None,
            cost_basis: CostBasis::Analytic,
            scenario: None,
            downlink_layer_compressors: None,
            adaptive_plan: None,
        }
    }
}

impl ExperimentConfig {
    /// The paper's main-table setting for a given algorithm, dataset,
    /// heterogeneity and compression ratio.
    pub fn paper_setting(
        algorithm: Algorithm,
        dataset: DatasetPreset,
        beta: f64,
        compression_ratio: f64,
    ) -> Self {
        Self {
            algorithm,
            dataset,
            beta,
            compression_ratio,
            ..Default::default()
        }
    }

    /// A small, fast configuration used by tests and `--quick` benches:
    /// fewer rounds, a smaller synthetic dataset and a linear model.
    pub fn quick(algorithm: Algorithm) -> Self {
        Self {
            algorithm,
            dataset_scale: 0.1,
            model: ModelPreset::Mlp {
                hidden1: 32,
                hidden2: 16,
            },
            rounds: 10,
            batch_size: 32,
            // The quick dataset is tiny, so a slightly larger local learning
            // rate keeps short smoke runs informative.
            local_lr: 0.1,
            ..Default::default()
        }
    }

    /// Number of clients selected each round (`max(1, round(N · C))`).
    pub fn clients_per_round(&self) -> usize {
        ((self.num_clients as f64 * self.participation).round() as usize).clamp(1, self.num_clients)
    }

    /// Validate parameter ranges, returning a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_clients == 0 {
            return Err("num_clients must be positive".into());
        }
        if !(0.0..=1.0).contains(&self.participation) || self.participation == 0.0 {
            return Err("participation must be in (0, 1]".into());
        }
        if self.rounds == 0 {
            return Err("rounds must be positive".into());
        }
        if self.local_epochs == 0 {
            return Err("local_epochs must be positive".into());
        }
        if self.batch_size == 0 {
            return Err("batch_size must be positive".into());
        }
        if !(self.compression_ratio > 0.0 && self.compression_ratio <= 1.0) {
            return Err("compression_ratio must be in (0, 1]".into());
        }
        if self.beta <= 0.0 {
            return Err("beta must be positive".into());
        }
        if self.alpha <= 0.0 {
            return Err("alpha must be positive".into());
        }
        if self.gamma < 1.0 {
            return Err("gamma must be >= 1".into());
        }
        if self.local_lr <= 0.0 || self.server_lr <= 0.0 {
            return Err("learning rates must be positive".into());
        }
        if self.dataset_scale <= 0.0 {
            return Err("dataset_scale must be positive".into());
        }
        if self.eval_every == 0 {
            return Err("eval_every must be positive".into());
        }
        if !(0.0..1.0).contains(&self.dropout_rate) {
            return Err("dropout_rate must be in [0, 1)".into());
        }
        if !(0.0..1.0).contains(&self.server_momentum) {
            return Err("server_momentum must be in [0, 1)".into());
        }
        let registry = CodecRegistry::with_builtins();
        if let Some(spec) = &self.compressor {
            registry
                .validate(spec)
                .map_err(|e| format!("invalid compressor spec {spec}: {e}"))?;
        }
        if let Some(plan) = &self.layer_compressors {
            plan.validate(&registry)
                .map_err(|e| format!("invalid layer plan {plan}: {e}"))?;
        }
        if let Some(spec) = &self.downlink_compressor {
            registry
                .validate(spec)
                .map_err(|e| format!("invalid downlink compressor spec {spec}: {e}"))?;
        }
        if let Some(plan) = &self.downlink_layer_compressors {
            plan.validate(&registry)
                .map_err(|e| format!("invalid downlink layer plan {plan}: {e}"))?;
        }
        if let Some(crate::policy::AdaptivePlanSpec::Static(plan)) = &self.adaptive_plan {
            plan.validate(&registry)
                .map_err(|e| format!("invalid adaptive plan {plan}: {e}"))?;
        }
        if let Some(spec) = &self.scenario {
            spec.validate()
                .map_err(|e| format!("invalid scenario spec {spec}: {e}"))?;
        }
        self.validate_compressor_semantics()
    }

    /// Like [`validate`](Self::validate), but resolving the compressor spec
    /// against a caller-supplied registry instead of the built-ins.
    /// [`crate::session::SessionBuilder`] calls this with its configured
    /// registry so custom codecs pass validation.
    pub fn validate_with_registry(&self, registry: &CodecRegistry) -> Result<(), String> {
        if let Some(spec) = &self.compressor {
            registry
                .validate(spec)
                .map_err(|e| format!("invalid compressor spec {spec}: {e}"))?;
        }
        if let Some(plan) = &self.layer_compressors {
            plan.validate(registry)
                .map_err(|e| format!("invalid layer plan {plan}: {e}"))?;
        }
        if let Some(spec) = &self.downlink_compressor {
            registry
                .validate(spec)
                .map_err(|e| format!("invalid downlink compressor spec {spec}: {e}"))?;
        }
        if let Some(plan) = &self.downlink_layer_compressors {
            plan.validate(registry)
                .map_err(|e| format!("invalid downlink layer plan {plan}: {e}"))?;
        }
        if let Some(crate::policy::AdaptivePlanSpec::Static(plan)) = &self.adaptive_plan {
            plan.validate(registry)
                .map_err(|e| format!("invalid adaptive plan {plan}: {e}"))?;
        }
        let mut without_spec = self.clone();
        without_spec.compressor = None;
        without_spec.layer_compressors = None;
        without_spec.downlink_compressor = None;
        without_spec.downlink_layer_compressors = None;
        without_spec.adaptive_plan = match &self.adaptive_plan {
            // Keep the non-spec variants so their semantics are re-checked.
            Some(crate::policy::AdaptivePlanSpec::Static(_)) | None => None,
            other => other.clone(),
        };
        without_spec.validate()?;
        self.validate_compressor_semantics()
    }

    fn validate_compressor_semantics(&self) -> Result<(), String> {
        if let Some(spec) = &self.compressor {
            if spec.produces_dense() && self.algorithm.uses_opwa() {
                return Err(format!(
                    "algorithm {} applies the OPWA overlap mask, but compressor {spec} \
                     decodes to dense updates with no overlap structure",
                    self.algorithm.name()
                ));
            }
            if spec.produces_dense() && self.record_overlap {
                return Err(format!(
                    "record_overlap is set, but compressor {spec} decodes to dense \
                     updates with no overlap structure"
                ));
            }
        }
        if let Some(plan) = &self.layer_compressors {
            if self.compressor.is_some() {
                return Err(
                    "layer_compressors and compressor are mutually exclusive: a layer plan \
                     is the uplink codec assignment (use a uniform \"*=<spec>\" plan for a \
                     single codec)"
                        .into(),
                );
            }
            self.validate_uplink_plan_semantics(plan, "layer-plan")?;
        }
        if let Some(plan) = &self.downlink_layer_compressors {
            if self.downlink_compressor.is_some() {
                return Err(
                    "downlink_layer_compressors and downlink_compressor are mutually \
                     exclusive: a downlink layer plan is the broadcast codec assignment \
                     (use a uniform \"*=<spec>\" plan for a single codec)"
                        .into(),
                );
            }
            // The same per-rule coverage discipline as the uplink — a
            // downlink plan must assign every model segment a codec. Only
            // the OPWA/dense exemptions stay: the overlap machinery analyses
            // uplink updates, so dense-decoding broadcast rules are fine.
            for name in self.model.segment_names() {
                if plan.spec_for(&name).is_none() {
                    return Err(format!(
                        "downlink layer plan {plan} leaves segment {name:?} without a \
                         matching rule (add a catch-all \"*=<spec>\")"
                    ));
                }
            }
        }
        match &self.adaptive_plan {
            None => {}
            Some(spec) => {
                if self.compressor.is_some() || self.layer_compressors.is_some() {
                    return Err("adaptive_plan is mutually exclusive with compressor and \
                         layer_compressors: the plan policy owns the uplink codec \
                         assignment (use adaptive_plan = \"static:<plan>\" for a fixed \
                         plan)"
                        .into());
                }
                if let crate::policy::AdaptivePlanSpec::Static(plan) = spec {
                    self.validate_uplink_plan_semantics(plan, "adaptive-plan")?;
                }
            }
        }
        Ok(())
    }

    /// Coverage and per-rule overlap checks every uplink layer plan — static
    /// `layer_compressors` or an `adaptive_plan = "static:…"` — must pass.
    fn validate_uplink_plan_semantics(&self, plan: &LayerPlan, what: &str) -> Result<(), String> {
        // Coverage is a validation error, not a construction panic: every
        // segment of the configured model preset must match some rule.
        for name in self.model.segment_names() {
            if plan.spec_for(&name).is_none() {
                return Err(format!(
                    "layer plan {plan} leaves segment {name:?} without a matching \
                     rule (add a catch-all \"*=<spec>\")"
                ));
            }
        }
        // The flat pipeline's restrictions apply per rule: any rule that
        // could hand a segment a dense-decoding codec breaks the overlap
        // analysis for the whole update.
        for rule in &plan.rules {
            if rule.spec.produces_dense() && self.algorithm.uses_opwa() {
                return Err(format!(
                    "algorithm {} applies the OPWA overlap mask, but {what} rule \
                     {}={} decodes to dense segments with no overlap structure",
                    self.algorithm.name(),
                    rule.pattern,
                    rule.spec
                ));
            }
            if rule.spec.produces_dense() && self.record_overlap {
                return Err(format!(
                    "record_overlap is set, but {what} rule {}={} decodes to \
                     dense segments with no overlap structure",
                    rule.pattern, rule.spec
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let c = ExperimentConfig::default();
        assert!(c.validate().is_ok());
        assert_eq!(c.num_clients, 10);
        assert_eq!(c.rounds, 200);
        assert_eq!(c.local_epochs, 1);
        assert_eq!(c.batch_size, 64);
        assert_eq!(c.clients_per_round(), 5);
    }

    #[test]
    fn quick_config_is_valid() {
        assert!(ExperimentConfig::quick(Algorithm::TopK).validate().is_ok());
    }

    #[test]
    fn clients_per_round_bounds() {
        let mut c = ExperimentConfig {
            num_clients: 20,
            participation: 0.5,
            ..Default::default()
        };
        assert_eq!(c.clients_per_round(), 10);
        c.participation = 0.01;
        assert_eq!(c.clients_per_round(), 1);
        c.participation = 1.0;
        assert_eq!(c.clients_per_round(), 20);
    }

    #[test]
    fn validation_catches_bad_values() {
        let c = ExperimentConfig {
            compression_ratio: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ExperimentConfig {
            gamma: 0.5,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ExperimentConfig {
            participation: 0.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ExperimentConfig {
            rounds: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ExperimentConfig {
            eval_every: 0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ExperimentConfig {
            dropout_rate: 1.0,
            ..Default::default()
        };
        assert!(c.validate().is_err());
        let c = ExperimentConfig {
            server_momentum: -0.1,
            ..Default::default()
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn scenario_knobs_default_to_paper_behaviour() {
        let c = ExperimentConfig::default();
        assert_eq!(c.eval_every, 1);
        assert_eq!(c.dropout_rate, 0.0);
        assert_eq!(c.server_momentum, 0.0);
        let c = ExperimentConfig {
            eval_every: 5,
            dropout_rate: 0.3,
            server_momentum: 0.9,
            ..Default::default()
        };
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scenario_knob_defaults_to_none_and_is_validated() {
        let c = ExperimentConfig::default();
        assert!(c.scenario.is_none());
        let good = ExperimentConfig {
            scenario: Some("diurnal".parse().unwrap()),
            ..Default::default()
        };
        assert!(good.validate().is_ok());
        // Out-of-range parameters are caught with a pointed message (a spec
        // constructed directly — the string form rejects these at parse time).
        let bad = ExperimentConfig {
            scenario: Some(ScenarioSpec::Diurnal {
                period: 8.0,
                min_up: 0.9,
                max_up: 0.1,
            }),
            ..Default::default()
        };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("invalid scenario spec"), "{err}");
    }

    #[test]
    fn codec_knobs_default_to_paper_behaviour() {
        let c = ExperimentConfig::default();
        assert_eq!(c.compressor, None);
        assert_eq!(c.downlink_compressor, None);
        assert_eq!(c.cost_basis, CostBasis::Analytic);
    }

    #[test]
    fn downlink_spec_is_validated_but_exempt_from_overlap_rules() {
        // Unresolvable downlink specs fail validation with a pointed message.
        let bad = ExperimentConfig {
            downlink_compressor: Some("no-such-codec".parse().unwrap()),
            ..Default::default()
        };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("downlink"), "{err}");
        // A dense-decoding broadcast codec is fine even under OPWA — the
        // overlap machinery analyses the *uplink* updates only.
        let dense_downlink = ExperimentConfig {
            algorithm: Algorithm::BcrsOpwa,
            downlink_compressor: Some("qsgd:8".parse().unwrap()),
            ..Default::default()
        };
        assert!(dense_downlink.validate().is_ok());
        // EF broadcast codecs validate too.
        let ef = ExperimentConfig {
            downlink_compressor: Some("ef-topk".parse().unwrap()),
            cost_basis: CostBasis::Encoded,
            ..Default::default()
        };
        assert!(ef.validate().is_ok());
    }

    #[test]
    fn compressor_override_is_validated() {
        let good = ExperimentConfig {
            compressor: Some("topk+qsgd:4".parse().unwrap()),
            cost_basis: CostBasis::Encoded,
            ..Default::default()
        };
        assert!(good.validate().is_ok());
        // Parseable but unresolvable specs are caught at validation time.
        let bad = ExperimentConfig {
            compressor: Some("no-such-codec".parse().unwrap()),
            ..Default::default()
        };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("no-such-codec"), "{err}");
    }

    #[test]
    fn dense_codecs_cannot_pair_with_overlap_machinery() {
        // Pure quantizers decode dense — no overlap degrees exist, so OPWA
        // algorithms and overlap recording reject them up front.
        let opwa = ExperimentConfig {
            algorithm: Algorithm::BcrsOpwa,
            compressor: Some("qsgd:8".parse().unwrap()),
            ..Default::default()
        };
        assert!(opwa.validate().unwrap_err().contains("OPWA"));
        let recording = ExperimentConfig {
            algorithm: Algorithm::TopK,
            record_overlap: true,
            compressor: Some("qsgd:8".parse().unwrap()),
            ..Default::default()
        };
        assert!(recording.validate().unwrap_err().contains("record_overlap"));
        // The composed sparsify+quantize form keeps overlap structure.
        let composed = ExperimentConfig {
            algorithm: Algorithm::BcrsOpwa,
            compressor: Some("topk+qsgd:4".parse().unwrap()),
            ..Default::default()
        };
        assert!(composed.validate().is_ok());
    }

    #[test]
    fn layer_plan_knob_is_validated() {
        // A well-formed plan with resolvable specs passes.
        let good = ExperimentConfig {
            algorithm: Algorithm::TopK,
            layer_compressors: Some("*.bias=dense;*=topk".parse().unwrap()),
            ..Default::default()
        };
        assert!(good.validate().is_ok());
        // Unresolvable rule specs are caught with a pointed message.
        let bad = ExperimentConfig {
            layer_compressors: Some("*=no-such-codec".parse().unwrap()),
            ..Default::default()
        };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("layer plan"), "{err}");
        assert!(err.contains("no-such-codec"), "{err}");
    }

    #[test]
    fn layer_plan_without_full_coverage_fails_validation() {
        // A plan that leaves model segments unmatched must fail `validate()`
        // up front — not panic later inside session construction (a sweep
        // worker thread is the worst place to discover it).
        let gap = ExperimentConfig {
            algorithm: Algorithm::TopK,
            layer_compressors: Some("conv*=topk".parse().unwrap()),
            ..Default::default()
        };
        let err = gap.validate().unwrap_err();
        assert!(err.contains("without a matching rule"), "{err}");
        assert!(err.contains("linear0"), "{err}");
        // Preset segment names follow the architecture.
        assert_eq!(
            ModelPreset::default_mlp().segment_names(),
            [
                "linear0.weight",
                "linear0.bias",
                "linear1.weight",
                "linear1.bias",
                "linear2.weight",
                "linear2.bias",
            ]
        );
        assert_eq!(
            ModelPreset::Linear.segment_names(),
            ["linear0.weight", "linear0.bias"]
        );
    }

    #[test]
    fn layer_plan_is_mutually_exclusive_with_the_flat_compressor() {
        let both = ExperimentConfig {
            algorithm: Algorithm::TopK,
            compressor: Some("topk".parse().unwrap()),
            layer_compressors: Some("*=topk".parse().unwrap()),
            ..Default::default()
        };
        let err = both.validate().unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn layer_plan_dense_rules_cannot_pair_with_overlap_machinery() {
        // Per-rule restriction: a quantizer rule anywhere in the plan is
        // rejected under OPWA algorithms and overlap recording …
        let opwa = ExperimentConfig {
            algorithm: Algorithm::BcrsOpwa,
            layer_compressors: Some("conv*=topk;*=qsgd:8".parse().unwrap()),
            ..Default::default()
        };
        assert!(opwa.validate().unwrap_err().contains("OPWA"));
        let recording = ExperimentConfig {
            algorithm: Algorithm::TopK,
            record_overlap: true,
            layer_compressors: Some("*.bias=qsgd:4;*=topk".parse().unwrap()),
            ..Default::default()
        };
        assert!(recording.validate().unwrap_err().contains("record_overlap"));
        // … while all-sparse plans (the raw-f32 "dense" codec decodes to a
        // full-density *sparse* segment) keep the overlap structure.
        let sparse = ExperimentConfig {
            algorithm: Algorithm::BcrsOpwa,
            layer_compressors: Some("*.bias=dense;*=topk+qsgd:4".parse().unwrap()),
            ..Default::default()
        };
        assert!(sparse.validate().is_ok());
    }

    #[test]
    fn downlink_layer_plan_is_validated_per_rule_with_opwa_exemption() {
        // Satellite bugfix: the downlink plan gets the same per-rule registry
        // and coverage validation as uplink plans …
        let bad = ExperimentConfig {
            downlink_layer_compressors: Some("*=no-such-codec".parse().unwrap()),
            ..Default::default()
        };
        let err = bad.validate().unwrap_err();
        assert!(err.contains("downlink layer plan"), "{err}");
        let gap = ExperimentConfig {
            downlink_layer_compressors: Some("conv*=topk".parse().unwrap()),
            ..Default::default()
        };
        let err = gap.validate().unwrap_err();
        assert!(err.contains("downlink layer plan"), "{err}");
        assert!(err.contains("without a matching rule"), "{err}");
        // … while only the OPWA exemption stays: dense-decoding broadcast
        // rules are fine even under OPWA algorithms.
        let dense = ExperimentConfig {
            algorithm: Algorithm::BcrsOpwa,
            downlink_layer_compressors: Some("*.bias=qsgd:8;*=ef-topk".parse().unwrap()),
            cost_basis: CostBasis::Encoded,
            ..Default::default()
        };
        assert!(dense.validate().is_ok());
        // Mutually exclusive with the flat downlink codec.
        let both = ExperimentConfig {
            downlink_compressor: Some("topk".parse().unwrap()),
            downlink_layer_compressors: Some("*=topk".parse().unwrap()),
            ..Default::default()
        };
        let err = both.validate().unwrap_err();
        assert!(err.contains("mutually exclusive"), "{err}");
    }

    #[test]
    fn adaptive_plan_knob_is_validated() {
        let c = ExperimentConfig::default();
        assert!(c.adaptive_plan.is_none());
        let good = ExperimentConfig {
            algorithm: Algorithm::TopK,
            adaptive_plan: Some("layer-bcrs".parse().unwrap()),
            cost_basis: CostBasis::Encoded,
            ..Default::default()
        };
        assert!(good.validate().is_ok());
        // Static plans are validated exactly like layer_compressors plans.
        let bad_spec = ExperimentConfig {
            adaptive_plan: Some("static:*=no-such-codec".parse().unwrap()),
            ..Default::default()
        };
        assert!(bad_spec.validate().unwrap_err().contains("adaptive plan"));
        let gap = ExperimentConfig {
            algorithm: Algorithm::TopK,
            adaptive_plan: Some("static:conv*=topk".parse().unwrap()),
            ..Default::default()
        };
        let err = gap.validate().unwrap_err();
        assert!(err.contains("without a matching rule"), "{err}");
        let opwa = ExperimentConfig {
            algorithm: Algorithm::BcrsOpwa,
            adaptive_plan: Some("static:*.bias=qsgd:8;*=topk".parse().unwrap()),
            ..Default::default()
        };
        assert!(opwa.validate().unwrap_err().contains("OPWA"));
        // Mutually exclusive with both static uplink codec knobs.
        let with_compressor = ExperimentConfig {
            algorithm: Algorithm::TopK,
            compressor: Some("topk".parse().unwrap()),
            adaptive_plan: Some("layer-bcrs".parse().unwrap()),
            ..Default::default()
        };
        assert!(with_compressor
            .validate()
            .unwrap_err()
            .contains("mutually exclusive"));
        let with_plan = ExperimentConfig {
            algorithm: Algorithm::TopK,
            layer_compressors: Some("*=topk".parse().unwrap()),
            adaptive_plan: Some("static:*=topk".parse().unwrap()),
            ..Default::default()
        };
        assert!(with_plan
            .validate()
            .unwrap_err()
            .contains("mutually exclusive"));
    }

    #[test]
    fn paper_setting_overrides() {
        let c =
            ExperimentConfig::paper_setting(Algorithm::TopK, DatasetPreset::SvhnLike, 0.1, 0.01);
        assert_eq!(c.algorithm, Algorithm::TopK);
        assert_eq!(c.beta, 0.1);
        assert_eq!(c.compression_ratio, 0.01);
    }
}
