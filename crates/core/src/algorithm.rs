//! The algorithms compared in the paper's evaluation.

use serde::{Deserialize, Serialize};

/// The five algorithms of Table 2 (plus Rand-K, included for ablations).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Algorithm {
    /// Uncompressed FedAvg (McMahan et al. 2017) — the accuracy reference.
    FedAvg,
    /// FedAvg with uniform Top-K sparsification.
    TopK,
    /// FedAvg with error-feedback Top-K (EF-Top-K).
    EfTopK,
    /// FedAvg with uniform Rand-K sparsification (ablation baseline).
    RandK,
    /// Bandwidth-aware Compression Ratio Scheduling (this paper, Alg. 2).
    Bcrs,
    /// BCRS combined with Overlap-aware Parameter Weighted Averaging
    /// (this paper, Alg. 2 + Alg. 3).
    BcrsOpwa,
    /// Uniform Top-K with the OPWA mask but *without* BCRS — demonstrates the
    /// paper's claim that OPWA is independent of the compression scheduler
    /// and composes with any sparsifier.
    TopKOpwa,
}

impl Algorithm {
    /// Name used in experiment reports (matches the paper's tables).
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::FedAvg => "fedavg",
            Algorithm::TopK => "topk",
            Algorithm::EfTopK => "eftopk",
            Algorithm::RandK => "randk",
            Algorithm::Bcrs => "bcrs",
            Algorithm::BcrsOpwa => "bcrs+opwa",
            Algorithm::TopKOpwa => "topk+opwa",
        }
    }

    /// True if this algorithm sparsifies the uplink.
    pub fn is_compressed(&self) -> bool {
        !matches!(self, Algorithm::FedAvg)
    }

    /// True if this algorithm schedules per-client compression ratios
    /// (as opposed to a uniform ratio).
    pub fn uses_bcrs(&self) -> bool {
        matches!(self, Algorithm::Bcrs | Algorithm::BcrsOpwa)
    }

    /// True if this algorithm applies the OPWA parameter mask.
    pub fn uses_opwa(&self) -> bool {
        matches!(self, Algorithm::BcrsOpwa | Algorithm::TopKOpwa)
    }

    /// True if this algorithm keeps per-client error-feedback residuals.
    pub fn uses_error_feedback(&self) -> bool {
        matches!(self, Algorithm::EfTopK)
    }

    /// True if this algorithm sparsifies with Rand-K instead of Top-K.
    pub fn uses_randk(&self) -> bool {
        matches!(self, Algorithm::RandK)
    }

    /// All algorithms evaluated in the paper's main table, in table order.
    pub fn paper_lineup() -> [Algorithm; 5] {
        [
            Algorithm::FedAvg,
            Algorithm::TopK,
            Algorithm::EfTopK,
            Algorithm::Bcrs,
            Algorithm::BcrsOpwa,
        ]
    }

    /// Parse from the report name.
    pub fn from_name(name: &str) -> Option<Algorithm> {
        match name {
            "fedavg" => Some(Algorithm::FedAvg),
            "topk" => Some(Algorithm::TopK),
            "eftopk" => Some(Algorithm::EfTopK),
            "randk" => Some(Algorithm::RandK),
            "bcrs" => Some(Algorithm::Bcrs),
            "bcrs+opwa" | "bcrs_opwa" | "opwa" => Some(Algorithm::BcrsOpwa),
            "topk+opwa" | "topk_opwa" => Some(Algorithm::TopKOpwa),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_roundtrip() {
        for alg in [
            Algorithm::FedAvg,
            Algorithm::TopK,
            Algorithm::EfTopK,
            Algorithm::RandK,
            Algorithm::Bcrs,
            Algorithm::BcrsOpwa,
            Algorithm::TopKOpwa,
        ] {
            assert_eq!(Algorithm::from_name(alg.name()), Some(alg));
        }
        assert_eq!(Algorithm::from_name("nope"), None);
    }

    #[test]
    fn capability_flags() {
        assert!(!Algorithm::FedAvg.is_compressed());
        assert!(Algorithm::TopK.is_compressed());
        assert!(Algorithm::Bcrs.uses_bcrs());
        assert!(!Algorithm::TopK.uses_bcrs());
        assert!(Algorithm::BcrsOpwa.uses_opwa());
        assert!(Algorithm::TopKOpwa.uses_opwa());
        assert!(!Algorithm::TopKOpwa.uses_bcrs());
        assert!(!Algorithm::Bcrs.uses_opwa());
        assert!(Algorithm::EfTopK.uses_error_feedback());
        assert!(!Algorithm::BcrsOpwa.uses_error_feedback());
        assert!(Algorithm::RandK.uses_randk());
        assert!(!Algorithm::TopK.uses_randk());
    }

    #[test]
    fn paper_lineup_matches_table_two() {
        let lineup = Algorithm::paper_lineup();
        assert_eq!(lineup.len(), 5);
        assert_eq!(lineup[0], Algorithm::FedAvg);
        assert_eq!(lineup[4], Algorithm::BcrsOpwa);
    }
}
