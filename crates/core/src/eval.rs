//! Model evaluation on a held-out test set.

use fl_data::Dataset;
use fl_nn::{Sequential, SoftmaxCrossEntropy, Workspace};
use fl_tensor::parallel::parallel_map;
use fl_tensor::Tensor;

/// Loss and accuracy of a model on a dataset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Evaluation {
    /// Mean cross-entropy loss.
    pub loss: f64,
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f64,
}

/// Evaluate `model` on `dataset` in batches of `batch_size` (the dataset may
/// be too large for a single forward pass), using up to
/// [`fl_tensor::parallel::default_threads`] worker threads.
pub fn evaluate(model: &Sequential, dataset: &Dataset, batch_size: usize) -> Evaluation {
    evaluate_with_threads(
        model,
        dataset,
        batch_size,
        fl_tensor::parallel::default_threads(),
    )
}

/// [`evaluate`] with an explicit worker-thread cap.
///
/// Batch boundaries are fixed ranges `[i*batch_size, (i+1)*batch_size)` of the
/// dataset, each batch's loss/accuracy pair is computed independently on a
/// per-thread [`Workspace`], and the per-batch partial sums are folded left to
/// right in batch order — exactly the serial loop's reduction — so the result
/// is bit-identical for every thread count.
pub fn evaluate_with_threads(
    model: &Sequential,
    dataset: &Dataset,
    batch_size: usize,
    max_threads: usize,
) -> Evaluation {
    assert!(batch_size > 0, "batch size must be positive");
    if dataset.is_empty() {
        return Evaluation {
            loss: 0.0,
            accuracy: 0.0,
        };
    }
    let n = dataset.len();
    let num_batches = n.div_ceil(batch_size);
    let workers = max_threads.max(1).min(num_batches);
    let chunk = num_batches.div_ceil(workers);
    // Each work item is a contiguous run of batch indices; one worker thread
    // walks its run with a single reusable workspace and batch buffer.
    let work: Vec<(usize, usize)> = (0..workers)
        .map(|w| (w * chunk, ((w + 1) * chunk).min(num_batches)))
        .filter(|&(s, e)| s < e)
        .collect();
    let partials: Vec<Vec<(f64, f64, usize)>> = parallel_map(work, workers, |(first, last)| {
        let mut ws = Workspace::new();
        let mut loss_fn = SoftmaxCrossEntropy::new();
        let mut x = Tensor::empty();
        let mut y = Vec::new();
        (first..last)
            .map(|b| {
                let start = b * batch_size;
                let end = (start + batch_size).min(n);
                dataset.gather_range_into(start, end, &mut x, &mut y);
                let logits = model.forward_in(&x, &mut ws);
                let batch_loss = loss_fn.forward(logits, &y) as f64;
                let batch_acc = SoftmaxCrossEntropy::accuracy(logits, &y);
                (batch_loss, batch_acc, end - start)
            })
            .collect()
    });
    // Deterministic reduction: batch order, left to right, independent of how
    // the batches were grouped onto threads.
    let mut total_loss = 0.0f64;
    let mut total_correct = 0.0f64;
    let mut seen = 0usize;
    for (batch_loss, batch_acc, count) in partials.into_iter().flatten() {
        total_loss += batch_loss * count as f64;
        total_correct += batch_acc * count as f64;
        seen += count;
    }
    Evaluation {
        loss: total_loss / seen as f64,
        accuracy: total_correct / seen as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_nn::model::logistic_regression;
    use fl_tensor::rng::Xoshiro256;

    fn toy_dataset() -> Dataset {
        // Two trivially separable classes along the first coordinate.
        let mut d = Dataset::empty(2, 2);
        for i in 0..20 {
            let class = i % 2;
            let x0 = if class == 0 { -1.0 } else { 1.0 };
            d.push(&[x0, 0.0], class);
        }
        d
    }

    #[test]
    fn random_model_near_chance() {
        let mut rng = Xoshiro256::new(1);
        let model = logistic_regression(2, 2, &mut rng);
        let e = evaluate(&model, &toy_dataset(), 8);
        assert!(e.accuracy >= 0.0 && e.accuracy <= 1.0);
        assert!((e.loss - (2.0f64).ln()).abs() < 0.5);
    }

    #[test]
    fn perfect_model_perfect_accuracy() {
        let mut rng = Xoshiro256::new(1);
        let mut model = logistic_regression(2, 2, &mut rng);
        // Set weights so class 1 wins when x0 > 0.
        let mut params = model.params_mut();
        params[0]
            .data_mut()
            .copy_from_slice(&[-10.0, 10.0, 0.0, 0.0]);
        params[1].data_mut().copy_from_slice(&[0.0, 0.0]);
        let e = evaluate(&model, &toy_dataset(), 7);
        assert_eq!(e.accuracy, 1.0);
        assert!(e.loss < 0.01);
    }

    #[test]
    fn batched_equals_full_batch() {
        let mut rng = Xoshiro256::new(2);
        let model = logistic_regression(2, 2, &mut rng);
        let ds = toy_dataset();
        let small = evaluate(&model, &ds, 3);
        let full = evaluate(&model, &ds, 100);
        assert!((small.loss - full.loss).abs() < 1e-6);
        assert!((small.accuracy - full.accuracy).abs() < 1e-12);
    }

    #[test]
    fn thread_count_does_not_change_bits() {
        let mut rng = Xoshiro256::new(4);
        let model = logistic_regression(2, 2, &mut rng);
        let ds = toy_dataset();
        let serial = evaluate_with_threads(&model, &ds, 3, 1);
        for threads in [2, 4, 7, 32] {
            let par = evaluate_with_threads(&model, &ds, 3, threads);
            assert_eq!(par.loss.to_bits(), serial.loss.to_bits());
            assert_eq!(par.accuracy.to_bits(), serial.accuracy.to_bits());
        }
    }

    #[test]
    fn empty_dataset_is_zero() {
        let mut rng = Xoshiro256::new(3);
        let model = logistic_regression(2, 2, &mut rng);
        let e = evaluate(&model, &Dataset::empty(2, 2), 4);
        assert_eq!(e.accuracy, 0.0);
        assert_eq!(e.loss, 0.0);
    }
}
