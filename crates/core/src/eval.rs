//! Model evaluation on a held-out test set.

use fl_data::Dataset;
use fl_nn::{Sequential, SoftmaxCrossEntropy};

/// Loss and accuracy of a model on a dataset.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Evaluation {
    /// Mean cross-entropy loss.
    pub loss: f64,
    /// Top-1 accuracy in `[0, 1]`.
    pub accuracy: f64,
}

/// Evaluate `model` on `dataset` in batches of `batch_size` (the dataset may
/// be too large for a single forward pass).
pub fn evaluate(model: &mut Sequential, dataset: &Dataset, batch_size: usize) -> Evaluation {
    assert!(batch_size > 0, "batch size must be positive");
    if dataset.is_empty() {
        return Evaluation {
            loss: 0.0,
            accuracy: 0.0,
        };
    }
    let mut loss_fn = SoftmaxCrossEntropy::new();
    let mut total_loss = 0.0f64;
    let mut total_correct = 0.0f64;
    let mut seen = 0usize;
    let n = dataset.len();
    let mut start = 0usize;
    while start < n {
        let end = (start + batch_size).min(n);
        let indices: Vec<usize> = (start..end).collect();
        let (x, y) = dataset.gather_batch(&indices);
        let logits = model.forward(&x);
        let batch_loss = loss_fn.forward(&logits, &y) as f64;
        let batch_acc = SoftmaxCrossEntropy::accuracy(&logits, &y);
        let count = end - start;
        total_loss += batch_loss * count as f64;
        total_correct += batch_acc * count as f64;
        seen += count;
        start = end;
    }
    Evaluation {
        loss: total_loss / seen as f64,
        accuracy: total_correct / seen as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_nn::model::logistic_regression;
    use fl_tensor::rng::Xoshiro256;

    fn toy_dataset() -> Dataset {
        // Two trivially separable classes along the first coordinate.
        let mut d = Dataset::empty(2, 2);
        for i in 0..20 {
            let class = i % 2;
            let x0 = if class == 0 { -1.0 } else { 1.0 };
            d.push(&[x0, 0.0], class);
        }
        d
    }

    #[test]
    fn random_model_near_chance() {
        let mut rng = Xoshiro256::new(1);
        let mut model = logistic_regression(2, 2, &mut rng);
        let e = evaluate(&mut model, &toy_dataset(), 8);
        assert!(e.accuracy >= 0.0 && e.accuracy <= 1.0);
        assert!((e.loss - (2.0f64).ln()).abs() < 0.5);
    }

    #[test]
    fn perfect_model_perfect_accuracy() {
        let mut rng = Xoshiro256::new(1);
        let mut model = logistic_regression(2, 2, &mut rng);
        // Set weights so class 1 wins when x0 > 0.
        let mut params = model.params_mut();
        params[0]
            .data_mut()
            .copy_from_slice(&[-10.0, 10.0, 0.0, 0.0]);
        params[1].data_mut().copy_from_slice(&[0.0, 0.0]);
        let e = evaluate(&mut model, &toy_dataset(), 7);
        assert_eq!(e.accuracy, 1.0);
        assert!(e.loss < 0.01);
    }

    #[test]
    fn batched_equals_full_batch() {
        let mut rng = Xoshiro256::new(2);
        let mut model = logistic_regression(2, 2, &mut rng);
        let ds = toy_dataset();
        let small = evaluate(&mut model, &ds, 3);
        let full = evaluate(&mut model, &ds, 100);
        assert!((small.loss - full.loss).abs() < 1e-6);
        assert!((small.accuracy - full.accuracy).abs() < 1e-12);
    }

    #[test]
    fn empty_dataset_is_zero() {
        let mut rng = Xoshiro256::new(3);
        let mut model = logistic_regression(2, 2, &mut rng);
        let e = evaluate(&mut model, &Dataset::empty(2, 2), 4);
        assert_eq!(e.accuracy, 0.0);
        assert_eq!(e.loss, 0.0);
    }
}
