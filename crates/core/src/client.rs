//! Simulated federated client: local dataset, local model replica, local SGD
//! and (optionally) error-feedback compression state.

use crate::config::{ExperimentConfig, ModelPreset};
use fl_compress::{CompressedUpdate, Compressor, ErrorFeedback, RandK, TopK};
use fl_data::{BatchLoader, Dataset};
use fl_nn::{flatten_params, mlp, unflatten_params, Sequential, Sgd, SoftmaxCrossEntropy};
use fl_tensor::rng::Xoshiro256;

/// The result of one client's local training in one round.
#[derive(Clone, Debug)]
pub struct LocalTrainOutput {
    /// Client id of the producer.
    pub client_id: usize,
    /// The model delta `w_t − w_{t,local}` (descent direction) as a flat vector.
    pub delta: Vec<f32>,
    /// Mean training loss over the local epochs.
    pub train_loss: f64,
    /// Number of local training samples (the `n_k` of FedAvg's weights).
    pub num_samples: usize,
    /// Wall-clock seconds spent in local training.
    pub train_time_s: f64,
}

/// One simulated client.
pub struct ClientState {
    /// Client id in `[0, N)`.
    pub id: usize,
    dataset: Dataset,
    model: Sequential,
    loader: BatchLoader,
    rng: Xoshiro256,
    error_feedback: Option<ErrorFeedback<TopK>>,
    local_lr: f32,
    momentum: f32,
    weight_decay: f32,
    local_epochs: usize,
}

impl ClientState {
    /// Create a client from the experiment configuration and its local shard.
    pub fn new(id: usize, dataset: Dataset, config: &ExperimentConfig, rng: Xoshiro256) -> Self {
        let mut model_rng = Xoshiro256::new(config.seed); // same init as the server
        let model = build_model(
            &config.model,
            dataset.feature_dim(),
            dataset.num_classes(),
            &mut model_rng,
        );
        let num_params = model.num_params();
        let error_feedback = if config.algorithm.uses_error_feedback() {
            Some(ErrorFeedback::new(TopK::new(), num_params))
        } else {
            None
        };
        Self {
            id,
            dataset,
            model,
            loader: BatchLoader::new(config.batch_size, false),
            rng,
            error_feedback,
            local_lr: config.local_lr,
            momentum: config.momentum,
            weight_decay: config.weight_decay,
            local_epochs: config.local_epochs,
        }
    }

    /// Number of local training samples.
    pub fn num_samples(&self) -> usize {
        self.dataset.len()
    }

    /// Borrow the local dataset (used by evaluation helpers and tests).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// Run `E` local epochs of SGD starting from the given global parameters
    /// and return the flat model delta (`global − local`).
    pub fn local_update(&mut self, global_params: &[f32]) -> LocalTrainOutput {
        let start = std::time::Instant::now();
        unflatten_params(&mut self.model, global_params);
        let mut optimizer = Sgd::new(self.local_lr, self.momentum, self.weight_decay);
        let mut loss_fn = SoftmaxCrossEntropy::new();
        let mut loss_acc = 0.0f64;
        let mut loss_count = 0usize;
        for _ in 0..self.local_epochs {
            for (x, y) in self.loader.epoch_batches(&self.dataset, &mut self.rng) {
                self.model.zero_grad();
                let logits = self.model.forward(&x);
                let loss = loss_fn.forward(&logits, &y);
                let grad = loss_fn.backward();
                self.model.backward(&grad);
                optimizer.step(&mut self.model);
                loss_acc += loss as f64;
                loss_count += 1;
            }
        }
        let local = flatten_params(&self.model);
        let delta: Vec<f32> = global_params
            .iter()
            .zip(local.iter())
            .map(|(g, l)| g - l)
            .collect();
        LocalTrainOutput {
            client_id: self.id,
            delta,
            train_loss: if loss_count == 0 {
                0.0
            } else {
                loss_acc / loss_count as f64
            },
            num_samples: self.dataset.len(),
            train_time_s: start.elapsed().as_secs_f64(),
        }
    }

    /// Compress a delta at the given ratio using this client's configured
    /// compressor (Top-K, EF-Top-K residual state, or Rand-K).
    pub fn compress(&mut self, delta: &[f32], ratio: f64, use_randk: bool) -> CompressedUpdate {
        if let Some(ef) = self.error_feedback.as_mut() {
            ef.compress_with_feedback(delta, ratio)
        } else if use_randk {
            RandK::new(self.rng_seed_for_round()).compress(delta, ratio)
        } else {
            TopK::new().compress(delta, ratio)
        }
    }

    /// Current L2 norm of the error-feedback residual (0 when EF is unused).
    pub fn residual_norm(&self) -> f64 {
        self.error_feedback
            .as_ref()
            .map(|ef| ef.residual_norm())
            .unwrap_or(0.0)
    }

    fn rng_seed_for_round(&mut self) -> u64 {
        use fl_tensor::rng::Rng;
        self.rng.next_u64()
    }
}

/// Build the model described by a [`ModelPreset`].
pub fn build_model(
    preset: &ModelPreset,
    input_dim: usize,
    classes: usize,
    rng: &mut Xoshiro256,
) -> Sequential {
    match preset {
        ModelPreset::Mlp { hidden1, hidden2 } => {
            mlp(input_dim, &[*hidden1, *hidden2], classes, rng)
        }
        ModelPreset::Linear => fl_nn::model::logistic_regression(input_dim, classes, rng),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;

    fn quick_client(algorithm: Algorithm) -> (ClientState, Vec<f32>, ExperimentConfig) {
        let config = ExperimentConfig::quick(algorithm);
        let (train, _) = config
            .dataset
            .spec(config.dataset_scale)
            .generate(config.seed);
        let local = train.subset(&(0..64).collect::<Vec<_>>());
        let mut rng = Xoshiro256::new(config.seed);
        let global_model = build_model(
            &config.model,
            local.feature_dim(),
            local.num_classes(),
            &mut rng,
        );
        let global = flatten_params(&global_model);
        let client = ClientState::new(0, local, &config, Xoshiro256::new(7));
        (client, global, config)
    }

    #[test]
    fn local_update_produces_matching_delta_length() {
        let (mut client, global, _) = quick_client(Algorithm::TopK);
        let out = client.local_update(&global);
        assert_eq!(out.delta.len(), global.len());
        assert_eq!(out.num_samples, 64);
        assert!(out.train_loss > 0.0);
        assert!(
            out.delta.iter().any(|&d| d != 0.0),
            "training should move the model"
        );
    }

    #[test]
    fn delta_direction_reduces_local_loss() {
        // Applying the delta (w - eta*delta ... here directly w_local = w - delta)
        // must give a model with lower local loss than the global one.
        let (mut client, global, _) = quick_client(Algorithm::TopK);
        let out = client.local_update(&global);
        let local_params: Vec<f32> = global
            .iter()
            .zip(out.delta.iter())
            .map(|(g, d)| g - d)
            .collect();
        let mut rng = Xoshiro256::new(1);
        let mut probe = build_model(
            &ExperimentConfig::quick(Algorithm::TopK).model,
            client.dataset().feature_dim(),
            client.dataset().num_classes(),
            &mut rng,
        );
        let mut loss_fn = SoftmaxCrossEntropy::new();
        let (x, y) = client.dataset().full_batch();
        unflatten_params(&mut probe, &global);
        let loss_global = loss_fn.forward(&probe.forward(&x), &y);
        unflatten_params(&mut probe, &local_params);
        let loss_local = loss_fn.forward(&probe.forward(&x), &y);
        assert!(
            loss_local < loss_global,
            "local training should reduce local loss ({loss_global} -> {loss_local})"
        );
    }

    #[test]
    fn ef_client_keeps_residual_state() {
        let (mut client, global, _) = quick_client(Algorithm::EfTopK);
        let out = client.local_update(&global);
        assert_eq!(client.residual_norm(), 0.0);
        let _ = client.compress(&out.delta, 0.05, false);
        assert!(
            client.residual_norm() > 0.0,
            "EF residual should be non-empty"
        );
    }

    #[test]
    fn non_ef_client_has_zero_residual() {
        let (mut client, global, _) = quick_client(Algorithm::TopK);
        let out = client.local_update(&global);
        let _ = client.compress(&out.delta, 0.05, false);
        assert_eq!(client.residual_norm(), 0.0);
    }

    #[test]
    fn compression_respects_ratio() {
        let (mut client, global, _) = quick_client(Algorithm::TopK);
        let out = client.local_update(&global);
        let c = client.compress(&out.delta, 0.1, false);
        let nnz = c.as_sparse().unwrap().nnz();
        let expected = (0.1 * global.len() as f64).ceil() as usize;
        assert_eq!(nnz, expected);
    }

    #[test]
    fn randk_compression_differs_from_topk() {
        let (mut client, global, _) = quick_client(Algorithm::RandK);
        let out = client.local_update(&global);
        let topk = TopK::new().compress(&out.delta, 0.1);
        let randk = client.compress(&out.delta, 0.1, true);
        assert_ne!(
            topk.as_sparse().unwrap().indices(),
            randk.as_sparse().unwrap().indices()
        );
    }
}
