//! Simulated federated client: local dataset, local model replica, local SGD
//! and the update codec (with any cross-round state, e.g. error-feedback
//! residuals) the client encodes its uplink with.

use crate::config::{ExperimentConfig, ModelPreset};
use crate::policy::resolve_codec_spec;
use fl_compress::{
    CodecCtx, CodecRegistry, CompressedUpdate, LayerPlan, ResidualState, SegmentDef, UpdateCodec,
    WireError, WireUpdate,
};
use fl_data::{BatchLoader, Dataset};
use fl_nn::{
    flatten_params, mlp, unflatten_params, ParamLayout, Sequential, Sgd, SoftmaxCrossEntropy,
    Workspace,
};
use fl_tensor::rng::Xoshiro256;
use fl_tensor::Tensor;

/// The result of one client's local training in one round.
#[derive(Clone, Debug)]
pub struct LocalTrainOutput {
    /// Client id of the producer.
    pub client_id: usize,
    /// The model delta `w_t − w_{t,local}` (descent direction) as a flat vector.
    pub delta: Vec<f32>,
    /// Mean training loss over the local epochs.
    pub train_loss: f64,
    /// Number of local training samples (the `n_k` of FedAvg's weights).
    pub num_samples: usize,
    /// Wall-clock seconds spent in local training.
    pub train_time_s: f64,
}

/// One simulated client.
pub struct ClientState {
    /// Client id in `[0, N)`.
    pub id: usize,
    dataset: Dataset,
    model: Sequential,
    layout: ParamLayout,
    loader: BatchLoader,
    rng: Xoshiro256,
    codec: Box<dyn UpdateCodec>,
    local_lr: f32,
    momentum: f32,
    weight_decay: f32,
    local_epochs: usize,
    // Reusable training buffers: after the first batch warms them up, a
    // steady-state local-training batch performs no heap allocation.
    ws: Workspace,
    loss_fn: SoftmaxCrossEntropy,
    grad: Tensor,
    order: Vec<usize>,
    batch_x: Tensor,
    batch_y: Vec<usize>,
}

impl ClientState {
    /// Create a client from the experiment configuration and its local shard.
    /// The uplink codec is resolved from the configuration's
    /// [`ExperimentConfig::layer_compressors`] plan (one codec per parameter
    /// segment) or [`ExperimentConfig::compressor`] spec (or the
    /// algorithm-implied default) through the built-in [`CodecRegistry`].
    pub fn new(id: usize, dataset: Dataset, config: &ExperimentConfig, rng: Xoshiro256) -> Self {
        Self::with_registry(id, dataset, config, rng, &CodecRegistry::with_builtins())
    }

    /// Like [`new`](Self::new), resolving the codec spec through a
    /// caller-supplied registry (the seam
    /// [`crate::session::SessionBuilder::codec_registry`] uses to run custom
    /// codecs through the round engine).
    pub fn with_registry(
        id: usize,
        dataset: Dataset,
        config: &ExperimentConfig,
        rng: Xoshiro256,
        registry: &CodecRegistry,
    ) -> Self {
        Self::build(id, dataset, config, rng, registry, None)
    }

    /// Like [`with_registry`](Self::with_registry) but resolving the uplink
    /// codec from a plan decided *this round* by a
    /// [`crate::policy::PlanPolicy`] instead of the configuration's static
    /// spec. With `scales: None` the plan resolves exactly like a static
    /// [`ExperimentConfig::layer_compressors`] plan (uniform plans collapse
    /// to the flat codec); with per-segment ratio scales the codec is always
    /// segment-framed, so per-layer byte telemetry stays available.
    pub fn with_plan_override(
        id: usize,
        dataset: Dataset,
        config: &ExperimentConfig,
        rng: Xoshiro256,
        registry: &CodecRegistry,
        plan: &LayerPlan,
        scales: Option<&[f64]>,
    ) -> Self {
        Self::build(id, dataset, config, rng, registry, Some((plan, scales)))
    }

    fn build(
        id: usize,
        dataset: Dataset,
        config: &ExperimentConfig,
        rng: Xoshiro256,
        registry: &CodecRegistry,
        plan_override: Option<(&LayerPlan, Option<&[f64]>)>,
    ) -> Self {
        // The replica's parameters are always overwritten by the broadcast
        // global vector before training (`local_update` starts with
        // `unflatten_params`), so a zero init is bit-identical to the
        // server-seeded random init — and skips ~`num_params` normal draws
        // on every checkout, a large share of small-model round time.
        let model = build_model_zeroed(&config.model, dataset.feature_dim(), dataset.num_classes());
        let num_params = model.num_params();
        let layout = ParamLayout::of(&model);
        let ctx = CodecCtx::new(num_params, config.seed ^ id as u64);
        let codec = match (plan_override, &config.layer_compressors) {
            (Some((plan, Some(scales))), _) => plan
                .resolve_scaled(registry, &segment_defs(&layout), &ctx, scales)
                .unwrap_or_else(|e| panic!("invalid adaptive plan {plan}: {e}")),
            (Some((plan, None)), _) => plan
                .resolve(registry, &segment_defs(&layout), &ctx)
                .unwrap_or_else(|e| panic!("invalid adaptive plan {plan}: {e}")),
            (None, Some(plan)) => {
                // Layer-aware path: one codec per layout segment (a uniform
                // plan collapses to the flat codec inside `resolve`, so the
                // two paths stay bit-identical).
                plan.resolve(registry, &segment_defs(&layout), &ctx)
                    .unwrap_or_else(|e| panic!("invalid layer plan {plan}: {e}"))
            }
            (None, None) => {
                let spec = resolve_codec_spec(config);
                registry
                    .build(&spec, &ctx)
                    .unwrap_or_else(|e| panic!("invalid compressor spec {spec}: {e}"))
            }
        };
        Self {
            id,
            dataset,
            model,
            layout,
            loader: BatchLoader::new(config.batch_size, false),
            rng,
            codec,
            local_lr: config.local_lr,
            momentum: config.momentum,
            weight_decay: config.weight_decay,
            local_epochs: config.local_epochs,
            ws: Workspace::new(),
            loss_fn: SoftmaxCrossEntropy::new(),
            grad: Tensor::empty(),
            order: Vec::new(),
            batch_x: Tensor::empty(),
            batch_y: Vec::new(),
        }
    }

    /// Number of local training samples.
    pub fn num_samples(&self) -> usize {
        self.dataset.len()
    }

    /// Borrow the local dataset (used by evaluation helpers and tests).
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The named layout of this client's flat parameter vector (identical to
    /// the server's — every replica is built from the same preset and seed).
    pub fn layout(&self) -> &ParamLayout {
        &self.layout
    }

    /// Run `E` local epochs of SGD starting from the given global parameters
    /// and return the flat model delta (`global − local`).
    pub fn local_update(&mut self, global_params: &[f32]) -> LocalTrainOutput {
        let start = std::time::Instant::now();
        unflatten_params(&mut self.model, global_params);
        let mut optimizer = Sgd::new(self.local_lr, self.momentum, self.weight_decay);
        let mut loss_acc = 0.0f64;
        let mut loss_count = 0usize;
        for _ in 0..self.local_epochs {
            // One shuffle per epoch, same draw order and batch boundaries as
            // `BatchLoader::epoch_batches`, but gathered into reusable
            // buffers: the steady-state batch loop below allocates nothing.
            self.loader
                .shuffle_epoch(&self.dataset, &mut self.rng, &mut self.order);
            for (s, e) in self.loader.batch_ranges(self.dataset.len()) {
                self.dataset.gather_batch_into(
                    &self.order[s..e],
                    &mut self.batch_x,
                    &mut self.batch_y,
                );
                self.model.zero_grad();
                let logits = self.model.forward_in(&self.batch_x, &mut self.ws);
                let loss = self.loss_fn.forward(logits, &self.batch_y);
                self.loss_fn.backward_in(&mut self.grad);
                self.model.backward_in(&self.grad, &mut self.ws);
                optimizer.step(&mut self.model);
                loss_acc += loss as f64;
                loss_count += 1;
            }
        }
        let local = flatten_params(&self.model);
        let delta: Vec<f32> = global_params
            .iter()
            .zip(local.iter())
            .map(|(g, l)| g - l)
            .collect();
        LocalTrainOutput {
            client_id: self.id,
            delta,
            train_loss: if loss_count == 0 {
                0.0
            } else {
                loss_acc / loss_count as f64
            },
            num_samples: self.dataset.len(),
            train_time_s: start.elapsed().as_secs_f64(),
        }
    }

    /// Encode a delta at the given ratio with this client's codec, producing
    /// the real wire bytes. Per-round randomness (Rand-K coordinate draws,
    /// QSGD stochastic rounding) comes from the client's RNG stream, and any
    /// codec state (error-feedback residuals) advances.
    pub fn encode(&mut self, delta: &[f32], ratio: f64) -> WireUpdate {
        self.codec.encode(delta, ratio, &mut self.rng)
    }

    /// Decode a wire buffer with this client's codec (what the server does on
    /// receipt).
    pub fn decode(&self, wire: &WireUpdate) -> Result<CompressedUpdate, WireError> {
        self.codec.decode(wire)
    }

    /// Name of this client's codec (the resolved spec string).
    pub fn codec_name(&self) -> String {
        self.codec.name()
    }

    /// Current L2 norm of the codec's residual state (0 for stateless codecs).
    pub fn residual_norm(&self) -> f64 {
        self.codec.residual_norm()
    }

    /// Take the codec's residual snapshot, resetting it to zero — the
    /// check-in half of the [`crate::roster::ClientRoster`] seam. Stateless
    /// codecs return an empty (trivial) snapshot.
    pub fn take_residual(&mut self) -> ResidualState {
        self.codec.take_residual()
    }

    /// Restore a residual snapshot taken from an earlier instance of this
    /// client's codec — the checkout half of the
    /// [`crate::roster::ClientRoster`] seam. An empty snapshot is a no-op.
    pub fn restore_residual(&mut self, state: ResidualState) {
        self.codec.restore_residual(state);
    }

    /// Consume the client, returning its (advanced) RNG stream so a roster
    /// can persist it across rounds while the rest of the state is dropped.
    pub fn into_rng(self) -> Xoshiro256 {
        self.rng
    }
}

/// Bridge a model's [`ParamLayout`] into the `(name, len)` segment form
/// [`fl_compress::LayerPlan::resolve`] consumes — `fl-core` is the one crate
/// that sees both sides, so this is the single conversion point.
pub fn segment_defs(layout: &ParamLayout) -> Vec<SegmentDef> {
    layout
        .segments()
        .iter()
        .map(|s| SegmentDef::new(s.name.clone(), s.len))
        .collect()
}

/// Build the model described by a [`ModelPreset`].
pub fn build_model(
    preset: &ModelPreset,
    input_dim: usize,
    classes: usize,
    rng: &mut Xoshiro256,
) -> Sequential {
    match preset {
        ModelPreset::Mlp { hidden1, hidden2 } => {
            mlp(input_dim, &[*hidden1, *hidden2], classes, rng)
        }
        ModelPreset::Linear => fl_nn::model::logistic_regression(input_dim, classes, rng),
    }
}

/// Build the model described by a [`ModelPreset`] with all-zero parameters —
/// for replicas whose parameters are immediately overwritten (client
/// checkouts), where the random init would only burn normal draws.
pub fn build_model_zeroed(preset: &ModelPreset, input_dim: usize, classes: usize) -> Sequential {
    match preset {
        ModelPreset::Mlp { hidden1, hidden2 } => {
            fl_nn::mlp_zeroed(input_dim, &[*hidden1, *hidden2], classes)
        }
        ModelPreset::Linear => fl_nn::model::logistic_regression_zeroed(input_dim, classes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;

    fn quick_client(algorithm: Algorithm) -> (ClientState, Vec<f32>, ExperimentConfig) {
        let config = ExperimentConfig::quick(algorithm);
        let (train, _) = config
            .dataset
            .spec(config.dataset_scale)
            .generate(config.seed);
        let local = train.subset(&(0..64).collect::<Vec<_>>());
        let mut rng = Xoshiro256::new(config.seed);
        let global_model = build_model(
            &config.model,
            local.feature_dim(),
            local.num_classes(),
            &mut rng,
        );
        let global = flatten_params(&global_model);
        let client = ClientState::new(0, local, &config, Xoshiro256::new(7));
        (client, global, config)
    }

    #[test]
    fn local_update_produces_matching_delta_length() {
        let (mut client, global, _) = quick_client(Algorithm::TopK);
        let out = client.local_update(&global);
        assert_eq!(out.delta.len(), global.len());
        assert_eq!(out.num_samples, 64);
        assert!(out.train_loss > 0.0);
        assert!(
            out.delta.iter().any(|&d| d != 0.0),
            "training should move the model"
        );
    }

    #[test]
    fn delta_direction_reduces_local_loss() {
        // Applying the delta (w - eta*delta ... here directly w_local = w - delta)
        // must give a model with lower local loss than the global one.
        let (mut client, global, _) = quick_client(Algorithm::TopK);
        let out = client.local_update(&global);
        let local_params: Vec<f32> = global
            .iter()
            .zip(out.delta.iter())
            .map(|(g, d)| g - d)
            .collect();
        let mut rng = Xoshiro256::new(1);
        let mut probe = build_model(
            &ExperimentConfig::quick(Algorithm::TopK).model,
            client.dataset().feature_dim(),
            client.dataset().num_classes(),
            &mut rng,
        );
        let mut loss_fn = SoftmaxCrossEntropy::new();
        let (x, y) = client.dataset().full_batch();
        unflatten_params(&mut probe, &global);
        let loss_global = loss_fn.forward(&probe.forward(&x), &y);
        unflatten_params(&mut probe, &local_params);
        let loss_local = loss_fn.forward(&probe.forward(&x), &y);
        assert!(
            loss_local < loss_global,
            "local training should reduce local loss ({loss_global} -> {loss_local})"
        );
    }

    #[test]
    fn ef_client_keeps_residual_state() {
        let (mut client, global, _) = quick_client(Algorithm::EfTopK);
        assert_eq!(client.codec_name(), "ef-topk");
        let out = client.local_update(&global);
        assert_eq!(client.residual_norm(), 0.0);
        let _ = client.encode(&out.delta, 0.05);
        assert!(
            client.residual_norm() > 0.0,
            "EF residual should be non-empty"
        );
    }

    #[test]
    fn non_ef_client_has_zero_residual() {
        let (mut client, global, _) = quick_client(Algorithm::TopK);
        assert_eq!(client.codec_name(), "topk");
        let out = client.local_update(&global);
        let _ = client.encode(&out.delta, 0.05);
        assert_eq!(client.residual_norm(), 0.0);
    }

    #[test]
    fn encode_decode_respects_ratio() {
        let (mut client, global, _) = quick_client(Algorithm::TopK);
        let out = client.local_update(&global);
        let wire = client.encode(&out.delta, 0.1);
        let decoded = client.decode(&wire).unwrap();
        let nnz = decoded.as_sparse().unwrap().nnz();
        let expected = (0.1 * global.len() as f64).ceil() as usize;
        assert_eq!(nnz, expected);
        // The wire buffer is a real byte payload: smaller than the analytic
        // 8 bytes/coordinate thanks to varint-delta index coding.
        assert!(wire.len() < nnz * 8 + 16);
        assert!(wire.len() > nnz * 4);
    }

    #[test]
    fn randk_client_differs_from_topk() {
        use fl_compress::{Compressor, TopK};
        let (mut client, global, _) = quick_client(Algorithm::RandK);
        assert_eq!(client.codec_name(), "randk");
        let out = client.local_update(&global);
        let topk = TopK::new().compress(&out.delta, 0.1);
        let wire = client.encode(&out.delta, 0.1);
        let randk = client.decode(&wire).unwrap();
        assert_ne!(
            topk.as_sparse().unwrap().indices(),
            randk.as_sparse().unwrap().indices()
        );
    }

    #[test]
    fn compressor_override_changes_the_wire_format() {
        let mut config = ExperimentConfig::quick(Algorithm::TopK);
        config.compressor = Some("topk+qsgd:4".parse().unwrap());
        let (train, _) = config
            .dataset
            .spec(config.dataset_scale)
            .generate(config.seed);
        let local = train.subset(&(0..64).collect::<Vec<_>>());
        let mut client = ClientState::new(0, local, &config, Xoshiro256::new(7));
        assert_eq!(client.codec_name(), "topk+qsgd:4");
        let mut rng = Xoshiro256::new(1);
        let global = {
            let model = build_model(
                &config.model,
                client.dataset().feature_dim(),
                client.dataset().num_classes(),
                &mut rng,
            );
            fl_nn::flatten_params(&model)
        };
        let out = client.local_update(&global);
        let wire = client.encode(&out.delta, 0.1);
        let k = (0.1 * global.len() as f64).ceil() as usize;
        assert!(
            wire.len() < k * 8 / 2,
            "4-bit quantized values should beat the f32 sparse format"
        );
        assert_eq!(client.decode(&wire).unwrap().as_sparse().unwrap().nnz(), k);
    }
}
