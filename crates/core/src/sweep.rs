//! Parallel experiment sweeps: run a grid of [`ExperimentConfig`]s across
//! threads with shared dataset generation.
//!
//! The paper's evaluation is dozens of experiment variants (Tables 2–4,
//! Figs. 1–12); running them one at a time wastes both wall clock and the
//! repeated synthetic-dataset generation. [`run_sweep`] executes any list of
//! configurations concurrently, generating each distinct dataset
//! (preset × scale × seed) exactly once and sharing it across the runs, and
//! returns results in input order. [`SweepGrid`] builds the common
//! cartesian-product grids.
//!
//! Results are bit-identical to running each configuration through
//! [`crate::runner::run_experiment`] sequentially, regardless of the sweep's
//! thread count.
//!
//! ```
//! use fl_core::sweep::SweepGrid;
//! use fl_core::{Algorithm, ExperimentConfig};
//!
//! let mut base = ExperimentConfig::quick(Algorithm::TopK);
//! base.rounds = 2;
//! let grid = SweepGrid::new(base)
//!     .algorithms([Algorithm::FedAvg, Algorithm::TopK])
//!     .compression_ratios([0.1, 0.01]);
//! assert_eq!(grid.len(), 4);
//! let results = grid.run();
//! assert_eq!(results.len(), 4);
//! ```

use crate::algorithm::Algorithm;
use crate::config::ExperimentConfig;
use crate::policy::AdaptivePlanSpec;
use crate::runner::ExperimentResult;
use crate::session::SessionBuilder;
use fl_compress::{CompressorSpec, LayerPlan};
use fl_data::{Dataset, DatasetPreset};
use fl_netsim::ScenarioSpec;
use fl_tensor::parallel::{default_threads, parallel_map};
use std::collections::HashMap;
use std::sync::Arc;

/// Key identifying one generated dataset pair: preset name, scale bits, seed.
type DataKey = (&'static str, u64, u64);

/// A shared train/test dataset pair.
type SharedData = (Arc<Dataset>, Arc<Dataset>);

fn data_key(config: &ExperimentConfig) -> DataKey {
    (
        config.dataset.name(),
        config.dataset_scale.to_bits(),
        config.seed,
    )
}

/// Run every configuration, in parallel across `sweep_threads` worker threads
/// (`0` = the machine's available parallelism), sharing dataset generation
/// between configurations that use the same preset, scale and seed. Results
/// are returned in the same order as `configs`.
pub fn run_sweep_threaded(
    configs: &[ExperimentConfig],
    sweep_threads: usize,
) -> Vec<ExperimentResult> {
    run_sweep_threaded_progress(configs, sweep_threads, false)
}

/// [`run_sweep_threaded`] with opt-in progress reporting: when `progress` is
/// true, one `# sweep i/total: …` line is printed to stderr as each run
/// completes (completion order, not input order — runs finish as the workers
/// drain the grid). Stdout is untouched, so `--csv` output stays clean.
pub fn run_sweep_threaded_progress(
    configs: &[ExperimentConfig],
    sweep_threads: usize,
    progress: bool,
) -> Vec<ExperimentResult> {
    let threads = if sweep_threads == 0 {
        default_threads()
    } else {
        sweep_threads
    };
    // With several experiments in flight the machine's parallelism budget is
    // split between the sweep workers and each session's client-training
    // pool: auto-threaded configs (`max_threads == 0`) get an explicit inner
    // cap so outer × inner ≈ available cores instead of oversubscribing
    // quadratically. Explicit `max_threads` values are respected as-is, and
    // the inner pool is deterministic regardless of its size.
    let concurrent = threads.min(configs.len()).max(1);
    let inner_threads = (default_threads() / concurrent).max(1);

    // Generate each distinct dataset once (in parallel), keyed by
    // preset × scale × seed — the only inputs of `SyntheticSpec::generate` —
    // and share it across the grid behind an `Arc` (no per-run deep clones).
    let mut specs: Vec<(DataKey, DatasetPreset, f64, u64)> = Vec::new();
    for c in configs {
        let key = data_key(c);
        if !specs.iter().any(|(k, _, _, _)| *k == key) {
            specs.push((key, c.dataset, c.dataset_scale, c.seed));
        }
    }
    let generated: Vec<(DataKey, SharedData)> =
        parallel_map(specs, threads, |(key, preset, scale, seed)| {
            let (train, test) = preset.spec(scale).generate(seed);
            (key, (Arc::new(train), Arc::new(test)))
        });
    let cache: HashMap<DataKey, SharedData> = generated.into_iter().collect();

    let total = configs.len();
    let done = std::sync::atomic::AtomicUsize::new(0);
    let done = &done;
    parallel_map(configs.to_vec(), threads, move |config| {
        let start = std::time::Instant::now();
        let (train, test) = cache
            .get(&data_key(&config))
            .expect("every config's dataset was pre-generated")
            .clone();
        let mut builder = SessionBuilder::from_config(&config).with_shared_data(train, test);
        if config.max_threads == 0 {
            builder = builder.threads(inner_threads);
        }
        let result = builder.build().run();
        if progress {
            let n = done.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
            let codec = match (&config.compressor, &config.layer_compressors) {
                (Some(spec), _) => format!(" codec={spec}"),
                (None, Some(plan)) => format!(" plan={plan}"),
                (None, None) => String::new(),
            };
            eprintln!(
                "# sweep {n}/{total}: {} {} beta={} cr={}{codec} done in {:.1}s",
                config.algorithm.name(),
                config.dataset.name(),
                config.beta,
                config.compression_ratio,
                start.elapsed().as_secs_f64(),
            );
        }
        result
    })
}

/// [`run_sweep_threaded`] with the default thread count.
pub fn run_sweep(configs: &[ExperimentConfig]) -> Vec<ExperimentResult> {
    run_sweep_threaded(configs, 0)
}

/// A cartesian grid of experiment configurations over the axes the paper
/// sweeps — dataset × heterogeneity `β` × compression ratio × algorithm ×
/// codec × fleet scenario × seed. Unset axes stay at the base
/// configuration's value.
#[derive(Clone, Debug)]
pub struct SweepGrid {
    base: ExperimentConfig,
    client_counts: Vec<usize>,
    datasets: Vec<DatasetPreset>,
    betas: Vec<f64>,
    compression_ratios: Vec<f64>,
    algorithms: Vec<Algorithm>,
    compressors: Vec<Option<CompressorSpec>>,
    layer_plans: Vec<Option<LayerPlan>>,
    adaptive_plans: Vec<Option<AdaptivePlanSpec>>,
    downlink_compressors: Vec<Option<CompressorSpec>>,
    scenarios: Vec<Option<ScenarioSpec>>,
    seeds: Vec<u64>,
}

impl SweepGrid {
    /// A single-point grid at the base configuration.
    pub fn new(base: ExperimentConfig) -> Self {
        Self {
            client_counts: vec![base.num_clients],
            datasets: vec![base.dataset],
            betas: vec![base.beta],
            compression_ratios: vec![base.compression_ratio],
            algorithms: vec![base.algorithm],
            compressors: vec![base.compressor.clone()],
            layer_plans: vec![base.layer_compressors.clone()],
            adaptive_plans: vec![base.adaptive_plan.clone()],
            downlink_compressors: vec![base.downlink_compressor.clone()],
            scenarios: vec![base.scenario.clone()],
            seeds: vec![base.seed],
            base,
        }
    }

    /// Sweep over these population sizes `N` (each becomes the
    /// configuration's `num_clients`; `participation` stays at the base
    /// value, so the cohort grows with `N`). The outermost axis: the session
    /// roster virtualizes client state, so grids over 10^5+ clients cost
    /// O(population) only in partition bookkeeping, not client state.
    pub fn client_counts(mut self, counts: impl IntoIterator<Item = usize>) -> Self {
        self.client_counts = counts.into_iter().collect();
        self
    }

    /// Sweep over these datasets.
    pub fn datasets(mut self, datasets: impl IntoIterator<Item = DatasetPreset>) -> Self {
        self.datasets = datasets.into_iter().collect();
        self
    }

    /// Sweep over these Dirichlet heterogeneity levels.
    pub fn betas(mut self, betas: impl IntoIterator<Item = f64>) -> Self {
        self.betas = betas.into_iter().collect();
        self
    }

    /// Sweep over these base compression ratios.
    pub fn compression_ratios(mut self, ratios: impl IntoIterator<Item = f64>) -> Self {
        self.compression_ratios = ratios.into_iter().collect();
        self
    }

    /// Sweep over these algorithms.
    pub fn algorithms(mut self, algorithms: impl IntoIterator<Item = Algorithm>) -> Self {
        self.algorithms = algorithms.into_iter().collect();
        self
    }

    /// Sweep over these codec specs (each becomes the configuration's
    /// `compressor` override; see [`crate::policy::resolve_codec_spec`]).
    pub fn compressors(mut self, specs: impl IntoIterator<Item = CompressorSpec>) -> Self {
        self.compressors = specs.into_iter().map(Some).collect();
        self
    }

    /// Sweep over these layer-aware codec plans (each becomes the
    /// configuration's `layer_compressors`; the base's flat `compressor`
    /// override must be `None` — the two knobs are mutually exclusive). Use
    /// [`layer_plan_options`](Self::layer_plan_options) to include the flat
    /// baseline (`None`) in the same grid.
    pub fn layer_plans(mut self, plans: impl IntoIterator<Item = LayerPlan>) -> Self {
        self.layer_plans = plans.into_iter().map(Some).collect();
        self
    }

    /// Like [`layer_plans`](Self::layer_plans) but taking `Option`s, so a
    /// grid can compare layer-aware plans against the flat-codec baseline
    /// side by side.
    pub fn layer_plan_options(
        mut self,
        plans: impl IntoIterator<Item = Option<LayerPlan>>,
    ) -> Self {
        self.layer_plans = plans.into_iter().collect();
        self
    }

    /// Sweep over these adaptive plan policies (each becomes the
    /// configuration's `adaptive_plan`; the knob is mutually exclusive with
    /// the static `compressor` / `layer_compressors` overrides, so keep those
    /// axes at `None` when this one is set). Use
    /// [`adaptive_plan_options`](Self::adaptive_plan_options) to include the
    /// static baseline (`None`) in the same grid.
    pub fn adaptive_plans(mut self, specs: impl IntoIterator<Item = AdaptivePlanSpec>) -> Self {
        self.adaptive_plans = specs.into_iter().map(Some).collect();
        self
    }

    /// Like [`adaptive_plans`](Self::adaptive_plans) but taking `Option`s, so
    /// a grid can compare adaptive scheduling against the static baseline
    /// side by side.
    pub fn adaptive_plan_options(
        mut self,
        specs: impl IntoIterator<Item = Option<AdaptivePlanSpec>>,
    ) -> Self {
        self.adaptive_plans = specs.into_iter().collect();
        self
    }

    /// Sweep over these broadcast codec specs (each becomes the
    /// configuration's `downlink_compressor`). Use
    /// [`downlink_compressor_options`](Self::downlink_compressor_options) to
    /// include the free-broadcast baseline (`None`) in the same grid.
    pub fn downlink_compressors(mut self, specs: impl IntoIterator<Item = CompressorSpec>) -> Self {
        self.downlink_compressors = specs.into_iter().map(Some).collect();
        self
    }

    /// Like [`downlink_compressors`](Self::downlink_compressors) but taking
    /// `Option`s, so a grid can compare compressed broadcasts against the
    /// paper's free-broadcast baseline side by side.
    pub fn downlink_compressor_options(
        mut self,
        specs: impl IntoIterator<Item = Option<CompressorSpec>>,
    ) -> Self {
        self.downlink_compressors = specs.into_iter().collect();
        self
    }

    /// Sweep over these fleet scenarios (each becomes the configuration's
    /// `scenario`). Use [`scenario_options`](Self::scenario_options) to
    /// include the paper's static fleet (`None`) in the same grid.
    pub fn scenarios(mut self, specs: impl IntoIterator<Item = ScenarioSpec>) -> Self {
        self.scenarios = specs.into_iter().map(Some).collect();
        self
    }

    /// Like [`scenarios`](Self::scenarios) but taking `Option`s, so a grid
    /// can compare dynamic fleets against the static baseline side by side.
    pub fn scenario_options(
        mut self,
        specs: impl IntoIterator<Item = Option<ScenarioSpec>>,
    ) -> Self {
        self.scenarios = specs.into_iter().collect();
        self
    }

    /// Sweep over these master seeds (for repeated trials).
    pub fn seeds(mut self, seeds: impl IntoIterator<Item = u64>) -> Self {
        self.seeds = seeds.into_iter().collect();
        self
    }

    /// Number of configurations in the grid.
    pub fn len(&self) -> usize {
        self.client_counts.len()
            * self.datasets.len()
            * self.betas.len()
            * self.compression_ratios.len()
            * self.algorithms.len()
            * self.compressors.len()
            * self.layer_plans.len()
            * self.adaptive_plans.len()
            * self.downlink_compressors.len()
            * self.scenarios.len()
            * self.seeds.len()
    }

    /// True when any axis is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Materialise the grid, nested population → dataset → β → ratio →
    /// algorithm → codec → layer plan → adaptive plan → downlink codec →
    /// scenario → seed (the paper's table ordering, with populations, codecs,
    /// plans and fleet scenarios as extra rows).
    pub fn configs(&self) -> Vec<ExperimentConfig> {
        let mut out = Vec::with_capacity(self.len());
        for &num_clients in &self.client_counts {
            for &dataset in &self.datasets {
                for &beta in &self.betas {
                    for &compression_ratio in &self.compression_ratios {
                        for &algorithm in &self.algorithms {
                            for compressor in &self.compressors {
                                for plan in &self.layer_plans {
                                    for adaptive in &self.adaptive_plans {
                                        for downlink in &self.downlink_compressors {
                                            for scenario in &self.scenarios {
                                                for &seed in &self.seeds {
                                                    let mut c = self.base.clone();
                                                    c.num_clients = num_clients;
                                                    c.dataset = dataset;
                                                    c.beta = beta;
                                                    c.compression_ratio = compression_ratio;
                                                    c.algorithm = algorithm;
                                                    c.compressor = compressor.clone();
                                                    c.layer_compressors = plan.clone();
                                                    c.adaptive_plan = adaptive.clone();
                                                    c.downlink_compressor = downlink.clone();
                                                    c.scenario = scenario.clone();
                                                    c.seed = seed;
                                                    out.push(c);
                                                }
                                            }
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }

    /// Run the whole grid with the default thread count.
    pub fn run(&self) -> Vec<ExperimentResult> {
        run_sweep(&self.configs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::run_experiment;

    fn quick_base() -> ExperimentConfig {
        let mut c = ExperimentConfig::quick(Algorithm::TopK);
        c.rounds = 3;
        c.max_threads = 1;
        c
    }

    #[test]
    fn grid_covers_the_cartesian_product_in_order() {
        let grid = SweepGrid::new(quick_base())
            .algorithms([Algorithm::FedAvg, Algorithm::TopK])
            .betas([0.1, 0.5])
            .compression_ratios([0.1, 0.01]);
        assert_eq!(grid.len(), 8);
        let configs = grid.configs();
        assert_eq!(configs.len(), 8);
        // beta is the outer axis, then ratio, then algorithm.
        assert_eq!(configs[0].beta, 0.1);
        assert_eq!(configs[0].compression_ratio, 0.1);
        assert_eq!(configs[0].algorithm, Algorithm::FedAvg);
        assert_eq!(configs[1].algorithm, Algorithm::TopK);
        assert_eq!(configs[2].compression_ratio, 0.01);
        assert_eq!(configs[4].beta, 0.5);
    }

    #[test]
    fn client_count_axis_is_the_outermost_loop() {
        let grid = SweepGrid::new(quick_base())
            .client_counts([10, 1_000])
            .algorithms([Algorithm::FedAvg, Algorithm::TopK]);
        assert_eq!(grid.len(), 4);
        let configs = grid.configs();
        assert_eq!(configs[0].num_clients, 10);
        assert_eq!(configs[1].num_clients, 10);
        assert_eq!(configs[2].num_clients, 1_000);
        assert_eq!(configs[2].algorithm, Algorithm::FedAvg);
        assert_eq!(configs[3].algorithm, Algorithm::TopK);
        // Participation is untouched, so the cohort scales with N.
        assert_eq!(configs[0].participation, configs[2].participation);
        assert!(configs.iter().all(|c| c.validate().is_ok()));
        // The default grid keeps the base population.
        assert_eq!(
            SweepGrid::new(quick_base()).configs()[0].num_clients,
            quick_base().num_clients
        );
    }

    #[test]
    fn sweep_matches_sequential_runs() {
        let grid = SweepGrid::new(quick_base()).algorithms([Algorithm::FedAvg, Algorithm::TopK]);
        let configs = grid.configs();
        let swept = run_sweep_threaded(&configs, 4);
        for (config, result) in configs.iter().zip(swept.iter()) {
            let sequential = run_experiment(config);
            assert_eq!(result.records, sequential.records, "{:?}", config.algorithm);
        }
    }

    #[test]
    fn sweep_thread_count_does_not_change_results() {
        let configs = SweepGrid::new(quick_base())
            .compression_ratios([0.1, 0.05])
            .configs();
        let serial = run_sweep_threaded(&configs, 1);
        let parallel = run_sweep_threaded(&configs, 4);
        for (a, b) in serial.iter().zip(parallel.iter()) {
            assert_eq!(a.records, b.records);
        }
    }

    #[test]
    fn sweep_does_not_mutate_the_reported_config() {
        // The inner thread cap is applied through the session builder, not by
        // rewriting the config, so reported results match the input grid.
        let mut base = quick_base();
        base.max_threads = 0;
        base.rounds = 2;
        let results = run_sweep_threaded(std::slice::from_ref(&base), 2);
        assert_eq!(results[0].config.max_threads, 0);
    }

    #[test]
    fn compressor_axis_expands_the_grid() {
        let grid = SweepGrid::new(quick_base())
            .compressors(["topk+qsgd:4".parse().unwrap(), "qsgd:8".parse().unwrap()])
            .compression_ratios([0.1, 0.05]);
        assert_eq!(grid.len(), 4);
        let configs = grid.configs();
        assert_eq!(
            configs[0].compressor.as_ref().unwrap().to_string(),
            "topk+qsgd:4"
        );
        assert_eq!(
            configs[1].compressor.as_ref().unwrap().to_string(),
            "qsgd:8"
        );
        assert!(configs.iter().all(|c| c.validate().is_ok()));
        // The default grid keeps the base's (absent) override.
        assert!(SweepGrid::new(quick_base()).configs()[0]
            .compressor
            .is_none());
    }

    #[test]
    fn layer_plan_axis_expands_the_grid() {
        let grid = SweepGrid::new(quick_base())
            .layer_plan_options([
                None,
                Some("*.bias=dense;*=topk".parse().unwrap()),
                Some("*=topk+qsgd:4".parse().unwrap()),
            ])
            .compression_ratios([0.1, 0.05]);
        assert_eq!(grid.len(), 6);
        let configs = grid.configs();
        assert!(configs[0].layer_compressors.is_none());
        assert_eq!(
            configs[1].layer_compressors.as_ref().unwrap().to_string(),
            "*.bias=dense;*=topk"
        );
        assert_eq!(
            configs[2].layer_compressors.as_ref().unwrap().to_string(),
            "*=topk+qsgd:4"
        );
        assert!(configs.iter().all(|c| c.validate().is_ok()));
        // The plain builder takes owned plans.
        let owned = SweepGrid::new(quick_base())
            .layer_plans(["*=topk".parse::<fl_compress::LayerPlan>().unwrap()]);
        assert!(owned.configs()[0].layer_compressors.is_some());
        // The default grid keeps the base's (absent) plan.
        assert!(SweepGrid::new(quick_base()).configs()[0]
            .layer_compressors
            .is_none());
    }

    #[test]
    fn adaptive_plan_axis_expands_the_grid() {
        let grid = SweepGrid::new(quick_base())
            .adaptive_plan_options([
                None,
                Some("layer-bcrs".parse().unwrap()),
                Some("static:*=topk".parse().unwrap()),
            ])
            .compression_ratios([0.1, 0.05]);
        assert_eq!(grid.len(), 6);
        let configs = grid.configs();
        assert!(configs[0].adaptive_plan.is_none());
        assert_eq!(
            configs[1].adaptive_plan.as_ref().unwrap().to_string(),
            "layer-bcrs"
        );
        assert_eq!(
            configs[2].adaptive_plan.as_ref().unwrap().to_string(),
            "static:*=topk"
        );
        assert!(configs.iter().all(|c| c.validate().is_ok()));
        // The plain builder takes owned specs.
        let owned = SweepGrid::new(quick_base())
            .adaptive_plans(["layer-bcrs".parse::<AdaptivePlanSpec>().unwrap()]);
        assert!(owned.configs()[0].adaptive_plan.is_some());
        // The default grid keeps the base's (absent) adaptive policy.
        assert!(SweepGrid::new(quick_base()).configs()[0]
            .adaptive_plan
            .is_none());
    }

    #[test]
    fn downlink_axis_expands_the_grid() {
        let grid = SweepGrid::new(quick_base())
            .downlink_compressor_options([
                None,
                Some("topk".parse().unwrap()),
                Some("ef-topk".parse().unwrap()),
            ])
            .compression_ratios([0.1, 0.05]);
        assert_eq!(grid.len(), 6);
        let configs = grid.configs();
        assert!(configs[0].downlink_compressor.is_none());
        assert_eq!(
            configs[1].downlink_compressor.as_ref().unwrap().to_string(),
            "topk"
        );
        assert_eq!(
            configs[2].downlink_compressor.as_ref().unwrap().to_string(),
            "ef-topk"
        );
        assert!(configs.iter().all(|c| c.validate().is_ok()));
        // The default grid keeps the base's (absent) downlink codec.
        assert!(SweepGrid::new(quick_base()).configs()[0]
            .downlink_compressor
            .is_none());
    }

    #[test]
    fn scenario_axis_expands_the_grid() {
        let grid = SweepGrid::new(quick_base())
            .scenario_options([
                None,
                Some("diurnal".parse().unwrap()),
                Some("churn:leave=0.1".parse().unwrap()),
            ])
            .algorithms([Algorithm::FedAvg, Algorithm::TopK]);
        assert_eq!(grid.len(), 6);
        let configs = grid.configs();
        // Scenario is the innermost axis above seeds: the static baseline
        // and both dynamic fleets appear per algorithm.
        assert!(configs[0].scenario.is_none());
        assert_eq!(configs[1].scenario.as_ref().unwrap().name(), "diurnal");
        assert_eq!(configs[2].scenario.as_ref().unwrap().name(), "churn");
        assert_eq!(configs[3].algorithm, Algorithm::TopK);
        assert!(configs[3].scenario.is_none());
        assert!(configs.iter().all(|c| c.validate().is_ok()));
        // The plain builder takes owned specs; the default grid keeps the
        // base's (absent) scenario.
        let owned =
            SweepGrid::new(quick_base()).scenarios(["towers".parse::<ScenarioSpec>().unwrap()]);
        assert!(owned.configs()[0].scenario.is_some());
        assert!(SweepGrid::new(quick_base()).configs()[0].scenario.is_none());
    }

    #[test]
    fn shared_dataset_generation_deduplicates() {
        // Two configs differing only in algorithm share one dataset key; a
        // third with a different seed does not.
        let base = quick_base();
        let mut other_seed = base.clone();
        other_seed.seed = base.seed + 1;
        let mut other_alg = base.clone();
        other_alg.algorithm = Algorithm::FedAvg;
        assert_eq!(data_key(&base), data_key(&other_alg));
        assert_ne!(data_key(&base), data_key(&other_seed));
    }
}
