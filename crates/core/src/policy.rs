//! Pluggable per-round policies of the [`crate::session::FederatedSession`]
//! round engine.
//!
//! The experiment loop is decomposed into three policy seams, each a trait
//! with the paper's behaviour as the default implementation:
//!
//! * [`ClientSelector`] — which clients participate this round. The paper
//!   samples uniformly without replacement ([`UniformSelector`]); the
//!   [`AvailabilitySelector`] models client dropout, where each client is
//!   independently unavailable with a configured probability.
//! * [`RatioPolicy`] — which compression ratio each selected client gets.
//!   [`UniformRatio`] covers FedAvg (dense) and the uniform sparsifiers;
//!   [`BcrsRatioPolicy`] wraps the paper's bandwidth-aware scheduler (Alg. 2).
//! * [`ServerOpt`] — how the aggregated delta is applied to the global model.
//!   [`SgdServer`] is the paper's plain update `w ← w − η·Δ`;
//!   [`MomentumServer`] adds heavy-ball server momentum (FedAvgM-style).
//!
//! Custom policies plug in through
//! [`crate::session::SessionBuilder`]; the defaults are derived from the
//! [`ExperimentConfig`] so that `run_experiment` reproduces the paper's
//! Algorithm 1 exactly.

use crate::aggregate::apply_update;
use crate::algorithm::Algorithm;
use crate::bcrs::{BcrsSchedule, BcrsScheduler};
use crate::config::ExperimentConfig;
use fl_compress::CompressorSpec;
use fl_netsim::{CommModel, Link};
use fl_tensor::rng::{Rng, Xoshiro256};

/// Everything a [`ClientSelector`] may consult when picking a cohort.
pub struct SelectionCtx<'a> {
    /// Round index (0-based).
    pub round: usize,
    /// Total number of clients `N`.
    pub num_clients: usize,
    /// Target cohort size `max(1, round(N · C))`.
    pub cohort_size: usize,
    /// Network link of every client (indexed by client id).
    pub links: &'a [Link],
}

/// Picks the cohort of participating clients each round.
///
/// Implementations draw all randomness from the passed `rng` (the session's
/// dedicated selection stream) so runs stay reproducible.
pub trait ClientSelector: Send {
    /// Return the ids of the clients participating this round. The result
    /// must contain no duplicates and every id must be in
    /// `[0, num_clients)`. It may be smaller than `cohort_size` (e.g. under
    /// dropout); if it comes back empty the round engine backstops it with
    /// one uniformly drawn client, so a round always has a participant.
    fn select(&mut self, ctx: &SelectionCtx<'_>, rng: &mut Xoshiro256) -> Vec<usize>;

    /// Short name used in reports.
    fn name(&self) -> &'static str;
}

/// The paper's selector: `cohort_size` clients uniformly at random without
/// replacement (Alg. 1 line 3).
///
/// Cost at population scale: one partial Fisher–Yates over an index vector,
/// i.e. O(N) time and memory per round. At the N = 10^5–10^6 populations the
/// virtualized [`crate::roster::ClientRoster`] supports this is a single
/// `usize` vector — negligible next to client training, and nothing about
/// the draw instantiates client state (only the `cohort_size` *selected*
/// clients are ever materialised).
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformSelector;

impl ClientSelector for UniformSelector {
    fn select(&mut self, ctx: &SelectionCtx<'_>, rng: &mut Xoshiro256) -> Vec<usize> {
        rng.sample_without_replacement(ctx.num_clients, ctx.cohort_size)
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Dropout-aware selector: every client is independently unavailable with
/// probability `dropout_rate` each round, and the cohort is drawn uniformly
/// from the available clients (shrinking below the target size when too few
/// are up). If no client is available at all, exactly one client is drawn
/// uniformly so the round still has a participant — previously this case
/// fell back to a *full* target-size cohort, i.e. the rounds where the most
/// clients were down were the ones with the largest cohorts, and downstream
/// per-client averages were computed over clients that never participated.
///
/// Like [`UniformSelector`] this is O(N) per round (one availability draw
/// per client), which stays cheap even at roster-scale populations.
#[derive(Clone, Copy, Debug)]
pub struct AvailabilitySelector {
    /// Per-round, per-client probability of being unavailable, in `[0, 1)`.
    pub dropout_rate: f64,
}

impl AvailabilitySelector {
    /// New availability selector. Panics unless `dropout_rate ∈ [0, 1)`.
    pub fn new(dropout_rate: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&dropout_rate),
            "dropout_rate must be in [0, 1), got {dropout_rate}"
        );
        Self { dropout_rate }
    }
}

impl ClientSelector for AvailabilitySelector {
    fn select(&mut self, ctx: &SelectionCtx<'_>, rng: &mut Xoshiro256) -> Vec<usize> {
        let available: Vec<usize> = (0..ctx.num_clients)
            .filter(|_| !rng.next_bool(self.dropout_rate))
            .collect();
        if available.is_empty() {
            return vec![rng.next_below(ctx.num_clients)];
        }
        let k = ctx.cohort_size.min(available.len());
        rng.sample_without_replacement(available.len(), k)
            .into_iter()
            .map(|i| available[i])
            .collect()
    }

    fn name(&self) -> &'static str {
        "availability"
    }
}

/// Everything a [`RatioPolicy`] may consult when assigning ratios.
pub struct RatioCtx<'a> {
    /// Round index (0-based).
    pub round: usize,
    /// Links of the *selected* clients, in cohort order.
    pub links: &'a [Link],
    /// Dense model size in bytes (`V` of the communication model).
    pub model_bytes: f64,
}

/// The per-round outcome of a [`RatioPolicy`].
pub struct RatioDecision {
    /// Compression ratio per selected client, in cohort order.
    pub ratios: Vec<f64>,
    /// The BCRS schedule, when the policy ran the bandwidth-aware scheduler
    /// (used for Eq. 6 coefficient adjustment and exact uplink timing).
    pub schedule: Option<BcrsSchedule>,
    /// True when updates travel uncompressed (dense wire format without the
    /// 2× index overhead of sparse transmission) — FedAvg's case.
    pub dense_uplink: bool,
}

/// Assigns each selected client its compression ratio for the round.
pub trait RatioPolicy: Send {
    /// Decide the cohort's ratios (one per entry of `ctx.links`).
    fn decide(&self, ctx: &RatioCtx<'_>) -> RatioDecision;

    /// Short name used in reports.
    fn name(&self) -> &'static str;
}

/// The same ratio for every client: `1.0` dense for FedAvg, or the base
/// compression ratio for the uniform sparsifiers (Top-K, EF-Top-K, Rand-K).
#[derive(Clone, Copy, Debug)]
pub struct UniformRatio {
    /// The ratio given to every selected client.
    pub ratio: f64,
    /// Whether updates are transmitted dense (no sparse index overhead).
    pub dense_uplink: bool,
}

impl UniformRatio {
    /// Uniform sparsification at `ratio`.
    pub fn sparse(ratio: f64) -> Self {
        Self {
            ratio,
            dense_uplink: false,
        }
    }

    /// Uncompressed (FedAvg) transmission.
    pub fn dense() -> Self {
        Self {
            ratio: 1.0,
            dense_uplink: true,
        }
    }
}

impl RatioPolicy for UniformRatio {
    fn decide(&self, ctx: &RatioCtx<'_>) -> RatioDecision {
        RatioDecision {
            ratios: vec![self.ratio; ctx.links.len()],
            schedule: None,
            dense_uplink: self.dense_uplink,
        }
    }

    fn name(&self) -> &'static str {
        if self.dense_uplink {
            "dense"
        } else {
            "uniform"
        }
    }
}

/// The paper's bandwidth-aware compression-ratio scheduling (Alg. 2): every
/// client gets the largest ratio that still finishes within the slowest
/// client's compressed upload time.
#[derive(Clone, Debug)]
pub struct BcrsRatioPolicy {
    scheduler: BcrsScheduler,
    base_ratio: f64,
}

impl BcrsRatioPolicy {
    /// BCRS over the given communication model at the given base ratio `CR*`.
    pub fn new(comm: CommModel, base_ratio: f64) -> Self {
        Self {
            scheduler: BcrsScheduler::new(comm),
            base_ratio,
        }
    }
}

impl RatioPolicy for BcrsRatioPolicy {
    fn decide(&self, ctx: &RatioCtx<'_>) -> RatioDecision {
        let schedule = self
            .scheduler
            .schedule(ctx.links, ctx.model_bytes, self.base_ratio);
        RatioDecision {
            ratios: schedule.ratios.clone(),
            schedule: Some(schedule),
            dense_uplink: false,
        }
    }

    fn name(&self) -> &'static str {
        "bcrs"
    }
}

/// Applies the aggregated cohort delta to the global parameters.
///
/// Implementations may keep state across rounds (momentum buffers, adaptive
/// moments, …); the session calls `apply` exactly once per round.
pub trait ServerOpt: Send {
    /// Update `global` in place from the aggregated descent direction
    /// `aggregated_delta` at server learning rate `server_lr`.
    fn apply(&mut self, global: &mut [f32], aggregated_delta: &[f32], server_lr: f32);

    /// Short name used in reports.
    fn name(&self) -> &'static str;
}

/// The paper's plain server update `w ← w − η_server · Δ` (Alg. 1 line 18).
#[derive(Clone, Copy, Debug, Default)]
pub struct SgdServer;

impl ServerOpt for SgdServer {
    fn apply(&mut self, global: &mut [f32], aggregated_delta: &[f32], server_lr: f32) {
        apply_update(global, aggregated_delta, server_lr);
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// Heavy-ball server momentum (FedAvgM): `v ← β·v + Δ`, `w ← w − η_server·v`.
/// With `β = 0` this degrades to [`SgdServer`].
#[derive(Clone, Debug)]
pub struct MomentumServer {
    momentum: f32,
    velocity: Vec<f32>,
}

impl MomentumServer {
    /// New momentum server optimizer. Panics unless `momentum ∈ [0, 1)`.
    pub fn new(momentum: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&momentum),
            "server momentum must be in [0, 1), got {momentum}"
        );
        Self {
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Current L2 norm of the velocity buffer (0 before the first round).
    pub fn velocity_norm(&self) -> f64 {
        self.velocity
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }
}

impl ServerOpt for MomentumServer {
    fn apply(&mut self, global: &mut [f32], aggregated_delta: &[f32], server_lr: f32) {
        assert_eq!(
            global.len(),
            aggregated_delta.len(),
            "parameter length mismatch"
        );
        if self.velocity.len() != aggregated_delta.len() {
            self.velocity = vec![0.0; aggregated_delta.len()];
        }
        for ((w, v), &d) in global
            .iter_mut()
            .zip(self.velocity.iter_mut())
            .zip(aggregated_delta.iter())
        {
            *v = self.momentum * *v + d;
            *w -= server_lr * *v;
        }
    }

    fn name(&self) -> &'static str {
        "momentum"
    }
}

/// The selector implied by a configuration: [`AvailabilitySelector`] when
/// `dropout_rate > 0`, the paper's [`UniformSelector`] otherwise.
pub fn default_selector(config: &ExperimentConfig) -> Box<dyn ClientSelector> {
    if config.dropout_rate > 0.0 {
        Box::new(AvailabilitySelector::new(config.dropout_rate))
    } else {
        Box::new(UniformSelector)
    }
}

/// The ratio policy implied by a configuration's algorithm (the former
/// `match config.algorithm` block of the monolithic runner).
pub fn default_ratio_policy(config: &ExperimentConfig, comm: CommModel) -> Box<dyn RatioPolicy> {
    match config.algorithm {
        Algorithm::FedAvg => Box::new(UniformRatio::dense()),
        Algorithm::TopK | Algorithm::EfTopK | Algorithm::RandK | Algorithm::TopKOpwa => {
            Box::new(UniformRatio::sparse(config.compression_ratio))
        }
        Algorithm::Bcrs | Algorithm::BcrsOpwa => {
            Box::new(BcrsRatioPolicy::new(comm, config.compression_ratio))
        }
    }
}

/// The server optimizer implied by a configuration: [`MomentumServer`] when
/// `server_momentum > 0`, the paper's plain [`SgdServer`] otherwise.
pub fn default_server_opt(config: &ExperimentConfig) -> Box<dyn ServerOpt> {
    if config.server_momentum > 0.0 {
        Box::new(MomentumServer::new(config.server_momentum))
    } else {
        Box::new(SgdServer)
    }
}

/// The codec spec an algorithm implies when the configuration does not
/// override it: `ef-topk` for EF-Top-K, `randk` for Rand-K, plain `topk` for
/// everything else (FedAvg transmits at ratio 1, which Top-K passes through).
pub fn default_codec_spec(algorithm: Algorithm) -> CompressorSpec {
    if algorithm.uses_error_feedback() {
        CompressorSpec::topk().with_error_feedback()
    } else if algorithm.uses_randk() {
        CompressorSpec::randk()
    } else {
        CompressorSpec::topk()
    }
}

/// The codec spec a configuration resolves to: the explicit
/// [`ExperimentConfig::compressor`] override when present, the
/// algorithm-implied default otherwise. This is the fourth policy seam of the
/// round engine — any algorithm can run over any codec.
pub fn resolve_codec_spec(config: &ExperimentConfig) -> CompressorSpec {
    config
        .compressor
        .clone()
        .unwrap_or_else(|| default_codec_spec(config.algorithm))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(links: &[Link]) -> SelectionCtx<'_> {
        SelectionCtx {
            round: 0,
            num_clients: links.len(),
            cohort_size: links.len() / 2,
            links,
        }
    }

    fn links(n: usize) -> Vec<Link> {
        (0..n)
            .map(|i| Link::from_mbps_ms(1.0 + i as f64, 50.0))
            .collect()
    }

    #[test]
    fn uniform_selector_matches_raw_sampling() {
        let links = links(10);
        let mut a = Xoshiro256::new(99);
        let mut b = Xoshiro256::new(99);
        let picked = UniformSelector.select(&ctx(&links), &mut a);
        assert_eq!(picked, b.sample_without_replacement(10, 5));
    }

    #[test]
    fn availability_selector_is_deterministic_and_valid() {
        let links = links(10);
        let mut sel = AvailabilitySelector::new(0.4);
        let mut a = Xoshiro256::new(3);
        let mut b = Xoshiro256::new(3);
        let pa = sel.select(&ctx(&links), &mut a);
        let pb = sel.select(&ctx(&links), &mut b);
        assert_eq!(pa, pb);
        assert!(!pa.is_empty() && pa.len() <= 5);
        let mut dedup = pa.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), pa.len());
        assert!(pa.iter().all(|&c| c < 10));
    }

    #[test]
    fn availability_selector_shrinks_cohort_under_heavy_dropout() {
        let links = links(10);
        let mut sel = AvailabilitySelector::new(0.9);
        let mut rng = Xoshiro256::new(5);
        let mut shrunk = false;
        for _ in 0..50 {
            let picked = sel.select(&ctx(&links), &mut rng);
            assert!(!picked.is_empty());
            if picked.len() < 5 {
                shrunk = true;
            }
        }
        assert!(shrunk, "90% dropout should shrink the cohort at least once");
    }

    #[test]
    #[should_panic]
    fn availability_selector_rejects_certain_dropout() {
        AvailabilitySelector::new(1.0);
    }

    #[test]
    fn near_certain_dropout_still_yields_a_participant_every_round() {
        // Regression: at dropout_rate ≈ 1.0 the "nobody available" branch is
        // hit almost every round. It must produce exactly one valid
        // participant — never an empty cohort (which would break the round's
        // straggler max and per-client byte averages downstream) and never
        // the old full-target-size fallback.
        let links = links(10);
        let mut sel = AvailabilitySelector::new(0.999);
        let mut rng = Xoshiro256::new(17);
        let mut singleton_rounds = 0;
        for _ in 0..300 {
            let picked = sel.select(&ctx(&links), &mut rng);
            assert!(!picked.is_empty(), "empty cohort at dropout ≈ 1.0");
            assert!(picked.len() <= 5);
            assert!(picked.iter().all(|&c| c < 10));
            if picked.len() == 1 {
                singleton_rounds += 1;
            }
        }
        assert!(
            singleton_rounds > 250,
            "at 99.9% dropout nearly every round should fall back to a \
             single participant, got {singleton_rounds}/300"
        );
    }

    #[test]
    fn uniform_ratio_decision() {
        let links = links(4);
        let rctx = RatioCtx {
            round: 0,
            links: &links,
            model_bytes: 1e5,
        };
        let d = UniformRatio::sparse(0.1).decide(&rctx);
        assert_eq!(d.ratios, vec![0.1; 4]);
        assert!(d.schedule.is_none());
        assert!(!d.dense_uplink);
        let d = UniformRatio::dense().decide(&rctx);
        assert_eq!(d.ratios, vec![1.0; 4]);
        assert!(d.dense_uplink);
    }

    #[test]
    fn bcrs_policy_produces_schedule() {
        let links = vec![
            Link::from_mbps_ms(4.0, 40.0),
            Link::from_mbps_ms(0.5, 150.0),
        ];
        let rctx = RatioCtx {
            round: 0,
            links: &links,
            model_bytes: 1e5,
        };
        let d = BcrsRatioPolicy::new(CommModel::paper_default(), 0.05).decide(&rctx);
        let s = d.schedule.expect("BCRS must emit a schedule");
        assert_eq!(d.ratios, s.ratios);
        assert!(d.ratios[0] > d.ratios[1], "fast client gets a larger ratio");
    }

    #[test]
    fn sgd_server_matches_apply_update() {
        let mut a = vec![1.0f32, 2.0, 3.0];
        let mut b = a.clone();
        SgdServer.apply(&mut a, &[0.5, 0.5, 0.5], 0.2);
        apply_update(&mut b, &[0.5, 0.5, 0.5], 0.2);
        assert_eq!(a, b);
    }

    #[test]
    fn momentum_server_accumulates_velocity() {
        let mut opt = MomentumServer::new(0.5);
        let mut w = vec![0.0f32; 2];
        opt.apply(&mut w, &[1.0, 2.0], 1.0); // v = [1, 2], w = [-1, -2]
        assert_eq!(w, vec![-1.0, -2.0]);
        opt.apply(&mut w, &[1.0, 2.0], 1.0); // v = [1.5, 3], w = [-2.5, -5]
        assert_eq!(w, vec![-2.5, -5.0]);
        assert!(opt.velocity_norm() > 0.0);
    }

    #[test]
    fn momentum_zero_equals_sgd() {
        let delta = [0.25f32, -0.75, 0.5];
        let mut a = vec![1.0f32; 3];
        let mut b = a.clone();
        MomentumServer::new(0.0).apply(&mut a, &delta, 0.7);
        SgdServer.apply(&mut b, &delta, 0.7);
        assert_eq!(a, b);
    }

    #[test]
    fn codec_specs_follow_algorithm_and_override() {
        assert_eq!(default_codec_spec(Algorithm::FedAvg).to_string(), "topk");
        assert_eq!(default_codec_spec(Algorithm::TopK).to_string(), "topk");
        assert_eq!(default_codec_spec(Algorithm::EfTopK).to_string(), "ef-topk");
        assert_eq!(default_codec_spec(Algorithm::RandK).to_string(), "randk");
        assert_eq!(default_codec_spec(Algorithm::Bcrs).to_string(), "topk");
        assert_eq!(default_codec_spec(Algorithm::BcrsOpwa).to_string(), "topk");
        assert_eq!(default_codec_spec(Algorithm::TopKOpwa).to_string(), "topk");

        let mut c = ExperimentConfig::quick(Algorithm::EfTopK);
        assert_eq!(resolve_codec_spec(&c).to_string(), "ef-topk");
        c.compressor = Some("qsgd:8".parse().unwrap());
        assert_eq!(resolve_codec_spec(&c).to_string(), "qsgd:8");
    }

    #[test]
    fn defaults_follow_config() {
        let mut c = ExperimentConfig::quick(Algorithm::FedAvg);
        assert_eq!(default_selector(&c).name(), "uniform");
        assert_eq!(default_server_opt(&c).name(), "sgd");
        assert_eq!(
            default_ratio_policy(&c, CommModel::paper_default()).name(),
            "dense"
        );
        c.dropout_rate = 0.2;
        c.server_momentum = 0.9;
        c.algorithm = Algorithm::Bcrs;
        assert_eq!(default_selector(&c).name(), "availability");
        assert_eq!(default_server_opt(&c).name(), "momentum");
        assert_eq!(
            default_ratio_policy(&c, CommModel::paper_default()).name(),
            "bcrs"
        );
    }
}
