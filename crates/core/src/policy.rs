//! Pluggable per-round policies of the [`crate::session::FederatedSession`]
//! round engine.
//!
//! The experiment loop is decomposed into three policy seams, each a trait
//! with the paper's behaviour as the default implementation:
//!
//! * [`ClientSelector`] — which clients participate this round. The paper
//!   samples uniformly without replacement ([`UniformSelector`]); the
//!   [`AvailabilitySelector`] models client dropout, where each client is
//!   independently unavailable with a configured probability.
//! * [`RatioPolicy`] — which compression ratio each selected client gets.
//!   [`UniformRatio`] covers FedAvg (dense) and the uniform sparsifiers;
//!   [`BcrsRatioPolicy`] wraps the paper's bandwidth-aware scheduler (Alg. 2).
//! * [`ServerOpt`] — how the aggregated delta is applied to the global model.
//!   [`SgdServer`] is the paper's plain update `w ← w − η·Δ`;
//!   [`MomentumServer`] adds heavy-ball server momentum (FedAvgM-style).
//! * [`PlanPolicy`] — which per-layer codec plan the cohort encodes under
//!   this round. [`StaticPlanPolicy`] re-emits a fixed [`LayerPlan`] (the
//!   bit-identical fallback); [`LayerBcrsPolicy`] closes the telemetry loop,
//!   re-splitting the round's coordinate budget across layers in proportion
//!   to the observed gradient mass and checking each layer's budget against
//!   the BCRS straggler envelope.
//!
//! Custom policies plug in through
//! [`crate::session::SessionBuilder`]; the defaults are derived from the
//! [`ExperimentConfig`] so that `run_experiment` reproduces the paper's
//! Algorithm 1 exactly.

use crate::aggregate::apply_update;
use crate::algorithm::Algorithm;
use crate::bcrs::{BcrsSchedule, BcrsScheduler};
use crate::config::ExperimentConfig;
use crate::runner::LayerBytes;
use fl_compress::{CompressorSpec, LayerPlan, SegmentDef, SpecError};
use fl_netsim::{CommModel, Link};
use fl_tensor::rng::{Rng, Xoshiro256};
use serde::{Deserialize, Serialize};

/// Everything a [`ClientSelector`] may consult when picking a cohort.
pub struct SelectionCtx<'a> {
    /// Round index (0-based).
    pub round: usize,
    /// Total number of clients `N`.
    pub num_clients: usize,
    /// Target cohort size `max(1, round(N · C))`.
    pub cohort_size: usize,
    /// Network link of every client (indexed by client id).
    pub links: &'a [Link],
}

/// Picks the cohort of participating clients each round.
///
/// Implementations draw all randomness from the passed `rng` (the session's
/// dedicated selection stream) so runs stay reproducible.
pub trait ClientSelector: Send {
    /// Return the ids of the clients participating this round. The result
    /// must contain no duplicates and every id must be in
    /// `[0, num_clients)`. It may be smaller than `cohort_size` (e.g. under
    /// dropout); if it comes back empty the round engine backstops it with
    /// one uniformly drawn client, so a round always has a participant.
    fn select(&mut self, ctx: &SelectionCtx<'_>, rng: &mut Xoshiro256) -> Vec<usize>;

    /// Short name used in reports.
    fn name(&self) -> &'static str;
}

/// The paper's selector: `cohort_size` clients uniformly at random without
/// replacement (Alg. 1 line 3).
///
/// Cost at population scale: one partial Fisher–Yates over an index vector,
/// i.e. O(N) time and memory per round. At the N = 10^5–10^6 populations the
/// virtualized [`crate::roster::ClientRoster`] supports this is a single
/// `usize` vector — negligible next to client training, and nothing about
/// the draw instantiates client state (only the `cohort_size` *selected*
/// clients are ever materialised).
#[derive(Clone, Copy, Debug, Default)]
pub struct UniformSelector;

impl ClientSelector for UniformSelector {
    fn select(&mut self, ctx: &SelectionCtx<'_>, rng: &mut Xoshiro256) -> Vec<usize> {
        rng.sample_without_replacement(ctx.num_clients, ctx.cohort_size)
    }

    fn name(&self) -> &'static str {
        "uniform"
    }
}

/// Dropout-aware selector: every client is independently unavailable with
/// probability `dropout_rate` each round, and the cohort is drawn uniformly
/// from the available clients (shrinking below the target size when too few
/// are up). If no client is available at all, exactly one client is drawn
/// uniformly so the round still has a participant — previously this case
/// fell back to a *full* target-size cohort, i.e. the rounds where the most
/// clients were down were the ones with the largest cohorts, and downstream
/// per-client averages were computed over clients that never participated.
///
/// Like [`UniformSelector`] this is O(N) per round (one availability draw
/// per client), which stays cheap even at roster-scale populations.
#[derive(Clone, Copy, Debug)]
pub struct AvailabilitySelector {
    /// Per-round, per-client probability of being unavailable, in `[0, 1)`.
    pub dropout_rate: f64,
}

impl AvailabilitySelector {
    /// New availability selector. Panics unless `dropout_rate ∈ [0, 1)`.
    pub fn new(dropout_rate: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&dropout_rate),
            "dropout_rate must be in [0, 1), got {dropout_rate}"
        );
        Self { dropout_rate }
    }
}

impl ClientSelector for AvailabilitySelector {
    fn select(&mut self, ctx: &SelectionCtx<'_>, rng: &mut Xoshiro256) -> Vec<usize> {
        let available: Vec<usize> = (0..ctx.num_clients)
            .filter(|_| !rng.next_bool(self.dropout_rate))
            .collect();
        if available.is_empty() {
            return vec![rng.next_below(ctx.num_clients)];
        }
        let k = ctx.cohort_size.min(available.len());
        rng.sample_without_replacement(available.len(), k)
            .into_iter()
            .map(|i| available[i])
            .collect()
    }

    fn name(&self) -> &'static str {
        "availability"
    }
}

/// Everything a [`RatioPolicy`] may consult when assigning ratios.
pub struct RatioCtx<'a> {
    /// Round index (0-based).
    pub round: usize,
    /// Links of the *selected* clients, in cohort order.
    pub links: &'a [Link],
    /// Dense model size in bytes (`V` of the communication model).
    pub model_bytes: f64,
}

/// The per-round outcome of a [`RatioPolicy`].
pub struct RatioDecision {
    /// Compression ratio per selected client, in cohort order.
    pub ratios: Vec<f64>,
    /// The BCRS schedule, when the policy ran the bandwidth-aware scheduler
    /// (used for Eq. 6 coefficient adjustment and exact uplink timing).
    pub schedule: Option<BcrsSchedule>,
    /// True when updates travel uncompressed (dense wire format without the
    /// 2× index overhead of sparse transmission) — FedAvg's case.
    pub dense_uplink: bool,
}

/// Assigns each selected client its compression ratio for the round.
pub trait RatioPolicy: Send {
    /// Decide the cohort's ratios (one per entry of `ctx.links`).
    fn decide(&self, ctx: &RatioCtx<'_>) -> RatioDecision;

    /// Short name used in reports.
    fn name(&self) -> &'static str;
}

/// The same ratio for every client: `1.0` dense for FedAvg, or the base
/// compression ratio for the uniform sparsifiers (Top-K, EF-Top-K, Rand-K).
#[derive(Clone, Copy, Debug)]
pub struct UniformRatio {
    /// The ratio given to every selected client.
    pub ratio: f64,
    /// Whether updates are transmitted dense (no sparse index overhead).
    pub dense_uplink: bool,
}

impl UniformRatio {
    /// Uniform sparsification at `ratio`.
    pub fn sparse(ratio: f64) -> Self {
        Self {
            ratio,
            dense_uplink: false,
        }
    }

    /// Uncompressed (FedAvg) transmission.
    pub fn dense() -> Self {
        Self {
            ratio: 1.0,
            dense_uplink: true,
        }
    }
}

impl RatioPolicy for UniformRatio {
    fn decide(&self, ctx: &RatioCtx<'_>) -> RatioDecision {
        RatioDecision {
            ratios: vec![self.ratio; ctx.links.len()],
            schedule: None,
            dense_uplink: self.dense_uplink,
        }
    }

    fn name(&self) -> &'static str {
        if self.dense_uplink {
            "dense"
        } else {
            "uniform"
        }
    }
}

/// The paper's bandwidth-aware compression-ratio scheduling (Alg. 2): every
/// client gets the largest ratio that still finishes within the slowest
/// client's compressed upload time.
#[derive(Clone, Debug)]
pub struct BcrsRatioPolicy {
    scheduler: BcrsScheduler,
    base_ratio: f64,
}

impl BcrsRatioPolicy {
    /// BCRS over the given communication model at the given base ratio `CR*`.
    pub fn new(comm: CommModel, base_ratio: f64) -> Self {
        Self {
            scheduler: BcrsScheduler::new(comm),
            base_ratio,
        }
    }
}

impl RatioPolicy for BcrsRatioPolicy {
    fn decide(&self, ctx: &RatioCtx<'_>) -> RatioDecision {
        let schedule = self
            .scheduler
            .schedule(ctx.links, ctx.model_bytes, self.base_ratio);
        RatioDecision {
            ratios: schedule.ratios.clone(),
            schedule: Some(schedule),
            dense_uplink: false,
        }
    }

    fn name(&self) -> &'static str {
        "bcrs"
    }
}

/// Applies the aggregated cohort delta to the global parameters.
///
/// Implementations may keep state across rounds (momentum buffers, adaptive
/// moments, …); the session calls `apply` exactly once per round.
pub trait ServerOpt: Send {
    /// Update `global` in place from the aggregated descent direction
    /// `aggregated_delta` at server learning rate `server_lr`.
    fn apply(&mut self, global: &mut [f32], aggregated_delta: &[f32], server_lr: f32);

    /// Short name used in reports.
    fn name(&self) -> &'static str;
}

/// The paper's plain server update `w ← w − η_server · Δ` (Alg. 1 line 18).
#[derive(Clone, Copy, Debug, Default)]
pub struct SgdServer;

impl ServerOpt for SgdServer {
    fn apply(&mut self, global: &mut [f32], aggregated_delta: &[f32], server_lr: f32) {
        apply_update(global, aggregated_delta, server_lr);
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// Heavy-ball server momentum (FedAvgM): `v ← β·v + Δ`, `w ← w − η_server·v`.
/// With `β = 0` this degrades to [`SgdServer`].
#[derive(Clone, Debug)]
pub struct MomentumServer {
    momentum: f32,
    velocity: Vec<f32>,
}

impl MomentumServer {
    /// New momentum server optimizer. Panics unless `momentum ∈ [0, 1)`.
    pub fn new(momentum: f32) -> Self {
        assert!(
            (0.0..1.0).contains(&momentum),
            "server momentum must be in [0, 1), got {momentum}"
        );
        Self {
            momentum,
            velocity: Vec::new(),
        }
    }

    /// Current L2 norm of the velocity buffer (0 before the first round).
    pub fn velocity_norm(&self) -> f64 {
        self.velocity
            .iter()
            .map(|&v| (v as f64) * (v as f64))
            .sum::<f64>()
            .sqrt()
    }
}

impl ServerOpt for MomentumServer {
    fn apply(&mut self, global: &mut [f32], aggregated_delta: &[f32], server_lr: f32) {
        assert_eq!(
            global.len(),
            aggregated_delta.len(),
            "parameter length mismatch"
        );
        if self.velocity.len() != aggregated_delta.len() {
            self.velocity = vec![0.0; aggregated_delta.len()];
        }
        for ((w, v), &d) in global
            .iter_mut()
            .zip(self.velocity.iter_mut())
            .zip(aggregated_delta.iter())
        {
            *v = self.momentum * *v + d;
            *w -= server_lr * *v;
        }
    }

    fn name(&self) -> &'static str {
        "momentum"
    }
}

/// The selector implied by a configuration: [`AvailabilitySelector`] when
/// `dropout_rate > 0`, the paper's [`UniformSelector`] otherwise.
pub fn default_selector(config: &ExperimentConfig) -> Box<dyn ClientSelector> {
    if config.dropout_rate > 0.0 {
        Box::new(AvailabilitySelector::new(config.dropout_rate))
    } else {
        Box::new(UniformSelector)
    }
}

/// The ratio policy implied by a configuration's algorithm (the former
/// `match config.algorithm` block of the monolithic runner).
pub fn default_ratio_policy(config: &ExperimentConfig, comm: CommModel) -> Box<dyn RatioPolicy> {
    match config.algorithm {
        Algorithm::FedAvg => Box::new(UniformRatio::dense()),
        Algorithm::TopK | Algorithm::EfTopK | Algorithm::RandK | Algorithm::TopKOpwa => {
            Box::new(UniformRatio::sparse(config.compression_ratio))
        }
        Algorithm::Bcrs | Algorithm::BcrsOpwa => {
            Box::new(BcrsRatioPolicy::new(comm, config.compression_ratio))
        }
    }
}

/// The server optimizer implied by a configuration: [`MomentumServer`] when
/// `server_momentum > 0`, the paper's plain [`SgdServer`] otherwise.
pub fn default_server_opt(config: &ExperimentConfig) -> Box<dyn ServerOpt> {
    if config.server_momentum > 0.0 {
        Box::new(MomentumServer::new(config.server_momentum))
    } else {
        Box::new(SgdServer)
    }
}

/// The codec spec an algorithm implies when the configuration does not
/// override it: `ef-topk` for EF-Top-K, `randk` for Rand-K, plain `topk` for
/// everything else (FedAvg transmits at ratio 1, which Top-K passes through).
pub fn default_codec_spec(algorithm: Algorithm) -> CompressorSpec {
    if algorithm.uses_error_feedback() {
        CompressorSpec::topk().with_error_feedback()
    } else if algorithm.uses_randk() {
        CompressorSpec::randk()
    } else {
        CompressorSpec::topk()
    }
}

/// The codec spec a configuration resolves to: the explicit
/// [`ExperimentConfig::compressor`] override when present, the
/// algorithm-implied default otherwise. This is the fourth policy seam of the
/// round engine — any algorithm can run over any codec.
pub fn resolve_codec_spec(config: &ExperimentConfig) -> CompressorSpec {
    config
        .compressor
        .clone()
        .unwrap_or_else(|| default_codec_spec(config.algorithm))
}

/// Parseable description of the plan policy driving adaptive per-layer
/// compression (the [`ExperimentConfig::adaptive_plan`] knob and the bench
/// harness `--adaptive-plan` flag).
///
/// Grammar (round-trips through `Display`):
///
/// * `static:<plan>` — re-emit the given [`LayerPlan`] every round
///   ([`StaticPlanPolicy`]). Record fields other than the plan telemetry are
///   bit-identical to running the same plan through
///   [`ExperimentConfig::layer_compressors`];
/// * `layer-bcrs` or `layer-bcrs:efficiency=<f>` — the telemetry-driven
///   [`LayerBcrsPolicy`]; `efficiency ∈ (0, 1]` defaults to
///   [`AdaptivePlanSpec::DEFAULT_EFFICIENCY`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum AdaptivePlanSpec {
    /// Re-emit the same [`LayerPlan`] every round.
    Static(LayerPlan),
    /// Mass-proportional per-layer budgets through the BCRS scheduler.
    LayerBcrs {
        /// Fraction of the uniform plan's coordinate budget the allocator
        /// spends, in `(0, 1]`. Keeping it below 1 is what guarantees a
        /// strict uplink-byte win over the uniform plan at the same base
        /// ratio.
        efficiency: f64,
    },
}

impl AdaptivePlanSpec {
    /// Default budget fraction of [`AdaptivePlanSpec::LayerBcrs`].
    pub const DEFAULT_EFFICIENCY: f64 = 0.9;

    /// Parse a spec string (`"static:*=topk"`, `"layer-bcrs"`,
    /// `"layer-bcrs:efficiency=0.8"`).
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        let trimmed = s.trim();
        if let Some(plan) = trimmed.strip_prefix("static:") {
            return Ok(Self::Static(LayerPlan::parse(plan)?));
        }
        let (head, opts) = match trimmed.split_once(':') {
            Some((head, opts)) => (head, Some(opts)),
            None => (trimmed, None),
        };
        if head != "layer-bcrs" {
            return Err(SpecError::Parse(s.to_string()));
        }
        let mut efficiency = Self::DEFAULT_EFFICIENCY;
        if let Some(opts) = opts {
            for kv in opts.split(',') {
                match kv.split_once('=') {
                    Some(("efficiency", v)) => {
                        efficiency = v
                            .trim()
                            .parse()
                            .map_err(|_| SpecError::Parse(s.to_string()))?;
                    }
                    _ => return Err(SpecError::Parse(s.to_string())),
                }
            }
        }
        if !(efficiency > 0.0 && efficiency <= 1.0) {
            return Err(SpecError::Parse(s.to_string()));
        }
        Ok(Self::LayerBcrs { efficiency })
    }

    /// Short policy name (`"static"` / `"layer-bcrs"`).
    pub fn name(&self) -> &'static str {
        match self {
            Self::Static(_) => "static",
            Self::LayerBcrs { .. } => "layer-bcrs",
        }
    }
}

impl std::fmt::Display for AdaptivePlanSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Static(plan) => write!(f, "static:{plan}"),
            Self::LayerBcrs { efficiency } => {
                if *efficiency == Self::DEFAULT_EFFICIENCY {
                    write!(f, "layer-bcrs")
                } else {
                    write!(f, "layer-bcrs:efficiency={efficiency}")
                }
            }
        }
    }
}

impl std::str::FromStr for AdaptivePlanSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

/// Everything a [`PlanPolicy`] may consult when re-resolving the per-layer
/// plan for a round: the model's segment layout, the round's cohort links,
/// and the telemetry the previous round left behind.
pub struct PlanCtx<'a> {
    /// Round index (0-based).
    pub round: usize,
    /// The model's parameter segments (names + lengths, layout order) — the
    /// `fl-nn` `ParamLayout` bridged through [`SegmentDef`].
    pub segments: &'a [SegmentDef],
    /// Links of the *selected* clients, in cohort order.
    pub links: &'a [Link],
    /// Dense model size in bytes (`V` of the communication model).
    pub model_bytes: f64,
    /// The run's base compression ratio `CR*`.
    pub base_ratio: f64,
    /// Previous round's per-layer uplink/downlink byte split (`None` on
    /// round 0 or when the engine recorded no per-layer telemetry).
    pub prev_layer_bytes: Option<&'a [LayerBytes]>,
    /// Previous round's per-segment gradient mass — the L1 norm of the
    /// aggregated delta restricted to each segment, in layout order (`None`
    /// on round 0).
    pub gradient_mass: Option<&'a [f64]>,
    /// Total L2 norm of all parked error-feedback residuals across the
    /// population (0 when no client carries dropped mass).
    pub residual_norm: f64,
}

/// One segment's resolved assignment inside a [`PlanDecision`] — recorded
/// into the round telemetry so per-layer decisions are inspectable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanAssignment {
    /// Segment name (`linear0.weight`, …).
    pub segment: String,
    /// The codec spec string assigned to the segment (`ef-topk+qsgd:8`, …).
    pub spec: String,
    /// The effective compression ratio the segment encodes at when a client
    /// uploads at the cohort base ratio.
    pub ratio: f64,
}

/// The per-round outcome of a [`PlanPolicy`].
pub struct PlanDecision {
    /// The plan the cohort's codecs resolve against this round.
    pub plan: LayerPlan,
    /// Per-segment multipliers on each client's assigned ratio, in layout
    /// order. `Some` resolves through `LayerPlan::resolve_scaled` (always
    /// segment-framed); `None` resolves through `LayerPlan::resolve`, where
    /// uniform plans collapse to the flat codec bit for bit.
    pub scales: Option<Vec<f64>>,
    /// The resolved per-segment assignments, for telemetry.
    pub assignments: Vec<PlanAssignment>,
}

/// Re-resolves the cohort's per-layer codec plan each round.
///
/// Advanced by the round engine in the select stage — after the cohort and
/// its link snapshot are known, before any client trains — so a decision can
/// react to the previous round's telemetry and to the links it must schedule
/// over. Unlike [`RatioPolicy`], implementations may keep state across
/// rounds (hence `&mut self`).
pub trait PlanPolicy: Send {
    /// Decide the round's plan.
    fn decide(&mut self, ctx: &PlanCtx<'_>) -> PlanDecision;

    /// Short name used in reports.
    fn name(&self) -> &'static str;
}

/// The bit-identical fallback: re-emit a fixed [`LayerPlan`] every round.
///
/// Emits no ratio scales, so the codec resolution path is exactly the one a
/// static [`ExperimentConfig::layer_compressors`] run takes — uniform plans
/// collapse to the flat codec and the fingerprint suite pins the records.
#[derive(Clone, Debug)]
pub struct StaticPlanPolicy {
    plan: LayerPlan,
}

impl StaticPlanPolicy {
    /// Wrap `plan` as an (unchanging) plan policy.
    pub fn new(plan: LayerPlan) -> Self {
        Self { plan }
    }
}

impl PlanPolicy for StaticPlanPolicy {
    fn decide(&mut self, ctx: &PlanCtx<'_>) -> PlanDecision {
        let assignments = ctx
            .segments
            .iter()
            .map(|seg| PlanAssignment {
                segment: seg.name.clone(),
                spec: self
                    .plan
                    .spec_for(&seg.name)
                    .map_or_else(|| "<unmatched>".to_string(), |s| s.to_string()),
                ratio: ctx.base_ratio,
            })
            .collect();
        PlanDecision {
            plan: self.plan.clone(),
            scales: None,
            assignments,
        }
    }

    fn name(&self) -> &'static str {
        "static"
    }
}

/// Normalized per-segment weights a [`LayerBcrsPolicy`] splits the round's
/// coordinate budget by: the observed per-segment gradient mass when the
/// telemetry loop has produced any (round ≥ 1 and not all-zero), segment
/// lengths otherwise (round 0 degrades to a uniform split).
pub fn plan_weights(lens: &[usize], gradient_mass: Option<&[f64]>) -> Vec<f64> {
    assert!(!lens.is_empty(), "plan weights need at least one segment");
    let from_mass = gradient_mass.filter(|m| {
        m.len() == lens.len() && m.iter().all(|&x| x >= 0.0) && m.iter().any(|&x| x > 0.0)
    });
    let raw: Vec<f64> = match from_mass {
        Some(mass) => mass.to_vec(),
        None => lens.iter().map(|&l| l as f64).collect(),
    };
    let sum: f64 = raw.iter().sum();
    raw.into_iter().map(|w| w / sum).collect()
}

/// Split the round's coordinate budget — `efficiency · base_ratio · Σ len`
/// coordinates — across segments in proportion to `weights`, flooring every
/// segment at one coordinate and capping at the segment length.
///
/// The floor keeps tiny budgets valid (a budget smaller than one coordinate
/// per segment still ships one coordinate per segment — the per-segment
/// framing overhead is the price of a layer-aware plan, not this
/// allocator's concern), and the cap stops a dominant segment from being
/// "compressed" above dense.
pub fn allocate_layer_budgets(
    lens: &[usize],
    weights: &[f64],
    base_ratio: f64,
    efficiency: f64,
) -> Vec<usize> {
    assert_eq!(lens.len(), weights.len(), "one weight per segment");
    assert!(!lens.is_empty(), "budget allocation needs segments");
    assert!(
        base_ratio > 0.0 && base_ratio <= 1.0,
        "base ratio must be in (0, 1], got {base_ratio}"
    );
    assert!(
        efficiency > 0.0 && efficiency <= 1.0,
        "efficiency must be in (0, 1], got {efficiency}"
    );
    let total: usize = lens.iter().sum();
    let wsum: f64 = weights.iter().sum();
    let budget = efficiency * base_ratio * total as f64;
    lens.iter()
        .zip(weights.iter())
        .map(|(&len, &w)| (((w / wsum) * budget).floor() as usize).clamp(1, len.max(1)))
        .collect()
}

/// The telemetry-driven plan policy: spend the bandwidth budget where the
/// gradient mass is, layer by layer, round by round.
///
/// Each round the policy (1) splits `efficiency · CR* · num_params`
/// coordinates across segments in proportion to the previous round's
/// per-segment gradient mass ([`plan_weights`] / [`allocate_layer_budgets`];
/// segment lengths stand in on round 0), (2) runs the existing
/// [`BcrsScheduler`] over each layer's byte budget and trims any layer whose
/// straggler upload time would exceed its mass-proportional share of the
/// uniform plan's BCRS envelope, and (3) assigns `qsgd` bit widths by mass
/// rank — the heaviest third of segments quantize at 8 bits, the middle at
/// 6, the lightest at 4 — emitting one exact-name
/// `<segment>=ef-topk+qsgd:<bits>` rule per segment plus per-segment ratio
/// scales.
pub struct LayerBcrsPolicy {
    scheduler: BcrsScheduler,
    base_ratio: f64,
    efficiency: f64,
}

impl LayerBcrsPolicy {
    /// Layer-BCRS over the given communication model at base ratio `CR*`,
    /// spending `efficiency ∈ (0, 1]` of the uniform coordinate budget.
    pub fn new(comm: CommModel, base_ratio: f64, efficiency: f64) -> Self {
        assert!(
            base_ratio > 0.0 && base_ratio <= 1.0,
            "base ratio must be in (0, 1], got {base_ratio}"
        );
        assert!(
            efficiency > 0.0 && efficiency <= 1.0,
            "efficiency must be in (0, 1], got {efficiency}"
        );
        Self {
            scheduler: BcrsScheduler::new(comm),
            base_ratio,
            efficiency,
        }
    }
}

impl PlanPolicy for LayerBcrsPolicy {
    fn decide(&mut self, ctx: &PlanCtx<'_>) -> PlanDecision {
        let n = ctx.segments.len();
        assert!(n > 0, "plan policy needs at least one segment");
        let lens: Vec<usize> = ctx.segments.iter().map(|s| s.len).collect();
        let weights = plan_weights(&lens, ctx.gradient_mass);
        let budgets = allocate_layer_budgets(&lens, &weights, self.base_ratio, self.efficiency);

        // Bit widths by mass rank: heaviest third 8 bits, middle 6, rest 4.
        // Ties break on layout order so the decision is deterministic.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            weights[b]
                .partial_cmp(&weights[a])
                .expect("plan weights are finite")
                .then(a.cmp(&b))
        });
        let mut bits = vec![4u8; n];
        for (rank, &i) in order.iter().enumerate() {
            bits[i] = if rank * 3 < n {
                8
            } else if rank * 3 < 2 * n {
                6
            } else {
                4
            };
        }

        // The straggler envelope the uniform plan would spend: any layer
        // whose slowest-client upload time exceeds its mass share of it gets
        // trimmed back, so the adaptive plan never worsens the round's
        // straggler beyond BCRS's own discipline.
        let envelope = (!ctx.links.is_empty())
            .then(|| {
                self.scheduler
                    .schedule(ctx.links, ctx.model_bytes, self.base_ratio)
                    .t_bench
            })
            .filter(|t| *t > 0.0);

        let mut rules = String::new();
        let mut scales = Vec::with_capacity(n);
        let mut assignments = Vec::with_capacity(n);
        for (i, seg) in ctx.segments.iter().enumerate() {
            let len = seg.len.max(1);
            let floor = 1.0 / len as f64;
            let mut ratio = budgets[i] as f64 / len as f64;
            if let Some(envelope) = envelope {
                let layer_bytes = len as f64 * 4.0;
                let straggler = self
                    .scheduler
                    .schedule(ctx.links, layer_bytes, ratio.clamp(floor, 1.0))
                    .t_bench;
                let share = weights[i] * envelope;
                if straggler > share && straggler > 0.0 {
                    ratio = (ratio * share / straggler).clamp(floor, 1.0);
                }
            }
            let ratio = ratio.clamp(floor, 1.0);
            let spec = format!("ef-topk+qsgd:{}", bits[i]);
            if i > 0 {
                rules.push(';');
            }
            rules.push_str(&seg.name);
            rules.push('=');
            rules.push_str(&spec);
            scales.push(ratio / self.base_ratio);
            assignments.push(PlanAssignment {
                segment: seg.name.clone(),
                spec,
                ratio,
            });
        }
        let plan = LayerPlan::parse(&rules).expect("generated rules always parse");
        PlanDecision {
            plan,
            scales: Some(scales),
            assignments,
        }
    }

    fn name(&self) -> &'static str {
        "layer-bcrs"
    }
}

/// The plan policy implied by a configuration's `adaptive_plan` knob:
/// `None` (the static, fingerprint-pinned path) unless the knob is set.
pub fn default_plan_policy(
    config: &ExperimentConfig,
    comm: CommModel,
) -> Option<Box<dyn PlanPolicy>> {
    match &config.adaptive_plan {
        None => None,
        Some(AdaptivePlanSpec::Static(plan)) => Some(Box::new(StaticPlanPolicy::new(plan.clone()))),
        Some(AdaptivePlanSpec::LayerBcrs { efficiency }) => Some(Box::new(LayerBcrsPolicy::new(
            comm,
            config.compression_ratio,
            *efficiency,
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx(links: &[Link]) -> SelectionCtx<'_> {
        SelectionCtx {
            round: 0,
            num_clients: links.len(),
            cohort_size: links.len() / 2,
            links,
        }
    }

    fn links(n: usize) -> Vec<Link> {
        (0..n)
            .map(|i| Link::from_mbps_ms(1.0 + i as f64, 50.0))
            .collect()
    }

    #[test]
    fn uniform_selector_matches_raw_sampling() {
        let links = links(10);
        let mut a = Xoshiro256::new(99);
        let mut b = Xoshiro256::new(99);
        let picked = UniformSelector.select(&ctx(&links), &mut a);
        assert_eq!(picked, b.sample_without_replacement(10, 5));
    }

    #[test]
    fn availability_selector_is_deterministic_and_valid() {
        let links = links(10);
        let mut sel = AvailabilitySelector::new(0.4);
        let mut a = Xoshiro256::new(3);
        let mut b = Xoshiro256::new(3);
        let pa = sel.select(&ctx(&links), &mut a);
        let pb = sel.select(&ctx(&links), &mut b);
        assert_eq!(pa, pb);
        assert!(!pa.is_empty() && pa.len() <= 5);
        let mut dedup = pa.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), pa.len());
        assert!(pa.iter().all(|&c| c < 10));
    }

    #[test]
    fn availability_selector_shrinks_cohort_under_heavy_dropout() {
        let links = links(10);
        let mut sel = AvailabilitySelector::new(0.9);
        let mut rng = Xoshiro256::new(5);
        let mut shrunk = false;
        for _ in 0..50 {
            let picked = sel.select(&ctx(&links), &mut rng);
            assert!(!picked.is_empty());
            if picked.len() < 5 {
                shrunk = true;
            }
        }
        assert!(shrunk, "90% dropout should shrink the cohort at least once");
    }

    #[test]
    #[should_panic]
    fn availability_selector_rejects_certain_dropout() {
        AvailabilitySelector::new(1.0);
    }

    #[test]
    fn near_certain_dropout_still_yields_a_participant_every_round() {
        // Regression: at dropout_rate ≈ 1.0 the "nobody available" branch is
        // hit almost every round. It must produce exactly one valid
        // participant — never an empty cohort (which would break the round's
        // straggler max and per-client byte averages downstream) and never
        // the old full-target-size fallback.
        let links = links(10);
        let mut sel = AvailabilitySelector::new(0.999);
        let mut rng = Xoshiro256::new(17);
        let mut singleton_rounds = 0;
        for _ in 0..300 {
            let picked = sel.select(&ctx(&links), &mut rng);
            assert!(!picked.is_empty(), "empty cohort at dropout ≈ 1.0");
            assert!(picked.len() <= 5);
            assert!(picked.iter().all(|&c| c < 10));
            if picked.len() == 1 {
                singleton_rounds += 1;
            }
        }
        assert!(
            singleton_rounds > 250,
            "at 99.9% dropout nearly every round should fall back to a \
             single participant, got {singleton_rounds}/300"
        );
    }

    #[test]
    fn uniform_ratio_decision() {
        let links = links(4);
        let rctx = RatioCtx {
            round: 0,
            links: &links,
            model_bytes: 1e5,
        };
        let d = UniformRatio::sparse(0.1).decide(&rctx);
        assert_eq!(d.ratios, vec![0.1; 4]);
        assert!(d.schedule.is_none());
        assert!(!d.dense_uplink);
        let d = UniformRatio::dense().decide(&rctx);
        assert_eq!(d.ratios, vec![1.0; 4]);
        assert!(d.dense_uplink);
    }

    #[test]
    fn bcrs_policy_produces_schedule() {
        let links = vec![
            Link::from_mbps_ms(4.0, 40.0),
            Link::from_mbps_ms(0.5, 150.0),
        ];
        let rctx = RatioCtx {
            round: 0,
            links: &links,
            model_bytes: 1e5,
        };
        let d = BcrsRatioPolicy::new(CommModel::paper_default(), 0.05).decide(&rctx);
        let s = d.schedule.expect("BCRS must emit a schedule");
        assert_eq!(d.ratios, s.ratios);
        assert!(d.ratios[0] > d.ratios[1], "fast client gets a larger ratio");
    }

    #[test]
    fn sgd_server_matches_apply_update() {
        let mut a = vec![1.0f32, 2.0, 3.0];
        let mut b = a.clone();
        SgdServer.apply(&mut a, &[0.5, 0.5, 0.5], 0.2);
        apply_update(&mut b, &[0.5, 0.5, 0.5], 0.2);
        assert_eq!(a, b);
    }

    #[test]
    fn momentum_server_accumulates_velocity() {
        let mut opt = MomentumServer::new(0.5);
        let mut w = vec![0.0f32; 2];
        opt.apply(&mut w, &[1.0, 2.0], 1.0); // v = [1, 2], w = [-1, -2]
        assert_eq!(w, vec![-1.0, -2.0]);
        opt.apply(&mut w, &[1.0, 2.0], 1.0); // v = [1.5, 3], w = [-2.5, -5]
        assert_eq!(w, vec![-2.5, -5.0]);
        assert!(opt.velocity_norm() > 0.0);
    }

    #[test]
    fn momentum_zero_equals_sgd() {
        let delta = [0.25f32, -0.75, 0.5];
        let mut a = vec![1.0f32; 3];
        let mut b = a.clone();
        MomentumServer::new(0.0).apply(&mut a, &delta, 0.7);
        SgdServer.apply(&mut b, &delta, 0.7);
        assert_eq!(a, b);
    }

    #[test]
    fn codec_specs_follow_algorithm_and_override() {
        assert_eq!(default_codec_spec(Algorithm::FedAvg).to_string(), "topk");
        assert_eq!(default_codec_spec(Algorithm::TopK).to_string(), "topk");
        assert_eq!(default_codec_spec(Algorithm::EfTopK).to_string(), "ef-topk");
        assert_eq!(default_codec_spec(Algorithm::RandK).to_string(), "randk");
        assert_eq!(default_codec_spec(Algorithm::Bcrs).to_string(), "topk");
        assert_eq!(default_codec_spec(Algorithm::BcrsOpwa).to_string(), "topk");
        assert_eq!(default_codec_spec(Algorithm::TopKOpwa).to_string(), "topk");

        let mut c = ExperimentConfig::quick(Algorithm::EfTopK);
        assert_eq!(resolve_codec_spec(&c).to_string(), "ef-topk");
        c.compressor = Some("qsgd:8".parse().unwrap());
        assert_eq!(resolve_codec_spec(&c).to_string(), "qsgd:8");
    }

    #[test]
    fn defaults_follow_config() {
        let mut c = ExperimentConfig::quick(Algorithm::FedAvg);
        assert_eq!(default_selector(&c).name(), "uniform");
        assert_eq!(default_server_opt(&c).name(), "sgd");
        assert_eq!(
            default_ratio_policy(&c, CommModel::paper_default()).name(),
            "dense"
        );
        c.dropout_rate = 0.2;
        c.server_momentum = 0.9;
        c.algorithm = Algorithm::Bcrs;
        assert_eq!(default_selector(&c).name(), "availability");
        assert_eq!(default_server_opt(&c).name(), "momentum");
        assert_eq!(
            default_ratio_policy(&c, CommModel::paper_default()).name(),
            "bcrs"
        );
    }

    fn segs(defs: &[(&str, usize)]) -> Vec<SegmentDef> {
        defs.iter().map(|&(n, l)| SegmentDef::new(n, l)).collect()
    }

    fn plan_ctx<'a>(
        segments: &'a [SegmentDef],
        links: &'a [Link],
        mass: Option<&'a [f64]>,
    ) -> PlanCtx<'a> {
        PlanCtx {
            round: 1,
            segments,
            links,
            model_bytes: segments.iter().map(|s| s.len as f64 * 4.0).sum(),
            base_ratio: 0.1,
            prev_layer_bytes: None,
            gradient_mass: mass,
            residual_norm: 0.0,
        }
    }

    #[test]
    fn adaptive_plan_spec_parses_and_round_trips() {
        let s: AdaptivePlanSpec = "static:*.bias=dense;*=topk".parse().unwrap();
        assert_eq!(s.name(), "static");
        assert_eq!(s.to_string(), "static:*.bias=dense;*=topk");
        assert_eq!(s.to_string().parse::<AdaptivePlanSpec>().unwrap(), s);

        let d: AdaptivePlanSpec = "layer-bcrs".parse().unwrap();
        assert_eq!(
            d,
            AdaptivePlanSpec::LayerBcrs {
                efficiency: AdaptivePlanSpec::DEFAULT_EFFICIENCY
            }
        );
        assert_eq!(d.to_string(), "layer-bcrs");

        let e: AdaptivePlanSpec = "layer-bcrs:efficiency=0.75".parse().unwrap();
        assert_eq!(e, AdaptivePlanSpec::LayerBcrs { efficiency: 0.75 });
        assert_eq!(e.to_string(), "layer-bcrs:efficiency=0.75");
        assert_eq!(e.to_string().parse::<AdaptivePlanSpec>().unwrap(), e);
    }

    #[test]
    fn adaptive_plan_spec_rejects_garbage() {
        for bad in [
            "",
            "static:",
            "bcrs-layer",
            "layer-bcrs:efficiency=0",
            "layer-bcrs:efficiency=1.5",
            "layer-bcrs:eta=0.5",
            "layer-bcrs:efficiency",
        ] {
            assert!(bad.parse::<AdaptivePlanSpec>().is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn static_plan_policy_re_emits_the_plan_without_scales() {
        let plan: LayerPlan = "*.bias=dense;*=ef-topk".parse().unwrap();
        let mut policy = StaticPlanPolicy::new(plan.clone());
        let segments = segs(&[("l0.weight", 100), ("l0.bias", 10)]);
        let links = links(3);
        let d = policy.decide(&plan_ctx(&segments, &links, None));
        assert_eq!(d.plan, plan);
        assert!(d.scales.is_none(), "static path must not scale ratios");
        assert_eq!(d.assignments.len(), 2);
        assert_eq!(d.assignments[0].spec, "ef-topk");
        assert_eq!(d.assignments[1].spec, "dense");
        assert!(d.assignments.iter().all(|a| a.ratio == 0.1));
    }

    #[test]
    fn plan_weights_use_mass_and_fall_back_to_lengths() {
        // All-zero gradient mass (round 0 / dead model) degrades to a
        // length-proportional split instead of dividing by zero.
        let lens = [300usize, 100];
        let w = plan_weights(&lens, Some(&[0.0, 0.0]));
        assert!((w[0] - 0.75).abs() < 1e-12 && (w[1] - 0.25).abs() < 1e-12);
        let w = plan_weights(&lens, None);
        assert!((w[0] - 0.75).abs() < 1e-12);
        // Real mass wins over lengths.
        let w = plan_weights(&lens, Some(&[1.0, 3.0]));
        assert!((w[0] - 0.25).abs() < 1e-12 && (w[1] - 0.75).abs() < 1e-12);
        // Length mismatch is ignored (stale telemetry after a layout change).
        let w = plan_weights(&lens, Some(&[1.0]));
        assert!((w[0] - 0.75).abs() < 1e-12);
    }

    #[test]
    fn allocator_is_mass_proportional_with_floor_and_cap() {
        let lens = [1000usize, 1000, 10];
        let weights = plan_weights(&lens, Some(&[9.0, 1.0, 0.0]));
        let budgets = allocate_layer_budgets(&lens, &weights, 0.1, 1.0);
        // 201 coordinates split 9:1:0 → heavy layer gets ~9× the light one,
        // the zero-mass layer still ships its one-coordinate floor.
        assert!(budgets[0] > 5 * budgets[1], "{budgets:?}");
        assert_eq!(budgets[2], 1);
        assert!(budgets.iter().sum::<usize>() <= 201);
        // A dominant weight cannot push a segment above dense.
        let budgets = allocate_layer_budgets(&[10, 1000], &[0.99, 0.01], 1.0, 1.0);
        assert_eq!(budgets[0], 10, "capped at the segment length");
    }

    #[test]
    fn allocator_single_segment_gets_the_whole_budget() {
        let lens = [500usize];
        let weights = plan_weights(&lens, None);
        assert_eq!(allocate_layer_budgets(&lens, &weights, 0.1, 1.0), vec![50]);
        assert_eq!(allocate_layer_budgets(&lens, &weights, 0.1, 0.9), vec![45]);
    }

    #[test]
    fn allocator_floors_budgets_smaller_than_the_framing_overhead() {
        // 4 segments but a budget of ~2 coordinates: every segment still
        // ships at least one coordinate, so the plan stays encodable even
        // when the budget is smaller than the per-segment framing overhead.
        let lens = [100usize, 100, 100, 100];
        let weights = plan_weights(&lens, None);
        let budgets = allocate_layer_budgets(&lens, &weights, 0.005, 1.0);
        assert_eq!(budgets, vec![1, 1, 1, 1]);
    }

    #[test]
    fn layer_bcrs_policy_emits_covering_rules_scales_and_bits() {
        let mut policy = LayerBcrsPolicy::new(CommModel::paper_default(), 0.1, 0.9);
        let segments = segs(&[("l0.weight", 784), ("l0.bias", 16), ("l1.weight", 160)]);
        let links = links(4);
        let mass = [50.0, 0.5, 5.0];
        let d = policy.decide(&plan_ctx(&segments, &links, Some(&mass)));

        // Every segment is covered by an exact-name rule.
        for seg in &segments {
            assert!(
                d.plan.spec_for(&seg.name).is_some(),
                "{} uncovered",
                seg.name
            );
        }
        let scales = d.scales.as_ref().expect("adaptive plan scales ratios");
        assert_eq!(scales.len(), 3);
        assert_eq!(d.assignments.len(), 3);
        // Heaviest segment gets the widest quantizer and the largest ratio.
        assert_eq!(d.assignments[0].spec, "ef-topk+qsgd:8");
        assert_eq!(d.assignments[1].spec, "ef-topk+qsgd:4");
        assert_eq!(d.assignments[2].spec, "ef-topk+qsgd:6");
        assert!(d.assignments[0].ratio > d.assignments[2].ratio);
        assert!(d
            .assignments
            .iter()
            .all(|a| a.ratio > 0.0 && a.ratio <= 1.0));
        // The spent coordinate budget stays below the uniform plan's.
        let spent: f64 = d
            .assignments
            .iter()
            .zip(segments.iter())
            .map(|(a, s)| a.ratio * s.len as f64)
            .sum();
        assert!(spent < 0.1 * 960.0, "spent {spent} of {}", 0.1 * 960.0);
    }

    #[test]
    fn layer_bcrs_policy_is_deterministic() {
        let segments = segs(&[("a", 100), ("b", 200)]);
        let links = links(3);
        let mass = [1.0, 2.0];
        let mut p1 = LayerBcrsPolicy::new(CommModel::paper_default(), 0.2, 0.9);
        let mut p2 = LayerBcrsPolicy::new(CommModel::paper_default(), 0.2, 0.9);
        let d1 = p1.decide(&plan_ctx(&segments, &links, Some(&mass)));
        let d2 = p2.decide(&plan_ctx(&segments, &links, Some(&mass)));
        assert_eq!(d1.plan, d2.plan);
        assert_eq!(d1.scales, d2.scales);
        assert_eq!(d1.assignments, d2.assignments);
    }

    #[test]
    fn default_plan_policy_follows_the_knob() {
        let mut c = ExperimentConfig::quick(Algorithm::TopK);
        assert!(default_plan_policy(&c, CommModel::paper_default()).is_none());
        c.adaptive_plan = Some("static:*=topk".parse().unwrap());
        assert_eq!(
            default_plan_policy(&c, CommModel::paper_default())
                .unwrap()
                .name(),
            "static"
        );
        c.adaptive_plan = Some("layer-bcrs".parse().unwrap());
        assert_eq!(
            default_plan_policy(&c, CommModel::paper_default())
                .unwrap()
                .name(),
            "layer-bcrs"
        );
    }
}
