//! `fl-core` — the paper's contribution: Bandwidth-aware Compression Ratio
//! Scheduling (BCRS) and Overlap-aware Parameter Weighted Averaging (OPWA),
//! plus the federated-learning simulation loop that evaluates them.
//!
//! # The two algorithms
//!
//! **BCRS** ([`bcrs`]) removes the straggler bottleneck of uniformly
//! compressed FedAvg. It takes the slowest selected client's *compressed*
//! upload time as a benchmark and gives every other client the largest
//! compression ratio that still finishes within that benchmark, so all uploads
//! land at roughly the same time and fast clients ship more information
//! instead of idling (Alg. 2). Client averaging coefficients are adjusted to
//! `p'_i = f_i / max(f_i, Norm(CR_i)) · α` (Eq. 6).
//!
//! **OPWA** ([`overlap`], [`opwa`]) fixes the under-weighting of rarely
//! retained coordinates. After Top-K, each coordinate is retained by only a
//! subset of clients (its *degree of overlap*); uniform averaging shrinks the
//! coordinates retained by few clients. OPWA multiplies low-overlap
//! coordinates by an enlarge rate `γ` (Alg. 3, Eq. 7).
//!
//! # Running experiments
//!
//! [`config::ExperimentConfig`] describes a complete experiment (dataset
//! preset, heterogeneity `β`, compression ratio, algorithm, network model,
//! …); [`runner::run_experiment`] executes it and returns per-round records
//! (accuracy, loss, communication times) from which every table and figure of
//! the paper is regenerated (see the `fl-bench` crate).
//!
//! # The round engine
//!
//! Under the hood every experiment is a [`session::FederatedSession`]: the
//! long-lived state (the client roster, links, global parameters, RNG
//! streams, time accumulators) built by [`session::SessionBuilder`],
//! advanced one round at a time through the explicit stages of [`round`]
//! (`select → downlink → local → aggregate → timing → eval`). Three policy
//! seams make the engine pluggable without touching the loop ([`policy`]):
//!
//! * [`policy::ClientSelector`] — uniform sampling (paper) or
//!   availability/dropout-aware selection;
//! * [`policy::RatioPolicy`] — a uniform ratio or the BCRS scheduler;
//! * [`policy::ServerOpt`] — plain SGD update (paper) or server momentum;
//! * [`policy::PlanPolicy`] — the adaptive per-layer codec plan
//!   ([`config::ExperimentConfig::adaptive_plan`]): each round, after the
//!   cohort and its links are known, the policy re-resolves which codec and
//!   effective ratio every parameter segment encodes under, feeding on the
//!   previous round's per-layer bytes and gradient mass (the closed
//!   telemetry loop; see [`policy::LayerBcrsPolicy`]).
//!
//! An optional further seam layers trace-driven fleet dynamics on top:
//! [`config::ExperimentConfig::scenario`] names a generator (diurnal
//! participation waves, Poisson churn, tiered link jitter, correlated tower
//! outages) or a recorded trace file, and [`scenario::ScenarioHandle`]
//! advances the resulting per-round `fl_netsim::FleetEvent` stream exactly
//! once per round — cohorts come from the reachable clients, transfers are
//! priced over the scenario's link overrides, and each
//! [`runner::RoundRecord`] carries participation/churn telemetry. With
//! `scenario: None` every record is bit-identical to pre-scenario builds.
//!
//! # Population scale
//!
//! Clients are virtualized ([`roster::ClientRoster`]): only each client's
//! persistent state — its RNG stream and error-feedback residual, parked in
//! a sharded `fl_compress::ResidualStore` — survives between rounds, and a
//! full `ClientState` is materialised per *selected* client per round, so
//! peak client memory is O(cohort) rather than O(population). The
//! [`aggregate`] tree reduces cohorts in fixed 32-client shards whose
//! partial sums merge in a fixed order, keeping records bit-identical
//! across thread counts. Populations of 10^5–10^6 clients are practical;
//! see the repository's ARCHITECTURE.md and the `fig12_scale` harness.
//!
//! Whole experiment grids run in parallel with shared dataset generation via
//! [`sweep::run_sweep`] / [`sweep::SweepGrid`] (population is a grid axis:
//! [`sweep::SweepGrid::client_counts`]).

pub mod aggregate;
pub mod algorithm;
pub mod bcrs;
pub mod client;
pub mod config;
pub mod eval;
pub mod opwa;
pub mod overlap;
pub mod policy;
pub mod roster;
pub mod round;
pub mod runner;
pub mod scenario;
pub mod session;
pub mod sweep;

pub use algorithm::Algorithm;
pub use bcrs::{BcrsSchedule, BcrsScheduler};
pub use client::segment_defs;
pub use config::{ExperimentConfig, ModelPreset};
pub use opwa::OpwaMask;
pub use overlap::{OverlapCounts, OverlapStats};
pub use policy::{
    allocate_layer_budgets, default_codec_spec, default_plan_policy, plan_weights,
    resolve_codec_spec, AdaptivePlanSpec, AvailabilitySelector, BcrsRatioPolicy, ClientSelector,
    LayerBcrsPolicy, MomentumServer, PlanAssignment, PlanCtx, PlanDecision, PlanPolicy, RatioCtx,
    RatioDecision, RatioPolicy, SelectionCtx, ServerOpt, SgdServer, StaticPlanPolicy, UniformRatio,
    UniformSelector,
};
pub use roster::ClientRoster;
pub use round::RoundOutput;
pub use runner::{run_experiment, ExperimentResult, LayerBytes, PlanTelemetry, RoundRecord};
pub use scenario::{record_scenario_trace, scenario_seed, ScenarioHandle, ScenarioSelector};
pub use session::{FederatedSession, SessionBuilder};
pub use sweep::{run_sweep, run_sweep_threaded, run_sweep_threaded_progress, SweepGrid};
