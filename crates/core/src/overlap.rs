//! Degree-of-overlap analysis of retained parameters (Section 4.1.3, Fig. 4).
//!
//! After sparsification, each coordinate of the model update is retained by
//! some subset of the selected clients. The *degree of overlap* of a
//! coordinate is the number of clients that retained it. The paper observes
//! that under high compression most retained coordinates appear in only one
//! client's update, which uniform averaging then shrinks by a factor of the
//! cohort size — the motivation for OPWA.

use fl_compress::SparseUpdate;
use fl_tensor::stats::Histogram;
use serde::{Deserialize, Serialize};

/// Per-coordinate overlap counts for one round's cohort.
#[derive(Clone, Debug)]
pub struct OverlapCounts {
    counts: Vec<u16>,
    cohort_size: usize,
}

impl OverlapCounts {
    /// Count, for every coordinate, how many of the given sparse updates
    /// retained it. All updates must share the same dense length.
    pub fn from_updates(updates: &[&SparseUpdate]) -> Self {
        assert!(!updates.is_empty(), "need at least one update");
        let dense_len = updates[0].dense_len();
        assert!(
            updates.iter().all(|u| u.dense_len() == dense_len),
            "updates have mismatched dense lengths"
        );
        let mut counts = vec![0u16; dense_len];
        for u in updates {
            for &i in u.indices() {
                counts[i as usize] += 1;
            }
        }
        Self {
            counts,
            cohort_size: updates.len(),
        }
    }

    /// Number of clients in the cohort.
    pub fn cohort_size(&self) -> usize {
        self.cohort_size
    }

    /// Overlap degree of coordinate `i` (0 if nobody retained it).
    pub fn degree(&self, i: usize) -> usize {
        self.counts[i] as usize
    }

    /// Raw per-coordinate counts.
    pub fn counts(&self) -> &[u16] {
        &self.counts
    }

    /// Number of coordinates retained by at least one client.
    pub fn retained_coordinates(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }

    /// Summarise into the Fig. 4 distribution.
    pub fn stats(&self) -> OverlapStats {
        let mut hist = Histogram::new(self.cohort_size.max(1));
        for &c in &self.counts {
            if c > 0 {
                hist.record(c as usize);
            }
        }
        OverlapStats {
            cohort_size: self.cohort_size,
            total_retained: hist.total(),
            histogram_counts: hist.counts().to_vec(),
            fractions: hist.fractions(),
        }
    }
}

/// The degree-of-overlap distribution of one round (Fig. 4): how many
/// retained coordinates were kept by exactly 1, 2, …, |S_t| clients.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OverlapStats {
    /// Number of clients in the cohort (|S_t|).
    pub cohort_size: usize,
    /// Total number of distinct retained coordinates.
    pub total_retained: u64,
    /// `histogram_counts[d-1]` = number of coordinates retained by exactly
    /// `d` clients.
    pub histogram_counts: Vec<u64>,
    /// The same distribution as fractions of `total_retained`.
    pub fractions: Vec<f64>,
}

impl OverlapStats {
    /// Fraction of retained coordinates that appear in only one client's
    /// update (the paper's headline statistic: ≈ 87 % at β=0.1, CR=0.01).
    pub fn singleton_fraction(&self) -> f64 {
        self.fractions.first().copied().unwrap_or(0.0)
    }

    /// Merge (sum) another round's statistics into this one.
    pub fn merge(&mut self, other: &OverlapStats) {
        assert_eq!(self.cohort_size, other.cohort_size, "cohort size mismatch");
        self.total_retained += other.total_retained;
        for (a, b) in self
            .histogram_counts
            .iter_mut()
            .zip(other.histogram_counts.iter())
        {
            *a += *b;
        }
        let total = self.total_retained.max(1) as f64;
        self.fractions = self
            .histogram_counts
            .iter()
            .map(|&c| c as f64 / total)
            .collect();
    }

    /// CSV rows (`degree,count,fraction`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("degree,count,fraction\n");
        for (i, (&c, &f)) in self
            .histogram_counts
            .iter()
            .zip(self.fractions.iter())
            .enumerate()
        {
            out.push_str(&format!("{},{},{:.6}\n", i + 1, c, f));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_compress::{Compressor, TopK};
    use fl_tensor::rng::{Rng, Xoshiro256};

    fn sparse(indices: Vec<u32>, len: usize) -> SparseUpdate {
        let values = vec![1.0f32; indices.len()];
        SparseUpdate::new(indices, values, len)
    }

    #[test]
    fn counts_small_example() {
        // Mirrors the paper's Fig. 3: three clients, overlapping retention.
        let c1 = sparse(vec![1, 4, 7], 8);
        let c2 = sparse(vec![1, 5, 7], 8);
        let c3 = sparse(vec![1, 7], 8);
        let counts = OverlapCounts::from_updates(&[&c1, &c2, &c3]);
        assert_eq!(counts.degree(1), 3);
        assert_eq!(counts.degree(7), 3);
        assert_eq!(counts.degree(4), 1);
        assert_eq!(counts.degree(0), 0);
        assert_eq!(counts.retained_coordinates(), 4);
        let stats = counts.stats();
        assert_eq!(stats.total_retained, 4);
        assert_eq!(stats.histogram_counts, vec![2, 0, 2]); // {4,5} once, {1,7} thrice
        assert!((stats.singleton_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn disjoint_updates_are_all_singletons() {
        let c1 = sparse(vec![0, 1], 6);
        let c2 = sparse(vec![2, 3], 6);
        let c3 = sparse(vec![4, 5], 6);
        let stats = OverlapCounts::from_updates(&[&c1, &c2, &c3]).stats();
        assert_eq!(stats.singleton_fraction(), 1.0);
        assert_eq!(stats.total_retained, 6);
    }

    #[test]
    fn identical_updates_max_overlap() {
        let c = sparse(vec![0, 3, 5], 8);
        let stats = OverlapCounts::from_updates(&[&c, &c, &c, &c]).stats();
        assert_eq!(stats.histogram_counts, vec![0, 0, 0, 3]);
        assert_eq!(stats.singleton_fraction(), 0.0);
    }

    #[test]
    fn higher_compression_gives_more_singletons() {
        // With random-ish dense vectors, higher compression (smaller CR)
        // produces a larger fraction of singleton coordinates — the paper's
        // core observation (Fig. 4: CR=0.01 → 87 %, CR=0.1 → 59 %).
        let mut rng = Xoshiro256::new(9);
        let dense: Vec<Vec<f32>> = (0..5)
            .map(|_| (0..2000).map(|_| rng.next_f32() - 0.5).collect())
            .collect();
        let topk = TopK::new();
        let singleton_at = |cr: f64| {
            let updates: Vec<SparseUpdate> = dense
                .iter()
                .map(|d| topk.compress(d, cr).as_sparse().unwrap().clone())
                .collect();
            let refs: Vec<&SparseUpdate> = updates.iter().collect();
            OverlapCounts::from_updates(&refs)
                .stats()
                .singleton_fraction()
        };
        let high_compression = singleton_at(0.01);
        let low_compression = singleton_at(0.5);
        assert!(
            high_compression > low_compression,
            "CR=0.01 singleton fraction {high_compression} should exceed CR=0.5 {low_compression}"
        );
    }

    #[test]
    fn merge_accumulates_rounds() {
        let c1 = sparse(vec![0], 4);
        let c2 = sparse(vec![0], 4);
        let mut a = OverlapCounts::from_updates(&[&c1, &c2]).stats();
        let d1 = sparse(vec![1], 4);
        let d2 = sparse(vec![2], 4);
        let b = OverlapCounts::from_updates(&[&d1, &d2]).stats();
        a.merge(&b);
        assert_eq!(a.total_retained, 3);
        assert_eq!(a.histogram_counts, vec![2, 1]);
        let sum: f64 = a.fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn csv_render() {
        let c1 = sparse(vec![0, 1], 4);
        let c2 = sparse(vec![1], 4);
        let csv = OverlapCounts::from_updates(&[&c1, &c2]).stats().to_csv();
        assert!(csv.starts_with("degree,"));
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_rejected() {
        let a = sparse(vec![0], 4);
        let b = sparse(vec![0], 5);
        OverlapCounts::from_updates(&[&a, &b]);
    }
}
