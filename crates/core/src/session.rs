//! The [`FederatedSession`] round engine: long-lived experiment state plus a
//! builder that wires in the pluggable policies.
//!
//! A session owns everything that persists across communication rounds —
//! client states, network links, the global model, RNG streams and the time
//! accumulators — and advances one round at a time via
//! [`FederatedSession::run_round`] (the staged loop lives in
//! [`crate::round`]). [`crate::runner::run_experiment`] is now a thin wrapper
//! that builds a session and drives it to the configured horizon.
//!
//! ```
//! use fl_core::session::SessionBuilder;
//! use fl_core::{Algorithm, ExperimentConfig};
//!
//! let mut config = ExperimentConfig::quick(Algorithm::TopK);
//! config.rounds = 2;
//! let mut session = SessionBuilder::from_config(&config).build();
//! let first = session.run_round();
//! assert_eq!(first.record.round, 0);
//! let result = session.run(); // finishes the remaining rounds
//! assert_eq!(result.records.len(), 2);
//! ```

use crate::client::{build_model, segment_defs};
use crate::config::ExperimentConfig;
use crate::eval::Evaluation;
use crate::policy::{
    default_plan_policy, default_ratio_policy, default_selector, default_server_opt,
    ClientSelector, PlanPolicy, RatioPolicy, ServerOpt,
};
use crate::roster::ClientRoster;
use crate::runner::{ExperimentResult, PlanTelemetry, RoundRecord};
use crate::scenario::{scenario_seed, ScenarioHandle, ScenarioSelector};
use fl_compress::{CodecCtx, CodecRegistry, DownlinkChannel};
use fl_data::{dirichlet_partition, Dataset, PartitionStats};
use fl_netsim::{CommModel, Link, RoundBreakdown, TimeAccumulator};
use fl_nn::{flatten_params, ParamLayout, Sequential};
use fl_tensor::parallel::default_threads;
use fl_tensor::rng::Xoshiro256;
use std::sync::Arc;

/// Builds a [`FederatedSession`] from a configuration, optionally overriding
/// the datasets (shared generation in sweeps) and the round policies.
pub struct SessionBuilder {
    config: ExperimentConfig,
    data: Option<(Arc<Dataset>, Arc<Dataset>)>,
    selector: Option<Box<dyn ClientSelector>>,
    ratio_policy: Option<Box<dyn RatioPolicy>>,
    server_opt: Option<Box<dyn ServerOpt>>,
    registry: Option<CodecRegistry>,
    threads: Option<usize>,
}

impl SessionBuilder {
    /// Start from a configuration; policies default to the configuration's
    /// implied choices (see [`crate::policy`]).
    pub fn from_config(config: &ExperimentConfig) -> Self {
        Self {
            config: config.clone(),
            data: None,
            selector: None,
            ratio_policy: None,
            server_opt: None,
            registry: None,
            threads: None,
        }
    }

    /// Use pre-generated train/test datasets instead of generating them from
    /// the config's seed. The datasets must match the config's preset shape
    /// (feature dimension and class count).
    pub fn with_data(self, train: Dataset, test: Dataset) -> Self {
        self.with_shared_data(Arc::new(train), Arc::new(test))
    }

    /// Like [`with_data`](Self::with_data) but borrowing shared datasets —
    /// sweeps generate each distinct dataset once and hand the same `Arc`s to
    /// every session in the grid instead of deep-cloning per run.
    pub fn with_shared_data(mut self, train: Arc<Dataset>, test: Arc<Dataset>) -> Self {
        self.data = Some((train, test));
        self
    }

    /// Override the client-selection policy.
    pub fn selector(mut self, selector: Box<dyn ClientSelector>) -> Self {
        self.selector = Some(selector);
        self
    }

    /// Override the compression-ratio policy.
    pub fn ratio_policy(mut self, policy: Box<dyn RatioPolicy>) -> Self {
        self.ratio_policy = Some(policy);
        self
    }

    /// Override the server optimizer.
    pub fn server_opt(mut self, opt: Box<dyn ServerOpt>) -> Self {
        self.server_opt = Some(opt);
        self
    }

    /// Use a custom codec registry when resolving the configuration's
    /// compressor spec — custom [`fl_compress::UpdateCodec`]s registered by
    /// name become usable from `config.compressor` (see
    /// `examples/custom_compressor.rs` for registering one).
    pub fn codec_registry(mut self, registry: CodecRegistry) -> Self {
        self.registry = Some(registry);
        self
    }

    /// Override the client-training worker-thread count without touching the
    /// configuration (`0` = auto). The sweep driver uses this to split the
    /// machine's parallelism between concurrent sessions while leaving
    /// `config.max_threads` — and thus the reported result config — intact.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Materialise the session: generate (or adopt) the data, partition it,
    /// initialise the global model, the per-client states, the network links
    /// and the RNG streams. Panics on an invalid configuration, matching the
    /// historical `run_experiment` behaviour.
    pub fn build(self) -> FederatedSession {
        let config = self.config;
        let registry = self.registry.unwrap_or_else(CodecRegistry::with_builtins);
        config
            .validate_with_registry(&registry)
            .unwrap_or_else(|e| panic!("invalid experiment config: {e}"));
        let wall_start = std::time::Instant::now();

        // --- Data -------------------------------------------------------------
        let (train, test) = match self.data {
            Some(d) => d,
            None => {
                let spec = config.dataset.spec(config.dataset_scale);
                let (train, test) = spec.generate(config.seed);
                (Arc::new(train), Arc::new(test))
            }
        };
        // Guarantee every client a fraction of a batch — until the population
        // outgrows the dataset (train.len()/N < 2), where forcing a floor is
        // impossible and `min_samples = 0` lets the raw Dirichlet draw stand
        // (clients may legitimately own zero samples at 10^5+ clients).
        let per_client_cap = (train.len() / config.num_clients).max(1);
        let min_samples = if per_client_cap < 2 {
            0
        } else {
            (config.batch_size / 4).clamp(2, per_client_cap)
        };
        let partitions = dirichlet_partition(
            &train,
            config.num_clients,
            config.beta,
            min_samples,
            config.seed ^ 0xD1A1,
        );
        let partition_stats = PartitionStats::from_partition(&partitions, &train);

        // --- Model ------------------------------------------------------------
        let mut model_rng = Xoshiro256::new(config.seed);
        let global_model = build_model(
            &config.model,
            train.feature_dim(),
            train.num_classes(),
            &mut model_rng,
        );
        let global_params = flatten_params(&global_model);
        let model_params = global_params.len();
        let model_bytes = model_params * 4;
        let layout = ParamLayout::of(&global_model);

        // --- Clients and network ----------------------------------------------
        // Clients are virtualized: the roster keeps only each client's
        // persistent RNG stream (forked here, in the same order the eager
        // engine used) plus the shared inputs, and materializes a full
        // `ClientState` per selected client per round. Peak client memory is
        // O(cohort), not O(population).
        let mut root_rng = Xoshiro256::new(config.seed ^ 0xC11E);
        let roster = ClientRoster::new(
            Arc::clone(&train),
            Arc::new(partitions),
            config.clone(),
            registry.clone(),
            &mut root_rng,
        );
        let links: Vec<Link> = config
            .links
            .generate(config.num_clients, config.seed ^ 0x11C5);
        let comm = CommModel::paper_default().with_cost_basis(config.cost_basis);

        // --- Downlink (broadcast) channel --------------------------------------
        // Dedicated seeds keep the broadcast codec's randomness off the
        // selection and uplink streams, so enabling the downlink leg never
        // perturbs an otherwise-identical run's trajectory. A downlink layer
        // plan resolves against the same layout the uplink plans use, so a
        // mixed plan's broadcast ships `Segmented` frames and the per-layer
        // downlink byte split in the records is honest.
        let downlink_ctx = CodecCtx::new(model_params, config.seed ^ 0xD0C0);
        let downlink_codec = match (
            &config.downlink_compressor,
            &config.downlink_layer_compressors,
        ) {
            (Some(spec), _) => Some(
                registry
                    .build(spec, &downlink_ctx)
                    .unwrap_or_else(|e| panic!("invalid downlink compressor spec {spec}: {e}")),
            ),
            (None, Some(plan)) => Some(
                plan.resolve(&registry, &segment_defs(&layout), &downlink_ctx)
                    .unwrap_or_else(|e| panic!("invalid downlink layer plan {plan}: {e}")),
            ),
            (None, None) => None,
        };
        let downlink = downlink_codec.map(|codec| {
            DownlinkChannel::new(
                codec,
                &global_params,
                config.compression_ratio,
                config.seed ^ 0xD011,
            )
        });

        let selection_rng = Xoshiro256::new(config.seed ^ 0x5E1E);
        let threads = match self.threads.unwrap_or(config.max_threads) {
            0 => default_threads(),
            n => n,
        };
        let cohort = config.clients_per_round();

        // --- Scenario (dynamic fleet) -------------------------------------------
        // Built only when configured: with `scenario: None` no handle exists,
        // no extra RNG stream is consumed and the selector resolution below
        // falls through to the config-implied default — records stay
        // bit-identical to pre-scenario builds. An explicit selector override
        // still wins over the scenario selector (the handle keeps advancing
        // the fleet either way, so link overrides and telemetry remain live).
        let scenario = config.scenario.as_ref().map(|spec| {
            let generator = spec
                .build(config.num_clients, scenario_seed(&config))
                .unwrap_or_else(|e| panic!("invalid scenario spec {spec}: {e}"));
            ScenarioHandle::new(generator, config.num_clients)
        });

        let selector = self.selector.unwrap_or_else(|| match &scenario {
            Some(handle) => Box::new(ScenarioSelector::new(handle.clone(), config.dropout_rate)),
            None => default_selector(&config),
        });
        let ratio_policy = self
            .ratio_policy
            .unwrap_or_else(|| default_ratio_policy(&config, comm));
        let server_opt = self
            .server_opt
            .unwrap_or_else(|| default_server_opt(&config));
        let plan_policy = default_plan_policy(&config, comm);
        let records = Vec::with_capacity(config.rounds);

        FederatedSession {
            config,
            test,
            partition_stats,
            roster,
            links,
            comm,
            global_model,
            global_params,
            model_params,
            model_bytes,
            layout,
            selector,
            ratio_policy,
            server_opt,
            plan_policy,
            last_gradient_mass: None,
            plan_telemetry: None,
            downlink,
            scenario,
            selection_rng,
            time_acc: TimeAccumulator::new(),
            breakdown_total: RoundBreakdown::default(),
            threads,
            cohort,
            records,
            last_eval: None,
            next_round: 0,
            wall_start,
        }
    }
}

/// The long-lived state of one federated-learning experiment: everything
/// Algorithm 1 carries from round to round.
///
/// Construct via [`SessionBuilder`] (or [`FederatedSession::from_config`] for
/// the config-implied defaults), then either call
/// [`run`](FederatedSession::run) for the whole configured horizon or
/// [`run_round`](FederatedSession::run_round) to step manually.
pub struct FederatedSession {
    pub(crate) config: ExperimentConfig,
    pub(crate) test: Arc<Dataset>,
    pub(crate) partition_stats: PartitionStats,
    pub(crate) roster: ClientRoster,
    pub(crate) links: Vec<Link>,
    pub(crate) comm: CommModel,
    pub(crate) global_model: Sequential,
    pub(crate) global_params: Vec<f32>,
    pub(crate) model_params: usize,
    pub(crate) model_bytes: usize,
    pub(crate) layout: ParamLayout,
    pub(crate) selector: Box<dyn ClientSelector>,
    pub(crate) ratio_policy: Box<dyn RatioPolicy>,
    pub(crate) server_opt: Box<dyn ServerOpt>,
    /// The adaptive plan policy, when `config.adaptive_plan` is set. Advanced
    /// once per round in the select stage; `None` keeps the engine on the
    /// static, fingerprint-pinned codec path.
    pub(crate) plan_policy: Option<Box<dyn PlanPolicy>>,
    /// Per-segment L1 mass of the previous round's aggregated update
    /// (layout order) — the telemetry the next round's plan decision reads.
    pub(crate) last_gradient_mass: Option<Vec<f64>>,
    /// The pending round's plan decision, recorded into its [`RoundRecord`]
    /// by the eval stage.
    pub(crate) plan_telemetry: Option<PlanTelemetry>,
    pub(crate) downlink: Option<DownlinkChannel>,
    pub(crate) scenario: Option<ScenarioHandle>,
    pub(crate) selection_rng: Xoshiro256,
    pub(crate) time_acc: TimeAccumulator,
    pub(crate) breakdown_total: RoundBreakdown,
    pub(crate) threads: usize,
    pub(crate) cohort: usize,
    pub(crate) records: Vec<RoundRecord>,
    pub(crate) last_eval: Option<Evaluation>,
    pub(crate) next_round: usize,
    pub(crate) wall_start: std::time::Instant,
}

impl FederatedSession {
    /// Session with the configuration's default policies.
    pub fn from_config(config: &ExperimentConfig) -> Self {
        SessionBuilder::from_config(config).build()
    }

    /// The configuration this session runs.
    pub fn config(&self) -> &ExperimentConfig {
        &self.config
    }

    /// Index of the next round to run (also the number of completed rounds).
    pub fn next_round(&self) -> usize {
        self.next_round
    }

    /// True once the configured number of rounds has completed.
    pub fn is_finished(&self) -> bool {
        self.next_round >= self.config.rounds
    }

    /// Current flat global parameters.
    pub fn global_params(&self) -> &[f32] {
        &self.global_params
    }

    /// Number of trainable model parameters.
    pub fn model_params(&self) -> usize {
        self.model_params
    }

    /// Dense model size in bytes (`V` of the communication model).
    pub fn model_bytes(&self) -> usize {
        self.model_bytes
    }

    /// The named layout of the flat parameter vector (ordered segments like
    /// `linear0.weight`), against which layer plans resolve and per-layer
    /// byte breakdowns are reported.
    pub fn param_layout(&self) -> &ParamLayout {
        &self.layout
    }

    /// Records of the rounds completed so far.
    pub fn records(&self) -> &[RoundRecord] {
        &self.records
    }

    /// The parameters the clients actually train from: the downlink channel's
    /// decoded view when a broadcast codec is active (lossy broadcasts drift
    /// from [`global_params`](Self::global_params)), the global parameters
    /// themselves otherwise.
    pub fn broadcast_params(&self) -> &[f32] {
        match &self.downlink {
            Some(channel) => channel.view(),
            None => &self.global_params,
        }
    }

    /// The virtualized client population behind this session: checkout
    /// counters, residency high-water marks and the error-feedback residual
    /// store (see [`ClientRoster`]). The scaling harness and the O(cohort)
    /// memory tests read their evidence from here.
    pub fn roster(&self) -> &ClientRoster {
        &self.roster
    }

    /// The scenario handle driving this session's fleet dynamics (`None`
    /// for the paper's static fleet). Exposes the current reachable-client
    /// set and per-round telemetry to external drivers.
    pub fn scenario(&self) -> Option<&ScenarioHandle> {
        self.scenario.as_ref()
    }

    /// L2 norm of the downlink codec's server-side residual state (0 when no
    /// downlink codec is configured or the codec is stateless).
    pub fn downlink_residual_norm(&self) -> f64 {
        self.downlink
            .as_ref()
            .map(|c| c.residual_norm())
            .unwrap_or(0.0)
    }

    /// The held-out test dataset.
    pub fn test_dataset(&self) -> &Dataset {
        &self.test
    }

    /// Run all remaining rounds, invoking `on_round` after each one, and
    /// return the final result.
    pub fn run_with<F: FnMut(&RoundRecord)>(mut self, mut on_round: F) -> ExperimentResult {
        while !self.is_finished() {
            let output = self.step();
            on_round(&output.record);
            self.records.push(output.record);
        }
        self.into_result()
    }

    /// Run all remaining rounds and return the final result.
    pub fn run(self) -> ExperimentResult {
        self.run_with(|_| {})
    }

    /// Package the rounds completed so far into an [`ExperimentResult`].
    pub fn into_result(self) -> ExperimentResult {
        let final_accuracy = self.records.last().map(|r| r.test_accuracy).unwrap_or(0.0);
        let best_accuracy = self
            .records
            .iter()
            .map(|r| r.test_accuracy)
            .fold(0.0f64, f64::max);
        ExperimentResult {
            config: self.config,
            breakdown: self
                .breakdown_total
                .averaged_over(self.records.len().max(1)),
            final_accuracy,
            best_accuracy,
            model_params: self.model_params,
            model_bytes: self.model_bytes,
            partition: self.partition_stats,
            records: self.records,
            wall_time_s: self.wall_start.elapsed().as_secs_f64(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use crate::policy::{AvailabilitySelector, MomentumServer, UniformRatio};
    use crate::runner::run_experiment;

    fn quick(algorithm: Algorithm) -> ExperimentConfig {
        let mut c = ExperimentConfig::quick(algorithm);
        c.rounds = 4;
        c.max_threads = 1;
        c
    }

    #[test]
    fn session_run_matches_run_experiment() {
        let config = quick(Algorithm::BcrsOpwa);
        let via_session = FederatedSession::from_config(&config).run();
        let via_runner = run_experiment(&config);
        assert_eq!(via_session.records, via_runner.records);
        assert_eq!(via_session.final_accuracy, via_runner.final_accuracy);
    }

    #[test]
    fn stepping_rounds_matches_running_to_completion() {
        let config = quick(Algorithm::TopK);
        let mut stepped = FederatedSession::from_config(&config);
        let mut seen = Vec::new();
        while !stepped.is_finished() {
            seen.push(stepped.run_round().record);
        }
        let whole = FederatedSession::from_config(&config).run();
        assert_eq!(seen, whole.records);
        assert_eq!(stepped.records(), whole.records.as_slice());
    }

    #[test]
    fn builder_accepts_pregenerated_data() {
        let config = quick(Algorithm::TopK);
        let (train, test) = config
            .dataset
            .spec(config.dataset_scale)
            .generate(config.seed);
        let shared = SessionBuilder::from_config(&config)
            .with_data(train, test)
            .build()
            .run();
        let fresh = run_experiment(&config);
        assert_eq!(shared.records, fresh.records);
    }

    #[test]
    fn dropout_selector_shrinks_some_cohorts() {
        let mut config = quick(Algorithm::TopK);
        config.rounds = 8;
        config.dropout_rate = 0.6;
        let result = FederatedSession::from_config(&config).run();
        assert_eq!(result.records.len(), 8);
        let full = config.clients_per_round();
        assert!(
            result
                .records
                .iter()
                .any(|r| r.selected_clients.len() < full),
            "60% dropout over 8 rounds should shrink at least one cohort"
        );
        // Dropout runs are reproducible too.
        let again = FederatedSession::from_config(&config).run();
        assert_eq!(result.records, again.records);
    }

    #[test]
    fn near_certain_dropout_never_yields_an_empty_round() {
        // Regression: at dropout_rate ≈ 1.0 nearly every round hits the
        // "nobody available" branch. Every round must still have at least one
        // participant, and the per-cohort averages (train loss, mean ratio)
        // must stay finite — an empty cohort would make them 0/0.
        let mut config = quick(Algorithm::TopK);
        config.rounds = 6;
        config.dropout_rate = 0.999;
        assert!(config.validate().is_ok());
        let result = FederatedSession::from_config(&config).run();
        assert_eq!(result.records.len(), 6);
        for r in &result.records {
            assert!(
                !r.selected_clients.is_empty(),
                "round {} was empty",
                r.round
            );
            assert!(r.selected_clients.len() <= config.clients_per_round());
            assert!(r.train_loss.is_finite());
            assert!(r.mean_compression_ratio.is_finite());
            assert!(r.uplink_bytes > 0);
            assert!(r.uplink_bytes / r.selected_clients.len() > 0);
        }
        // Still deterministic.
        let again = FederatedSession::from_config(&config).run();
        assert_eq!(result.records, again.records);
    }

    #[test]
    fn empty_custom_selector_is_backstopped_by_the_engine() {
        // A (buggy or extreme) custom selector that returns an empty cohort
        // must not panic the round engine or poison the averages: the engine
        // falls back to one uniformly drawn client.
        struct NobodySelector;
        impl crate::policy::ClientSelector for NobodySelector {
            fn select(
                &mut self,
                _ctx: &crate::policy::SelectionCtx<'_>,
                _rng: &mut Xoshiro256,
            ) -> Vec<usize> {
                Vec::new()
            }
            fn name(&self) -> &'static str {
                "nobody"
            }
        }
        let mut config = quick(Algorithm::TopK);
        config.rounds = 3;
        let result = SessionBuilder::from_config(&config)
            .selector(Box::new(NobodySelector))
            .build()
            .run();
        for r in &result.records {
            assert_eq!(r.selected_clients.len(), 1);
            assert!(r.selected_clients[0] < config.num_clients);
            assert!(r.train_loss.is_finite());
        }
    }

    #[test]
    fn custom_selector_overrides_config() {
        let config = quick(Algorithm::TopK);
        let result = SessionBuilder::from_config(&config)
            .selector(Box::new(AvailabilitySelector::new(0.5)))
            .build()
            .run();
        assert_eq!(result.records.len(), config.rounds);
    }

    #[test]
    fn server_momentum_changes_trajectory_but_stays_valid() {
        let plain = quick(Algorithm::TopK);
        let mut with_momentum = plain.clone();
        with_momentum.server_momentum = 0.9;
        let a = run_experiment(&plain);
        let b = run_experiment(&with_momentum);
        assert_ne!(
            a.accuracy_series(),
            b.accuracy_series(),
            "momentum should alter the optimisation trajectory"
        );
        assert!(b.final_accuracy >= 0.0 && b.final_accuracy <= 1.0);
    }

    #[test]
    fn momentum_server_opt_plugs_into_builder() {
        let config = quick(Algorithm::FedAvg);
        let result = SessionBuilder::from_config(&config)
            .server_opt(Box::new(MomentumServer::new(0.5)))
            .ratio_policy(Box::new(UniformRatio::dense()))
            .build()
            .run();
        assert_eq!(result.records.len(), config.rounds);
    }

    #[test]
    fn eval_every_skips_intermediate_evaluations() {
        let mut every = quick(Algorithm::TopK);
        every.rounds = 6;
        let mut sparse_eval = every.clone();
        sparse_eval.eval_every = 3;
        let dense = run_experiment(&every);
        let sparse = run_experiment(&sparse_eval);
        // Training is unaffected: the final (always-evaluated) accuracy matches.
        assert_eq!(dense.final_accuracy, sparse.final_accuracy);
        // Skipped rounds repeat the previous evaluation (NaN before the first).
        assert!(sparse.records[0].test_accuracy.is_nan());
        assert_eq!(
            sparse.records[2].test_accuracy, dense.records[2].test_accuracy,
            "round 3 is an evaluation point"
        );
        assert_eq!(
            sparse.records[3].test_accuracy, sparse.records[2].test_accuracy,
            "round 4 repeats round 3's evaluation"
        );
    }

    #[test]
    fn custom_codec_registry_reaches_the_round_engine() {
        use fl_compress::{CodecCtx, CodecRegistry, SpecError, TopKCodec, UpdateCodec};

        // Register the built-in Top-K codec under a custom name: the spec
        // resolves only through the custom registry.
        fn my_topk(_arg: Option<&str>, _ctx: &CodecCtx) -> Result<Box<dyn UpdateCodec>, SpecError> {
            Ok(Box::new(TopKCodec))
        }
        let mut registry = CodecRegistry::with_builtins();
        registry.register("my-topk", my_topk);

        let mut config = quick(Algorithm::TopK);
        config.rounds = 2;
        config.compressor = Some("my-topk".parse().unwrap());
        // The built-in-only validation rejects the custom name…
        assert!(config.validate().is_err());
        // …but a builder configured with the registry runs it end to end,
        // identically to the built-in Top-K (same codec, different name).
        let custom = SessionBuilder::from_config(&config)
            .codec_registry(registry)
            .build()
            .run();
        let mut builtin_config = config.clone();
        builtin_config.compressor = Some("topk".parse().unwrap());
        let builtin = FederatedSession::from_config(&builtin_config).run();
        assert_eq!(custom.records, builtin.records);
    }

    #[test]
    #[should_panic(expected = "invalid experiment config")]
    fn invalid_config_panics_at_build() {
        let mut config = quick(Algorithm::TopK);
        config.rounds = 0;
        let _ = FederatedSession::from_config(&config);
    }
}
