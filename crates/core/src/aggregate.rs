//! Server-side aggregation of client updates (Alg. 1 lines 14–18).

use crate::opwa::OpwaMask;
use fl_compress::{CompressedUpdate, SparseUpdate};

/// Plain FedAvg data-fraction coefficients `f_i = |D_i| / Σ_j |D_j|` over the
/// selected cohort.
pub fn data_fractions(sample_counts: &[usize]) -> Vec<f64> {
    let total: usize = sample_counts.iter().sum();
    assert!(total > 0, "cohort holds no samples");
    sample_counts
        .iter()
        .map(|&n| n as f64 / total as f64)
        .collect()
}

/// Weighted aggregation of sparse updates into a dense delta:
/// `Σ_i coeff_i · (mask ⊙ update_i)` (Alg. 1 line 14/16/18).
pub fn aggregate_sparse(
    updates: &[&SparseUpdate],
    coefficients: &[f64],
    mask: Option<&OpwaMask>,
) -> Vec<f32> {
    assert!(!updates.is_empty(), "nothing to aggregate");
    assert_eq!(
        updates.len(),
        coefficients.len(),
        "one coefficient per update required"
    );
    let dense_len = updates[0].dense_len();
    assert!(
        updates.iter().all(|u| u.dense_len() == dense_len),
        "updates have mismatched lengths"
    );
    let mut acc = vec![0.0f32; dense_len];
    for (u, &c) in updates.iter().zip(coefficients.iter()) {
        match mask {
            Some(m) => m.apply(u).add_scaled_into(&mut acc, c as f32),
            None => u.add_scaled_into(&mut acc, c as f32),
        }
    }
    acc
}

/// Weighted aggregation of arbitrary compressed updates (sparse or quantized).
pub fn aggregate_compressed(
    updates: &[&CompressedUpdate],
    coefficients: &[f64],
    mask: Option<&OpwaMask>,
) -> Vec<f32> {
    assert!(!updates.is_empty(), "nothing to aggregate");
    assert_eq!(
        updates.len(),
        coefficients.len(),
        "coefficient count mismatch"
    );
    // Fast path: all sparse.
    if updates.iter().all(|u| u.as_sparse().is_some()) {
        let sparse: Vec<&SparseUpdate> = updates.iter().map(|u| u.as_sparse().unwrap()).collect();
        return aggregate_sparse(&sparse, coefficients, mask);
    }
    let dense_len = updates[0].dense_len();
    let mut acc = vec![0.0f32; dense_len];
    for (u, &c) in updates.iter().zip(coefficients.iter()) {
        let mut dense = u.to_dense();
        if let Some(m) = mask {
            m.apply_dense(&mut dense);
        }
        for (a, d) in acc.iter_mut().zip(dense.iter()) {
            *a += c as f32 * d;
        }
    }
    acc
}

/// Apply the aggregated delta to the global parameters:
/// `w_{t+1} = w_t − η_server · Σ_i coeff_i Δw_i`.
pub fn apply_update(global: &mut [f32], aggregated_delta: &[f32], server_lr: f32) {
    assert_eq!(
        global.len(),
        aggregated_delta.len(),
        "parameter length mismatch"
    );
    for (w, d) in global.iter_mut().zip(aggregated_delta.iter()) {
        *w -= server_lr * d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap::OverlapCounts;
    use proptest::prelude::*;

    fn sparse(indices: Vec<u32>, values: Vec<f32>, len: usize) -> SparseUpdate {
        SparseUpdate::new(indices, values, len)
    }

    #[test]
    fn data_fractions_sum_to_one() {
        let f = data_fractions(&[100, 300, 600]);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[0] - 0.1).abs() < 1e-12);
        assert!((f[2] - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_cohort_fractions_rejected() {
        data_fractions(&[0, 0]);
    }

    #[test]
    fn sparse_aggregation_weighted_sum() {
        let a = sparse(vec![0, 2], vec![1.0, 2.0], 4);
        let b = sparse(vec![2, 3], vec![4.0, 8.0], 4);
        let agg = aggregate_sparse(&[&a, &b], &[0.5, 0.25], None);
        assert_eq!(agg, vec![0.5, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn aggregation_with_mask_enlarges_singletons() {
        let a = sparse(vec![0, 1], vec![1.0, 1.0], 3);
        let b = sparse(vec![1, 2], vec![1.0, 1.0], 3);
        let counts = OverlapCounts::from_updates(&[&a, &b]);
        let mask = OpwaMask::from_overlap(&counts, 2.0, 1);
        let agg = aggregate_sparse(&[&a, &b], &[0.5, 0.5], Some(&mask));
        // Coordinates 0 and 2 are singletons (enlarged 2x), coordinate 1 overlaps.
        assert_eq!(agg, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn apply_update_descends() {
        let mut w = vec![1.0, 1.0, 1.0];
        apply_update(&mut w, &[0.5, -0.5, 0.0], 1.0);
        assert_eq!(w, vec![0.5, 1.5, 1.0]);
        apply_update(&mut w, &[1.0, 1.0, 1.0], 0.1);
        assert!((w[0] - 0.4).abs() < 1e-6);
    }

    #[test]
    fn compressed_aggregation_mixes_sparse_and_quantized() {
        let s = CompressedUpdate::Sparse(sparse(vec![0], vec![2.0], 2));
        let q = CompressedUpdate::Quantized {
            values: vec![1.0, 1.0],
            wire_bytes: 4,
        };
        let agg = aggregate_compressed(&[&s, &q], &[0.5, 0.5], None);
        assert_eq!(agg, vec![1.5, 0.5]);
    }

    #[test]
    #[should_panic]
    fn coefficient_mismatch_rejected() {
        let a = sparse(vec![0], vec![1.0], 2);
        aggregate_sparse(&[&a], &[0.5, 0.5], None);
    }

    proptest! {
        #[test]
        fn prop_aggregation_linear_in_coefficients(
            values in proptest::collection::vec(-5.0f32..5.0, 4..32),
            coeff in 0.01f64..2.0,
        ) {
            // aggregate([u], [c]) == c * dense(u)
            let len = values.len();
            let indices: Vec<u32> = (0..len as u32).collect();
            let u = SparseUpdate::new(indices, values.clone(), len);
            let agg = aggregate_sparse(&[&u], &[coeff], None);
            for (a, v) in agg.iter().zip(values.iter()) {
                prop_assert!((a - coeff as f32 * v).abs() < 1e-4);
            }
        }

        #[test]
        fn prop_uncompressed_aggregate_preserves_weighted_mean(
            d1 in proptest::collection::vec(-1.0f32..1.0, 8),
            d2 in proptest::collection::vec(-1.0f32..1.0, 8),
        ) {
            // With CR = 1 updates, aggregation equals the dense weighted mean.
            let u1 = SparseUpdate::from_dense_mask(&d1, |_, _| true);
            let u2 = SparseUpdate::from_dense_mask(&d2, |_, _| true);
            let agg = aggregate_sparse(&[&u1, &u2], &[0.5, 0.5], None);
            for i in 0..8 {
                prop_assert!((agg[i] - 0.5 * (d1[i] + d2[i])).abs() < 1e-5);
            }
        }
    }
}
