//! Server-side aggregation of client updates (Alg. 1 lines 14–18).
//!
//! Two aggregation shapes coexist:
//!
//! * the **serial** folds ([`aggregate_sparse`], [`aggregate_compressed`]) —
//!   the reference left-to-right accumulation;
//! * the **sharded** folds ([`aggregate_sparse_sharded`],
//!   [`aggregate_compressed_sharded`]) — the cohort is cut into fixed
//!   [`AGG_SHARD`]-client shards, each shard folds serially into its own
//!   zero-initialized partial sum (possibly on different threads), and the
//!   partials merge left to right. Because the shard boundaries depend only
//!   on [`AGG_SHARD`] — never on the thread count — the reduction tree is
//!   deterministic, and for cohorts of at most [`AGG_SHARD`] clients it *is*
//!   the serial fold, bit for bit.

use crate::opwa::OpwaMask;
use fl_compress::{CompressedUpdate, SparseUpdate};
use fl_tensor::parallel::parallel_fixed_shards;

/// Clients per aggregation shard. Fixed (not derived from the thread count)
/// so the floating-point reduction tree is identical on every machine;
/// cohorts of at most this size reduce exactly like the serial fold.
pub const AGG_SHARD: usize = 32;

/// Plain FedAvg data-fraction coefficients `f_i = |D_i| / Σ_j |D_j|` over the
/// selected cohort.
pub fn data_fractions(sample_counts: &[usize]) -> Vec<f64> {
    let total: usize = sample_counts.iter().sum();
    assert!(total > 0, "cohort holds no samples");
    sample_counts
        .iter()
        .map(|&n| n as f64 / total as f64)
        .collect()
}

/// [`data_fractions`], but an all-empty cohort degrades to uniform weights
/// instead of panicking. At populations of 10^5+ over a bounded synthetic
/// dataset many clients legitimately own zero samples, and a round whose
/// whole cohort is empty must still aggregate (every update is zero anyway).
pub fn data_fractions_or_uniform(sample_counts: &[usize]) -> Vec<f64> {
    assert!(!sample_counts.is_empty(), "empty cohort");
    let total: usize = sample_counts.iter().sum();
    if total == 0 {
        return vec![1.0 / sample_counts.len() as f64; sample_counts.len()];
    }
    data_fractions(sample_counts)
}

/// Serially fold `updates[start..end]` (weighted, optionally masked) into a
/// zero-initialized accumulator of `dense_len` scalars.
fn fold_sparse_shard(
    updates: &[&SparseUpdate],
    coefficients: &[f64],
    mask: Option<&OpwaMask>,
    dense_len: usize,
    start: usize,
    end: usize,
) -> Vec<f32> {
    let mut acc = vec![0.0f32; dense_len];
    for i in start..end {
        match mask {
            Some(m) => m
                .apply(updates[i])
                .add_scaled_into(&mut acc, coefficients[i] as f32),
            None => updates[i].add_scaled_into(&mut acc, coefficients[i] as f32),
        }
    }
    acc
}

/// Merge per-shard partial sums left to right. The first partial becomes the
/// accumulator, so a single shard merges to itself — exactly the serial fold.
fn merge_partials(mut partials: Vec<Vec<f32>>) -> Vec<f32> {
    let mut acc = partials.remove(0);
    for p in partials {
        for (a, v) in acc.iter_mut().zip(p.iter()) {
            *a += v;
        }
    }
    acc
}

/// [`aggregate_sparse`] over a deterministic sharded reduction tree.
///
/// The cohort folds in fixed [`AGG_SHARD`]-client shards whose partial sums
/// compute independently (parallel across up to `max_threads` workers) and
/// merge left to right. Bit-identical to [`aggregate_sparse`] whenever the
/// cohort has at most [`AGG_SHARD`] clients, and invariant to `max_threads`
/// always.
pub fn aggregate_sparse_sharded(
    updates: &[&SparseUpdate],
    coefficients: &[f64],
    mask: Option<&OpwaMask>,
    max_threads: usize,
) -> Vec<f32> {
    assert!(!updates.is_empty(), "nothing to aggregate");
    assert_eq!(
        updates.len(),
        coefficients.len(),
        "one coefficient per update required"
    );
    let dense_len = updates[0].dense_len();
    assert!(
        updates.iter().all(|u| u.dense_len() == dense_len),
        "updates have mismatched lengths"
    );
    let partials = parallel_fixed_shards(updates.len(), AGG_SHARD, max_threads, |start, end| {
        fold_sparse_shard(updates, coefficients, mask, dense_len, start, end)
    });
    merge_partials(partials)
}

/// [`aggregate_compressed`] over the same deterministic sharded reduction
/// tree as [`aggregate_sparse_sharded`].
pub fn aggregate_compressed_sharded(
    updates: &[&CompressedUpdate],
    coefficients: &[f64],
    mask: Option<&OpwaMask>,
    max_threads: usize,
) -> Vec<f32> {
    assert!(!updates.is_empty(), "nothing to aggregate");
    assert_eq!(
        updates.len(),
        coefficients.len(),
        "coefficient count mismatch"
    );
    if updates.iter().all(|u| u.as_sparse().is_some()) {
        let sparse: Vec<&SparseUpdate> = updates.iter().map(|u| u.as_sparse().unwrap()).collect();
        return aggregate_sparse_sharded(&sparse, coefficients, mask, max_threads);
    }
    let dense_len = updates[0].dense_len();
    let partials = parallel_fixed_shards(updates.len(), AGG_SHARD, max_threads, |start, end| {
        let mut acc = vec![0.0f32; dense_len];
        for i in start..end {
            let mut dense = updates[i].to_dense();
            if let Some(m) = mask {
                m.apply_dense(&mut dense);
            }
            for (a, d) in acc.iter_mut().zip(dense.iter()) {
                *a += coefficients[i] as f32 * d;
            }
        }
        acc
    });
    merge_partials(partials)
}

/// Weighted aggregation of sparse updates into a dense delta:
/// `Σ_i coeff_i · (mask ⊙ update_i)` (Alg. 1 line 14/16/18).
pub fn aggregate_sparse(
    updates: &[&SparseUpdate],
    coefficients: &[f64],
    mask: Option<&OpwaMask>,
) -> Vec<f32> {
    assert!(!updates.is_empty(), "nothing to aggregate");
    assert_eq!(
        updates.len(),
        coefficients.len(),
        "one coefficient per update required"
    );
    let dense_len = updates[0].dense_len();
    assert!(
        updates.iter().all(|u| u.dense_len() == dense_len),
        "updates have mismatched lengths"
    );
    let mut acc = vec![0.0f32; dense_len];
    for (u, &c) in updates.iter().zip(coefficients.iter()) {
        match mask {
            Some(m) => m.apply(u).add_scaled_into(&mut acc, c as f32),
            None => u.add_scaled_into(&mut acc, c as f32),
        }
    }
    acc
}

/// Weighted aggregation of arbitrary compressed updates (sparse or quantized).
pub fn aggregate_compressed(
    updates: &[&CompressedUpdate],
    coefficients: &[f64],
    mask: Option<&OpwaMask>,
) -> Vec<f32> {
    assert!(!updates.is_empty(), "nothing to aggregate");
    assert_eq!(
        updates.len(),
        coefficients.len(),
        "coefficient count mismatch"
    );
    // Fast path: all sparse.
    if updates.iter().all(|u| u.as_sparse().is_some()) {
        let sparse: Vec<&SparseUpdate> = updates.iter().map(|u| u.as_sparse().unwrap()).collect();
        return aggregate_sparse(&sparse, coefficients, mask);
    }
    let dense_len = updates[0].dense_len();
    let mut acc = vec![0.0f32; dense_len];
    for (u, &c) in updates.iter().zip(coefficients.iter()) {
        let mut dense = u.to_dense();
        if let Some(m) = mask {
            m.apply_dense(&mut dense);
        }
        for (a, d) in acc.iter_mut().zip(dense.iter()) {
            *a += c as f32 * d;
        }
    }
    acc
}

/// Apply the aggregated delta to the global parameters:
/// `w_{t+1} = w_t − η_server · Σ_i coeff_i Δw_i`.
pub fn apply_update(global: &mut [f32], aggregated_delta: &[f32], server_lr: f32) {
    assert_eq!(
        global.len(),
        aggregated_delta.len(),
        "parameter length mismatch"
    );
    for (w, d) in global.iter_mut().zip(aggregated_delta.iter()) {
        *w -= server_lr * d;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::overlap::OverlapCounts;
    use proptest::prelude::*;

    fn sparse(indices: Vec<u32>, values: Vec<f32>, len: usize) -> SparseUpdate {
        SparseUpdate::new(indices, values, len)
    }

    #[test]
    fn data_fractions_sum_to_one() {
        let f = data_fractions(&[100, 300, 600]);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[0] - 0.1).abs() < 1e-12);
        assert!((f[2] - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn empty_cohort_fractions_rejected() {
        data_fractions(&[0, 0]);
    }

    #[test]
    fn sparse_aggregation_weighted_sum() {
        let a = sparse(vec![0, 2], vec![1.0, 2.0], 4);
        let b = sparse(vec![2, 3], vec![4.0, 8.0], 4);
        let agg = aggregate_sparse(&[&a, &b], &[0.5, 0.25], None);
        assert_eq!(agg, vec![0.5, 0.0, 2.0, 2.0]);
    }

    #[test]
    fn aggregation_with_mask_enlarges_singletons() {
        let a = sparse(vec![0, 1], vec![1.0, 1.0], 3);
        let b = sparse(vec![1, 2], vec![1.0, 1.0], 3);
        let counts = OverlapCounts::from_updates(&[&a, &b]);
        let mask = OpwaMask::from_overlap(&counts, 2.0, 1);
        let agg = aggregate_sparse(&[&a, &b], &[0.5, 0.5], Some(&mask));
        // Coordinates 0 and 2 are singletons (enlarged 2x), coordinate 1 overlaps.
        assert_eq!(agg, vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn apply_update_descends() {
        let mut w = vec![1.0, 1.0, 1.0];
        apply_update(&mut w, &[0.5, -0.5, 0.0], 1.0);
        assert_eq!(w, vec![0.5, 1.5, 1.0]);
        apply_update(&mut w, &[1.0, 1.0, 1.0], 0.1);
        assert!((w[0] - 0.4).abs() < 1e-6);
    }

    #[test]
    fn compressed_aggregation_mixes_sparse_and_quantized() {
        let s = CompressedUpdate::Sparse(sparse(vec![0], vec![2.0], 2));
        let q = CompressedUpdate::Quantized {
            values: vec![1.0, 1.0],
            wire_bytes: 4,
        };
        let agg = aggregate_compressed(&[&s, &q], &[0.5, 0.5], None);
        assert_eq!(agg, vec![1.5, 0.5]);
    }

    #[test]
    #[should_panic]
    fn coefficient_mismatch_rejected() {
        let a = sparse(vec![0], vec![1.0], 2);
        aggregate_sparse(&[&a], &[0.5, 0.5], None);
    }

    #[test]
    fn uniform_fallback_only_fires_on_empty_cohorts() {
        let f = data_fractions_or_uniform(&[0, 0, 0, 0]);
        assert_eq!(f, vec![0.25; 4]);
        assert_eq!(
            data_fractions_or_uniform(&[100, 300, 600]),
            data_fractions(&[100, 300, 600])
        );
    }

    fn cohort(n: usize, dense_len: usize) -> (Vec<SparseUpdate>, Vec<f64>) {
        let updates: Vec<SparseUpdate> = (0..n)
            .map(|i| {
                let indices: Vec<u32> = (0..dense_len as u32)
                    .filter(|x| !(x + i as u32).is_multiple_of(3))
                    .collect();
                let values: Vec<f32> = indices
                    .iter()
                    .map(|&x| ((x as f32) * 0.13 + i as f32 * 0.7).sin())
                    .collect();
                sparse(indices, values, dense_len)
            })
            .collect();
        let coefficients: Vec<f64> = (0..n).map(|i| 1.0 / (i as f64 + 2.0)).collect();
        (updates, coefficients)
    }

    #[test]
    fn sharded_aggregation_matches_serial_bitwise_for_small_cohorts() {
        // Up to AGG_SHARD clients there is exactly one shard, so the sharded
        // fold must reproduce the serial fold bit for bit at any thread cap.
        for n in [1usize, 7, AGG_SHARD] {
            let (updates, coefficients) = cohort(n, 40);
            let refs: Vec<&SparseUpdate> = updates.iter().collect();
            let serial = aggregate_sparse(&refs, &coefficients, None);
            for threads in [1, 4] {
                let sharded = aggregate_sparse_sharded(&refs, &coefficients, None, threads);
                assert_eq!(
                    serial.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    sharded.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                    "n={n} threads={threads}"
                );
            }
        }
    }

    #[test]
    fn sharded_aggregation_is_thread_count_invariant_beyond_one_shard() {
        let (updates, coefficients) = cohort(3 * AGG_SHARD + 5, 24);
        let refs: Vec<&SparseUpdate> = updates.iter().collect();
        let reference = aggregate_sparse_sharded(&refs, &coefficients, None, 1);
        for threads in [2, 4, 16] {
            let got = aggregate_sparse_sharded(&refs, &coefficients, None, threads);
            assert_eq!(
                reference.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "threads={threads}"
            );
        }
        // And numerically indistinguishable from the serial fold.
        let serial = aggregate_sparse(&refs, &coefficients, None);
        for (a, b) in serial.iter().zip(reference.iter()) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn sharded_compressed_aggregation_handles_quantized_updates() {
        let s = CompressedUpdate::Sparse(sparse(vec![0], vec![2.0], 2));
        let q = CompressedUpdate::Quantized {
            values: vec![1.0, 1.0],
            wire_bytes: 4,
        };
        let serial = aggregate_compressed(&[&s, &q], &[0.5, 0.5], None);
        let sharded = aggregate_compressed_sharded(&[&s, &q], &[0.5, 0.5], None, 4);
        assert_eq!(serial, sharded);
    }

    proptest! {
        #[test]
        fn prop_aggregation_linear_in_coefficients(
            values in proptest::collection::vec(-5.0f32..5.0, 4..32),
            coeff in 0.01f64..2.0,
        ) {
            // aggregate([u], [c]) == c * dense(u)
            let len = values.len();
            let indices: Vec<u32> = (0..len as u32).collect();
            let u = SparseUpdate::new(indices, values.clone(), len);
            let agg = aggregate_sparse(&[&u], &[coeff], None);
            for (a, v) in agg.iter().zip(values.iter()) {
                prop_assert!((a - coeff as f32 * v).abs() < 1e-4);
            }
        }

        #[test]
        fn prop_uncompressed_aggregate_preserves_weighted_mean(
            d1 in proptest::collection::vec(-1.0f32..1.0, 8),
            d2 in proptest::collection::vec(-1.0f32..1.0, 8),
        ) {
            // With CR = 1 updates, aggregation equals the dense weighted mean.
            let u1 = SparseUpdate::from_dense_mask(&d1, |_, _| true);
            let u2 = SparseUpdate::from_dense_mask(&d2, |_, _| true);
            let agg = aggregate_sparse(&[&u1, &u2], &[0.5, 0.5], None);
            for i in 0..8 {
                prop_assert!((agg[i] - 0.5 * (d1[i] + d2[i])).abs() < 1e-5);
            }
        }
    }
}
