//! Overlap-aware Parameter Weighted Averaging (OPWA) — Algorithm 3 / Eq. 7.
//!
//! OPWA builds a parameter-level mask `M` from the overlap counts of the
//! round's sparse updates: coordinates retained by at most `D` clients
//! (default `D = 1`) get weight `γ`, all others weight 1. The server update
//! then becomes `w_{t+1} = w_t − η Σ_i p'_i · M ⊙ Δw^sparse_i`.

use crate::overlap::OverlapCounts;
use fl_compress::SparseUpdate;
use serde::{Deserialize, Serialize};

/// The OPWA parameter mask for one round.
///
/// ```
/// use fl_compress::SparseUpdate;
/// use fl_core::{OpwaMask, OverlapCounts};
///
/// // Two clients retain overlapping coordinate sets after Top-K.
/// let a = SparseUpdate::new(vec![0, 1], vec![1.0, 1.0], 4);
/// let b = SparseUpdate::new(vec![0, 2], vec![1.0, 1.0], 4);
/// let counts = OverlapCounts::from_updates(&[&a, &b]);
/// let mask = OpwaMask::from_overlap(&counts, 3.0, 1);
/// // Coordinate 0 overlaps (weight 1); coordinates 1 and 2 are singletons
/// // and get the enlarge rate gamma = 3.
/// assert_eq!(mask.weights(), &[1.0, 3.0, 3.0, 1.0]);
/// assert_eq!(mask.apply(&a).values(), &[1.0, 3.0]);
/// ```
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct OpwaMask {
    weights: Vec<f32>,
    gamma: f32,
    threshold: usize,
}

impl OpwaMask {
    /// Build the mask from a round's overlap counts (Alg. 3 `GenerateMask`).
    ///
    /// * `gamma` — enlarge rate `γ >= 1`;
    /// * `threshold` — required degree of overlap `D`; coordinates with
    ///   `1 <= overlap <= D` are enlarged. Coordinates retained by nobody get
    ///   weight 1 (they contribute nothing anyway).
    pub fn from_overlap(counts: &OverlapCounts, gamma: f32, threshold: usize) -> Self {
        assert!(gamma >= 1.0, "gamma must be >= 1");
        assert!(threshold >= 1, "threshold must be >= 1");
        let weights = counts
            .counts()
            .iter()
            .map(|&c| {
                if c > 0 && (c as usize) <= threshold {
                    gamma
                } else {
                    1.0
                }
            })
            .collect();
        Self {
            weights,
            gamma,
            threshold,
        }
    }

    /// A mask of all ones (no-op), used when OPWA is disabled.
    pub fn identity(len: usize) -> Self {
        Self {
            weights: vec![1.0; len],
            gamma: 1.0,
            threshold: 1,
        }
    }

    /// The enlarge rate this mask was built with.
    pub fn gamma(&self) -> f32 {
        self.gamma
    }

    /// The overlap threshold this mask was built with.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Per-coordinate weights.
    pub fn weights(&self) -> &[f32] {
        &self.weights
    }

    /// Number of coordinates that will be enlarged.
    pub fn enlarged_count(&self) -> usize {
        self.weights.iter().filter(|&&w| w != 1.0).count()
    }

    /// Apply the mask to a sparse update, returning a new update with the
    /// masked values (Eq. 7's `M(Δw^sparse_i)`).
    pub fn apply(&self, update: &SparseUpdate) -> SparseUpdate {
        assert_eq!(
            update.dense_len(),
            self.weights.len(),
            "mask length does not match update length"
        );
        let mut masked = update.clone();
        for (slot, &idx) in masked.values_mut().iter_mut().zip(update.indices().iter()) {
            *slot *= self.weights[idx as usize];
        }
        masked
    }

    /// Apply the mask in place to a dense accumulation buffer.
    pub fn apply_dense(&self, dense: &mut [f32]) {
        assert_eq!(dense.len(), self.weights.len(), "length mismatch");
        for (d, &w) in dense.iter_mut().zip(self.weights.iter()) {
            *d *= w;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn sparse(indices: Vec<u32>, values: Vec<f32>, len: usize) -> SparseUpdate {
        SparseUpdate::new(indices, values, len)
    }

    fn two_client_counts() -> OverlapCounts {
        // Coordinate 0 retained by both clients, 1 and 2 by one each.
        let a = sparse(vec![0, 1], vec![1.0, 1.0], 4);
        let b = sparse(vec![0, 2], vec![1.0, 1.0], 4);
        OverlapCounts::from_updates(&[&a, &b])
    }

    #[test]
    fn mask_enlarges_low_overlap_only() {
        let mask = OpwaMask::from_overlap(&two_client_counts(), 3.0, 1);
        assert_eq!(mask.weights(), &[1.0, 3.0, 3.0, 1.0]);
        assert_eq!(mask.enlarged_count(), 2);
    }

    #[test]
    fn threshold_two_enlarges_everything_retained() {
        let mask = OpwaMask::from_overlap(&two_client_counts(), 2.0, 2);
        assert_eq!(mask.weights(), &[2.0, 2.0, 2.0, 1.0]);
    }

    #[test]
    fn apply_scales_sparse_values() {
        let mask = OpwaMask::from_overlap(&two_client_counts(), 5.0, 1);
        let u = sparse(vec![0, 1], vec![2.0, 2.0], 4);
        let m = mask.apply(&u);
        assert_eq!(m.values(), &[2.0, 10.0]);
        assert_eq!(m.indices(), u.indices());
    }

    #[test]
    fn gamma_one_is_identity() {
        let mask = OpwaMask::from_overlap(&two_client_counts(), 1.0, 1);
        let u = sparse(vec![1, 3], vec![4.0, -2.0], 4);
        assert_eq!(mask.apply(&u), u);
    }

    #[test]
    fn identity_mask_is_noop() {
        let mask = OpwaMask::identity(4);
        let u = sparse(vec![0, 2], vec![1.5, -0.5], 4);
        assert_eq!(mask.apply(&u), u);
        let mut dense = vec![1.0, 2.0, 3.0, 4.0];
        mask.apply_dense(&mut dense);
        assert_eq!(dense, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn opwa_restores_singleton_magnitude_after_averaging() {
        // The motivating example (Fig. 3): a coordinate retained by a single
        // client out of 5 is shrunk 5x by uniform averaging; with gamma = 5
        // the averaged magnitude matches the original update.
        let cohort = 5usize;
        let updates: Vec<SparseUpdate> = (0..cohort)
            .map(|c| sparse(vec![c as u32], vec![1.0], cohort))
            .collect();
        let refs: Vec<&SparseUpdate> = updates.iter().collect();
        let counts = OverlapCounts::from_updates(&refs);
        let mask = OpwaMask::from_overlap(&counts, cohort as f32, 1);
        let p = 1.0 / cohort as f32;
        let mut plain = vec![0.0f32; cohort];
        let mut weighted = vec![0.0f32; cohort];
        for u in &updates {
            u.add_scaled_into(&mut plain, p);
            mask.apply(u).add_scaled_into(&mut weighted, p);
        }
        for i in 0..cohort {
            assert!((plain[i] - 0.2).abs() < 1e-6);
            assert!((weighted[i] - 1.0).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic]
    fn mismatched_update_length_rejected() {
        let mask = OpwaMask::identity(4);
        mask.apply(&sparse(vec![0], vec![1.0], 5));
    }

    #[test]
    #[should_panic]
    fn gamma_below_one_rejected() {
        OpwaMask::from_overlap(&two_client_counts(), 0.5, 1);
    }

    proptest! {
        #[test]
        fn prop_masked_values_scaled_by_gamma_or_one(
            gamma in 1.0f32..10.0,
            values in proptest::collection::vec(-5.0f32..5.0, 1..30),
        ) {
            let len = values.len();
            let indices: Vec<u32> = (0..len as u32).collect();
            let u = SparseUpdate::new(indices, values.clone(), len);
            // Single-client cohort: every retained coordinate is a singleton.
            let counts = OverlapCounts::from_updates(&[&u]);
            let mask = OpwaMask::from_overlap(&counts, gamma, 1);
            let m = mask.apply(&u);
            for (orig, masked) in values.iter().zip(m.values().iter()) {
                prop_assert!((masked - orig * gamma).abs() < 1e-4);
            }
        }
    }
}
