//! Bandwidth-aware Compression Ratio Scheduling (BCRS) — Algorithm 2 and
//! Eq. 5–6 of the paper.
//!
//! Given the links of the selected clients and a base compression ratio
//! `CR*`, BCRS:
//!
//! 1. computes every client's uplink time under *uniform* compression,
//!    `T_i = L_i + 2·V·CR*/B_i`;
//! 2. takes the slowest of those as the benchmark `T_bench` (Eq. 5);
//! 3. gives every client the largest ratio that still finishes by `T_bench`,
//!    `CR_i = (T_bench − L_i)/(2·V) · B_i` (clamped to `[CR*, 1]`);
//! 4. adjusts the averaging coefficient of client `i` to
//!    `p'_i = f_i / max(f_i, Norm(CR_i)) · α` (Eq. 6), where `Norm(CR_i)` is
//!    the client's share of the cohort's total ratio.

use fl_netsim::{CommModel, Link};
use serde::{Deserialize, Serialize};

/// The per-round output of the BCRS scheduler.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct BcrsSchedule {
    /// Benchmark time `T_bench` (seconds): the slowest client's compressed
    /// uplink time under the uniform base ratio.
    pub t_bench: f64,
    /// Index (within the selected cohort) of the benchmark (slowest) client.
    pub benchmark_client: usize,
    /// Scheduled compression ratio per selected client.
    pub ratios: Vec<f64>,
    /// Uplink time per client under the scheduled ratios (seconds).
    pub scheduled_times: Vec<f64>,
    /// Uplink time per client under the uniform base ratio (seconds).
    pub uniform_times: Vec<f64>,
}

impl BcrsSchedule {
    /// Normalised compression ratios (`CR_i / Σ_j CR_j`), the `Norm(CR_i)`
    /// term of Eq. 6.
    pub fn normalized_ratios(&self) -> Vec<f64> {
        let total: f64 = self.ratios.iter().sum();
        if total <= 0.0 {
            return vec![0.0; self.ratios.len()];
        }
        self.ratios.iter().map(|r| r / total).collect()
    }

    /// Adjusted averaging coefficients `p'_i = f_i / max(f_i, Norm(CR_i)) · α`
    /// (Eq. 6). `data_fractions` are the `f_i` (sample shares of the cohort).
    pub fn adjusted_coefficients(&self, data_fractions: &[f64], alpha: f64) -> Vec<f64> {
        assert_eq!(
            data_fractions.len(),
            self.ratios.len(),
            "data fraction count must match cohort size"
        );
        assert!(alpha > 0.0, "alpha must be positive");
        let norm = self.normalized_ratios();
        data_fractions
            .iter()
            .zip(norm.iter())
            .map(|(&f, &n)| {
                let denom = f.max(n);
                if denom <= 0.0 {
                    0.0
                } else {
                    f / denom * alpha
                }
            })
            .collect()
    }

    /// Worst-case scheduled uplink time (should not exceed `t_bench` by more
    /// than numerical noise).
    pub fn makespan(&self) -> f64 {
        self.scheduled_times.iter().cloned().fold(0.0, f64::max)
    }

    /// Mean scheduled compression ratio across the cohort.
    pub fn mean_ratio(&self) -> f64 {
        if self.ratios.is_empty() {
            0.0
        } else {
            self.ratios.iter().sum::<f64>() / self.ratios.len() as f64
        }
    }
}

/// The BCRS scheduler (Algorithm 2).
///
/// ```
/// use fl_core::BcrsScheduler;
/// use fl_netsim::{CommModel, Link};
///
/// let links = vec![
///     Link::from_mbps_ms(2.0, 60.0),   // fast client
///     Link::from_mbps_ms(0.5, 180.0),  // straggler
/// ];
/// let schedule = BcrsScheduler::new(CommModel::paper_default())
///     .schedule(&links, 100_000.0, 0.05);
/// // The fast client is given a larger compression ratio (more retained
/// // parameters) while still finishing within the straggler's budget.
/// assert!(schedule.ratios[0] > schedule.ratios[1]);
/// assert!(schedule.makespan() <= schedule.t_bench + 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct BcrsScheduler {
    comm: CommModel,
    /// If true (default), per-client ratios never drop below the base ratio
    /// and never exceed 1.
    pub clamp_ratios: bool,
}

impl BcrsScheduler {
    /// Scheduler using the paper's communication model.
    pub fn new(comm: CommModel) -> Self {
        Self {
            comm,
            clamp_ratios: true,
        }
    }

    /// Compute the schedule for one round.
    ///
    /// * `links` — the selected clients' uplinks;
    /// * `model_bytes` — dense model update size `V` in bytes;
    /// * `base_ratio` — the uniform compression ratio `CR*`.
    pub fn schedule(&self, links: &[Link], model_bytes: f64, base_ratio: f64) -> BcrsSchedule {
        assert!(!links.is_empty(), "BCRS needs at least one selected client");
        assert!(model_bytes > 0.0, "model size must be positive");
        assert!(
            base_ratio > 0.0 && base_ratio <= 1.0,
            "base ratio must be in (0, 1]"
        );

        // Step 1–2: uniform-compression times and the benchmark (Eq. 5).
        let uniform_times: Vec<f64> = links
            .iter()
            .map(|l| self.comm.sparse_uplink_time(l, model_bytes, base_ratio))
            .collect();
        let (benchmark_client, &t_bench) = uniform_times
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("non-empty cohort");

        // Step 3: per-client ratios filling the benchmark budget (Alg. 2 l.13).
        let ratios: Vec<f64> = links
            .iter()
            .map(|l| {
                let r = self.comm.ratio_for_budget(l, model_bytes, t_bench);
                if self.clamp_ratios {
                    r.clamp(base_ratio, 1.0)
                } else {
                    r.max(0.0)
                }
            })
            .collect();

        let scheduled_times: Vec<f64> = links
            .iter()
            .zip(ratios.iter())
            .map(|(l, &r)| self.comm.sparse_uplink_time(l, model_bytes, r))
            .collect();

        BcrsSchedule {
            t_bench,
            benchmark_client,
            ratios,
            scheduled_times,
            uniform_times,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_netsim::LinkGenerator;

    fn three_links() -> Vec<Link> {
        vec![
            Link::from_mbps_ms(2.0, 60.0),  // fast
            Link::from_mbps_ms(1.0, 100.0), // medium
            Link::from_mbps_ms(0.5, 180.0), // slow (straggler)
        ]
    }

    #[test]
    fn benchmark_is_slowest_uniform_client() {
        let sched = BcrsScheduler::new(CommModel::paper_default());
        let s = sched.schedule(&three_links(), 100_000.0, 0.1);
        assert_eq!(s.benchmark_client, 2);
        assert!((s.t_bench - s.uniform_times[2]).abs() < 1e-12);
    }

    #[test]
    fn faster_clients_get_higher_ratios() {
        let sched = BcrsScheduler::new(CommModel::paper_default());
        let s = sched.schedule(&three_links(), 100_000.0, 0.05);
        assert!(s.ratios[0] > s.ratios[1]);
        assert!(s.ratios[1] > s.ratios[2] - 1e-12);
        // The slowest client keeps (at least) the base ratio.
        assert!((s.ratios[2] - 0.05).abs() < 1e-9);
    }

    #[test]
    fn makespan_never_exceeds_benchmark() {
        let sched = BcrsScheduler::new(CommModel::paper_default());
        for seed in 0..20 {
            let links = LinkGenerator::paper_default().generate(5, seed);
            for &cr in &[0.01, 0.1, 0.5] {
                let s = sched.schedule(&links, 101_672.0, cr);
                assert!(
                    s.makespan() <= s.t_bench + 1e-9,
                    "seed {seed} cr {cr}: makespan {} > bench {}",
                    s.makespan(),
                    s.t_bench
                );
            }
        }
    }

    #[test]
    fn ratios_clamped_to_one() {
        // A very fast client with a huge budget cannot exceed CR = 1.
        let links = vec![
            Link::from_mbps_ms(100.0, 1.0),
            Link::from_mbps_ms(0.1, 500.0),
        ];
        let sched = BcrsScheduler::new(CommModel::paper_default());
        let s = sched.schedule(&links, 10_000.0, 0.5);
        assert!(s.ratios.iter().all(|&r| r <= 1.0));
        assert_eq!(s.ratios[0], 1.0);
    }

    #[test]
    fn homogeneous_links_give_uniform_ratios() {
        let links = vec![Link::from_mbps_ms(1.0, 100.0); 4];
        let sched = BcrsScheduler::new(CommModel::paper_default());
        let s = sched.schedule(&links, 100_000.0, 0.1);
        for &r in &s.ratios {
            assert!((r - 0.1).abs() < 1e-9);
        }
        // Coefficients collapse to alpha when CR shares equal data shares.
        let coeffs = s.adjusted_coefficients(&[0.25; 4], 0.3);
        for &c in &coeffs {
            assert!((c - 0.3).abs() < 1e-9);
        }
    }

    #[test]
    fn normalized_ratios_sum_to_one() {
        let sched = BcrsScheduler::new(CommModel::paper_default());
        let s = sched.schedule(&three_links(), 100_000.0, 0.1);
        let sum: f64 = s.normalized_ratios().iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn adjusted_coefficients_bounded_by_alpha() {
        let sched = BcrsScheduler::new(CommModel::paper_default());
        let s = sched.schedule(&three_links(), 100_000.0, 0.01);
        let f = vec![1.0 / 3.0; 3];
        let coeffs = s.adjusted_coefficients(&f, 0.3);
        for (&c, _) in coeffs.iter().zip(f.iter()) {
            assert!(c <= 0.3 + 1e-12, "coefficient {c} exceeds alpha");
            assert!(c > 0.0);
        }
        // The client contributing the largest CR share is down-weighted.
        let norm = s.normalized_ratios();
        let biggest = norm
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert!(coeffs[biggest] < 0.3);
    }

    #[test]
    #[should_panic]
    fn empty_cohort_rejected() {
        BcrsScheduler::new(CommModel::paper_default()).schedule(&[], 1000.0, 0.1);
    }

    #[test]
    #[should_panic]
    fn zero_ratio_rejected() {
        BcrsScheduler::new(CommModel::paper_default()).schedule(&three_links(), 1000.0, 0.0);
    }
}
