//! One communication round of the [`FederatedSession`] engine, decomposed
//! into explicit stages (Alg. 1 lines 3–19):
//!
//! 1. **select** — the [`crate::policy::ClientSelector`] picks the cohort
//!    (guaranteed non-empty: an empty selection falls back to one uniformly
//!    drawn client so the round's averages and stragglers stay defined);
//! 2. **downlink phase** — when a broadcast codec is configured, the server
//!    encodes the global-parameter delta since the last broadcast once into
//!    a [`fl_compress::WireUpdate`]; the selected clients decode it before
//!    training (one shared decode — every recipient gets the same bytes);
//! 3. **local phase** — the [`crate::policy::RatioPolicy`] assigns ratios,
//!    then every selected client trains (from the broadcast view) and
//!    compresses in parallel;
//! 4. **aggregate phase** — overlap analysis, optional OPWA mask, weighted
//!    aggregation and the [`crate::policy::ServerOpt`] global update;
//! 5. **timing phase** — the network simulator prices the round's transfers:
//!    every client's upload, plus its download of the broadcast when the
//!    downlink leg is simulated (the straggler bound covers both legs);
//! 6. **eval phase** — the global model is evaluated on the held-out test set
//!    (every `eval_every` rounds) and the [`RoundRecord`] is assembled.
//!
//! [`FederatedSession::run_round`] threads the stage outputs through in
//! order and returns a [`RoundOutput`].

use crate::aggregate::{
    aggregate_compressed_sharded, aggregate_sparse_sharded, data_fractions_or_uniform,
};
use crate::bcrs::BcrsSchedule;
use crate::eval::{evaluate_with_threads, Evaluation};
use crate::opwa::OpwaMask;
use crate::overlap::OverlapCounts;
use crate::policy::{PlanCtx, RatioCtx, SelectionCtx};
use crate::runner::{LayerBytes, PlanTelemetry, RoundRecord};
use crate::session::FederatedSession;
use fl_compress::{CompressedUpdate, SparseUpdate};
use fl_netsim::{CostBasis, Link, RoundBreakdown, RoundTiming};
use fl_nn::unflatten_params;
use fl_tensor::parallel::parallel_map;
use fl_tensor::rng::Rng;

/// Everything produced by one round beyond the global-state mutation.
#[derive(Clone, Debug)]
pub struct RoundOutput {
    /// The round's record (also appended to the session's history).
    pub record: RoundRecord,
    /// The BCRS schedule, when the ratio policy produced one.
    pub schedule: Option<BcrsSchedule>,
    /// Slowest selected client's local training wall time (seconds).
    pub train_time_s: f64,
    /// Total codec (encode + decode) wall time across the cohort (seconds).
    pub compress_time_s: f64,
    /// Encoded wire size of every selected client's upload, in cohort order
    /// (what [`CostBasis::Encoded`] charges).
    pub uplink_wire_bytes: Vec<usize>,
    /// Encoded wire size of this round's server→client broadcast buffer
    /// (0 when no downlink codec is configured — the broadcast is then
    /// teleported for free, the paper's analytic setting).
    pub downlink_wire_bytes: usize,
}

/// Stage 1 output: the cohort and its links.
struct Selection {
    selected: Vec<usize>,
    links: Vec<Link>,
}

/// Stage 2 output: the broadcast leg. `wire_bytes` is `None` when no
/// downlink codec is configured (the broadcast is teleported for free);
/// `segment_bytes` carries the broadcast buffer's per-segment payload sizes
/// when the downlink codec framed it per layer.
struct DownlinkPhase {
    wire_bytes: Option<usize>,
    segment_bytes: Option<Vec<usize>>,
    codec_time_s: f64,
}

/// Stage 3 output: the cohort's decoded updates plus training metrics.
/// `segment_bytes` sums the per-segment payload sizes across the cohort's
/// `Segmented` uploads (present only under a genuinely mixed layer plan).
struct LocalPhase {
    updates: Vec<CompressedUpdate>,
    wire_bytes: Vec<usize>,
    segment_bytes: Option<Vec<usize>>,
    sample_counts: Vec<usize>,
    train_loss: f64,
    max_train_time: f64,
    total_compress_time: f64,
    ratios: Vec<f64>,
    schedule: Option<BcrsSchedule>,
    dense_uplink: bool,
}

/// Stage 4 output: the overlap analysis retained for the record.
struct AggregatePhase {
    overlap: Option<OverlapCounts>,
}

impl FederatedSession {
    /// Execute the next communication round and return its output (a copy of
    /// the record is appended to the session's history). The round counter
    /// advances even past `config.rounds`, so callers may run longer horizons
    /// than the configuration by stepping manually.
    pub fn run_round(&mut self) -> RoundOutput {
        let output = self.step();
        self.records.push(output.record.clone());
        output
    }

    /// Run the round stages without touching the history — the internal
    /// driver for both [`run_round`](Self::run_round) (which clones the
    /// record into the history) and the session's `run_with` loop (which
    /// moves it there after the callback, avoiding a per-round clone).
    pub(crate) fn step(&mut self) -> RoundOutput {
        let round = self.next_round;
        let selection = self.select(round);
        let downlink = self.downlink_phase();
        let local = self.local_phase(round, &selection);
        let aggregate = self.aggregate_phase(&local);
        let timing = self.timing_phase(&selection, &local, &downlink);
        let output = self.eval_phase(round, selection, local, aggregate, downlink, timing);
        self.next_round += 1;
        output
    }

    /// Stage 1: pick this round's cohort via the selection policy.
    ///
    /// The engine guarantees a non-empty cohort: a selector that comes back
    /// empty (a custom policy, or an availability model with every client
    /// down) is backstopped by one uniformly drawn client, so the round's
    /// loss/ratio averages, the straggler `max` and any per-client byte
    /// arithmetic downstream never operate on an empty set.
    fn select(&mut self, round: usize) -> Selection {
        // Advance the scenario's fleet to this round *before* the selector
        // runs, in the engine rather than inside the selector: a custom
        // selector override can change who is picked but can never skip (or
        // double-apply — `advance` is idempotent) a round's fleet events.
        if let Some(handle) = &self.scenario {
            handle.advance(round);
        }
        let ctx = SelectionCtx {
            round,
            num_clients: self.config.num_clients,
            cohort_size: self.cohort,
            links: &self.links,
        };
        let mut selected = self.selector.select(&ctx, &mut self.selection_rng);
        if selected.is_empty() {
            selected.push(self.selection_rng.next_below(self.config.num_clients));
        }
        // Cohort links honour the scenario's per-round overrides (tier
        // resampling, rejoin links); without a scenario this is exactly the
        // static draw.
        let links: Vec<Link> = match &self.scenario {
            Some(handle) => selected
                .iter()
                .map(|&i| handle.link_for(i, &self.links))
                .collect(),
            None => selected.iter().map(|&i| self.links[i]).collect(),
        };
        self.plan_phase(round, &links);
        Selection { selected, links }
    }

    /// Advance the adaptive plan policy (when one is configured): hand it the
    /// round's link snapshot and the previous round's telemetry, install its
    /// decision as the roster's codec plan for this round's checkouts, and
    /// stash the decision for the record. A no-op on the static path — no
    /// policy, no override, no telemetry, bit-identical to pre-adaptive runs.
    fn plan_phase(&mut self, round: usize, links: &[Link]) {
        let Some(policy) = self.plan_policy.as_mut() else {
            return;
        };
        let segments = crate::client::segment_defs(&self.layout);
        let ctx = PlanCtx {
            round,
            segments: &segments,
            links,
            model_bytes: self.model_bytes as f64,
            base_ratio: self.config.compression_ratio,
            prev_layer_bytes: self.records.last().and_then(|r| r.layer_bytes.as_deref()),
            gradient_mass: self.last_gradient_mass.as_deref(),
            residual_norm: self.roster.residual_total_norm(),
        };
        let decision = policy.decide(&ctx);
        let policy_name = policy.name();
        let epoch =
            self.roster
                .set_plan_override(decision.plan.clone(), decision.scales, &segments);
        self.plan_telemetry = Some(PlanTelemetry {
            policy: policy_name.to_string(),
            plan: decision.plan.to_string(),
            epoch,
            assignments: decision.assignments,
        });
    }

    /// Stage 2: broadcast the global parameters. With a downlink codec the
    /// delta since the previous broadcast is encoded once into real wire
    /// bytes and decoded back into the clients' shared view (error-feedback
    /// state advancing server-side); without one the stage is a no-op and
    /// clients read the server's parameters directly, exactly as the paper's
    /// analytic model assumes.
    fn downlink_phase(&mut self) -> DownlinkPhase {
        match self.downlink.as_mut() {
            Some(channel) => {
                let start = std::time::Instant::now();
                let wire = channel.broadcast(&self.global_params);
                DownlinkPhase {
                    wire_bytes: Some(wire.len()),
                    segment_bytes: wire.segment_byte_lens(),
                    codec_time_s: start.elapsed().as_secs_f64(),
                }
            }
            None => DownlinkPhase {
                wire_bytes: None,
                segment_bytes: None,
                codec_time_s: 0.0,
            },
        }
    }

    /// Stage 3: assign per-client ratios, then train, encode and decode the
    /// cohort in parallel. Clients start from the broadcast view of the
    /// global parameters (identical to the server's parameters unless a
    /// lossy downlink codec is active). Every client's update round-trips
    /// through its codec's byte-level wire format; the decoded (lossy)
    /// update is what the server aggregates, and the encoded length is what
    /// [`CostBasis::Encoded`] charges.
    fn local_phase(&mut self, round: usize, selection: &Selection) -> LocalPhase {
        let decision = self.ratio_policy.decide(&RatioCtx {
            round,
            links: &selection.links,
            model_bytes: self.model_bytes as f64,
        });
        assert_eq!(
            decision.ratios.len(),
            selection.selected.len(),
            "ratio policy must produce one ratio per selected client"
        );

        let work: Vec<(usize, f64)> = selection
            .selected
            .iter()
            .cloned()
            .zip(decision.ratios.iter().cloned())
            .collect();
        let global_ref: &[f32] = match &self.downlink {
            Some(channel) => channel.view(),
            None => &self.global_params,
        };
        // Each selected client is materialized from the roster only for its
        // own train/encode/decode slice of the round and checked back in
        // immediately, so at most `threads` full `ClientState`s exist at any
        // instant — the cohort streams through, the population never loads.
        let roster = &self.roster;
        roster.begin_round();
        let outputs = parallel_map(work, self.threads, move |(client_idx, ratio)| {
            let mut client = roster.checkout(client_idx);
            let train_out = client.local_update(global_ref);
            let c_start = std::time::Instant::now();
            let wire = client.encode(&train_out.delta, ratio);
            let wire_len = wire.len();
            let seg_lens = wire.segment_byte_lens();
            let update = client
                .decode(&wire)
                .expect("a codec must decode its own encoding");
            let compress_time = c_start.elapsed().as_secs_f64();
            roster.checkin(client);
            (train_out, update, wire_len, seg_lens, compress_time)
        });

        let cohort_len = outputs.len();
        let mut updates = Vec::with_capacity(cohort_len);
        let mut wire_bytes = Vec::with_capacity(cohort_len);
        let mut segment_bytes: Option<Vec<usize>> = None;
        let mut sample_counts = Vec::with_capacity(cohort_len);
        let mut loss_sum = 0.0f64;
        let mut max_train_time = 0.0f64;
        let mut total_compress_time = 0.0f64;
        for (train_out, update, wire_len, seg_lens, compress_time) in outputs {
            sample_counts.push(train_out.num_samples);
            loss_sum += train_out.train_loss;
            max_train_time = max_train_time.max(train_out.train_time_s);
            total_compress_time += compress_time;
            updates.push(update);
            wire_bytes.push(wire_len);
            if let Some(lens) = seg_lens {
                // Every client runs the same plan, so the frames align; sum
                // each segment's payload bytes across the cohort.
                match &mut segment_bytes {
                    Some(acc) if acc.len() == lens.len() => {
                        for (a, l) in acc.iter_mut().zip(lens.iter()) {
                            *a += l;
                        }
                    }
                    Some(_) => {}
                    None => segment_bytes = Some(lens),
                }
            }
        }

        LocalPhase {
            updates,
            wire_bytes,
            segment_bytes,
            sample_counts,
            train_loss: loss_sum / cohort_len as f64,
            max_train_time,
            total_compress_time,
            ratios: decision.ratios,
            schedule: decision.schedule,
            dense_uplink: decision.dense_uplink,
        }
    }

    /// Stage 4: compute averaging coefficients (Eq. 6 under BCRS), apply the
    /// OPWA mask when active, aggregate, and let the server optimizer update
    /// the global parameters. Overlap analysis and OPWA apply when the whole
    /// cohort decoded to sparse updates (quantized codecs retain every
    /// coordinate, so overlap degrees are not defined for them).
    ///
    /// Aggregation reduces over a fixed-shard tree
    /// ([`crate::aggregate::AGG_SHARD`] clients per shard): shard partials
    /// compute in parallel and merge in shard order, so the result is
    /// invariant to the thread count and — for cohorts of at most one shard —
    /// bit-identical to the legacy serial fold.
    fn aggregate_phase(&mut self, local: &LocalPhase) -> AggregatePhase {
        // At population scale whole cohorts can own zero samples (bounded
        // synthetic dataset, 10^5+ clients); they fall back to uniform
        // weights instead of 0/0.
        let fractions = data_fractions_or_uniform(&local.sample_counts);
        let coefficients: Vec<f64> =
            match (&local.schedule, self.config.disable_coefficient_adjustment) {
                (Some(s), false) => s.adjusted_coefficients(&fractions, self.config.alpha),
                _ => fractions,
            };

        let all_sparse = local.updates.iter().all(|u| u.as_sparse().is_some());
        let (overlap, aggregated) = if all_sparse {
            let sparse_refs: Vec<&SparseUpdate> = local
                .updates
                .iter()
                .map(|u| u.as_sparse().expect("checked all_sparse"))
                .collect();
            let need_overlap = self.config.algorithm.uses_opwa() || self.config.record_overlap;
            let overlap = if need_overlap {
                Some(OverlapCounts::from_updates(&sparse_refs))
            } else {
                None
            };
            let mask = if self.config.algorithm.uses_opwa() {
                overlap.as_ref().map(|c| {
                    OpwaMask::from_overlap(c, self.config.gamma, self.config.overlap_threshold)
                })
            } else {
                None
            };
            let aggregated =
                aggregate_sparse_sharded(&sparse_refs, &coefficients, mask.as_ref(), self.threads);
            (overlap, aggregated)
        } else {
            let refs: Vec<&CompressedUpdate> = local.updates.iter().collect();
            (
                None,
                aggregate_compressed_sharded(&refs, &coefficients, None, self.threads),
            )
        };
        // Telemetry for the next round's plan decision: where the aggregated
        // update's mass concentrated, per layout segment. Computed only when
        // a plan policy is consuming it — the static path does no extra work.
        if self.plan_policy.is_some() {
            self.last_gradient_mass = Some(fl_nn::segment_l1_masses(&self.layout, &aggregated));
        }
        self.server_opt
            .apply(&mut self.global_params, &aggregated, self.config.server_lr);
        AggregatePhase { overlap }
    }

    /// Stage 5: price the round's transfers under the evaluated algorithm and
    /// under uncompressed transmission, and accumulate the running totals.
    /// Under [`CostBasis::Analytic`] compressed uploads cost the paper's
    /// `2·V·CR` formula (or the BCRS schedule's times); under
    /// [`CostBasis::Encoded`] each upload costs exactly its encoded length.
    ///
    /// When the downlink leg is simulated, every selected client additionally
    /// pays for downloading the broadcast before it can train — analytically
    /// the symmetric `2·V·CR` formula at the base ratio, or the encoded
    /// broadcast buffer's exact length under [`CostBasis::Encoded`] — and the
    /// uncompressed reference pays a dense download, so both sides of the
    /// straggler comparison stay bidirectional.
    fn timing_phase(
        &mut self,
        selection: &Selection,
        local: &LocalPhase,
        downlink: &DownlinkPhase,
    ) -> RoundTiming {
        let model_bytes = self.model_bytes as f64;
        let mut dense_times: Vec<f64> = selection
            .links
            .iter()
            .map(|l| self.comm.dense_uplink_time(l, model_bytes))
            .collect();
        let mut algorithm_times: Vec<f64> = match self.comm.cost_basis {
            CostBasis::Encoded => selection
                .links
                .iter()
                .zip(local.wire_bytes.iter())
                .map(|(l, &b)| self.comm.transfer_time(l, b as f64))
                .collect(),
            CostBasis::Analytic => match &local.schedule {
                Some(s) => s.scheduled_times.clone(),
                None if local.dense_uplink => dense_times.clone(),
                None => selection
                    .links
                    .iter()
                    .zip(local.ratios.iter())
                    .map(|(l, &r)| self.comm.sparse_uplink_time(l, model_bytes, r))
                    .collect(),
            },
        };
        let mut downlink_straggler_s = 0.0f64;
        if let Some(bytes) = downlink.wire_bytes {
            for ((alg, dense), link) in algorithm_times
                .iter_mut()
                .zip(dense_times.iter_mut())
                .zip(selection.links.iter())
            {
                let down = match self.comm.cost_basis {
                    CostBasis::Encoded => self.comm.transfer_time(link, bytes as f64),
                    CostBasis::Analytic => self.comm.sparse_downlink_time(
                        link,
                        model_bytes,
                        self.config.compression_ratio,
                    ),
                };
                *alg += down;
                *dense += self.comm.dense_downlink_time(link, model_bytes);
                downlink_straggler_s = downlink_straggler_s.max(down);
            }
        }
        let timing = RoundTiming::from_client_times(&algorithm_times, &dense_times);
        self.time_acc.push(timing);
        self.breakdown_total.accumulate(&RoundBreakdown {
            compress_s: local.total_compress_time + downlink.codec_time_s,
            training_s: local.max_train_time,
            uncompressed_comm_s: timing.max,
            scheduled_comm_s: timing.actual,
            downlink_comm_s: downlink_straggler_s,
        });
        timing
    }

    /// Stage 6: evaluate the new global model (every `eval_every` rounds and
    /// always on the final configured round; skipped rounds repeat the most
    /// recent evaluation, NaN before the first) and assemble the record.
    fn eval_phase(
        &mut self,
        round: usize,
        selection: Selection,
        local: LocalPhase,
        aggregate: AggregatePhase,
        downlink: DownlinkPhase,
        timing: RoundTiming,
    ) -> RoundOutput {
        let eval_every = self.config.eval_every.max(1);
        let should_eval = (round + 1).is_multiple_of(eval_every) || round + 1 == self.config.rounds;
        if should_eval {
            unflatten_params(&mut self.global_model, &self.global_params);
            self.last_eval = Some(evaluate_with_threads(
                &self.global_model,
                &self.test,
                self.config.batch_size.max(64),
                self.threads,
            ));
        }
        let eval = self.last_eval.unwrap_or(Evaluation {
            loss: f64::NAN,
            accuracy: f64::NAN,
        });

        // Per-layer byte breakdown, present when any of this round's wires
        // was a `Segmented` frame whose parts align with the model layout
        // (i.e. a genuinely mixed layer plan ran on that leg).
        let names: Vec<&str> = self.layout.names().collect();
        let aligned = |v: &Option<Vec<usize>>| -> Option<Vec<usize>> {
            v.as_ref().filter(|v| v.len() == names.len()).cloned()
        };
        let layer_bytes = match (
            aligned(&local.segment_bytes),
            aligned(&downlink.segment_bytes),
        ) {
            (None, None) => None,
            (up, down) => Some(
                names
                    .iter()
                    .enumerate()
                    .map(|(i, name)| LayerBytes {
                        layer: (*name).to_string(),
                        uplink_bytes: up.as_ref().map_or(0, |v| v[i]),
                        downlink_bytes: down.as_ref().map_or(0, |v| v[i]),
                    })
                    .collect(),
            ),
        };

        let record = RoundRecord {
            round,
            test_accuracy: eval.accuracy,
            test_loss: eval.loss,
            train_loss: local.train_loss,
            mean_compression_ratio: local.ratios.iter().sum::<f64>() / local.ratios.len() as f64,
            uplink_bytes: local.wire_bytes.iter().sum(),
            downlink_bytes: downlink.wire_bytes.unwrap_or(0),
            comm_actual_s: timing.actual,
            comm_max_s: timing.max,
            comm_min_s: timing.min,
            cumulative_actual_s: self.time_acc.total_actual(),
            cumulative_max_s: self.time_acc.total_max(),
            cumulative_min_s: self.time_acc.total_min(),
            selected_clients: selection.selected,
            overlap: aggregate.overlap.map(|c| c.stats()),
            layer_bytes,
            scenario: self.scenario.as_ref().map(|h| h.telemetry()),
            plan: self.plan_telemetry.take(),
        };
        RoundOutput {
            record,
            schedule: local.schedule,
            train_time_s: local.max_train_time,
            compress_time_s: local.total_compress_time + downlink.codec_time_s,
            uplink_wire_bytes: local.wire_bytes,
            downlink_wire_bytes: downlink.wire_bytes.unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::algorithm::Algorithm;
    use crate::config::ExperimentConfig;
    use crate::session::FederatedSession;
    use fl_netsim::CostBasis;

    #[test]
    fn record_reports_the_exact_encoded_bytes() {
        let mut config = ExperimentConfig::quick(Algorithm::TopK);
        config.rounds = 2;
        config.max_threads = 1;
        config.cost_basis = CostBasis::Encoded;
        let mut session = FederatedSession::from_config(&config);
        let out = session.run_round();
        // The record's uplink byte count is exactly the sum of the encoded
        // buffers' lengths.
        assert_eq!(
            out.record.uplink_bytes,
            out.uplink_wire_bytes.iter().sum::<usize>()
        );
        assert_eq!(
            out.uplink_wire_bytes.len(),
            out.record.selected_clients.len()
        );
        assert!(out.uplink_wire_bytes.iter().all(|&b| b > 0));
        // Under the encoded basis, every timing quantity is priced from those
        // buffers: the straggler time is the max per-client transfer time of
        // the actual wire lengths.
        let times: Vec<f64> = out
            .record
            .selected_clients
            .iter()
            .zip(out.uplink_wire_bytes.iter())
            .map(|(&cid, &bytes)| {
                session
                    .comm
                    .transfer_time(&session.links[cid], bytes as f64)
            })
            .collect();
        let expected_max = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let expected_min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        assert_eq!(out.record.comm_actual_s.to_bits(), expected_max.to_bits());
        assert_eq!(out.record.comm_min_s.to_bits(), expected_min.to_bits());
    }

    #[test]
    fn cost_basis_changes_timing_but_not_training() {
        let mut analytic = ExperimentConfig::quick(Algorithm::TopK);
        analytic.rounds = 3;
        analytic.max_threads = 1;
        let mut encoded = analytic.clone();
        encoded.cost_basis = CostBasis::Encoded;
        let a = FederatedSession::from_config(&analytic).run();
        let e = FederatedSession::from_config(&encoded).run();
        for (ra, re) in a.records.iter().zip(e.records.iter()) {
            // Same trajectory and same honest byte accounting either way…
            assert_eq!(ra.test_accuracy.to_bits(), re.test_accuracy.to_bits());
            assert_eq!(ra.selected_clients, re.selected_clients);
            assert_eq!(ra.uplink_bytes, re.uplink_bytes);
            // …but the priced time differs: the analytic 2·V·CR formula vs
            // the varint-compressed real buffers.
            assert_ne!(ra.comm_actual_s.to_bits(), re.comm_actual_s.to_bits());
        }
    }

    #[test]
    fn quantized_codec_runs_through_the_round_engine() {
        let mut config = ExperimentConfig::quick(Algorithm::TopK);
        config.rounds = 2;
        config.max_threads = 1;
        config.compressor = Some("qsgd:8".parse().unwrap());
        config.cost_basis = CostBasis::Encoded;
        let mut session = FederatedSession::from_config(&config);
        let out = session.run_round();
        // 8 bits/coordinate: the dense quantized upload is about a quarter of
        // the f32 model per client.
        let per_client = out.record.uplink_bytes / out.record.selected_clients.len();
        let dense = session.model_bytes();
        assert!(per_client < dense / 3, "{per_client} vs dense {dense}");
        assert!(per_client > dense / 8);
        // And the session keeps training (a second round works).
        let out2 = session.run_round();
        assert_eq!(out2.record.round, 1);
    }

    #[test]
    fn composed_codec_keeps_opwa_overlap_analysis() {
        // A sparsify+quantize codec still decodes to sparse updates, so the
        // OPWA overlap histogram stays available.
        let mut config = ExperimentConfig::quick(Algorithm::TopKOpwa);
        config.rounds = 1;
        config.max_threads = 1;
        config.compressor = Some("topk+qsgd:6".parse().unwrap());
        let out = FederatedSession::from_config(&config).run_round();
        assert!(out.record.overlap.is_some());

        // A dense quantized codec has no overlap degrees to analyse, so the
        // OPWA combination is rejected up front instead of silently degrading
        // to plain averaging.
        config.compressor = Some("qsgd:8".parse().unwrap());
        let err = config.validate().unwrap_err();
        assert!(err.contains("OPWA"), "{err}");
    }

    #[test]
    fn fedavg_encoded_bytes_are_dense_not_sparse() {
        // The ratio-1.0 upload ships the dense wire kind: ~4 bytes per
        // coordinate plus a fixed header, never the ~5+ bytes/coordinate of
        // the sparse index+value format — so under the encoded basis FedAvg
        // is charged honest dense bytes and stays at its own straggler bound.
        let mut config = ExperimentConfig::quick(Algorithm::FedAvg);
        config.rounds = 1;
        config.max_threads = 1;
        config.cost_basis = CostBasis::Encoded;
        let mut session = FederatedSession::from_config(&config);
        let dense = session.model_bytes();
        let out = session.run_round();
        for &bytes in &out.uplink_wire_bytes {
            assert!(bytes >= dense && bytes <= dense + 16, "{bytes} vs {dense}");
        }
        assert!(
            out.record.comm_actual_s <= out.record.comm_max_s * 1.001,
            "FedAvg must not appear slower than its own dense transmission"
        );
    }

    #[test]
    fn no_downlink_codec_records_zero_downlink_bytes() {
        let mut config = ExperimentConfig::quick(Algorithm::TopK);
        config.rounds = 1;
        config.max_threads = 1;
        let out = FederatedSession::from_config(&config).run_round();
        assert_eq!(out.record.downlink_bytes, 0);
        assert_eq!(out.downlink_wire_bytes, 0);
    }

    #[test]
    fn encoded_downlink_bytes_match_the_broadcast_buffer_and_the_clock() {
        let mut config = ExperimentConfig::quick(Algorithm::TopK);
        config.rounds = 2;
        config.max_threads = 1;
        config.downlink_compressor = Some("topk".parse().unwrap());
        config.cost_basis = CostBasis::Encoded;
        let mut session = FederatedSession::from_config(&config);
        let out = session.run_round();
        // The record's downlink byte count is exactly the encoded broadcast
        // buffer's length (one buffer — a broadcast, not a per-client sum).
        assert_eq!(out.record.downlink_bytes, out.downlink_wire_bytes);
        assert!(out.record.downlink_bytes > 0);
        // Under the encoded basis each selected client pays its upload plus
        // the download of exactly those broadcast bytes; the record's actual
        // time is the bidirectional straggler, bit for bit.
        let times: Vec<f64> = out
            .record
            .selected_clients
            .iter()
            .zip(out.uplink_wire_bytes.iter())
            .map(|(&cid, &up)| {
                let link = &session.links[cid];
                let up_s = session.comm.transfer_time(link, up as f64);
                up_s + session
                    .comm
                    .transfer_time(link, out.record.downlink_bytes as f64)
            })
            .collect();
        let expected_max = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(out.record.comm_actual_s.to_bits(), expected_max.to_bits());
        // The next round broadcasts the freshly aggregated delta: non-empty
        // again, and the session keeps training.
        let out2 = session.run_round();
        assert!(out2.record.downlink_bytes > 0);
        assert_eq!(out2.record.round, 1);
    }

    #[test]
    fn analytic_downlink_charges_the_symmetric_paper_formula() {
        let mut config = ExperimentConfig::quick(Algorithm::TopK);
        config.rounds = 1;
        config.max_threads = 1;
        config.downlink_compressor = Some("topk".parse().unwrap());
        let mut session = FederatedSession::from_config(&config);
        let model_bytes = session.model_bytes() as f64;
        let out = session.run_round();
        // downlink_bytes still reports the honest encoded buffer…
        assert!(out.record.downlink_bytes > 0);
        // …but the clock charges the paper's 2·V·CR formula on both legs.
        let times: Vec<f64> = out
            .record
            .selected_clients
            .iter()
            .map(|&cid| {
                let link = &session.links[cid];
                let up_s =
                    session
                        .comm
                        .sparse_uplink_time(link, model_bytes, config.compression_ratio);
                up_s + session.comm.sparse_downlink_time(
                    link,
                    model_bytes,
                    config.compression_ratio,
                )
            })
            .collect();
        let expected_max = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(out.record.comm_actual_s.to_bits(), expected_max.to_bits());
        // The uncompressed reference is bidirectional too, so compression
        // still shows a saving.
        assert!(out.record.comm_actual_s < out.record.comm_max_s);
    }

    #[test]
    fn downlink_leg_only_adds_time_and_bytes_under_a_lossless_broadcast() {
        // At compression_ratio 1.0 the Top-K broadcast ships the dense delta
        // exactly, so the clients' view equals the server's parameters and
        // the training trajectory matches the free-broadcast run — only the
        // byte accounting and the clock change.
        let mut free = ExperimentConfig::quick(Algorithm::FedAvg);
        free.rounds = 3;
        free.max_threads = 1;
        free.compression_ratio = 1.0;
        let mut paid = free.clone();
        paid.downlink_compressor = Some("topk".parse().unwrap());
        let a = FederatedSession::from_config(&free).run();
        let b = FederatedSession::from_config(&paid).run();
        for (ra, rb) in a.records.iter().zip(b.records.iter()) {
            assert_eq!(ra.test_accuracy.to_bits(), rb.test_accuracy.to_bits());
            assert_eq!(ra.selected_clients, rb.selected_clients);
            assert_eq!(ra.uplink_bytes, rb.uplink_bytes);
            assert_eq!(ra.downlink_bytes, 0);
            assert!(rb.downlink_bytes > 0);
            assert!(rb.comm_actual_s > ra.comm_actual_s);
        }
    }

    #[test]
    fn lossy_downlink_drifts_but_ef_downlink_still_learns() {
        let mut base = ExperimentConfig::quick(Algorithm::TopK);
        base.rounds = 6;
        base.max_threads = 1;
        let mut lossy = base.clone();
        lossy.downlink_compressor = Some("topk".parse().unwrap());
        let mut ef = base.clone();
        ef.downlink_compressor = Some("ef-topk".parse().unwrap());

        let free_run = FederatedSession::from_config(&base).run();
        let lossy_run = FederatedSession::from_config(&lossy).run();
        let mut ef_session = FederatedSession::from_config(&ef);
        while !ef_session.is_finished() {
            ef_session.run_round();
        }
        // A 10% Top-K broadcast is lossy: clients train from a drifted view,
        // so the trajectory genuinely differs from the free broadcast.
        assert_ne!(
            free_run.accuracy_series(),
            lossy_run
                .records
                .iter()
                .map(|r| r.test_accuracy)
                .collect::<Vec<_>>()
        );
        // The EF broadcast keeps its dropped coordinates server-side…
        assert!(
            ef_session.downlink_residual_norm() > 0.0,
            "EF downlink must accumulate a residual"
        );
        // …and training still works under both lossy broadcasts.
        let ef_run = ef_session.into_result();
        for run in [&lossy_run, &ef_run] {
            assert!(run.final_accuracy > 0.15, "{}", run.final_accuracy);
        }
    }

    #[test]
    fn round_output_carries_schedule_for_bcrs_only() {
        let mut config = ExperimentConfig::quick(Algorithm::Bcrs);
        config.rounds = 1;
        config.max_threads = 1;
        let out = FederatedSession::from_config(&config).run_round();
        assert!(out.schedule.is_some());
        assert!(out.train_time_s >= 0.0);
        assert!(out.compress_time_s >= 0.0);

        config.algorithm = Algorithm::TopK;
        let out = FederatedSession::from_config(&config).run_round();
        assert!(out.schedule.is_none());
    }

    #[test]
    fn uniform_layer_plan_is_bit_identical_to_the_flat_codec() {
        // `"*=topk"` collapses to the flat Top-K codec: every field of every
        // record — bytes, times, trajectory — matches the flat path exactly,
        // and no per-layer breakdown appears.
        let mut flat = ExperimentConfig::quick(Algorithm::TopK);
        flat.rounds = 3;
        flat.max_threads = 1;
        flat.compressor = Some("topk".parse().unwrap());
        let mut planned = flat.clone();
        planned.compressor = None;
        planned.layer_compressors = Some("*=topk".parse().unwrap());
        let a = FederatedSession::from_config(&flat).run();
        let b = FederatedSession::from_config(&planned).run();
        assert_eq!(a.records, b.records);
        assert!(b.records.iter().all(|r| r.layer_bytes.is_none()));
    }

    #[test]
    fn mixed_layer_plan_reports_a_per_layer_breakdown() {
        let mut config = ExperimentConfig::quick(Algorithm::TopK);
        config.rounds = 2;
        config.max_threads = 1;
        config.layer_compressors = Some("*.bias=dense;*=topk".parse().unwrap());
        config.cost_basis = CostBasis::Encoded;
        let mut session = FederatedSession::from_config(&config);
        let layout_names: Vec<String> = session.param_layout().names().map(String::from).collect();
        let out = session.run_round();
        let breakdown = out.record.layer_bytes.as_ref().expect("mixed plan");
        // One entry per layout segment, in order, with the uplink totals
        // summing to less than the honest wire total (the difference is the
        // segmented framing overhead, which stays charged on the wire).
        assert_eq!(
            breakdown
                .iter()
                .map(|l| l.layer.clone())
                .collect::<Vec<_>>(),
            layout_names
        );
        let segments_total: usize = breakdown.iter().map(|l| l.uplink_bytes).sum();
        assert!(segments_total > 0);
        assert!(segments_total < out.record.uplink_bytes);
        // No downlink codec: the downlink side of the breakdown is zero.
        assert!(breakdown.iter().all(|l| l.downlink_bytes == 0));
        // Each client's wire carries its framing: overhead grows with the
        // cohort but stays tiny (a few bytes per segment per client).
        let overhead = out.record.uplink_bytes - segments_total;
        let cohort = out.record.selected_clients.len();
        let per_client = overhead / cohort;
        assert!(
            per_client >= 6 && per_client <= 8 + 6 * layout_names.len(),
            "framing overhead {per_client} bytes/client for {} segments",
            layout_names.len()
        );
        // Bias segments ship dense: 4 bytes per coordinate plus a header.
        let layout = session.param_layout().clone();
        for (seg, l) in layout.segments().iter().zip(breakdown.iter()) {
            if l.layer.ends_with(".bias") {
                assert!(
                    l.uplink_bytes >= cohort * seg.len * 4,
                    "{}: {} bytes for {} coords × {cohort} clients",
                    l.layer,
                    l.uplink_bytes,
                    seg.len
                );
            }
        }
    }

    #[test]
    fn mixed_layer_plan_encoded_basis_charges_the_framed_bytes_exactly() {
        // Under the encoded basis every timing quantity is priced from the
        // exact segmented buffers — framing overhead included (asserted
        // against `WireUpdate::len()` via the engine's recorded wire sizes).
        let mut config = ExperimentConfig::quick(Algorithm::TopK);
        config.rounds = 1;
        config.max_threads = 1;
        config.layer_compressors = Some("*.bias=dense;*=topk".parse().unwrap());
        config.cost_basis = CostBasis::Encoded;
        let mut session = FederatedSession::from_config(&config);
        let out = session.run_round();
        assert_eq!(
            out.record.uplink_bytes,
            out.uplink_wire_bytes.iter().sum::<usize>()
        );
        let times: Vec<f64> = out
            .record
            .selected_clients
            .iter()
            .zip(out.uplink_wire_bytes.iter())
            .map(|(&cid, &bytes)| {
                session
                    .comm
                    .transfer_time(&session.links[cid], bytes as f64)
            })
            .collect();
        let expected_max = times.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert_eq!(out.record.comm_actual_s.to_bits(), expected_max.to_bits());
    }

    #[test]
    fn mixed_layer_plan_keeps_opwa_overlap_analysis() {
        // All-sparse plans (dense codec segments decode to full-density
        // *sparse* runs) keep the overlap machinery available under OPWA.
        let mut config = ExperimentConfig::quick(Algorithm::TopKOpwa);
        config.rounds = 1;
        config.max_threads = 1;
        config.layer_compressors = Some("*.bias=dense;*=topk".parse().unwrap());
        assert!(config.validate().is_ok());
        let out = FederatedSession::from_config(&config).run_round();
        assert!(out.record.overlap.is_some());
        assert!(out.record.layer_bytes.is_some());
    }

    #[test]
    fn static_adaptive_plan_matches_layer_compressors_bit_for_bit() {
        // `adaptive_plan: static:<plan>` routes every checkout through the
        // plan-override path, but with no ratio scales the codec resolution
        // is exactly the static `layer_compressors` one — every record field
        // except the new plan telemetry must match bit for bit.
        let plan = "*.bias=dense;*=ef-topk";
        let mut fixed = ExperimentConfig::quick(Algorithm::TopK);
        fixed.rounds = 3;
        fixed.max_threads = 1;
        fixed.cost_basis = CostBasis::Encoded;
        fixed.layer_compressors = Some(plan.parse().unwrap());
        let mut adaptive = fixed.clone();
        adaptive.layer_compressors = None;
        adaptive.adaptive_plan = Some(format!("static:{plan}").parse().unwrap());
        let a = FederatedSession::from_config(&fixed).run();
        let b = FederatedSession::from_config(&adaptive).run();
        assert_eq!(a.records.len(), b.records.len());
        for (ra, rb) in a.records.iter().zip(b.records.iter()) {
            assert!(ra.plan.is_none());
            let telemetry = rb.plan.as_ref().expect("adaptive runs record the plan");
            assert_eq!(telemetry.policy, "static");
            assert_eq!(telemetry.plan, plan);
            assert_eq!(telemetry.epoch, 1, "one plan for the whole run");
            assert_eq!(telemetry.assignments.len(), 6);
            let mut rb = rb.clone();
            rb.plan = None;
            assert_eq!(*ra, rb, "round {}", ra.round);
        }
    }

    #[test]
    fn layer_bcrs_plan_beats_the_uniform_plan_on_encoded_bytes() {
        // The telemetry loop pays off: under the encoded cost basis the
        // adaptive policy's mass-proportional budgets upload strictly fewer
        // bytes than the same run on the uniform EF plan, at equal rounds.
        let mut uniform = ExperimentConfig::quick(Algorithm::TopK);
        uniform.rounds = 4;
        uniform.max_threads = 1;
        uniform.cost_basis = CostBasis::Encoded;
        uniform.layer_compressors = Some("*=ef-topk".parse().unwrap());
        let mut adaptive = uniform.clone();
        adaptive.layer_compressors = None;
        adaptive.adaptive_plan = Some("layer-bcrs".parse().unwrap());
        let u = FederatedSession::from_config(&uniform).run();
        let a = FederatedSession::from_config(&adaptive).run();
        let u_bytes: usize = u.records.iter().map(|r| r.uplink_bytes).sum();
        let a_bytes: usize = a.records.iter().map(|r| r.uplink_bytes).sum();
        assert!(
            a_bytes < u_bytes,
            "adaptive {a_bytes} must beat uniform {u_bytes}"
        );
        // Decisions are visible: per-layer telemetry plus per-layer bytes in
        // every record (scaled plans always frame segments).
        for r in &a.records {
            let telemetry = r.plan.as_ref().expect("plan telemetry");
            assert_eq!(telemetry.policy, "layer-bcrs");
            assert_eq!(telemetry.assignments.len(), 6);
            assert!(telemetry.assignments.iter().all(|s| s.ratio > 0.0));
            assert!(r.layer_bytes.is_some(), "scaled plans are segment-framed");
        }
        // And the model still learns (above the 10-class chance rate after
        // only four heavily quantized rounds).
        assert!(a.final_accuracy > 0.1, "{}", a.final_accuracy);
    }

    #[test]
    fn adaptive_run_is_deterministic() {
        let mut config = ExperimentConfig::quick(Algorithm::TopK);
        config.rounds = 3;
        config.max_threads = 1;
        config.cost_basis = CostBasis::Encoded;
        config.adaptive_plan = Some("layer-bcrs:efficiency=0.8".parse().unwrap());
        let a = FederatedSession::from_config(&config).run();
        let b = FederatedSession::from_config(&config).run();
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn stepping_past_the_configured_horizon_keeps_going() {
        let mut config = ExperimentConfig::quick(Algorithm::TopK);
        config.rounds = 1;
        config.max_threads = 1;
        let mut session = FederatedSession::from_config(&config);
        let a = session.run_round();
        assert!(session.is_finished());
        let b = session.run_round(); // beyond config.rounds — allowed
        assert_eq!(a.record.round, 0);
        assert_eq!(b.record.round, 1);
        assert_eq!(session.records().len(), 2);
    }
}
