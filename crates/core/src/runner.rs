//! The experiment runner: executes one federated-learning experiment
//! (Algorithm 1 with the configured variant) and records everything the
//! paper's tables and figures need.

use crate::aggregate::{aggregate_sparse, apply_update, data_fractions};
use crate::algorithm::Algorithm;
use crate::bcrs::BcrsScheduler;
use crate::client::{build_model, ClientState};
use crate::config::ExperimentConfig;
use crate::eval::evaluate;
use crate::opwa::OpwaMask;
use crate::overlap::{OverlapCounts, OverlapStats};
use fl_compress::SparseUpdate;
use fl_data::{dirichlet_partition, Dataset, PartitionStats};
use fl_netsim::{CommModel, Link, RoundBreakdown, RoundTiming, TimeAccumulator};
use fl_nn::{flatten_params, unflatten_params, Sequential};
use fl_tensor::parallel::{default_threads, parallel_map};
use fl_tensor::rng::{Rng, Xoshiro256};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};

/// Everything recorded about one communication round.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: usize,
    /// Global-model accuracy on the held-out test set after this round.
    pub test_accuracy: f64,
    /// Global-model loss on the test set after this round.
    pub test_loss: f64,
    /// Mean local training loss over the selected clients.
    pub train_loss: f64,
    /// Mean compression ratio actually used by the cohort this round.
    pub mean_compression_ratio: f64,
    /// This round's communication time under the evaluated algorithm (straggler).
    pub comm_actual_s: f64,
    /// This round's straggler time for an uncompressed transfer.
    pub comm_max_s: f64,
    /// This round's fastest client time under the evaluated algorithm.
    pub comm_min_s: f64,
    /// Cumulative actual communication time up to and including this round.
    pub cumulative_actual_s: f64,
    /// Cumulative uncompressed straggler time.
    pub cumulative_max_s: f64,
    /// Cumulative fastest-client time.
    pub cumulative_min_s: f64,
    /// Clients selected this round.
    pub selected_clients: Vec<usize>,
    /// Degree-of-overlap distribution of this round's sparse updates (present
    /// when OPWA is active or `record_overlap` is set).
    pub overlap: Option<OverlapStats>,
}

/// The outcome of a full experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// Per-round records, one per communication round.
    pub records: Vec<RoundRecord>,
    /// Test accuracy after the final round.
    pub final_accuracy: f64,
    /// Best test accuracy observed in any round.
    pub best_accuracy: f64,
    /// Number of trainable model parameters.
    pub model_params: usize,
    /// Dense model size in bytes (`V` of the communication model).
    pub model_bytes: usize,
    /// Average per-round time breakdown (the bars of Fig. 6).
    pub breakdown: RoundBreakdown,
    /// Client × class allocation of the training data (Fig. 5).
    pub partition: PartitionStats,
    /// Total wall-clock seconds the simulation itself took.
    pub wall_time_s: f64,
}

impl ExperimentResult {
    /// Test-accuracy series over rounds.
    pub fn accuracy_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.test_accuracy).collect()
    }

    /// Cumulative actual communication-time series over rounds.
    pub fn comm_time_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.cumulative_actual_s).collect()
    }

    /// First round (and the cumulative actual / max / min communication time
    /// at that round) where test accuracy reaches `target`. `None` if never.
    /// This is the quantity reported in Table 3.
    pub fn time_to_accuracy(&self, target: f64) -> Option<(usize, f64, f64, f64)> {
        self.records
            .iter()
            .find(|r| r.test_accuracy >= target)
            .map(|r| {
                (
                    r.round,
                    r.cumulative_actual_s,
                    r.cumulative_max_s,
                    r.cumulative_min_s,
                )
            })
    }

    /// Merge the per-round overlap statistics into a single distribution.
    pub fn merged_overlap(&self) -> Option<OverlapStats> {
        let mut merged: Option<OverlapStats> = None;
        for r in &self.records {
            if let Some(o) = &r.overlap {
                match &mut merged {
                    Some(m) => m.merge(o),
                    None => merged = Some(o.clone()),
                }
            }
        }
        merged
    }

    /// CSV dump of the round records
    /// (`round,test_accuracy,train_loss,mean_cr,comm_actual,cum_actual,cum_max,cum_min`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "round,test_accuracy,test_loss,train_loss,mean_cr,comm_actual_s,cum_actual_s,cum_max_s,cum_min_s\n",
        );
        for r in &self.records {
            out.push_str(&format!(
                "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}\n",
                r.round,
                r.test_accuracy,
                r.test_loss,
                r.train_loss,
                r.mean_compression_ratio,
                r.comm_actual_s,
                r.cumulative_actual_s,
                r.cumulative_max_s,
                r.cumulative_min_s
            ));
        }
        out
    }
}

/// Run an experiment, invoking `on_round` after every communication round.
pub fn run_experiment_with<F: FnMut(&RoundRecord)>(
    config: &ExperimentConfig,
    mut on_round: F,
) -> ExperimentResult {
    config
        .validate()
        .unwrap_or_else(|e| panic!("invalid experiment config: {e}"));
    let wall_start = std::time::Instant::now();

    // --- Data -----------------------------------------------------------------
    let spec = config.dataset.spec(config.dataset_scale);
    let (train, test) = spec.generate(config.seed);
    let min_samples = (config.batch_size / 4).clamp(2, (train.len() / config.num_clients).max(1));
    let partitions = dirichlet_partition(
        &train,
        config.num_clients,
        config.beta,
        min_samples,
        config.seed ^ 0xD1A1,
    );
    let partition_stats = PartitionStats::from_partition(&partitions, &train);

    // --- Model ----------------------------------------------------------------
    let mut model_rng = Xoshiro256::new(config.seed);
    let mut global_model = build_model(
        &config.model,
        train.feature_dim(),
        train.num_classes(),
        &mut model_rng,
    );
    let mut global_params = flatten_params(&global_model);
    let model_params = global_params.len();
    let model_bytes = model_params * 4;

    // --- Clients and network ---------------------------------------------------
    let mut root_rng = Xoshiro256::new(config.seed ^ 0xC11E);
    let clients: Vec<Mutex<ClientState>> = partitions
        .iter()
        .map(|p| {
            let local = p.dataset(&train);
            let client_rng = root_rng.fork(p.client_id as u64);
            Mutex::new(ClientState::new(p.client_id, local, config, client_rng))
        })
        .collect();
    let links: Vec<Link> = config
        .links
        .generate(config.num_clients, config.seed ^ 0x11C5);
    let comm = CommModel::paper_default();
    let scheduler = BcrsScheduler::new(comm);

    let mut selection_rng = Xoshiro256::new(config.seed ^ 0x5E1E);
    let mut time_acc = TimeAccumulator::new();
    let mut breakdown_total = RoundBreakdown::default();
    let mut records = Vec::with_capacity(config.rounds);
    let threads = if config.max_threads == 0 {
        default_threads()
    } else {
        config.max_threads
    };
    let cohort = config.clients_per_round();

    // --- Rounds ------------------------------------------------------------------
    for round in 0..config.rounds {
        let selected = selection_rng.sample_without_replacement(config.num_clients, cohort);
        let selected_links: Vec<Link> = selected.iter().map(|&i| links[i]).collect();

        // Per-client compression ratios for this round.
        let (ratios, schedule) = match config.algorithm {
            Algorithm::FedAvg => (vec![1.0; cohort], None),
            Algorithm::TopK | Algorithm::EfTopK | Algorithm::RandK | Algorithm::TopKOpwa => {
                (vec![config.compression_ratio; cohort], None)
            }
            Algorithm::Bcrs | Algorithm::BcrsOpwa => {
                let s = scheduler.schedule(
                    &selected_links,
                    model_bytes as f64,
                    config.compression_ratio,
                );
                (s.ratios.clone(), Some(s))
            }
        };

        // Local training + compression, in parallel over the cohort.
        let use_randk = config.algorithm == Algorithm::RandK;
        let work: Vec<(usize, f64)> = selected
            .iter()
            .cloned()
            .zip(ratios.iter().cloned())
            .collect();
        let global_ref = &global_params;
        let clients_ref = &clients;
        let outputs = parallel_map(work, threads, move |(client_idx, ratio)| {
            let mut client = clients_ref[client_idx].lock();
            let train_out = client.local_update(global_ref);
            let c_start = std::time::Instant::now();
            let compressed = client.compress(&train_out.delta, ratio, use_randk);
            let compress_time = c_start.elapsed().as_secs_f64();
            (train_out, compressed, compress_time)
        });

        // Gather sparse updates, losses and timings.
        let sparse_updates: Vec<SparseUpdate> = outputs
            .iter()
            .map(|(_, c, _)| {
                c.as_sparse()
                    .expect("sparsifying compressors always produce sparse updates")
                    .clone()
            })
            .collect();
        let sparse_refs: Vec<&SparseUpdate> = sparse_updates.iter().collect();
        let sample_counts: Vec<usize> = outputs.iter().map(|(t, _, _)| t.num_samples).collect();
        let train_loss =
            outputs.iter().map(|(t, _, _)| t.train_loss).sum::<f64>() / outputs.len() as f64;
        let max_train_time = outputs
            .iter()
            .map(|(t, _, _)| t.train_time_s)
            .fold(0.0f64, f64::max);
        let total_compress_time: f64 = outputs.iter().map(|(_, _, c)| *c).sum();

        // Averaging coefficients.
        let fractions = data_fractions(&sample_counts);
        let coefficients: Vec<f64> = match (&schedule, config.disable_coefficient_adjustment) {
            (Some(s), false) => s.adjusted_coefficients(&fractions, config.alpha),
            (Some(_), true) => fractions.clone(),
            (None, _) => fractions.clone(),
        };

        // Overlap analysis and OPWA mask.
        let need_overlap = config.algorithm.uses_opwa() || config.record_overlap;
        let overlap_stats = if need_overlap {
            Some(OverlapCounts::from_updates(&sparse_refs))
        } else {
            None
        };
        let mask = if config.algorithm.uses_opwa() {
            overlap_stats
                .as_ref()
                .map(|c| OpwaMask::from_overlap(c, config.gamma, config.overlap_threshold))
        } else {
            None
        };

        // Aggregate and update the global model.
        let aggregated = aggregate_sparse(&sparse_refs, &coefficients, mask.as_ref());
        apply_update(&mut global_params, &aggregated, config.server_lr);

        // Communication timing.
        let dense_times: Vec<f64> = selected_links
            .iter()
            .map(|l| comm.dense_uplink_time(l, model_bytes as f64))
            .collect();
        let algorithm_times: Vec<f64> = match (&schedule, config.algorithm) {
            (Some(s), _) => s.scheduled_times.clone(),
            (None, Algorithm::FedAvg) => dense_times.clone(),
            (None, _) => selected_links
                .iter()
                .map(|l| comm.sparse_uplink_time(l, model_bytes as f64, config.compression_ratio))
                .collect(),
        };
        let timing = RoundTiming::from_client_times(&algorithm_times, &dense_times);
        time_acc.push(timing);

        breakdown_total.accumulate(&RoundBreakdown {
            compress_s: total_compress_time,
            training_s: max_train_time,
            uncompressed_comm_s: timing.max,
            scheduled_comm_s: timing.actual,
        });

        // Evaluate the new global model.
        unflatten_params(&mut global_model, &global_params);
        let eval = evaluate(&mut global_model, &test, config.batch_size.max(64));

        let record = RoundRecord {
            round,
            test_accuracy: eval.accuracy,
            test_loss: eval.loss,
            train_loss,
            mean_compression_ratio: ratios.iter().sum::<f64>() / ratios.len() as f64,
            comm_actual_s: timing.actual,
            comm_max_s: timing.max,
            comm_min_s: timing.min,
            cumulative_actual_s: time_acc.total_actual(),
            cumulative_max_s: time_acc.total_max(),
            cumulative_min_s: time_acc.total_min(),
            selected_clients: selected,
            overlap: overlap_stats.map(|c| c.stats()),
        };
        on_round(&record);
        records.push(record);
    }

    let final_accuracy = records.last().map(|r| r.test_accuracy).unwrap_or(0.0);
    let best_accuracy = records
        .iter()
        .map(|r| r.test_accuracy)
        .fold(0.0f64, f64::max);
    ExperimentResult {
        config: config.clone(),
        breakdown: breakdown_total.averaged_over(records.len()),
        final_accuracy,
        best_accuracy,
        model_params,
        model_bytes,
        partition: partition_stats,
        records,
        wall_time_s: wall_start.elapsed().as_secs_f64(),
    }
}

/// Run an experiment to completion and return its result.
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentResult {
    run_experiment_with(config, |_| {})
}

/// Run an experiment on a background thread, streaming each round's record
/// over a channel (useful for progress display in long benchmark runs).
pub fn stream_experiment(
    config: ExperimentConfig,
) -> (
    std::thread::JoinHandle<ExperimentResult>,
    crossbeam::channel::Receiver<RoundRecord>,
) {
    let (tx, rx) = crossbeam::channel::unbounded();
    let handle = std::thread::spawn(move || {
        run_experiment_with(&config, move |record| {
            // The receiver may have been dropped if the caller only wants the
            // final result; that is not an error.
            let _ = tx.send(record.clone());
        })
    });
    (handle, rx)
}

/// Evaluate an externally trained flat parameter vector on a dataset
/// (convenience for tests and examples that manipulate parameters directly).
pub fn evaluate_params(config: &ExperimentConfig, params: &[f32], dataset: &Dataset) -> f64 {
    let mut rng = Xoshiro256::new(config.seed);
    let mut model: Sequential = build_model(
        &config.model,
        dataset.feature_dim(),
        dataset.num_classes(),
        &mut rng,
    );
    unflatten_params(&mut model, params);
    evaluate(&mut model, dataset, config.batch_size.max(64)).accuracy
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(algorithm: Algorithm) -> ExperimentConfig {
        let mut c = ExperimentConfig::quick(algorithm);
        c.rounds = 6;
        c.max_threads = 1;
        c
    }

    #[test]
    fn fedavg_learns_on_quick_config() {
        let mut config = quick(Algorithm::FedAvg);
        config.rounds = 10;
        let result = run_experiment(&config);
        assert_eq!(result.records.len(), 10);
        // 10-class task: random guessing sits at ~0.1; a short FedAvg run must
        // clear it comfortably even on the reduced quick dataset.
        assert!(
            result.best_accuracy > 0.2,
            "accuracy should clear chance level, best was {}",
            result.best_accuracy
        );
        assert!(result.model_params > 0);
        assert_eq!(result.model_bytes, result.model_params * 4);
    }

    #[test]
    fn every_algorithm_runs() {
        for alg in [
            Algorithm::FedAvg,
            Algorithm::TopK,
            Algorithm::EfTopK,
            Algorithm::RandK,
            Algorithm::Bcrs,
            Algorithm::BcrsOpwa,
        ] {
            let mut c = quick(alg);
            c.rounds = 2;
            let r = run_experiment(&c);
            assert_eq!(r.records.len(), 2, "{:?}", alg);
            assert!(r.final_accuracy >= 0.0 && r.final_accuracy <= 1.0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let c = quick(Algorithm::BcrsOpwa);
        let a = run_experiment(&c);
        let b = run_experiment(&c);
        assert_eq!(a.accuracy_series(), b.accuracy_series());
        assert_eq!(
            a.records.last().unwrap().cumulative_actual_s,
            b.records.last().unwrap().cumulative_actual_s
        );
    }

    #[test]
    fn bcrs_round_time_not_worse_than_uniform_topk() {
        // The core BCRS claim: its per-round communication time never exceeds
        // the uniform-compression straggler time at the same base ratio.
        let bcrs = run_experiment(&quick(Algorithm::Bcrs));
        for r in &bcrs.records {
            assert!(
                r.comm_actual_s <= r.comm_max_s + 1e-9,
                "BCRS actual {} should not exceed uncompressed straggler {}",
                r.comm_actual_s,
                r.comm_max_s
            );
        }
        // And its mean CR is at least the base ratio (fast clients send more).
        let mean_cr = bcrs.records[0].mean_compression_ratio;
        assert!(mean_cr >= bcrs.config.compression_ratio - 1e-12);
    }

    #[test]
    fn compressed_algorithms_have_lower_comm_time_than_fedavg() {
        let fedavg = run_experiment(&quick(Algorithm::FedAvg));
        let topk = run_experiment(&quick(Algorithm::TopK));
        assert!(
            topk.records.last().unwrap().cumulative_actual_s
                < fedavg.records.last().unwrap().cumulative_actual_s
        );
    }

    #[test]
    fn opwa_records_overlap_stats() {
        let r = run_experiment(&quick(Algorithm::BcrsOpwa));
        assert!(r.records[0].overlap.is_some());
        let merged = r.merged_overlap().unwrap();
        assert!(merged.total_retained > 0);
        assert_eq!(merged.cohort_size, r.config.clients_per_round());
    }

    #[test]
    fn time_to_accuracy_reports_cumulative_time() {
        let r = run_experiment(&quick(Algorithm::FedAvg));
        // A trivially low target is reached in the first round.
        let hit = r.time_to_accuracy(0.0).unwrap();
        assert_eq!(hit.0, 0);
        assert!(hit.1 > 0.0);
        assert!(r.time_to_accuracy(2.0).is_none());
    }

    #[test]
    fn csv_has_one_row_per_round_plus_header() {
        let r = run_experiment(&quick(Algorithm::TopK));
        assert_eq!(r.to_csv().lines().count(), r.records.len() + 1);
    }

    #[test]
    fn streaming_matches_blocking() {
        let c = quick(Algorithm::TopK);
        let (handle, rx) = stream_experiment(c.clone());
        let streamed: Vec<RoundRecord> = rx.iter().collect();
        let result = handle.join().unwrap();
        assert_eq!(streamed.len(), result.records.len());
        assert_eq!(
            streamed.last().unwrap().test_accuracy,
            result.final_accuracy
        );
    }

    #[test]
    fn parallel_and_sequential_training_agree() {
        let mut c = quick(Algorithm::TopK);
        c.rounds = 3;
        c.max_threads = 1;
        let seq = run_experiment(&c);
        c.max_threads = 4;
        let par = run_experiment(&c);
        assert_eq!(seq.accuracy_series(), par.accuracy_series());
    }
}
