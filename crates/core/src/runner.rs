//! Experiment entry points and result types.
//!
//! The round-by-round mechanics live in the [`crate::session`] /
//! [`crate::round`] engine; this module keeps the stable public surface —
//! [`run_experiment`], the per-round [`RoundRecord`] and the aggregate
//! [`ExperimentResult`] — as thin wrappers over a [`crate::session::FederatedSession`] built
//! with the configuration's default policies.

use crate::client::build_model;
use crate::config::ExperimentConfig;
use crate::eval::evaluate;
use crate::overlap::OverlapStats;
use crate::session::SessionBuilder;
use fl_data::{Dataset, PartitionStats};
use fl_netsim::{RoundBreakdown, ScenarioTelemetry};
use fl_nn::{try_unflatten_params, LayoutError, Sequential};
use fl_tensor::rng::Xoshiro256;
use serde::{Deserialize, Serialize};

/// One layer's share of a round's encoded traffic, reported when the uplink
/// (or downlink) codec framed its payload per segment — i.e. when a genuinely
/// mixed [`fl_compress::LayerPlan`] is active. Byte counts are the nested
/// per-segment wire payloads; the `Segmented` framing overhead is the
/// difference to the record's total and stays charged on the wire.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerBytes {
    /// Segment name from the model's [`fl_nn::ParamLayout`]
    /// (`linear0.weight`, …).
    pub layer: String,
    /// Total encoded uplink bytes this round's cohort spent on the segment.
    pub uplink_bytes: usize,
    /// Encoded bytes of the segment in this round's broadcast buffer (0
    /// unless the downlink codec also framed per segment).
    pub downlink_bytes: usize,
}

/// The plan decision an adaptive plan policy made for one round, recorded
/// into [`RoundRecord::plan`] so per-layer decisions are inspectable
/// (`None` whenever `config.adaptive_plan` is `None` — the static,
/// fingerprint-pinned path records exactly what it always has).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PlanTelemetry {
    /// The deciding policy's name (`"static"` / `"layer-bcrs"`).
    pub policy: String,
    /// The resolved plan string (`"linear0.weight=ef-topk+qsgd:8;…"`).
    pub plan: String,
    /// The plan epoch the cohort encoded under. Bumped whenever the decision
    /// changes the codec layout, driving lazy error-feedback residual
    /// migration; a static policy stays at epoch 0 forever.
    pub epoch: u64,
    /// Per-segment assignments (spec + effective ratio), in layout order.
    pub assignments: Vec<crate::policy::PlanAssignment>,
}

/// Everything recorded about one communication round.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index (0-based).
    pub round: usize,
    /// Global-model accuracy on the held-out test set after this round
    /// (the most recent evaluation when `eval_every > 1`; NaN before the
    /// first evaluation point).
    pub test_accuracy: f64,
    /// Global-model loss on the test set after this round.
    pub test_loss: f64,
    /// Mean local training loss over the selected clients.
    pub train_loss: f64,
    /// Mean compression ratio actually used by the cohort this round.
    pub mean_compression_ratio: f64,
    /// Total bytes the cohort's encoded (wire-format) uploads occupied this
    /// round — the honest byte count the codec pipeline produced, recorded
    /// under both cost bases. Under `CostBasis::Encoded` the communication
    /// times are priced from exactly these buffers.
    pub uplink_bytes: usize,
    /// Bytes of this round's encoded server→client broadcast buffer (the
    /// downlink leg; every recipient receives the same buffer, so this is the
    /// buffer length, not a per-client sum). 0 when no
    /// `downlink_compressor` is configured — the broadcast is then teleported
    /// for free, exactly as the paper's analytic model assumes. Under
    /// `CostBasis::Encoded` each selected client's download of exactly these
    /// bytes joins the round's straggler bound.
    pub downlink_bytes: usize,
    /// This round's communication time under the evaluated algorithm (straggler).
    pub comm_actual_s: f64,
    /// This round's straggler time for an uncompressed transfer.
    pub comm_max_s: f64,
    /// This round's fastest client time under the evaluated algorithm.
    pub comm_min_s: f64,
    /// Cumulative actual communication time up to and including this round.
    pub cumulative_actual_s: f64,
    /// Cumulative uncompressed straggler time.
    pub cumulative_max_s: f64,
    /// Cumulative fastest-client time.
    pub cumulative_min_s: f64,
    /// Clients selected this round.
    pub selected_clients: Vec<usize>,
    /// Degree-of-overlap distribution of this round's sparse updates (present
    /// when OPWA is active or `record_overlap` is set).
    pub overlap: Option<OverlapStats>,
    /// Per-layer breakdown of this round's encoded bytes, present when a
    /// mixed layer plan framed the uploads per segment (`None` on the flat
    /// codec path — including uniform plans, which collapse to it).
    pub layer_bytes: Option<Vec<LayerBytes>>,
    /// Participation/churn telemetry of the fleet scenario, present when the
    /// configuration runs one (`config.scenario`); `None` under the paper's
    /// static fleet.
    pub scenario: Option<ScenarioTelemetry>,
    /// The adaptive plan policy's decision for this round, present when
    /// `config.adaptive_plan` is set; `None` on every static path.
    pub plan: Option<PlanTelemetry>,
}

impl PartialEq for RoundRecord {
    /// Bitwise equality: floating-point fields compare by their bit pattern,
    /// so NaN placeholders from `eval_every`-skipped rounds compare equal
    /// between two identical runs (the determinism regression tests rely on
    /// `records == records` meaning "bit-identical trajectories"). Both sides
    /// are destructured without a rest pattern so adding a field to
    /// `RoundRecord` is a compile error here instead of a silently untested
    /// field.
    fn eq(&self, other: &Self) -> bool {
        fn bits(x: f64) -> u64 {
            x.to_bits()
        }
        let RoundRecord {
            round,
            test_accuracy,
            test_loss,
            train_loss,
            mean_compression_ratio,
            uplink_bytes,
            downlink_bytes,
            comm_actual_s,
            comm_max_s,
            comm_min_s,
            cumulative_actual_s,
            cumulative_max_s,
            cumulative_min_s,
            selected_clients,
            overlap,
            layer_bytes,
            scenario,
            plan,
        } = other;
        self.round == *round
            && bits(self.test_accuracy) == bits(*test_accuracy)
            && bits(self.test_loss) == bits(*test_loss)
            && bits(self.train_loss) == bits(*train_loss)
            && bits(self.mean_compression_ratio) == bits(*mean_compression_ratio)
            && self.uplink_bytes == *uplink_bytes
            && self.downlink_bytes == *downlink_bytes
            && bits(self.comm_actual_s) == bits(*comm_actual_s)
            && bits(self.comm_max_s) == bits(*comm_max_s)
            && bits(self.comm_min_s) == bits(*comm_min_s)
            && bits(self.cumulative_actual_s) == bits(*cumulative_actual_s)
            && bits(self.cumulative_max_s) == bits(*cumulative_max_s)
            && bits(self.cumulative_min_s) == bits(*cumulative_min_s)
            && self.selected_clients == *selected_clients
            && self.overlap == *overlap
            && self.layer_bytes == *layer_bytes
            && self.scenario == *scenario
            && self.plan == *plan
    }
}

/// The outcome of a full experiment.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// The configuration that produced this result.
    pub config: ExperimentConfig,
    /// Per-round records, one per communication round.
    pub records: Vec<RoundRecord>,
    /// Test accuracy after the final round.
    pub final_accuracy: f64,
    /// Best test accuracy observed in any round.
    pub best_accuracy: f64,
    /// Number of trainable model parameters.
    pub model_params: usize,
    /// Dense model size in bytes (`V` of the communication model).
    pub model_bytes: usize,
    /// Average per-round time breakdown (the bars of Fig. 6).
    pub breakdown: RoundBreakdown,
    /// Client × class allocation of the training data (Fig. 5).
    pub partition: PartitionStats,
    /// Total wall-clock seconds the simulation itself took.
    pub wall_time_s: f64,
}

impl ExperimentResult {
    /// Test-accuracy series over rounds.
    pub fn accuracy_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.test_accuracy).collect()
    }

    /// Cumulative actual communication-time series over rounds.
    pub fn comm_time_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.cumulative_actual_s).collect()
    }

    /// First round (and the cumulative actual / max / min communication time
    /// at that round) where test accuracy reaches `target`. `None` if never.
    /// This is the quantity reported in Table 3.
    pub fn time_to_accuracy(&self, target: f64) -> Option<(usize, f64, f64, f64)> {
        self.records
            .iter()
            .find(|r| r.test_accuracy >= target)
            .map(|r| {
                (
                    r.round,
                    r.cumulative_actual_s,
                    r.cumulative_max_s,
                    r.cumulative_min_s,
                )
            })
    }

    /// Merge the per-round overlap statistics into a single distribution.
    pub fn merged_overlap(&self) -> Option<OverlapStats> {
        let mut merged: Option<OverlapStats> = None;
        for r in &self.records {
            if let Some(o) = &r.overlap {
                match &mut merged {
                    Some(m) => m.merge(o),
                    None => merged = Some(o.clone()),
                }
            }
        }
        merged
    }

    /// CSV dump of the round records
    /// (`round,test_accuracy,test_loss,train_loss,mean_cr,uplink_bytes,downlink_bytes,comm_actual_s,cum_actual_s,cum_max_s,cum_min_s,available_clients,joined,departed,link_changes,plan_policy,plan`).
    /// The `available_clients..link_changes` columns carry the fleet
    /// scenario's telemetry; under the paper's static fleet
    /// (`scenario: None`) they report the full population as available with
    /// zero churn. The trailing two columns carry the adaptive plan policy's
    /// decision (empty whenever `adaptive_plan: None`); plan strings use
    /// `;`/`=` separators only, so rows stay comma-splittable.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "round,test_accuracy,test_loss,train_loss,mean_cr,uplink_bytes,downlink_bytes,comm_actual_s,cum_actual_s,cum_max_s,cum_min_s,available_clients,joined,departed,link_changes,plan_policy,plan\n",
        );
        for r in &self.records {
            let fleet = r.scenario.unwrap_or(ScenarioTelemetry {
                available: self.config.num_clients,
                joined: 0,
                departed: 0,
                link_changes: 0,
            });
            let (plan_policy, plan) = match &r.plan {
                Some(p) => (p.policy.as_str(), p.plan.as_str()),
                None => ("", ""),
            };
            out.push_str(&format!(
                "{},{:.4},{:.4},{:.4},{:.4},{},{},{:.4},{:.4},{:.4},{:.4},{},{},{},{},{},{}\n",
                r.round,
                r.test_accuracy,
                r.test_loss,
                r.train_loss,
                r.mean_compression_ratio,
                r.uplink_bytes,
                r.downlink_bytes,
                r.comm_actual_s,
                r.cumulative_actual_s,
                r.cumulative_max_s,
                r.cumulative_min_s,
                fleet.available,
                fleet.joined,
                fleet.departed,
                fleet.link_changes,
                plan_policy,
                plan
            ));
        }
        out
    }

    /// Per-layer CSV dump
    /// (`round,layer,uplink_bytes,downlink_bytes,spec,ratio`): one row per
    /// segment per round that recorded a [`RoundRecord::layer_bytes`]
    /// breakdown (rounds on the flat codec path emit nothing). The `spec` and
    /// `ratio` columns carry the adaptive plan policy's per-segment
    /// assignment when one was recorded, and are empty under a static mixed
    /// plan. This is the `--layer-csv` bench output — per-layer decisions
    /// become inspectable without custom parsing.
    pub fn to_layer_csv(&self) -> String {
        let mut out = String::from("round,layer,uplink_bytes,downlink_bytes,spec,ratio\n");
        for r in &self.records {
            let Some(layers) = &r.layer_bytes else {
                continue;
            };
            for lb in layers {
                let assignment = r
                    .plan
                    .as_ref()
                    .and_then(|p| p.assignments.iter().find(|a| a.segment == lb.layer));
                let (spec, ratio) = match assignment {
                    Some(a) => (a.spec.clone(), format!("{:.6}", a.ratio)),
                    None => (String::new(), String::new()),
                };
                out.push_str(&format!(
                    "{},{},{},{},{},{}\n",
                    r.round, lb.layer, lb.uplink_bytes, lb.downlink_bytes, spec, ratio
                ));
            }
        }
        out
    }
}

/// Run an experiment, invoking `on_round` after every communication round.
///
/// This is a thin loop over a [`crate::session::FederatedSession`] built with
/// the configuration's default policies; use [`SessionBuilder`] directly to
/// plug in custom selection, ratio or server-optimizer policies.
pub fn run_experiment_with<F: FnMut(&RoundRecord)>(
    config: &ExperimentConfig,
    on_round: F,
) -> ExperimentResult {
    SessionBuilder::from_config(config)
        .build()
        .run_with(on_round)
}

/// Run an experiment to completion and return its result.
pub fn run_experiment(config: &ExperimentConfig) -> ExperimentResult {
    run_experiment_with(config, |_| {})
}

/// Run an experiment on a background thread, streaming each round's record
/// over a channel (useful for progress display in long benchmark runs).
pub fn stream_experiment(
    config: ExperimentConfig,
) -> (
    std::thread::JoinHandle<ExperimentResult>,
    crossbeam::channel::Receiver<RoundRecord>,
) {
    let (tx, rx) = crossbeam::channel::unbounded();
    let handle = std::thread::spawn(move || {
        run_experiment_with(&config, move |record| {
            // The receiver may have been dropped if the caller only wants the
            // final result; that is not an error.
            let _ = tx.send(record.clone());
        })
    });
    (handle, rx)
}

/// Evaluate an externally trained flat parameter vector on a dataset
/// (convenience for tests and examples that manipulate parameters directly).
/// A vector that does not match the configuration's model layout is rejected
/// with a typed [`LayoutError`] instead of a panic.
pub fn evaluate_params(
    config: &ExperimentConfig,
    params: &[f32],
    dataset: &Dataset,
) -> Result<f64, LayoutError> {
    let mut rng = Xoshiro256::new(config.seed);
    let mut model: Sequential = build_model(
        &config.model,
        dataset.feature_dim(),
        dataset.num_classes(),
        &mut rng,
    );
    try_unflatten_params(&mut model, params)?;
    Ok(evaluate(&model, dataset, config.batch_size.max(64)).accuracy)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;

    fn quick(algorithm: Algorithm) -> ExperimentConfig {
        let mut c = ExperimentConfig::quick(algorithm);
        c.rounds = 6;
        c.max_threads = 1;
        c
    }

    #[test]
    fn fedavg_learns_on_quick_config() {
        let mut config = quick(Algorithm::FedAvg);
        config.rounds = 10;
        let result = run_experiment(&config);
        assert_eq!(result.records.len(), 10);
        // 10-class task: random guessing sits at ~0.1; a short FedAvg run must
        // clear it comfortably even on the reduced quick dataset.
        assert!(
            result.best_accuracy > 0.2,
            "accuracy should clear chance level, best was {}",
            result.best_accuracy
        );
        assert!(result.model_params > 0);
        assert_eq!(result.model_bytes, result.model_params * 4);
    }

    #[test]
    fn every_algorithm_runs() {
        for alg in [
            Algorithm::FedAvg,
            Algorithm::TopK,
            Algorithm::EfTopK,
            Algorithm::RandK,
            Algorithm::Bcrs,
            Algorithm::BcrsOpwa,
        ] {
            let mut c = quick(alg);
            c.rounds = 2;
            let r = run_experiment(&c);
            assert_eq!(r.records.len(), 2, "{:?}", alg);
            assert!(r.final_accuracy >= 0.0 && r.final_accuracy <= 1.0);
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let c = quick(Algorithm::BcrsOpwa);
        let a = run_experiment(&c);
        let b = run_experiment(&c);
        assert_eq!(a.accuracy_series(), b.accuracy_series());
        assert_eq!(
            a.records.last().unwrap().cumulative_actual_s,
            b.records.last().unwrap().cumulative_actual_s
        );
    }

    #[test]
    fn thread_count_does_not_change_round_records() {
        // Determinism regression gate: every field of every record must be
        // identical between a sequential and a parallel run of the same seed,
        // for every paper algorithm — including Rand-K, whose per-round
        // coordinate draws now flow through the codec pipeline.
        for alg in [
            Algorithm::FedAvg,
            Algorithm::TopK,
            Algorithm::EfTopK,
            Algorithm::RandK,
            Algorithm::Bcrs,
            Algorithm::BcrsOpwa,
            Algorithm::TopKOpwa,
        ] {
            let mut c = quick(alg);
            c.rounds = 3;
            c.max_threads = 1;
            let sequential = run_experiment(&c);
            c.max_threads = 4;
            let parallel = run_experiment(&c);
            assert_eq!(sequential.records, parallel.records, "{alg:?}");
        }
    }

    #[test]
    fn records_with_nan_placeholders_still_compare_equal() {
        // eval_every = 2 leaves round 0 unevaluated (NaN); bitwise record
        // equality must still hold between two identical runs.
        let mut c = quick(Algorithm::TopK);
        c.rounds = 4;
        c.eval_every = 2;
        let a = run_experiment(&c);
        let b = run_experiment(&c);
        assert!(a.records[0].test_accuracy.is_nan());
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn bcrs_round_time_not_worse_than_uniform_topk() {
        // The core BCRS claim: its per-round communication time never exceeds
        // the uniform-compression straggler time at the same base ratio.
        let bcrs = run_experiment(&quick(Algorithm::Bcrs));
        for r in &bcrs.records {
            assert!(
                r.comm_actual_s <= r.comm_max_s + 1e-9,
                "BCRS actual {} should not exceed uncompressed straggler {}",
                r.comm_actual_s,
                r.comm_max_s
            );
        }
        // And its mean CR is at least the base ratio (fast clients send more).
        let mean_cr = bcrs.records[0].mean_compression_ratio;
        assert!(mean_cr >= bcrs.config.compression_ratio - 1e-12);
    }

    #[test]
    fn compressed_algorithms_have_lower_comm_time_than_fedavg() {
        let fedavg = run_experiment(&quick(Algorithm::FedAvg));
        let topk = run_experiment(&quick(Algorithm::TopK));
        assert!(
            topk.records.last().unwrap().cumulative_actual_s
                < fedavg.records.last().unwrap().cumulative_actual_s
        );
    }

    #[test]
    fn opwa_records_overlap_stats() {
        let r = run_experiment(&quick(Algorithm::BcrsOpwa));
        assert!(r.records[0].overlap.is_some());
        let merged = r.merged_overlap().unwrap();
        assert!(merged.total_retained > 0);
        assert_eq!(merged.cohort_size, r.config.clients_per_round());
    }

    #[test]
    fn time_to_accuracy_reports_cumulative_time() {
        let r = run_experiment(&quick(Algorithm::FedAvg));
        // A trivially low target is reached in the first round.
        let hit = r.time_to_accuracy(0.0).unwrap();
        assert_eq!(hit.0, 0);
        assert!(hit.1 > 0.0);
        assert!(r.time_to_accuracy(2.0).is_none());
    }

    #[test]
    fn csv_has_one_row_per_round_plus_header() {
        let r = run_experiment(&quick(Algorithm::TopK));
        assert_eq!(r.to_csv().lines().count(), r.records.len() + 1);
    }

    #[test]
    fn csv_header_names_every_column() {
        let r = run_experiment(&quick(Algorithm::TopK));
        let csv = r.to_csv();
        let header = csv.lines().next().unwrap();
        assert_eq!(
            header,
            "round,test_accuracy,test_loss,train_loss,mean_cr,uplink_bytes,downlink_bytes,comm_actual_s,cum_actual_s,cum_max_s,cum_min_s,available_clients,joined,departed,link_changes,plan_policy,plan"
        );
        // Every row has exactly as many cells as the header.
        let columns = header.split(',').count();
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), columns, "malformed row: {line}");
        }
    }

    #[test]
    fn static_fleet_csv_reports_full_population_and_no_churn() {
        let r = run_experiment(&quick(Algorithm::TopK));
        assert!(r.records.iter().all(|rec| rec.scenario.is_none()));
        let csv = r.to_csv();
        let n = r.config.num_clients;
        for line in csv.lines().skip(1) {
            // Scenario columns report the static fleet; the trailing plan
            // columns are empty without an adaptive plan.
            assert!(line.ends_with(&format!(",{n},0,0,0,,")), "{line}");
        }
    }

    #[test]
    fn layer_csv_is_empty_on_the_flat_codec_path() {
        let r = run_experiment(&quick(Algorithm::TopK));
        assert!(r.records.iter().all(|rec| rec.layer_bytes.is_none()));
        let csv = r.to_layer_csv();
        assert_eq!(csv.lines().count(), 1, "header only: {csv}");
        assert_eq!(
            csv.lines().next().unwrap(),
            "round,layer,uplink_bytes,downlink_bytes,spec,ratio"
        );
    }

    #[test]
    fn layer_csv_rows_match_the_header_column_count() {
        let mut c = quick(Algorithm::TopK);
        c.rounds = 2;
        c.layer_compressors = Some("*.bias=randk;*=topk".parse().unwrap());
        let r = run_experiment(&c);
        assert!(r.records.iter().all(|rec| rec.layer_bytes.is_some()));
        let csv = r.to_layer_csv();
        let header = csv.lines().next().unwrap();
        let columns = header.split(',').count();
        let rows: Vec<&str> = csv.lines().skip(1).collect();
        // One row per segment per round.
        let segments = r.records[0].layer_bytes.as_ref().unwrap().len();
        assert_eq!(rows.len(), segments * r.records.len());
        for line in &rows {
            assert_eq!(line.split(',').count(), columns, "malformed row: {line}");
        }
    }

    #[test]
    fn streaming_matches_blocking() {
        let c = quick(Algorithm::TopK);
        let (handle, rx) = stream_experiment(c.clone());
        let streamed: Vec<RoundRecord> = rx.iter().collect();
        let result = handle.join().unwrap();
        assert_eq!(streamed.len(), result.records.len());
        assert_eq!(
            streamed.last().unwrap().test_accuracy,
            result.final_accuracy
        );
    }

    #[test]
    fn parallel_and_sequential_training_agree() {
        let mut c = quick(Algorithm::TopK);
        c.rounds = 3;
        c.max_threads = 1;
        let seq = run_experiment(&c);
        c.max_threads = 4;
        let par = run_experiment(&c);
        assert_eq!(seq.accuracy_series(), par.accuracy_series());
    }
}
