//! Virtualized client population: lazy [`ClientState`] construction keyed by
//! client id, so a session over 10^5–10^6 clients instantiates only the
//! selected cohort each round.
//!
//! The legacy engine materialized every client's [`ClientState`] — model
//! replica, data shard, codec instance — up front, making session memory
//! O(population). But almost none of that state actually persists across
//! rounds: a client entering a round overwrites its model replica from the
//! broadcast parameters, rebuilds its optimizer, and re-reads its immutable
//! data shard. Only two things carry over:
//!
//! 1. **the client's RNG stream** (batch shuffling, Rand-K draws, QSGD
//!    rounding) — tiny: four `u64`s per client;
//! 2. **error-feedback residuals** — stored in a sharded
//!    [`fl_compress::ResidualStore`] keyed by client id, populated only for
//!    clients that have been selected under an EF codec and carried mass.
//!
//! [`ClientRoster`] keeps exactly those two, plus the shared immutable
//! inputs (training data, partitions, config, codec registry), and
//! materializes a full [`ClientState`] on demand:
//!
//! * [`checkout`](ClientRoster::checkout) builds the client — dataset shard
//!   from its partition, model from the experiment seed, codec from the
//!   registry — hands it its persistent RNG stream and restores any stored
//!   residual;
//! * [`checkin`](ClientRoster::checkin) takes the (advanced) stream and the
//!   codec's residual snapshot back and drops everything else.
//!
//! Because [`ClientState`] construction draws nothing from the client's own
//! stream, a checkout/train/checkin cycle replays the exact draw sequence of
//! a permanently resident client: the virtualized engine's records are
//! bit-identical to the eager engine's.
//!
//! The roster also counts instantiations (see
//! [`round_instantiated`](ClientRoster::round_instantiated) and
//! [`peak_resident`](ClientRoster::peak_resident)) so tests and the scaling
//! harness can assert the O(cohort) property instead of trusting it.

use crate::client::ClientState;
use crate::config::ExperimentConfig;
use fl_compress::{
    migrate_planned_residual, CodecRegistry, LayerPlan, ResidualState, ResidualStore, SegmentDef,
};
use fl_data::{ClientPartition, Dataset};
use fl_tensor::rng::Xoshiro256;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The roster's current round-scoped codec plan, installed by the round
/// engine when an adaptive [`crate::policy::PlanPolicy`] is active. While an
/// override is set, [`ClientRoster::checkout`] builds clients through
/// [`ClientState::with_plan_override`] instead of the configuration's static
/// codec path.
#[derive(Clone)]
struct PlanOverride {
    plan: LayerPlan,
    scales: Option<Vec<f64>>,
    /// Bumped every time the *plan* (and therefore the residual part
    /// structure a codec snapshot carries) changes; scale-only updates keep
    /// the epoch, because segment-aligned residual parts survive a ratio
    /// change untouched.
    epoch: u64,
    part_counts: Vec<usize>,
    segment_lens: Vec<usize>,
}

/// The persistent, population-wide client substrate of a
/// [`crate::session::FederatedSession`]: per-client RNG streams, the
/// error-feedback [`ResidualStore`], and everything needed to rebuild a
/// [`ClientState`] deterministically when its id is selected.
pub struct ClientRoster {
    train: Arc<Dataset>,
    partitions: Arc<Vec<ClientPartition>>,
    config: ExperimentConfig,
    registry: CodecRegistry,
    /// One persistent RNG stream per client, forked from the session's client
    /// root in id order at build time (the same fork loop — and therefore the
    /// same streams — as the legacy eager construction).
    streams: Vec<Mutex<Xoshiro256>>,
    residuals: ResidualStore,
    /// The adaptive plan currently in force (`None` on the static path —
    /// checkout then resolves codecs from the configuration, bit-identically
    /// to pre-adaptive builds). Written only between rounds by the engine's
    /// single-threaded select stage; checkout clones it before building.
    plan_override: Mutex<Option<PlanOverride>>,
    /// Residual part counts of every plan epoch ever installed, for lazy
    /// migration: a parked snapshot from epoch `e` is re-shaped against the
    /// current epoch's counts the next time its client is checked out.
    epoch_counts: Mutex<HashMap<u64, Vec<usize>>>,
    resident: AtomicUsize,
    peak_resident: AtomicUsize,
    round_instantiated: AtomicUsize,
    total_instantiated: AtomicUsize,
}

impl ClientRoster {
    /// Build the roster for a population. `root_rng` is the session's client
    /// root stream (`seed ^ 0xC11E`); each client's persistent stream is
    /// forked from it in partition order, exactly as the eager engine did.
    pub fn new(
        train: Arc<Dataset>,
        partitions: Arc<Vec<ClientPartition>>,
        config: ExperimentConfig,
        registry: CodecRegistry,
        root_rng: &mut Xoshiro256,
    ) -> Self {
        let streams = partitions
            .iter()
            .map(|p| Mutex::new(root_rng.fork(p.client_id as u64)))
            .collect();
        Self {
            train,
            partitions,
            config,
            registry,
            streams,
            residuals: ResidualStore::new(),
            plan_override: Mutex::new(None),
            epoch_counts: Mutex::new(HashMap::new()),
            resident: AtomicUsize::new(0),
            peak_resident: AtomicUsize::new(0),
            round_instantiated: AtomicUsize::new(0),
            total_instantiated: AtomicUsize::new(0),
        }
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True for an empty population (never the case in a valid session).
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Materialise client `id` for one round of work: build its
    /// [`ClientState`] from the shared inputs, hand it its persistent RNG
    /// stream and restore its stored error-feedback residual (if any).
    ///
    /// Every checkout must be paired with a [`checkin`](Self::checkin);
    /// checking the same id out twice concurrently would fork its stream and
    /// is a caller bug (cohorts are selected without replacement).
    pub fn checkout(&self, id: usize) -> ClientState {
        let stream = self.streams[id].lock().clone();
        let local = self.partitions[id].dataset(&self.train);
        let over = self.plan_override.lock().clone();
        let mut client = match &over {
            Some(o) => ClientState::with_plan_override(
                id,
                local,
                &self.config,
                stream,
                &self.registry,
                &o.plan,
                o.scales.as_deref(),
            ),
            None => ClientState::with_registry(id, local, &self.config, stream, &self.registry),
        };
        if let Some((state, epoch)) = self.residuals.take_epoch(id as u64) {
            let state = match &over {
                Some(o) if epoch != o.epoch => {
                    match self.epoch_counts.lock().get(&epoch) {
                        Some(old_counts) => migrate_planned_residual(
                            state,
                            old_counts,
                            &o.part_counts,
                            &o.segment_lens,
                        ),
                        // A snapshot from before the first plan decision has
                        // no per-segment part structure to migrate (it came
                        // from a flat codec); the adaptive codec starts from
                        // zero accumulated error instead.
                        None => ResidualState::empty(),
                    }
                }
                _ => state,
            };
            client.restore_residual(state);
        }
        let resident = self.resident.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak_resident.fetch_max(resident, Ordering::SeqCst);
        self.round_instantiated.fetch_add(1, Ordering::SeqCst);
        self.total_instantiated.fetch_add(1, Ordering::SeqCst);
        client
    }

    /// Return a client after its round of work: persist the codec's residual
    /// snapshot into the store (all-zero snapshots are dropped, and the
    /// snapshot is tagged with the plan epoch it was taken under), write the
    /// advanced RNG stream back, and drop the rest of the state.
    pub fn checkin(&self, mut client: ClientState) {
        let id = client.id;
        let epoch = self.plan_epoch();
        self.residuals
            .put_epoch(id as u64, client.take_residual(), epoch);
        *self.streams[id].lock() = client.into_rng();
        self.resident.fetch_sub(1, Ordering::SeqCst);
    }

    /// Install (or refresh) the adaptive codec plan every subsequent
    /// [`checkout`](Self::checkout) resolves against, returning the plan
    /// epoch now in force. Same plan → same epoch (scale-only updates are
    /// applied in place); a changed plan bumps the epoch, which drives the
    /// lazy migration of parked error-feedback residuals on their owners'
    /// next checkout. Called by the round engine's select stage, between
    /// rounds — never concurrently with checkouts.
    pub fn set_plan_override(
        &self,
        plan: LayerPlan,
        scales: Option<Vec<f64>>,
        segments: &[SegmentDef],
    ) -> u64 {
        let mut over = self.plan_override.lock();
        match over.as_mut() {
            Some(o) if o.plan == plan => {
                o.scales = scales;
                o.epoch
            }
            _ => {
                let part_counts = plan.part_counts(segments).unwrap_or_else(|e| {
                    panic!("adaptive plan {plan} does not cover the layout: {e}")
                });
                let epoch = over.as_ref().map(|o| o.epoch).unwrap_or(0) + 1;
                self.epoch_counts.lock().insert(epoch, part_counts.clone());
                *over = Some(PlanOverride {
                    plan,
                    scales,
                    epoch,
                    part_counts,
                    segment_lens: segments.iter().map(|s| s.len).collect(),
                });
                epoch
            }
        }
    }

    /// The plan epoch currently in force (0 when no adaptive override is
    /// installed — the static path tags residuals with epoch 0 forever).
    pub fn plan_epoch(&self) -> u64 {
        self.plan_override
            .lock()
            .as_ref()
            .map(|o| o.epoch)
            .unwrap_or(0)
    }

    /// Number of `ClientState`s currently checked out (resident in memory).
    pub fn resident(&self) -> usize {
        self.resident.load(Ordering::SeqCst)
    }

    /// High-water mark of concurrently resident `ClientState`s over the
    /// session's lifetime — bounded by the worker-thread count, never the
    /// population.
    pub fn peak_resident(&self) -> usize {
        self.peak_resident.load(Ordering::SeqCst)
    }

    /// Number of checkouts since the last
    /// [`begin_round`](Self::begin_round) — equal to the cohort size after a
    /// round completes (each selected client is instantiated exactly once).
    pub fn round_instantiated(&self) -> usize {
        self.round_instantiated.load(Ordering::SeqCst)
    }

    /// Total checkouts over the session's lifetime.
    pub fn total_instantiated(&self) -> usize {
        self.total_instantiated.load(Ordering::SeqCst)
    }

    /// Reset the per-round instantiation counter (called by the round engine
    /// at the start of each local phase).
    pub fn begin_round(&self) {
        self.round_instantiated.store(0, Ordering::SeqCst);
    }

    /// Number of clients with a stored error-feedback residual.
    pub fn residual_clients(&self) -> usize {
        self.residuals.len()
    }

    /// L2 norm over every stored residual scalar (the population's total
    /// carried-over compression error).
    pub fn residual_total_norm(&self) -> f64 {
        self.residuals.total_norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use fl_data::dirichlet_partition;
    use fl_nn::flatten_params;

    fn build_roster(algorithm: Algorithm, num_clients: usize) -> (ClientRoster, Vec<f32>) {
        let mut config = ExperimentConfig::quick(algorithm);
        config.num_clients = num_clients;
        let (train, _) = config
            .dataset
            .spec(config.dataset_scale)
            .generate(config.seed);
        let train = Arc::new(train);
        let partitions = Arc::new(dirichlet_partition(
            &train,
            config.num_clients,
            config.beta,
            2,
            config.seed ^ 0xD1A1,
        ));
        let mut model_rng = Xoshiro256::new(config.seed);
        let model = crate::client::build_model(
            &config.model,
            train.feature_dim(),
            train.num_classes(),
            &mut model_rng,
        );
        let global = flatten_params(&model);
        let mut root_rng = Xoshiro256::new(config.seed ^ 0xC11E);
        let roster = ClientRoster::new(
            train,
            partitions,
            config,
            CodecRegistry::with_builtins(),
            &mut root_rng,
        );
        (roster, global)
    }

    #[test]
    fn checkout_checkin_replays_a_resident_client_exactly() {
        // Two checkout/train/encode/checkin cycles of the same client must
        // produce the same wire bytes as one client living through both
        // rounds — stream handback and residual persistence are exact.
        let (roster, global) = build_roster(Algorithm::EfTopK, 4);
        let mut resident = roster.checkout(1);
        let mut resident_wires = Vec::new();
        for _ in 0..2 {
            let out = resident.local_update(&global);
            resident_wires.push(resident.encode(&out.delta, 0.05).as_bytes().to_vec());
        }
        drop(resident); // never checked in: the roster's stream is untouched

        let (roster2, _) = build_roster(Algorithm::EfTopK, 4);
        for expected in &resident_wires {
            let mut client = roster2.checkout(1);
            let out = client.local_update(&global);
            let wire = client.encode(&out.delta, 0.05);
            assert_eq!(wire.as_bytes(), expected.as_slice());
            roster2.checkin(client);
        }
        assert_eq!(roster2.residual_clients(), 1, "EF residual persisted");
        assert!(roster2.residual_total_norm() > 0.0);
    }

    #[test]
    fn counters_track_residency_and_instantiation() {
        let (roster, _) = build_roster(Algorithm::TopK, 4);
        roster.begin_round();
        let a = roster.checkout(0);
        let b = roster.checkout(2);
        assert_eq!(roster.resident(), 2);
        roster.checkin(a);
        roster.checkin(b);
        assert_eq!(roster.resident(), 0);
        assert_eq!(roster.peak_resident(), 2);
        assert_eq!(roster.round_instantiated(), 2);
        roster.begin_round();
        assert_eq!(roster.round_instantiated(), 0);
        assert_eq!(roster.total_instantiated(), 2);
        assert_eq!(roster.residual_clients(), 0, "top-k stores no residual");
    }

    #[test]
    fn plan_override_migrates_residuals_across_plan_changes() {
        let (roster, global) = build_roster(Algorithm::TopK, 4);
        // A mixed plan (never collapses): EF on the weights, stateless bias.
        let segments = {
            let probe = roster.checkout(0);
            let s = crate::client::segment_defs(probe.layout());
            roster.checkin(probe);
            s
        };
        let e1 = roster.set_plan_override(
            "*.bias=topk;*=ef-topk+qsgd:8".parse().unwrap(),
            None,
            &segments,
        );
        assert_eq!(e1, 1);
        assert_eq!(roster.plan_epoch(), 1);
        let mut client = roster.checkout(1);
        let out = client.local_update(&global);
        let _ = client.encode(&out.delta, 0.05);
        let norm = client.residual_norm();
        assert!(norm > 0.0, "EF segments must carry dropped mass");
        roster.checkin(client);
        assert_eq!(roster.residual_clients(), 1);

        // Re-installing the same plan (even with fresh ratio scales) keeps
        // the epoch: the parked snapshot restores verbatim.
        let scales = vec![0.5; segments.len()];
        let e_same = roster.set_plan_override(
            "*.bias=topk;*=ef-topk+qsgd:8".parse().unwrap(),
            Some(scales),
            &segments,
        );
        assert_eq!(e_same, 1);
        let client = roster.checkout(1);
        assert!((client.residual_norm() - norm).abs() < 1e-12);
        roster.checkin(client);

        // A bit-width change is a new plan: the epoch bumps and the EF→EF
        // migration carries every residual coordinate across unchanged.
        let e2 = roster.set_plan_override(
            "*.bias=topk;*=ef-topk+qsgd:4".parse().unwrap(),
            None,
            &segments,
        );
        assert_eq!(e2, 2);
        let client = roster.checkout(1);
        assert!(
            (client.residual_norm() - norm).abs() < 1e-12,
            "EF→EF migration must carry the residual verbatim"
        );
        roster.checkin(client);

        // EF → stateless drops the carried mass (nowhere to hold it).
        let e3 = roster.set_plan_override("*=topk;*.bias=topk".parse().unwrap(), None, &segments);
        assert_eq!(e3, 3);
        let client = roster.checkout(1);
        assert_eq!(client.residual_norm(), 0.0);
        roster.checkin(client);
        assert_eq!(roster.residual_clients(), 0);
    }

    #[test]
    fn streams_are_the_legacy_fork_sequence() {
        // The roster forks client streams exactly like the eager engine:
        // root.fork(0), root.fork(1), … in partition order.
        let (roster, _) = build_roster(Algorithm::TopK, 3);
        let mut config = ExperimentConfig::quick(Algorithm::TopK);
        config.num_clients = 3;
        let mut root = Xoshiro256::new(config.seed ^ 0xC11E);
        for id in 0..3 {
            let expected = root.fork(id as u64);
            assert_eq!(*roster.streams[id as usize].lock(), expected);
        }
    }
}
