//! Virtualized client population: lazy [`ClientState`] construction keyed by
//! client id, so a session over 10^5–10^6 clients instantiates only the
//! selected cohort each round.
//!
//! The legacy engine materialized every client's [`ClientState`] — model
//! replica, data shard, codec instance — up front, making session memory
//! O(population). But almost none of that state actually persists across
//! rounds: a client entering a round overwrites its model replica from the
//! broadcast parameters, rebuilds its optimizer, and re-reads its immutable
//! data shard. Only two things carry over:
//!
//! 1. **the client's RNG stream** (batch shuffling, Rand-K draws, QSGD
//!    rounding) — tiny: four `u64`s per client;
//! 2. **error-feedback residuals** — stored in a sharded
//!    [`fl_compress::ResidualStore`] keyed by client id, populated only for
//!    clients that have been selected under an EF codec and carried mass.
//!
//! [`ClientRoster`] keeps exactly those two, plus the shared immutable
//! inputs (training data, partitions, config, codec registry), and
//! materializes a full [`ClientState`] on demand:
//!
//! * [`checkout`](ClientRoster::checkout) builds the client — dataset shard
//!   from its partition, model from the experiment seed, codec from the
//!   registry — hands it its persistent RNG stream and restores any stored
//!   residual;
//! * [`checkin`](ClientRoster::checkin) takes the (advanced) stream and the
//!   codec's residual snapshot back and drops everything else.
//!
//! Because [`ClientState`] construction draws nothing from the client's own
//! stream, a checkout/train/checkin cycle replays the exact draw sequence of
//! a permanently resident client: the virtualized engine's records are
//! bit-identical to the eager engine's.
//!
//! The roster also counts instantiations (see
//! [`round_instantiated`](ClientRoster::round_instantiated) and
//! [`peak_resident`](ClientRoster::peak_resident)) so tests and the scaling
//! harness can assert the O(cohort) property instead of trusting it.

use crate::client::ClientState;
use crate::config::ExperimentConfig;
use fl_compress::{CodecRegistry, ResidualStore};
use fl_data::{ClientPartition, Dataset};
use fl_tensor::rng::Xoshiro256;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// The persistent, population-wide client substrate of a
/// [`crate::session::FederatedSession`]: per-client RNG streams, the
/// error-feedback [`ResidualStore`], and everything needed to rebuild a
/// [`ClientState`] deterministically when its id is selected.
pub struct ClientRoster {
    train: Arc<Dataset>,
    partitions: Arc<Vec<ClientPartition>>,
    config: ExperimentConfig,
    registry: CodecRegistry,
    /// One persistent RNG stream per client, forked from the session's client
    /// root in id order at build time (the same fork loop — and therefore the
    /// same streams — as the legacy eager construction).
    streams: Vec<Mutex<Xoshiro256>>,
    residuals: ResidualStore,
    resident: AtomicUsize,
    peak_resident: AtomicUsize,
    round_instantiated: AtomicUsize,
    total_instantiated: AtomicUsize,
}

impl ClientRoster {
    /// Build the roster for a population. `root_rng` is the session's client
    /// root stream (`seed ^ 0xC11E`); each client's persistent stream is
    /// forked from it in partition order, exactly as the eager engine did.
    pub fn new(
        train: Arc<Dataset>,
        partitions: Arc<Vec<ClientPartition>>,
        config: ExperimentConfig,
        registry: CodecRegistry,
        root_rng: &mut Xoshiro256,
    ) -> Self {
        let streams = partitions
            .iter()
            .map(|p| Mutex::new(root_rng.fork(p.client_id as u64)))
            .collect();
        Self {
            train,
            partitions,
            config,
            registry,
            streams,
            residuals: ResidualStore::new(),
            resident: AtomicUsize::new(0),
            peak_resident: AtomicUsize::new(0),
            round_instantiated: AtomicUsize::new(0),
            total_instantiated: AtomicUsize::new(0),
        }
    }

    /// Population size.
    pub fn len(&self) -> usize {
        self.partitions.len()
    }

    /// True for an empty population (never the case in a valid session).
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty()
    }

    /// Materialise client `id` for one round of work: build its
    /// [`ClientState`] from the shared inputs, hand it its persistent RNG
    /// stream and restore its stored error-feedback residual (if any).
    ///
    /// Every checkout must be paired with a [`checkin`](Self::checkin);
    /// checking the same id out twice concurrently would fork its stream and
    /// is a caller bug (cohorts are selected without replacement).
    pub fn checkout(&self, id: usize) -> ClientState {
        let stream = self.streams[id].lock().clone();
        let local = self.partitions[id].dataset(&self.train);
        let mut client =
            ClientState::with_registry(id, local, &self.config, stream, &self.registry);
        if let Some(state) = self.residuals.take(id as u64) {
            client.restore_residual(state);
        }
        let resident = self.resident.fetch_add(1, Ordering::SeqCst) + 1;
        self.peak_resident.fetch_max(resident, Ordering::SeqCst);
        self.round_instantiated.fetch_add(1, Ordering::SeqCst);
        self.total_instantiated.fetch_add(1, Ordering::SeqCst);
        client
    }

    /// Return a client after its round of work: persist the codec's residual
    /// snapshot into the store (all-zero snapshots are dropped), write the
    /// advanced RNG stream back, and drop the rest of the state.
    pub fn checkin(&self, mut client: ClientState) {
        let id = client.id;
        self.residuals.put(id as u64, client.take_residual());
        *self.streams[id].lock() = client.into_rng();
        self.resident.fetch_sub(1, Ordering::SeqCst);
    }

    /// Number of `ClientState`s currently checked out (resident in memory).
    pub fn resident(&self) -> usize {
        self.resident.load(Ordering::SeqCst)
    }

    /// High-water mark of concurrently resident `ClientState`s over the
    /// session's lifetime — bounded by the worker-thread count, never the
    /// population.
    pub fn peak_resident(&self) -> usize {
        self.peak_resident.load(Ordering::SeqCst)
    }

    /// Number of checkouts since the last
    /// [`begin_round`](Self::begin_round) — equal to the cohort size after a
    /// round completes (each selected client is instantiated exactly once).
    pub fn round_instantiated(&self) -> usize {
        self.round_instantiated.load(Ordering::SeqCst)
    }

    /// Total checkouts over the session's lifetime.
    pub fn total_instantiated(&self) -> usize {
        self.total_instantiated.load(Ordering::SeqCst)
    }

    /// Reset the per-round instantiation counter (called by the round engine
    /// at the start of each local phase).
    pub fn begin_round(&self) {
        self.round_instantiated.store(0, Ordering::SeqCst);
    }

    /// Number of clients with a stored error-feedback residual.
    pub fn residual_clients(&self) -> usize {
        self.residuals.len()
    }

    /// L2 norm over every stored residual scalar (the population's total
    /// carried-over compression error).
    pub fn residual_total_norm(&self) -> f64 {
        self.residuals.total_norm()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithm::Algorithm;
    use fl_data::dirichlet_partition;
    use fl_nn::flatten_params;

    fn build_roster(algorithm: Algorithm, num_clients: usize) -> (ClientRoster, Vec<f32>) {
        let mut config = ExperimentConfig::quick(algorithm);
        config.num_clients = num_clients;
        let (train, _) = config
            .dataset
            .spec(config.dataset_scale)
            .generate(config.seed);
        let train = Arc::new(train);
        let partitions = Arc::new(dirichlet_partition(
            &train,
            config.num_clients,
            config.beta,
            2,
            config.seed ^ 0xD1A1,
        ));
        let mut model_rng = Xoshiro256::new(config.seed);
        let model = crate::client::build_model(
            &config.model,
            train.feature_dim(),
            train.num_classes(),
            &mut model_rng,
        );
        let global = flatten_params(&model);
        let mut root_rng = Xoshiro256::new(config.seed ^ 0xC11E);
        let roster = ClientRoster::new(
            train,
            partitions,
            config,
            CodecRegistry::with_builtins(),
            &mut root_rng,
        );
        (roster, global)
    }

    #[test]
    fn checkout_checkin_replays_a_resident_client_exactly() {
        // Two checkout/train/encode/checkin cycles of the same client must
        // produce the same wire bytes as one client living through both
        // rounds — stream handback and residual persistence are exact.
        let (roster, global) = build_roster(Algorithm::EfTopK, 4);
        let mut resident = roster.checkout(1);
        let mut resident_wires = Vec::new();
        for _ in 0..2 {
            let out = resident.local_update(&global);
            resident_wires.push(resident.encode(&out.delta, 0.05).as_bytes().to_vec());
        }
        drop(resident); // never checked in: the roster's stream is untouched

        let (roster2, _) = build_roster(Algorithm::EfTopK, 4);
        for expected in &resident_wires {
            let mut client = roster2.checkout(1);
            let out = client.local_update(&global);
            let wire = client.encode(&out.delta, 0.05);
            assert_eq!(wire.as_bytes(), expected.as_slice());
            roster2.checkin(client);
        }
        assert_eq!(roster2.residual_clients(), 1, "EF residual persisted");
        assert!(roster2.residual_total_norm() > 0.0);
    }

    #[test]
    fn counters_track_residency_and_instantiation() {
        let (roster, _) = build_roster(Algorithm::TopK, 4);
        roster.begin_round();
        let a = roster.checkout(0);
        let b = roster.checkout(2);
        assert_eq!(roster.resident(), 2);
        roster.checkin(a);
        roster.checkin(b);
        assert_eq!(roster.resident(), 0);
        assert_eq!(roster.peak_resident(), 2);
        assert_eq!(roster.round_instantiated(), 2);
        roster.begin_round();
        assert_eq!(roster.round_instantiated(), 0);
        assert_eq!(roster.total_instantiated(), 2);
        assert_eq!(roster.residual_clients(), 0, "top-k stores no residual");
    }

    #[test]
    fn streams_are_the_legacy_fork_sequence() {
        // The roster forks client streams exactly like the eager engine:
        // root.fork(0), root.fork(1), … in partition order.
        let (roster, _) = build_roster(Algorithm::TopK, 3);
        let mut config = ExperimentConfig::quick(Algorithm::TopK);
        config.num_clients = 3;
        let mut root = Xoshiro256::new(config.seed ^ 0xC11E);
        for id in 0..3 {
            let expected = root.fork(id as u64);
            assert_eq!(*roster.streams[id as usize].lock(), expected);
        }
    }
}
