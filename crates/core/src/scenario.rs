//! Scenario-driven fleet dynamics wired into the round engine.
//!
//! The `fl-netsim` [`Scenario`] machinery produces per-round
//! [`FleetEvent`] streams; this module connects them
//! to the session's seams:
//!
//! * [`ScenarioHandle`] — owns the scenario and the materialised
//!   [`FleetState`], advanced exactly once per round by the round engine
//!   (idempotently, so custom drivers stepping the session manually cannot
//!   double-apply a round's events);
//! * [`ScenarioSelector`] — a [`ClientSelector`] that samples the cohort
//!   uniformly from the *currently reachable* clients (optionally thinning
//!   them further with the config's i.i.d. `dropout_rate`);
//! * [`scenario_seed`] / [`record_scenario_trace`] — the dedicated seed
//!   stream and the trace-capture helper used to replay a run's exact fleet
//!   evolution from a text file.
//!
//! The handle's state is `O(cohort + deviations)`: the fleet view stores only
//! the down/departed sets and link overrides, never per-client state, so
//! scenarios stay practical at roster-scale populations.

use crate::config::ExperimentConfig;
use crate::policy::{ClientSelector, SelectionCtx};
use fl_netsim::scenario::FleetEvent;
use fl_netsim::{FleetState, Link, RecordingScenario, Scenario, ScenarioTelemetry};
use fl_tensor::rng::{Rng, Xoshiro256};
use std::sync::{Arc, Mutex};

/// The dedicated seed stream for scenario randomness: `config.seed ^ 0x5CE0`.
///
/// Scenario generators never touch the partition, roster, link, downlink or
/// selection streams, so `scenario: None` runs are bit-identical to builds
/// that predate the scenario engine.
pub fn scenario_seed(config: &ExperimentConfig) -> u64 {
    config.seed ^ 0x5CE0
}

/// The driver state behind a [`ScenarioHandle`]: the event source, the
/// materialised fleet view, and the last advanced round's telemetry.
struct DriverState {
    scenario: Box<dyn Scenario>,
    fleet: FleetState,
    buf: Vec<FleetEvent>,
    next_round: usize,
    last: ScenarioTelemetry,
}

/// Shared handle to a running scenario: the session holds one clone and the
/// [`ScenarioSelector`] another, so the selector reads the fleet view the
/// engine has already advanced for the round.
#[derive(Clone)]
pub struct ScenarioHandle {
    inner: Arc<Mutex<DriverState>>,
}

impl ScenarioHandle {
    /// Wrap a scenario for a `num_clients`-client fleet (initially fully up).
    pub fn new(scenario: Box<dyn Scenario>, num_clients: usize) -> Self {
        let fleet = FleetState::new(num_clients);
        let last = ScenarioTelemetry {
            available: fleet.active_count(),
            ..ScenarioTelemetry::default()
        };
        Self {
            inner: Arc::new(Mutex::new(DriverState {
                scenario,
                fleet,
                buf: Vec::new(),
                next_round: 0,
                last,
            })),
        }
    }

    /// Advance the fleet through every round up to and including `round`,
    /// applying each round's events in order. Idempotent: rounds already
    /// advanced are skipped, so calling this twice for the same round (or
    /// for an earlier one) is a no-op. Panics on a corrupt event stream
    /// (an event naming a client outside the fleet), matching the engine's
    /// fail-fast posture on invalid configuration.
    pub fn advance(&self, round: usize) {
        let mut guard = self.inner.lock().expect("scenario driver poisoned");
        let state = &mut *guard;
        while state.next_round <= round {
            let r = state.next_round;
            state.buf.clear();
            state.scenario.events_for_round(r, &mut state.buf);
            let mut telemetry = ScenarioTelemetry::default();
            for event in &state.buf {
                match event {
                    FleetEvent::Join { .. } => telemetry.joined += 1,
                    FleetEvent::Leave { .. } => telemetry.departed += 1,
                    FleetEvent::LinkSet { .. } => telemetry.link_changes += 1,
                    FleetEvent::Down { .. } | FleetEvent::Up { .. } => {}
                }
                state
                    .fleet
                    .apply(event)
                    .unwrap_or_else(|e| panic!("invalid scenario event at round {r}: {e}"));
            }
            telemetry.available = state.fleet.active_count();
            state.last = telemetry;
            state.next_round = r + 1;
        }
    }

    /// The link `client` communicates over right now: the scenario's override
    /// when one is in force, the static `base` draw otherwise.
    pub fn link_for(&self, client: usize, base: &[Link]) -> Link {
        self.inner
            .lock()
            .expect("scenario driver poisoned")
            .fleet
            .link_for(client, base)
    }

    /// Telemetry of the most recently advanced round.
    pub fn telemetry(&self) -> ScenarioTelemetry {
        self.inner.lock().expect("scenario driver poisoned").last
    }

    /// Indices of the currently reachable clients, ascending.
    pub fn active_clients(&self) -> Vec<usize> {
        self.inner
            .lock()
            .expect("scenario driver poisoned")
            .fleet
            .active_clients()
    }

    /// The wrapped scenario's short name (`"diurnal"`, `"trace"`, …).
    pub fn scenario_name(&self) -> &'static str {
        self.inner
            .lock()
            .expect("scenario driver poisoned")
            .scenario
            .name()
    }
}

/// Cohort selection over a dynamic fleet: sample uniformly (without
/// replacement) from the clients the scenario currently reports reachable.
///
/// A positive `dropout_rate` additionally flips one i.i.d. availability coin
/// per *reachable* client — the scenario models structural unavailability
/// (outages, churn), the dropout rate residual flakiness on top. When nobody
/// is reachable the selector returns an empty cohort and the round engine's
/// backstop drafts one uniformly drawn client, exactly as for every other
/// selector.
pub struct ScenarioSelector {
    handle: ScenarioHandle,
    dropout_rate: f64,
}

impl ScenarioSelector {
    /// Selector over `handle`'s fleet. Panics unless `dropout_rate ∈ [0, 1)`.
    pub fn new(handle: ScenarioHandle, dropout_rate: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&dropout_rate),
            "dropout_rate must be in [0, 1), got {dropout_rate}"
        );
        Self {
            handle,
            dropout_rate,
        }
    }
}

impl ClientSelector for ScenarioSelector {
    fn select(&mut self, ctx: &SelectionCtx<'_>, rng: &mut Xoshiro256) -> Vec<usize> {
        let mut available = self.handle.active_clients();
        if self.dropout_rate > 0.0 {
            available.retain(|_| !rng.next_bool(self.dropout_rate));
        }
        if available.is_empty() {
            return Vec::new();
        }
        let k = ctx.cohort_size.min(available.len());
        rng.sample_without_replacement(available.len(), k)
            .into_iter()
            .map(|i| available[i])
            .collect()
    }

    fn name(&self) -> &'static str {
        "scenario"
    }
}

/// Record the exact fleet-event trace a configuration's scenario will replay
/// over the first `rounds` rounds, as `bwfl-trace-v1` text.
///
/// The generator is rebuilt from the config's [`ScenarioSpec`]
/// (`config.scenario`) with the session's exact [`scenario_seed`], so a run
/// driven from the returned trace (`scenario: "trace:<file>"`) reproduces the
/// original run's fleet evolution bit for bit.
///
/// [`ScenarioSpec`]: fl_netsim::ScenarioSpec
pub fn record_scenario_trace(config: &ExperimentConfig, rounds: usize) -> Result<String, String> {
    let spec = config
        .scenario
        .as_ref()
        .ok_or_else(|| "config has no scenario to record".to_string())?;
    let inner = spec
        .build(config.num_clients, scenario_seed(config))
        .map_err(|e| format!("invalid scenario spec {spec}: {e}"))?;
    let mut recorder = RecordingScenario::new(inner, config.num_clients);
    let mut buf = Vec::new();
    for round in 0..rounds {
        buf.clear();
        recorder.events_for_round(round, &mut buf);
    }
    Ok(recorder.into_trace())
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_netsim::{DiurnalScenario, ScenarioSpec, TraceScenario};

    fn diurnal(n: usize, seed: u64) -> Box<dyn Scenario> {
        Box::new(DiurnalScenario::new(n, seed, 8.0, 0.25, 0.95))
    }

    #[test]
    fn advance_is_idempotent() {
        let handle = ScenarioHandle::new(diurnal(16, 7), 16);
        handle.advance(3);
        let active = handle.active_clients();
        let telemetry = handle.telemetry();
        // Re-advancing the same (or an earlier) round changes nothing.
        handle.advance(3);
        handle.advance(1);
        assert_eq!(handle.active_clients(), active);
        assert_eq!(handle.telemetry(), telemetry);
    }

    #[test]
    fn advance_catches_up_skipped_rounds() {
        let a = ScenarioHandle::new(diurnal(16, 7), 16);
        let b = ScenarioHandle::new(diurnal(16, 7), 16);
        for r in 0..=5 {
            a.advance(r);
        }
        b.advance(5); // one jump applies rounds 0..=5 in order
        assert_eq!(a.active_clients(), b.active_clients());
    }

    #[test]
    fn telemetry_counts_available_after_events() {
        let handle = ScenarioHandle::new(diurnal(32, 3), 32);
        handle.advance(0);
        let t = handle.telemetry();
        assert_eq!(t.available, handle.active_clients().len());
        assert!(t.available <= 32);
    }

    #[test]
    fn selector_samples_only_active_clients() {
        let handle = ScenarioHandle::new(diurnal(32, 11), 32);
        handle.advance(4);
        let active = handle.active_clients();
        assert!(
            active.len() < 32,
            "the diurnal trough should take some down"
        );
        let mut sel = ScenarioSelector::new(handle, 0.0);
        let links = vec![Link::from_mbps_ms(1.0, 50.0); 32];
        let ctx = SelectionCtx {
            round: 4,
            num_clients: 32,
            cohort_size: 8,
            links: &links,
        };
        let mut rng = Xoshiro256::new(5);
        let picked = sel.select(&ctx, &mut rng);
        assert!(!picked.is_empty() && picked.len() <= 8);
        assert!(picked.iter().all(|c| active.contains(c)));
        let mut dedup = picked.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), picked.len());
    }

    #[test]
    fn selector_returns_empty_when_nobody_reachable() {
        // min_up ≈ max_up ≈ 0 keeps the whole fleet down once the wave is
        // established; the engine backstop (not the selector) drafts a client.
        let handle = ScenarioHandle::new(Box::new(DiurnalScenario::new(8, 1, 4.0, 1e-9, 2e-9)), 8);
        handle.advance(0);
        assert!(handle.active_clients().is_empty());
        let mut sel = ScenarioSelector::new(handle, 0.0);
        let links = vec![Link::from_mbps_ms(1.0, 50.0); 8];
        let ctx = SelectionCtx {
            round: 0,
            num_clients: 8,
            cohort_size: 4,
            links: &links,
        };
        assert!(sel.select(&ctx, &mut Xoshiro256::new(1)).is_empty());
    }

    #[test]
    fn recorded_trace_replays_the_generator_exactly() {
        let mut config = ExperimentConfig::quick(crate::Algorithm::TopK);
        config.num_clients = 16;
        config.scenario = Some("churn:leave=0.2,join=0.5".parse().unwrap());
        let trace = record_scenario_trace(&config, 6).unwrap();

        let mut live = config
            .scenario
            .as_ref()
            .unwrap()
            .build(16, scenario_seed(&config))
            .unwrap();
        let mut replay =
            TraceScenario::from_reader(std::io::BufReader::new(trace.as_bytes())).unwrap();
        let (mut a, mut b) = (Vec::new(), Vec::new());
        for round in 0..6 {
            a.clear();
            b.clear();
            live.events_for_round(round, &mut a);
            replay.events_for_round(round, &mut b);
            assert_eq!(a, b, "round {round}");
        }
    }

    #[test]
    fn recording_requires_a_scenario() {
        let config = ExperimentConfig::quick(crate::Algorithm::TopK);
        assert!(record_scenario_trace(&config, 4).is_err());
    }

    #[test]
    fn scenario_seed_is_a_dedicated_stream() {
        let config = ExperimentConfig::quick(crate::Algorithm::TopK);
        let s = scenario_seed(&config);
        for other in [
            config.seed,
            config.seed ^ 0xD1A1,
            config.seed ^ 0xC11E,
            config.seed ^ 0x11C5,
            config.seed ^ 0xD0C0,
            config.seed ^ 0xD011,
            config.seed ^ 0x5E1E,
        ] {
            assert_ne!(s, other);
        }
    }

    #[test]
    fn handle_reports_the_scenario_name() {
        let spec: ScenarioSpec = "towers".parse().unwrap();
        let handle = ScenarioHandle::new(spec.build(8, 1).unwrap(), 8);
        assert_eq!(handle.scenario_name(), "towers");
    }
}
