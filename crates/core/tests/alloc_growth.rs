//! Roster memory smoke test: a large virtualized population must run in
//! O(cohort) heap, and steady-state rounds must not grow the heap.
//!
//! A counting `#[global_allocator]` tracks net live bytes (allocations minus
//! frees). After the first rounds warm the session up (records vector,
//! evaluation scratch, codec buffers), every later round must land within a
//! small fixed slack of the previous one — the round loop reuses its buffers
//! instead of accumulating per-round garbage, so the only durable growth is
//! the appended `RoundRecord` itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, AtomicUsize, Ordering};

use fl_core::{Algorithm, ExperimentConfig, FederatedSession};

/// Net live heap bytes under the counting allocator.
static NET_BYTES: AtomicIsize = AtomicIsize::new(0);
/// Monotonic count of every `alloc` call — allocation *traffic*, not just net
/// growth, so buffers that are allocated and immediately freed still show up.
static TOTAL_ALLOCS: AtomicUsize = AtomicUsize::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the counters are the only
// added behaviour. `realloc` is left on the default implementation, which
// routes through `alloc`/`dealloc` and therefore keeps the counters exact.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            NET_BYTES.fetch_add(layout.size() as isize, Ordering::Relaxed);
            TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        NET_BYTES.fetch_sub(layout.size() as isize, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_rounds_do_not_grow_the_heap() {
    // 100k virtual clients, 32-client cohorts, stateless Top-K: the roster
    // must instantiate only the touched clients, and the round loop must not
    // leak scratch. Single-threaded so worker-pool bring-up cannot masquerade
    // as round-loop growth.
    let mut config = ExperimentConfig::quick(Algorithm::TopK);
    config.num_clients = 100_000;
    config.participation = 32.0 / 100_000.0;
    config.rounds = 8;
    config.max_threads = 1;

    let mut net_after_round: Vec<isize> = Vec::with_capacity(config.rounds);
    let session = FederatedSession::from_config(&config);
    let result = session.run_with(|_record| {
        net_after_round.push(NET_BYTES.load(Ordering::Relaxed));
    });
    assert_eq!(net_after_round.len(), 8);
    assert!(result.final_accuracy.is_finite());

    // Rounds 0–2 may allocate durable state (records vector, lazily built
    // evaluation scratch, codec buffer pools). From round 3 on, each round
    // may add at most the round record plus a little vector-doubling slack —
    // far below the multi-hundred-kB per-round traffic a leak of even one
    // update buffer would show up as.
    const PER_ROUND_SLACK: isize = 32 * 1024;
    for w in net_after_round[3..].windows(2) {
        let growth = w[1] - w[0];
        assert!(
            growth <= PER_ROUND_SLACK,
            "steady-state round grew the heap by {growth} bytes \
             (net per round: {net_after_round:?})"
        );
    }
}

#[test]
fn steady_state_training_batches_allocate_nothing() {
    // The allocation-free hot path, asserted at its strongest: once the
    // workspace and batch buffers are warm, a training batch must perform
    // ZERO heap allocations — not merely zero net growth. This replicates
    // `ClientState::local_update`'s inner loop through the same public APIs.
    use fl_data::Dataset;
    use fl_nn::{mlp, Sgd, SoftmaxCrossEntropy, Workspace};
    use fl_tensor::rng::{Rng, Xoshiro256};
    use fl_tensor::Tensor;

    let mut rng = Xoshiro256::new(11);
    let feature_dim = 32;
    let classes = 4;
    let n = 64;
    let batch = 16; // divides n: every batch has the same shape
    let mut features = Vec::with_capacity(n * feature_dim);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        labels.push(i % classes);
        for _ in 0..feature_dim {
            features.push(rng.next_f32() - 0.5);
        }
    }
    let dataset = Dataset::new(features, labels, feature_dim, classes);

    let mut model = mlp(feature_dim, &[24, 16], classes, &mut rng);
    let mut opt = Sgd::new(0.05, 0.9, 1e-4);
    let mut loss_fn = SoftmaxCrossEntropy::new();
    let mut ws = Workspace::new();
    let mut grad = Tensor::empty();
    let mut x = Tensor::empty();
    let mut y = Vec::new();
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);

    let mut step =
        |s: usize, e: usize, order: &[usize], model: &mut fl_nn::Sequential, ws: &mut Workspace| {
            dataset.gather_batch_into(&order[s..e], &mut x, &mut y);
            model.zero_grad();
            let logits = model.forward_in(&x, ws);
            loss_fn.forward(logits, &y);
            loss_fn.backward_in(&mut grad);
            model.backward_in(&grad, ws);
            opt.step(model);
        };

    // Warm-up: two full batches grow every buffer to steady-state size
    // (including the momentum velocity allocated on the first step).
    step(0, batch, &order, &mut model, &mut ws);
    step(batch, 2 * batch, &order, &mut model, &mut ws);

    let before = TOTAL_ALLOCS.load(Ordering::Relaxed);
    for round in 0..5 {
        for b in 0..n / batch {
            step(b * batch, (b + 1) * batch, &order, &mut model, &mut ws);
        }
        let _ = round;
    }
    let allocs = TOTAL_ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(
        allocs, 0,
        "steady-state training batches performed {allocs} heap allocations"
    );
}
