//! Roster memory smoke test: a large virtualized population must run in
//! O(cohort) heap, and steady-state rounds must not grow the heap.
//!
//! A counting `#[global_allocator]` tracks net live bytes (allocations minus
//! frees). After the first rounds warm the session up (records vector,
//! evaluation scratch, codec buffers), every later round must land within a
//! small fixed slack of the previous one — the round loop reuses its buffers
//! instead of accumulating per-round garbage, so the only durable growth is
//! the appended `RoundRecord` itself.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, Ordering};

use fl_core::{Algorithm, ExperimentConfig, FederatedSession};

/// Net live heap bytes under the counting allocator.
static NET_BYTES: AtomicIsize = AtomicIsize::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System`; the counter is the only
// added behaviour. `realloc` is left on the default implementation, which
// routes through `alloc`/`dealloc` and therefore keeps the counter exact.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            NET_BYTES.fetch_add(layout.size() as isize, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        NET_BYTES.fetch_sub(layout.size() as isize, Ordering::Relaxed);
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_rounds_do_not_grow_the_heap() {
    // 100k virtual clients, 32-client cohorts, stateless Top-K: the roster
    // must instantiate only the touched clients, and the round loop must not
    // leak scratch. Single-threaded so worker-pool bring-up cannot masquerade
    // as round-loop growth.
    let mut config = ExperimentConfig::quick(Algorithm::TopK);
    config.num_clients = 100_000;
    config.participation = 32.0 / 100_000.0;
    config.rounds = 8;
    config.max_threads = 1;

    let mut net_after_round: Vec<isize> = Vec::with_capacity(config.rounds);
    let session = FederatedSession::from_config(&config);
    let result = session.run_with(|_record| {
        net_after_round.push(NET_BYTES.load(Ordering::Relaxed));
    });
    assert_eq!(net_after_round.len(), 8);
    assert!(result.final_accuracy.is_finite());

    // Rounds 0–2 may allocate durable state (records vector, lazily built
    // evaluation scratch, codec buffer pools). From round 3 on, each round
    // may add at most the round record plus a little vector-doubling slack —
    // far below the multi-hundred-kB per-round traffic a leak of even one
    // update buffer would show up as.
    const PER_ROUND_SLACK: isize = 32 * 1024;
    for w in net_after_round[3..].windows(2) {
        let growth = w[1] - w[0];
        assert!(
            growth <= PER_ROUND_SLACK,
            "steady-state round grew the heap by {growth} bytes \
             (net per round: {net_after_round:?})"
        );
    }
}
