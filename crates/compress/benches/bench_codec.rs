//! Encode/decode throughput of the codec pipeline at the update sizes the
//! experiments use: sparse f32, bit-packed QSGD and the composed
//! sparsify+quantize wire formats.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fl_compress::{CodecCtx, CodecRegistry, CompressorSpec, UpdateCodec};
use fl_tensor::rng::{Rng, Xoshiro256};
use std::hint::black_box;

fn dense_update(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256::new(seed);
    (0..n).map(|_| rng.next_f32() - 0.5).collect()
}

fn build(spec: &str, n: usize) -> Box<dyn UpdateCodec> {
    let spec: CompressorSpec = spec.parse().expect("bench spec parses");
    CodecRegistry::with_builtins()
        .build(&spec, &CodecCtx::new(n, 1))
        .expect("bench spec resolves")
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_encode");
    let n = 100_000usize;
    let dense = dense_update(n, 1);
    for spec in ["topk", "randk", "qsgd:8", "topk+qsgd:6", "ef-topk"] {
        group.bench_with_input(BenchmarkId::new("encode", spec), &spec, |b, &spec| {
            let mut codec = build(spec, n);
            let mut rng = Xoshiro256::new(2);
            b.iter(|| black_box(codec.encode(black_box(&dense), 0.1, &mut rng)));
        });
    }
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_decode");
    let n = 100_000usize;
    let dense = dense_update(n, 3);
    for spec in ["topk", "qsgd:8", "topk+qsgd:6"] {
        group.bench_with_input(BenchmarkId::new("decode", spec), &spec, |b, &spec| {
            let mut codec = build(spec, n);
            let mut rng = Xoshiro256::new(4);
            let wire = codec.encode(&dense, 0.1, &mut rng);
            b.iter(|| black_box(codec.decode(black_box(&wire)).unwrap()));
        });
    }
    group.finish();
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_encode, bench_decode
}
criterion_main!(benches);
