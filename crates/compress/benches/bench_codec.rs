//! Encode/decode throughput of the codec pipeline at the update sizes the
//! experiments use: sparse f32, raw dense f32, bit-packed QSGD, the composed
//! sparsify+quantize wire formats, and the layer-aware `Segmented` framing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fl_compress::{CodecCtx, CodecRegistry, CompressorSpec, LayerPlan, SegmentDef, UpdateCodec};
use fl_tensor::rng::{Rng, Xoshiro256};
use std::hint::black_box;

fn dense_update(n: usize, seed: u64) -> Vec<f32> {
    let mut rng = Xoshiro256::new(seed);
    (0..n).map(|_| rng.next_f32() - 0.5).collect()
}

fn build(spec: &str, n: usize) -> Box<dyn UpdateCodec> {
    let spec: CompressorSpec = spec.parse().expect("bench spec parses");
    CodecRegistry::with_builtins()
        .build(&spec, &CodecCtx::new(n, 1))
        .expect("bench spec resolves")
}

/// A genuinely mixed two-segment plan, so encode emits the `Segmented` kind.
fn build_segmented(n: usize) -> Box<dyn UpdateCodec> {
    let plan: LayerPlan = "*.bias=qsgd:8;*=topk".parse().expect("bench plan parses");
    let segments = vec![
        SegmentDef::new("layer0.weight", n - n / 5),
        SegmentDef::new("layer0.bias", n / 5),
    ];
    plan.resolve(
        &CodecRegistry::with_builtins(),
        &segments,
        &CodecCtx::new(n, 1),
    )
    .expect("bench plan resolves")
}

fn bench_encode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_encode");
    let n = 100_000usize;
    let dense = dense_update(n, 1);
    for spec in [
        "topk",
        "randk",
        "qsgd:8",
        "qsgd:8:rc",
        "topk+qsgd:6",
        "topk+qsgd:6:rc",
        "ef-topk",
        "dense",
    ] {
        group.bench_with_input(BenchmarkId::new("encode", spec), &spec, |b, &spec| {
            let mut codec = build(spec, n);
            let mut rng = Xoshiro256::new(2);
            b.iter(|| black_box(codec.encode(black_box(&dense), 0.1, &mut rng)));
        });
    }
    group.bench_function(BenchmarkId::new("encode", "segmented"), |b| {
        let mut codec = build_segmented(n);
        let mut rng = Xoshiro256::new(2);
        b.iter(|| black_box(codec.encode(black_box(&dense), 0.1, &mut rng)));
    });
    group.finish();
}

fn bench_decode(c: &mut Criterion) {
    let mut group = c.benchmark_group("codec_decode");
    let n = 100_000usize;
    let dense = dense_update(n, 3);
    for spec in [
        "topk",
        "qsgd:8",
        "qsgd:8:rc",
        "topk+qsgd:6",
        "topk+qsgd:6:rc",
        "dense",
    ] {
        group.bench_with_input(BenchmarkId::new("decode", spec), &spec, |b, &spec| {
            let mut codec = build(spec, n);
            let mut rng = Xoshiro256::new(4);
            let wire = codec.encode(&dense, 0.1, &mut rng);
            b.iter(|| black_box(codec.decode(black_box(&wire)).unwrap()));
        });
    }
    group.bench_function(BenchmarkId::new("decode", "segmented"), |b| {
        let mut codec = build_segmented(n);
        let mut rng = Xoshiro256::new(4);
        let wire = codec.encode(&dense, 0.1, &mut rng);
        b.iter(|| black_box(codec.decode(black_box(&wire)).unwrap()));
    });
    group.finish();
}

fn fast_criterion() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(2))
}

criterion_group! {
    name = benches;
    config = fast_criterion();
    targets = bench_encode, bench_decode
}
criterion_main!(benches);
