//! Property-based encode → decode round-trips over the public codec surface.
//!
//! Random gradients are pushed through every wire kind the stack can emit —
//! sparse, bit-packed quantized, composed sparse+quantized, raw dense, the
//! entropy-coded kind 5, and `Segmented` frames from layer plans — and the
//! decoded updates are checked against the exactness guarantees each format
//! makes. Error-feedback plans additionally check the take/restore residual
//! snapshot contract the session engine relies on.

use fl_compress::{
    migrate_planned_residual, CodecCtx, CodecRegistry, CompressorSpec, LayerPlan, SegmentDef,
    UpdateCodec, WireUpdate,
};
use fl_tensor::rng::{Rng, Xoshiro256};
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

/// Build a flat codec for `spec` sized for `n` coordinates.
fn build(spec: &str, n: usize) -> Box<dyn UpdateCodec> {
    let spec: CompressorSpec = spec.parse().expect("test spec parses");
    CodecRegistry::with_builtins()
        .build(&spec, &CodecCtx::new(n, 1))
        .expect("test spec resolves")
}

/// A gradient-shaped vector: zero-mean, mixed magnitudes, fully finite.
fn gradient(seed: u64, n: usize) -> Vec<f32> {
    let mut rng = Xoshiro256::new(seed);
    (0..n)
        .map(|_| (rng.next_f32() - 0.5) * (1.0 + rng.next_f32() * 9.0))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every flat builtin spec round-trips through bytes: re-parsing the
    /// encoded buffer decodes to the same update the producing codec frames,
    /// with the dense length preserved and every value finite.
    #[test]
    fn prop_flat_specs_roundtrip(seed in 0u64..1 << 32, n in 1usize..600, ratio_pct in 1u32..100) {
        let ratio = ratio_pct as f64 / 100.0;
        let d = gradient(seed, n);
        for spec in [
            "topk", "randk", "qsgd:4", "qsgd:8", "qsgd:8:rc",
            "topk+qsgd:6", "topk+qsgd:6:rc", "ef-topk", "dense",
        ] {
            let mut codec = build(spec, n);
            let wire = codec.encode(&d, ratio, &mut Xoshiro256::new(seed ^ 1));
            let reparsed = WireUpdate::from_bytes(wire.as_bytes().to_vec().into());
            prop_assert_eq!(&reparsed, &wire, "byte re-parse differs for {}", spec);
            let dense = wire.decode().expect("own bytes decode").into_dense();
            prop_assert_eq!(dense.len(), n, "length drift for {}", spec);
            prop_assert!(dense.iter().all(|v| v.is_finite()), "non-finite decode for {}", spec);
            if spec == "dense" {
                prop_assert!(
                    dense.iter().zip(d.iter()).all(|(a, b)| a.to_bits() == b.to_bits()),
                    "dense codec must be lossless"
                );
            }
        }
    }

    /// The entropy twin of a bit-packed quantizer decodes bit-identically
    /// (same levels, same dequantization) and its frame is never larger:
    /// when the range coder cannot beat bit-packing it falls back to it.
    #[test]
    fn prop_entropy_twin_bit_identical_never_larger(
        seed in 0u64..1 << 32,
        n in 1usize..2000,
        bits in 2u8..9,
    ) {
        let d = gradient(seed, n);
        let mut rc = build(&format!("qsgd:{bits}:rc"), n);
        let mut packed = build(&format!("qsgd:{bits}"), n);
        let wr = rc.encode(&d, 1.0, &mut Xoshiro256::new(seed ^ 2));
        let wp = packed.encode(&d, 1.0, &mut Xoshiro256::new(seed ^ 2));
        prop_assert!(wr.len() <= wp.len(), "entropy frame expanded: {} > {}", wr.len(), wp.len());
        let a = wr.decode().expect("rc decodes").into_dense();
        let b = wp.decode().expect("packed decodes").into_dense();
        prop_assert!(
            a.iter().zip(b.iter()).all(|(x, y)| x.to_bits() == y.to_bits()),
            "entropy decode drifted from bit-packed twin"
        );
    }

    /// Same twin property through the sparse composed path: identical
    /// retained indices, bit-identical values, never more bytes.
    #[test]
    fn prop_sparse_entropy_twin(
        seed in 0u64..1 << 32,
        n in 20usize..2000,
        bits in 2u8..9,
        ratio_pct in 1u32..100,
    ) {
        let ratio = ratio_pct as f64 / 100.0;
        let d = gradient(seed, n);
        let mut rc = build(&format!("topk+qsgd:{bits}:rc"), n);
        let mut packed = build(&format!("topk+qsgd:{bits}"), n);
        let wr = rc.encode(&d, ratio, &mut Xoshiro256::new(seed ^ 3));
        let wp = packed.encode(&d, ratio, &mut Xoshiro256::new(seed ^ 3));
        prop_assert!(wr.len() <= wp.len(), "sparse entropy frame expanded");
        let a = wr.decode().expect("rc decodes").into_sparse().expect("sparse kind");
        let b = wp.decode().expect("packed decodes").into_sparse().expect("sparse kind");
        prop_assert_eq!(a.indices(), b.indices());
        prop_assert!(
            a.values().iter().zip(b.values().iter()).all(|(x, y)| x.to_bits() == y.to_bits()),
            "sparse entropy values drifted from bit-packed twin"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Mixed layer plans frame `Segmented` updates whose decode preserves the
    /// total length, keeps dense-coded segments bit-exact, and round-trips
    /// through a byte re-parse. Entropy rules inside a plan stay bit-identical
    /// to their bit-packed twin plan.
    #[test]
    fn prop_segmented_plan_roundtrip(
        seed in 0u64..1 << 32,
        w0 in 8usize..400,
        b0 in 1usize..40,
        w1 in 8usize..400,
        bits in 2u8..9,
    ) {
        let layout = vec![
            SegmentDef::new("l0.weight", w0),
            SegmentDef::new("l0.bias", b0),
            SegmentDef::new("l1.weight", w1),
        ];
        let n = w0 + b0 + w1;
        let ctx = CodecCtx::new(n, 1);
        let registry = CodecRegistry::with_builtins();
        let rc_plan: LayerPlan =
            format!("*.bias=dense;*=qsgd:{bits}:rc").parse().expect("plan parses");
        let packed_plan: LayerPlan =
            format!("*.bias=dense;*=qsgd:{bits}").parse().expect("plan parses");
        let mut rc = rc_plan.resolve(&registry, &layout, &ctx).expect("plan resolves");
        let mut packed = packed_plan.resolve(&registry, &layout, &ctx).expect("plan resolves");
        let d = gradient(seed, n);
        let wr = rc.encode(&d, 1.0, &mut Xoshiro256::new(seed ^ 4));
        let wp = packed.encode(&d, 1.0, &mut Xoshiro256::new(seed ^ 4));
        prop_assert!(wr.len() <= wp.len(), "segmented entropy plan expanded");
        let reparsed = WireUpdate::from_bytes(wr.as_bytes().to_vec().into());
        prop_assert_eq!(&reparsed, &wr);
        let a = wr.decode().expect("rc plan decodes").into_dense();
        let b = wp.decode().expect("packed plan decodes").into_dense();
        prop_assert_eq!(a.len(), n);
        prop_assert!(
            a.iter().zip(b.iter()).all(|(x, y)| x.to_bits() == y.to_bits()),
            "segmented entropy decode drifted from bit-packed twin plan"
        );
        // The dense-coded bias segment is lossless in both plans.
        prop_assert!(
            a[w0..w0 + b0].iter().zip(d[w0..w0 + b0].iter()).all(|(x, y)| x.to_bits() == y.to_bits()),
            "dense bias segment must round-trip exactly"
        );
    }

    /// Error-feedback plans: taking the residual snapshot and restoring it
    /// between rounds is invisible — a twin codec fed the same inputs without
    /// the snapshot round-trip emits byte-identical frames every round.
    #[test]
    fn prop_ef_plan_snapshot_roundtrip(
        seed in 0u64..1 << 32,
        w in 8usize..300,
        b in 1usize..30,
        rounds in 1usize..4,
    ) {
        let layout = vec![SegmentDef::new("l.weight", w), SegmentDef::new("l.bias", b)];
        let n = w + b;
        let ctx = CodecCtx::new(n, 1);
        let registry = CodecRegistry::with_builtins();
        let plan: LayerPlan = "*.bias=dense;*=ef-topk".parse().expect("plan parses");
        let mut snapshotted = plan.resolve(&registry, &layout, &ctx).expect("plan resolves");
        let mut straight = plan.resolve(&registry, &layout, &ctx).expect("plan resolves");
        let mut rng_a = Xoshiro256::new(seed ^ 5);
        let mut rng_b = Xoshiro256::new(seed ^ 5);
        for round in 0..rounds {
            let d = gradient(seed.wrapping_add(round as u64), n);
            let state = snapshotted.take_residual();
            snapshotted.restore_residual(state);
            let wa = snapshotted.encode(&d, 0.25, &mut rng_a);
            let wb = straight.encode(&d, 0.25, &mut rng_b);
            prop_assert_eq!(&wa, &wb, "snapshot round-trip changed round {} frame", round);
        }
        prop_assert!(snapshotted.residual_norm().is_finite());
        prop_assert_eq!(snapshotted.residual_norm(), straight.residual_norm());
    }

    /// Residual migration across an adaptive re-plan: a bit-width change on
    /// an error-feedback rule carries every accumulated coordinate verbatim —
    /// none dropped, none duplicated, none zeroed — and the migrated snapshot
    /// restores cleanly into the new plan's codec. EF → stateless drops the
    /// segment's residual; stateless → EF inserts an exact-length zero part.
    #[test]
    fn prop_residual_migration_preserves_ef_coordinates(
        seed in 0u64..1 << 32,
        w0 in 8usize..300,
        b0 in 1usize..30,
        w1 in 8usize..300,
        new_bits in 2u8..8,
    ) {
        let layout = vec![
            SegmentDef::new("l0.weight", w0),
            SegmentDef::new("l0.bias", b0),
            SegmentDef::new("l1.weight", w1),
        ];
        let lens = [w0, b0, w1];
        let n = w0 + b0 + w1;
        let ctx = CodecCtx::new(n, 1);
        let registry = CodecRegistry::with_builtins();

        // Park a residual under EF weights + a stateless bias rule.
        let old_plan: LayerPlan = "*.bias=topk;*=ef-topk+qsgd:8".parse().expect("plan parses");
        let old_counts = old_plan.part_counts(&layout).expect("plan covers layout");
        prop_assert_eq!(&old_counts[..], &[1, 0, 1]);
        let mut old = old_plan.resolve(&registry, &layout, &ctx).expect("plan resolves");
        old.encode(&gradient(seed, n), 0.05, &mut Xoshiro256::new(seed ^ 6));
        let snapshot = old.take_residual();
        let before: Vec<u32> =
            snapshot.parts.iter().flatten().map(|v| v.to_bits()).collect();
        prop_assert_eq!(snapshot.parts.len(), 2);

        // Bit-width change, same part structure: coordinates carried verbatim.
        let new_plan: LayerPlan = format!("*.bias=topk;*=ef-topk+qsgd:{new_bits}")
            .parse()
            .expect("plan parses");
        let new_counts = new_plan.part_counts(&layout).expect("plan covers layout");
        let migrated =
            migrate_planned_residual(snapshot.clone(), &old_counts, &new_counts, &lens);
        let after: Vec<u32> =
            migrated.parts.iter().flatten().map(|v| v.to_bits()).collect();
        prop_assert_eq!(&after, &before, "bit-width migration altered residual coordinates");
        let mut new = new_plan.resolve(&registry, &layout, &ctx).expect("plan resolves");
        let norm_before = {
            let mut probe = old_plan.resolve(&registry, &layout, &ctx).expect("plan resolves");
            probe.restore_residual(snapshot.clone());
            probe.residual_norm()
        };
        new.restore_residual(migrated);
        prop_assert_eq!(new.residual_norm(), norm_before, "restored norm drifted");

        // EF everywhere: the bias segment gains a fresh all-zero part of
        // exactly its length; the weight parts still carry verbatim.
        let wide_plan: LayerPlan = "*=ef-topk".parse().expect("plan parses");
        let wide_counts = wide_plan.part_counts(&layout).expect("plan covers layout");
        prop_assert_eq!(&wide_counts[..], &[1, 1, 1]);
        let widened =
            migrate_planned_residual(snapshot.clone(), &old_counts, &wide_counts, &lens);
        prop_assert_eq!(widened.parts.len(), 3);
        prop_assert_eq!(widened.parts[1].len(), b0);
        prop_assert!(widened.parts[1].iter().all(|&v| v == 0.0), "fresh EF part must be zero");
        let widened_coords: Vec<u32> = widened.parts[0]
            .iter()
            .chain(&widened.parts[2])
            .map(|v| v.to_bits())
            .collect();
        prop_assert_eq!(&widened_coords, &before, "widening migration altered EF coordinates");

        // Fully stateless: every residual part is dropped, none re-applied.
        let stateless_plan: LayerPlan = "*=topk".parse().expect("plan parses");
        let stateless_counts =
            stateless_plan.part_counts(&layout).expect("plan covers layout");
        prop_assert_eq!(&stateless_counts[..], &[0, 0, 0]);
        let dropped =
            migrate_planned_residual(snapshot, &old_counts, &stateless_counts, &lens);
        prop_assert!(dropped.parts.is_empty(), "stateless plan must hold no residual");
    }
}
