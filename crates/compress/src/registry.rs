//! The [`CodecRegistry`] — resolves a parsed [`CompressorSpec`] into a boxed
//! [`UpdateCodec`].
//!
//! Every stage name maps to a [`CodecFactory`]; the registry ships with the
//! built-in codecs registered (`topk`, `randk`, `threshold`, `qsgd`) and
//! custom codecs plug in through [`CodecRegistry::register`]:
//!
//! ```
//! use fl_compress::{CodecCtx, CodecRegistry, CompressorSpec};
//!
//! let registry = CodecRegistry::with_builtins();
//! let spec: CompressorSpec = "topk+qsgd:4".parse().unwrap();
//! let codec = registry.build(&spec, &CodecCtx::new(1000, 42)).unwrap();
//! assert_eq!(codec.name(), "topk+qsgd:4");
//! ```
//!
//! Composition rules: any registered codec can stand alone; a two-stage
//! pipeline must be `sparsifier + qsgd:<bits>` (the quantizer bit-packs the
//! sparsifier's retained values); the `ef-` prefix wraps the whole pipeline
//! in an [`EfCodec`] error-feedback shell.

use crate::codec::{
    CodecCtx, ComposedCodec, DenseCodec, EfCodec, QsgdCodec, RandKCodec, ThresholdCodec, TopKCodec,
    UpdateCodec,
};
use crate::spec::{CompressorSpec, SpecError};
use std::collections::BTreeMap;

/// Builds one codec stage from its optional `:arg` string and the context.
/// Plain function pointers keep the registry `Clone + Send + Sync` for free.
pub type CodecFactory =
    fn(arg: Option<&str>, ctx: &CodecCtx) -> Result<Box<dyn UpdateCodec>, SpecError>;

/// Name → factory table resolving [`CompressorSpec`]s into codecs.
#[derive(Clone)]
pub struct CodecRegistry {
    entries: BTreeMap<String, CodecFactory>,
}

impl CodecRegistry {
    /// An empty registry (no names resolve).
    pub fn empty() -> Self {
        Self {
            entries: BTreeMap::new(),
        }
    }

    /// A registry with the built-in codecs registered.
    pub fn with_builtins() -> Self {
        let mut r = Self::empty();
        r.register("topk", |arg, _ctx| {
            no_arg("topk", arg)?;
            Ok(Box::new(TopKCodec))
        });
        r.register("randk", |arg, _ctx| {
            no_arg("randk", arg)?;
            Ok(Box::new(RandKCodec::default()))
        });
        r.register("threshold", |arg, _ctx| {
            let tau = match arg {
                None => None,
                Some(a) => Some(a.parse::<f32>().map_err(|_| SpecError::BadArg {
                    codec: "threshold".into(),
                    reason: format!("{a:?} is not a number"),
                })?),
            };
            if tau.is_some_and(|t| t.is_nan() || t < 0.0) {
                return Err(SpecError::BadArg {
                    codec: "threshold".into(),
                    reason: "tau must be non-negative".into(),
                });
            }
            Ok(Box::new(ThresholdCodec { tau }))
        });
        r.register("qsgd", |arg, _ctx| Ok(Box::new(parse_qsgd(arg)?)));
        r.register("dense", |arg, _ctx| {
            no_arg("dense", arg)?;
            Ok(Box::new(DenseCodec))
        });
        r
    }

    /// Register (or replace) a codec factory under `name`.
    pub fn register(&mut self, name: impl Into<String>, factory: CodecFactory) {
        self.entries.insert(name.into(), factory);
    }

    /// The registered names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.keys().map(String::as_str)
    }

    /// True if `name` resolves.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Resolve a spec into a ready-to-use codec.
    pub fn build(
        &self,
        spec: &CompressorSpec,
        ctx: &CodecCtx,
    ) -> Result<Box<dyn UpdateCodec>, SpecError> {
        if spec.stages.len() > 2 {
            return Err(SpecError::UnsupportedComposition(spec.to_string()));
        }
        let mut stages = spec.stages.iter();
        let first = stages
            .next()
            .ok_or_else(|| SpecError::Parse(spec.to_string()))?;
        let factory = self
            .entries
            .get(&first.name)
            .ok_or_else(|| SpecError::UnknownCodec(first.name.clone()))?;
        let mut codec = factory(first.arg.as_deref(), ctx)?;
        for stage in stages {
            // Only the `sparsifier + qsgd` composition has a wire format;
            // anything else (including three or more stages) is rejected.
            if stage.name != "qsgd" {
                return Err(SpecError::UnsupportedComposition(spec.to_string()));
            }
            if !self.contains("qsgd") {
                return Err(SpecError::UnknownCodec("qsgd".into()));
            }
            codec = Box::new(ComposedCodec::new(codec, parse_qsgd(stage.arg.as_deref())?));
        }
        if spec.error_feedback {
            codec = Box::new(EfCodec::new(codec, ctx.dense_len));
        }
        Ok(codec)
    }

    /// Check that a spec resolves without instantiating per-model state.
    pub fn validate(&self, spec: &CompressorSpec) -> Result<(), SpecError> {
        self.build(spec, &CodecCtx::new(1, 0)).map(|_| ())
    }
}

impl std::fmt::Debug for CodecRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CodecRegistry")
            .field("names", &self.entries.keys().collect::<Vec<_>>())
            .finish()
    }
}

impl Default for CodecRegistry {
    fn default() -> Self {
        Self::with_builtins()
    }
}

fn no_arg(codec: &str, arg: Option<&str>) -> Result<(), SpecError> {
    match arg {
        None => Ok(()),
        Some(a) => Err(SpecError::BadArg {
            codec: codec.into(),
            reason: format!("takes no argument, got {a:?}"),
        }),
    }
}

fn parse_qsgd(arg: Option<&str>) -> Result<QsgdCodec, SpecError> {
    let arg = arg.ok_or_else(|| SpecError::BadArg {
        codec: "qsgd".into(),
        reason: "needs a bit width, e.g. \"qsgd:8\"".into(),
    })?;
    // `"4"` bit-packs; `"4:rc"` entropy-codes the levels with the adaptive
    // range coder (same quantization, never-expanding byte layout).
    let (width, entropy) = match arg.split_once(':') {
        None => (arg, false),
        Some((width, "rc")) => (width, true),
        Some((_, other)) => {
            return Err(SpecError::BadArg {
                codec: "qsgd".into(),
                reason: format!("unknown coding mode {other:?}, expected \"rc\""),
            })
        }
    };
    let bits: u8 = width.parse().map_err(|_| SpecError::BadArg {
        codec: "qsgd".into(),
        reason: "bit width must be an integer".into(),
    })?;
    if !(2..=16).contains(&bits) {
        return Err(SpecError::BadArg {
            codec: "qsgd".into(),
            reason: format!("bit width {bits} out of range 2..=16"),
        });
    }
    Ok(if entropy {
        QsgdCodec::new_entropy(bits)
    } else {
        QsgdCodec::new(bits)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use fl_tensor::rng::Xoshiro256;

    fn ctx() -> CodecCtx {
        CodecCtx::new(100, 1)
    }

    #[test]
    fn builtins_resolve_and_report_spec_names() {
        let r = CodecRegistry::with_builtins();
        for raw in [
            "topk",
            "randk",
            "threshold",
            "threshold:0.5",
            "qsgd:8",
            "qsgd:4:rc",
            "dense",
            "ef-topk",
            "topk+qsgd:4",
            "topk+qsgd:4:rc",
            "ef-randk+qsgd:6",
            "ef-topk+qsgd:6:rc",
        ] {
            let spec: CompressorSpec = raw.parse().unwrap();
            let codec = r.build(&spec, &ctx()).unwrap();
            assert_eq!(codec.name(), raw, "{raw}");
        }
        assert_eq!(
            r.names().collect::<Vec<_>>(),
            ["dense", "qsgd", "randk", "threshold", "topk"]
        );
    }

    #[test]
    fn unknown_codec_is_reported() {
        let r = CodecRegistry::with_builtins();
        let err = r.validate(&"nope".parse().unwrap()).unwrap_err();
        assert_eq!(err, SpecError::UnknownCodec("nope".into()));
    }

    #[test]
    fn bad_arguments_are_reported() {
        let r = CodecRegistry::with_builtins();
        for raw in [
            "qsgd:99",
            "qsgd:x",
            "qsgd:4:huffman",
            "qsgd:rc",
            "topk:3",
            "threshold:-1",
            "threshold:abc",
        ] {
            assert!(
                matches!(
                    r.validate(&raw.parse().unwrap()),
                    Err(SpecError::BadArg { .. })
                ),
                "{raw} should be a bad argument"
            );
        }
        // qsgd with no argument only fails at build time (parse allows it).
        assert!(matches!(
            r.validate(&"qsgd".parse().unwrap()),
            Err(SpecError::BadArg { .. })
        ));
    }

    #[test]
    fn unsupported_compositions_are_rejected() {
        let r = CodecRegistry::with_builtins();
        for raw in ["qsgd:4+topk", "topk+randk", "topk+qsgd:4+qsgd:4"] {
            assert!(
                matches!(
                    r.validate(&raw.parse().unwrap()),
                    Err(SpecError::UnsupportedComposition(_))
                ),
                "{raw} should be unsupported"
            );
        }
    }

    #[test]
    fn custom_codecs_register_and_compose() {
        fn always_empty(
            _arg: Option<&str>,
            _ctx: &CodecCtx,
        ) -> Result<Box<dyn UpdateCodec>, SpecError> {
            struct Empty;
            impl UpdateCodec for Empty {
                fn name(&self) -> String {
                    "empty".into()
                }
                fn encode(
                    &mut self,
                    dense: &[f32],
                    _ratio: f64,
                    _rng: &mut Xoshiro256,
                ) -> crate::wire::WireUpdate {
                    crate::wire::encode_sparse(&crate::sparse::SparseUpdate::empty(dense.len()))
                }
            }
            Ok(Box::new(Empty))
        }
        let mut r = CodecRegistry::with_builtins();
        r.register("empty", always_empty);
        assert!(r.contains("empty"));
        let mut codec = r.build(&"empty+qsgd:4".parse().unwrap(), &ctx()).unwrap();
        let mut rng = Xoshiro256::new(0);
        let wire = codec.encode(&[1.0, 2.0], 0.5, &mut rng);
        let s = wire.decode().unwrap().into_sparse().unwrap();
        assert_eq!(s.nnz(), 0);
    }
}
