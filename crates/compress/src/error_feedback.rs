//! Error feedback (residual memory) wrapper — the EF-Top-K baseline.
//!
//! Error feedback keeps, per client, the part of the update that compression
//! dropped and adds it back before the next round's compression:
//!
//! ```text
//! corrected_t = delta_t + residual_{t-1}
//! sent_t      = C(corrected_t)
//! residual_t  = corrected_t - sent_t
//! ```
//!
//! Wrapped around Top-K this is exactly the paper's EFTOPK baseline
//! (Sattler et al. 2019; Li & Li 2023).

use crate::compressor::{CompressedUpdate, Compressor};
use fl_tensor::kernels;

/// Stateful error-feedback wrapper around any [`Compressor`].
pub struct ErrorFeedback<C: Compressor> {
    inner: C,
    residual: Vec<f32>,
    corrected: Vec<f32>,
}

impl<C: Compressor> ErrorFeedback<C> {
    /// Wrap a compressor for updates of length `dense_len`.
    pub fn new(inner: C, dense_len: usize) -> Self {
        Self {
            inner,
            residual: vec![0.0; dense_len],
            corrected: vec![0.0; dense_len],
        }
    }

    /// Current residual vector (what has been dropped so far and not yet sent).
    pub fn residual(&self) -> &[f32] {
        &self.residual
    }

    /// L2 norm of the residual — a measure of accumulated compression error.
    pub fn residual_norm(&self) -> f64 {
        self.residual
            .iter()
            .map(|&v| (v as f64).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    /// Reset the residual to zero (e.g. when the client re-joins training).
    pub fn reset(&mut self) {
        self.residual.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Name of the wrapped compressor with an `ef-` prefix.
    pub fn name(&self) -> String {
        format!("ef-{}", self.inner.name())
    }

    /// Compress `dense` with error correction and update the residual.
    pub fn compress_with_feedback(&mut self, dense: &[f32], ratio: f64) -> CompressedUpdate {
        assert_eq!(
            dense.len(),
            self.residual.len(),
            "update length changed between rounds"
        );
        // corrected = dense + residual, fused into the persistent buffer
        // (1.0 * r is exactly r, so this matches the naive `d + r` loop bit
        // for bit).
        self.corrected.copy_from_slice(dense);
        kernels::axpy(1.0, &self.residual, &mut self.corrected);
        let compressed = self.inner.compress(&self.corrected, ratio);
        let sent = compressed.to_dense();
        // residual = corrected - sent, again via the fused kernel
        // (`corr + (-1.0) * s` is IEEE-identical to `corr - s`).
        self.residual.copy_from_slice(&self.corrected);
        kernels::axpy(-1.0, &sent, &mut self.residual);
        compressed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk::TopK;
    use proptest::prelude::*;

    #[test]
    fn residual_holds_dropped_mass() {
        let mut ef = ErrorFeedback::new(TopK::new(), 4);
        let dense = vec![10.0, 1.0, 2.0, 3.0];
        let sent = ef.compress_with_feedback(&dense, 0.25); // keeps only 10.0
        assert_eq!(sent.as_sparse().unwrap().indices(), &[0]);
        assert_eq!(ef.residual(), &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn dropped_coordinates_eventually_sent() {
        // A coordinate too small to ever win Top-K on its own accumulates in
        // the residual until it is transmitted.
        let mut ef = ErrorFeedback::new(TopK::new(), 2);
        let dense = vec![1.0, 0.4];
        let mut coord1_sent = false;
        for _ in 0..5 {
            let sent = ef.compress_with_feedback(&dense, 0.5); // k = 1
            if sent.as_sparse().unwrap().indices().contains(&1) {
                coord1_sent = true;
                break;
            }
        }
        assert!(
            coord1_sent,
            "error feedback never flushed the small coordinate"
        );
    }

    #[test]
    fn conservation_every_round() {
        // sent + residual_new == dense + residual_old (exact bookkeeping).
        let mut ef = ErrorFeedback::new(TopK::new(), 5);
        let rounds = [
            vec![1.0, -2.0, 3.0, -4.0, 5.0],
            vec![0.5, 0.5, 0.5, 0.5, 0.5],
            vec![-1.0, 2.0, 0.0, 1.0, -3.0],
        ];
        for dense in &rounds {
            let before: Vec<f32> = ef.residual().to_vec();
            let sent = ef.compress_with_feedback(dense, 0.4).to_dense();
            for i in 0..5 {
                let lhs = sent[i] + ef.residual()[i];
                let rhs = dense[i] + before[i];
                assert!((lhs - rhs).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn reset_clears_residual() {
        let mut ef = ErrorFeedback::new(TopK::new(), 3);
        ef.compress_with_feedback(&[1.0, 2.0, 3.0], 0.34);
        assert!(ef.residual_norm() > 0.0);
        ef.reset();
        assert_eq!(ef.residual_norm(), 0.0);
    }

    #[test]
    fn name_has_prefix() {
        let ef = ErrorFeedback::new(TopK::new(), 1);
        assert_eq!(ef.name(), "ef-topk");
    }

    proptest! {
        #[test]
        fn prop_conservation(
            dense in proptest::collection::vec(-10.0f32..10.0, 8..64),
            ratio in 0.05f64..0.9,
        ) {
            let mut ef = ErrorFeedback::new(TopK::new(), dense.len());
            for _ in 0..3 {
                let before: Vec<f32> = ef.residual().to_vec();
                let sent = ef.compress_with_feedback(&dense, ratio).to_dense();
                for i in 0..dense.len() {
                    let lhs = sent[i] + ef.residual()[i];
                    let rhs = dense[i] + before[i];
                    prop_assert!((lhs - rhs).abs() < 1e-4);
                }
            }
        }
    }
}
