//! The server-side downlink (broadcast) channel: the second leg of the
//! paper's bidirectional communication model.
//!
//! Uplink compression runs one [`UpdateCodec`] per client; the downlink is a
//! *broadcast* — the server encodes the change of the global parameters since
//! the previous broadcast **once** per round, and every recipient decodes the
//! same byte buffer. [`DownlinkChannel`] owns everything that makes this a
//! faithful simulation:
//!
//! * the boxed [`UpdateCodec`] (any spec the registry resolves — `topk`,
//!   `qsgd:8`, `ef-topk`, …) with its cross-round state. Error-feedback
//!   residuals therefore live **server-side**: the part of the global delta a
//!   lossy broadcast dropped is added back into the next round's broadcast;
//! * a dedicated RNG stream for the codec's per-round randomness (Rand-K
//!   draws, QSGD stochastic rounding), so enabling the downlink leg never
//!   perturbs the uplink or selection streams;
//! * the recipients' shared **view** of the global parameters. A lossy
//!   broadcast means the clients' model drifts from the server's; the view is
//!   what clients actually train from, reconstructed from the decoded bytes
//!   exactly as a receiver would.
//!
//! The encoded buffer's [`WireUpdate::len`] is the honest downlink byte count
//! a network simulator can charge (`fl-netsim`'s `CostBasis::Encoded`).

use crate::codec::UpdateCodec;
use crate::wire::WireUpdate;
use fl_tensor::rng::Xoshiro256;

/// The server end of the broadcast channel: codec + RNG stream + the
/// recipients' shared view of the global parameters.
pub struct DownlinkChannel {
    codec: Box<dyn UpdateCodec>,
    rng: Xoshiro256,
    /// The server's global parameters at the previous broadcast — each
    /// broadcast encodes the server's progress since then, so an
    /// error-feedback codec accumulates exactly the dropped coordinates.
    last_global: Vec<f32>,
    view: Vec<f32>,
    ratio: f64,
}

impl DownlinkChannel {
    /// Open a channel over `codec` for recipients that start from
    /// `initial_params` (federated clients initialise from the same seed as
    /// the server, so the first broadcast only carries the drift since then —
    /// a zero delta). `ratio` is the compression ratio handed to every
    /// broadcast encode (sparsifying codecs honour it; quantizers ignore it).
    /// `seed` starts the channel's private RNG stream.
    pub fn new(codec: Box<dyn UpdateCodec>, initial_params: &[f32], ratio: f64, seed: u64) -> Self {
        assert!(
            ratio > 0.0 && ratio <= 1.0,
            "downlink ratio must be in (0, 1], got {ratio}"
        );
        Self {
            codec,
            rng: Xoshiro256::new(seed),
            last_global: initial_params.to_vec(),
            view: initial_params.to_vec(),
            ratio,
        }
    }

    /// Broadcast the current global parameters: encode the server's progress
    /// since the previous broadcast into wire bytes, decode them back the way
    /// a receiver would, and advance the recipients' view by the decoded
    /// (lossy) delta. Returns the exact buffer that went on the wire; its
    /// length is the round's downlink byte count.
    ///
    /// The encoded quantity is deliberately the *server-side* progress
    /// (`last_global − global`), not the view-vs-server gap: with a plain
    /// lossy codec the recipients' view therefore drifts — the honest price
    /// of broadcast compression — while an `ef-…` codec remembers every
    /// dropped coordinate in its server-side residual and re-ships it, so
    /// repeated broadcasts converge on the server's parameters.
    pub fn broadcast(&mut self, global: &[f32]) -> WireUpdate {
        assert_eq!(
            global.len(),
            self.view.len(),
            "global parameter length changed between broadcasts"
        );
        // Descent-direction convention, matching the uplink: the encoded
        // vector moves the receiver by subtraction (`view -= decoded`).
        let delta: Vec<f32> = self
            .last_global
            .iter()
            .zip(global.iter())
            .map(|(p, g)| p - g)
            .collect();
        let wire = self.codec.encode(&delta, self.ratio, &mut self.rng);
        let decoded = self
            .codec
            .decode(&wire)
            .expect("a codec must decode its own encoding")
            .into_dense();
        for (v, d) in self.view.iter_mut().zip(decoded.iter()) {
            *v -= d;
        }
        self.last_global.copy_from_slice(global);
        wire
    }

    /// Swap the broadcast codec mid-run (an adaptive plan policy re-resolved
    /// the downlink plan) without losing the channel's cross-round state.
    ///
    /// The recipients' view and the `last_global` reference are untouched —
    /// they belong to the *channel*, not the codec — and the old codec's
    /// residual snapshot is handed to `migrate` (typically
    /// [`crate::plan::migrate_planned_residual`], or the identity when the
    /// part layout is unchanged) before being restored into the freshly built
    /// codec. The channel's RNG stream keeps its position, so a swap never
    /// perturbs subsequent draws.
    pub fn swap_codec(
        &mut self,
        mut codec: Box<dyn UpdateCodec>,
        migrate: impl FnOnce(crate::codec::ResidualState) -> crate::codec::ResidualState,
    ) {
        let snapshot = self.codec.take_residual();
        codec.restore_residual(migrate(snapshot));
        self.codec = codec;
    }

    /// The recipients' current view of the global parameters (what clients
    /// train from). Identical to the server's parameters only when the codec
    /// is lossless over the broadcast deltas.
    pub fn view(&self) -> &[f32] {
        &self.view
    }

    /// Name of the broadcast codec (the resolved spec string).
    pub fn codec_name(&self) -> String {
        self.codec.name()
    }

    /// L2 norm of the codec's server-side residual state (0 for stateless
    /// codecs; non-zero once an `ef-…` spec has dropped something).
    pub fn residual_norm(&self) -> f64 {
        self.codec.residual_norm()
    }
}

impl std::fmt::Debug for DownlinkChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DownlinkChannel")
            .field("codec", &self.codec.name())
            .field("dense_len", &self.view.len())
            .field("ratio", &self.ratio)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::CodecCtx;
    use crate::registry::CodecRegistry;

    fn channel(spec: &str, init: &[f32], ratio: f64) -> DownlinkChannel {
        let codec = CodecRegistry::with_builtins()
            .build(&spec.parse().unwrap(), &CodecCtx::new(init.len(), 3))
            .unwrap();
        DownlinkChannel::new(codec, init, ratio, 11)
    }

    #[test]
    fn first_broadcast_of_unchanged_params_moves_nothing() {
        let init = vec![0.5f32, -1.0, 2.0, 0.0];
        let mut ch = channel("topk", &init, 0.5);
        let wire = ch.broadcast(&init);
        assert!(!wire.is_empty());
        assert_eq!(ch.view(), &init[..]);
    }

    #[test]
    fn dense_ratio_broadcast_tracks_the_server_exactly() {
        let init = vec![0.0f32; 6];
        let mut ch = channel("topk", &init, 1.0);
        let mut global = init.clone();
        for step in 1..4 {
            for (i, g) in global.iter_mut().enumerate() {
                *g += (i as f32 + 1.0) * step as f32 * 0.1;
            }
            let wire = ch.broadcast(&global);
            assert!(wire.len() >= global.len() * 4, "ratio-1 ships dense bytes");
            assert_eq!(ch.view(), &global[..], "lossless broadcast stays exact");
        }
    }

    #[test]
    fn lossy_broadcast_drifts_but_ef_recovers_the_residual() {
        let init = vec![0.0f32; 64];
        let mut plain = channel("topk", &init, 0.1);
        let mut ef = channel("ef-topk", &init, 0.1);
        let global: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.7).sin()).collect();

        let _ = plain.broadcast(&global);
        assert_ne!(plain.view(), &global[..], "10% Top-K broadcast is lossy");
        assert_eq!(plain.residual_norm(), 0.0);

        // The EF channel remembers what it dropped server-side and reships it:
        // repeated broadcasts of the same target converge on the view.
        let mut err_prev = f64::INFINITY;
        for _ in 0..24 {
            let _ = ef.broadcast(&global);
            let err: f64 = ef
                .view()
                .iter()
                .zip(global.iter())
                .map(|(v, g)| ((v - g) as f64).powi(2))
                .sum::<f64>()
                .sqrt();
            assert!(err <= err_prev + 1e-6, "EF error must not grow");
            err_prev = err;
        }
        assert!(ef.residual_norm() >= 0.0);
        let plain_err: f64 = plain
            .view()
            .iter()
            .zip(global.iter())
            .map(|(v, g)| ((v - g) as f64).powi(2))
            .sum::<f64>()
            .sqrt();
        assert!(
            err_prev < plain_err,
            "EF broadcasts converge ({err_prev}) below one lossy broadcast ({plain_err})"
        );
    }

    #[test]
    fn broadcast_bytes_shrink_with_the_ratio() {
        let init = vec![0.0f32; 1000];
        let global: Vec<f32> = (0..1000).map(|i| ((i as f32) * 0.31).cos()).collect();
        let small = channel("topk", &init, 0.01).broadcast(&global).len();
        let large = channel("topk", &init, 0.5).broadcast(&global).len();
        assert!(small < large / 10, "{small} vs {large}");
    }

    #[test]
    #[should_panic(expected = "downlink ratio")]
    fn zero_ratio_is_rejected() {
        channel("topk", &[0.0], 0.0);
    }

    #[test]
    fn swap_codec_preserves_view_and_residual() {
        let init = vec![0.0f32; 64];
        let mut ch = channel("ef-topk", &init, 0.1);
        let global: Vec<f32> = (0..64).map(|i| ((i as f32) * 0.7).sin()).collect();
        let _ = ch.broadcast(&global);
        let view_before = ch.view().to_vec();
        let residual_before = ch.residual_norm();
        assert!(residual_before > 0.0);

        // Same part layout (ef → ef): the identity migration carries the
        // server-side residual into the new codec.
        let replacement = CodecRegistry::with_builtins()
            .build(
                &"ef-topk+qsgd:8".parse().unwrap(),
                &CodecCtx::new(init.len(), 3),
            )
            .unwrap();
        ch.swap_codec(replacement, |snap| snap);
        assert_eq!(ch.codec_name(), "ef-topk+qsgd:8");
        assert_eq!(
            ch.view(),
            &view_before[..],
            "the view belongs to the channel"
        );
        assert!(
            (ch.residual_norm() - residual_before).abs() < 1e-12,
            "residual mass survives the swap"
        );

        // ef → stateless: the migration drops the part and the new codec
        // starts clean.
        let stateless = CodecRegistry::with_builtins()
            .build(&"topk".parse().unwrap(), &CodecCtx::new(init.len(), 3))
            .unwrap();
        ch.swap_codec(stateless, |_| crate::codec::ResidualState::empty());
        assert_eq!(ch.residual_norm(), 0.0);
        assert_eq!(ch.view(), &view_before[..]);
    }
}
