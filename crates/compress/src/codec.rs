//! The [`UpdateCodec`] trait — stateful encoder/decoders producing the
//! byte-level [`WireUpdate`] format — and the built-in codec implementations.
//!
//! A codec differs from the primitive [`crate::compressor::Compressor`] in
//! three ways:
//!
//! * **it emits real bytes** — [`UpdateCodec::encode`] returns a versioned
//!   [`WireUpdate`] buffer (varint-delta sparse indices, bit-packed QSGD
//!   levels) whose length is what the network simulator can charge, instead
//!   of an in-memory struct with an asserted size;
//! * **it owns its cross-round state** — `encode` takes `&mut self`, so
//!   error-feedback residuals ([`EfCodec`]) live inside the codec instead of
//!   being special-cased in the client;
//! * **per-round randomness is explicit** — `encode` draws from the caller's
//!   [`Xoshiro256`] stream (one stream per simulated client), so experiment
//!   replays stay bit-exact no matter which codec runs.
//!
//! Codecs are normally built from a parsed [`crate::spec::CompressorSpec`]
//! through the [`crate::registry::CodecRegistry`]; the types here are public
//! so custom codecs can wrap or compose them.

use crate::compressor::{CompressedUpdate, Compressor};
use crate::quantize::{max_level_for_bits, qsgd_levels};
use crate::randk::RandK;
use crate::sparse::SparseUpdate;
use crate::threshold::Threshold;
use crate::topk::TopK;
use crate::wire::{
    encode_dense, encode_quantized, encode_quantized_rc, encode_sparse, encode_sparse_quantized,
    encode_sparse_quantized_rc, WireError, WireUpdate,
};
use fl_tensor::rng::{Rng, Xoshiro256};

/// Everything a codec factory may consult when instantiating a codec.
#[derive(Clone, Copy, Debug)]
pub struct CodecCtx {
    /// Length of the dense update vectors the codec will see (the model's
    /// flat parameter count). Stateful codecs size their buffers from this.
    pub dense_len: usize,
    /// Deterministic seed for codecs that keep private RNG state. The
    /// built-ins instead draw from the stream passed to
    /// [`UpdateCodec::encode`], but custom codecs may want a construction
    /// seed.
    pub seed: u64,
}

impl CodecCtx {
    /// Context for a model with `dense_len` parameters.
    pub fn new(dense_len: usize, seed: u64) -> Self {
        Self { dense_len, seed }
    }
}

/// A snapshot of a codec's cross-round residual state, detached from the
/// codec instance that produced it.
///
/// This is the seam that lets a simulator keep millions of clients *virtual*:
/// instead of holding one live codec per client forever (each
/// [`EfCodec`] owns a model-sized residual vector), the engine extracts the
/// state with [`UpdateCodec::take_residual`] when a client leaves the active
/// cohort, parks it in a [`crate::residual_store::ResidualStore`] keyed by
/// client id, and re-injects it with [`UpdateCodec::restore_residual`] into a
/// freshly built codec the next time the client is selected.
///
/// The snapshot is an ordered list of residual vectors — one per stateful
/// component, in the codec's canonical component order (a flat [`EfCodec`]
/// contributes one part; a [`crate::plan::PlannedCodec`] concatenates its
/// segments' parts in segment order). Stateless codecs produce an empty
/// snapshot.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ResidualState {
    /// Residual vectors in canonical component order.
    pub parts: Vec<Vec<f32>>,
}

impl ResidualState {
    /// A snapshot with no stateful components.
    pub fn empty() -> Self {
        Self::default()
    }

    /// True when the snapshot carries no information: no parts, or every
    /// coordinate of every part exactly zero. Restoring such a snapshot is a
    /// no-op, so stores drop it instead of keeping dead weight.
    pub fn is_trivial(&self) -> bool {
        self.parts.iter().all(|p| p.iter().all(|&v| v == 0.0))
    }

    /// L2 norm over all parts (0 for a trivial snapshot).
    pub fn l2_norm(&self) -> f64 {
        self.parts
            .iter()
            .flat_map(|p| p.iter())
            .map(|&v| (v as f64).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    /// Total number of `f32` scalars held (the snapshot's memory footprint
    /// in 4-byte units).
    pub fn num_scalars(&self) -> usize {
        self.parts.iter().map(Vec::len).sum()
    }
}

/// A stateful encoder/decoder of model updates with a byte-level wire format.
///
/// Implementations must be deterministic given the same inputs, internal
/// state and RNG stream, so experiments replay exactly.
pub trait UpdateCodec: Send {
    /// Name used in reports (normally the spec string that built the codec).
    fn name(&self) -> String;

    /// Encode a dense update at the target `ratio` into wire bytes, drawing
    /// any per-round randomness from `rng` and updating internal state
    /// (error-feedback residuals, …).
    fn encode(&mut self, dense: &[f32], ratio: f64, rng: &mut Xoshiro256) -> WireUpdate;

    /// Reconstruct the lossy update an encoded buffer represents. The default
    /// decodes the standard wire format; codecs with private payload layouts
    /// override this.
    fn decode(&self, wire: &WireUpdate) -> Result<CompressedUpdate, WireError> {
        wire.decode()
    }

    /// L2 norm of any accumulated residual state (0 for stateless codecs).
    fn residual_norm(&self) -> f64 {
        0.0
    }

    /// Move the codec's cross-round residual state out, leaving the codec in
    /// its freshly constructed (all-zero) state. Stateless codecs return an
    /// empty snapshot. Taking the state and immediately
    /// [`restore_residual`](Self::restore_residual)-ing it must round-trip
    /// bit-exactly — the session engine relies on this to keep virtualized
    /// clients indistinguishable from always-resident ones.
    fn take_residual(&mut self) -> ResidualState {
        ResidualState::empty()
    }

    /// Re-inject a residual snapshot previously produced by
    /// [`take_residual`](Self::take_residual) on an identically configured
    /// codec. Restoring an empty snapshot is a no-op (the codec keeps its
    /// fresh all-zero state). Implementations panic on a structurally
    /// incompatible snapshot — that is a wiring bug, not a runtime condition.
    fn restore_residual(&mut self, state: ResidualState) {
        assert!(
            state.parts.is_empty(),
            "stateless codec {} cannot restore a {}-part residual snapshot",
            self.name(),
            state.parts.len()
        );
    }
}

/// Magnitude Top-K sparsification (the paper's primary compressor).
#[derive(Clone, Copy, Debug, Default)]
pub struct TopKCodec;

impl UpdateCodec for TopKCodec {
    fn name(&self) -> String {
        "topk".into()
    }

    fn encode(&mut self, dense: &[f32], ratio: f64, _rng: &mut Xoshiro256) -> WireUpdate {
        // A ratio-1.0 upload retains everything: ship the dense wire format
        // (raw f32s, no per-coordinate index overhead) so uncompressed
        // baselines like FedAvg are charged honest dense bytes.
        if TopK::k_for(dense.len(), ratio) == dense.len() {
            return encode_dense(dense);
        }
        match TopK::new().compress(dense, ratio) {
            CompressedUpdate::Sparse(s) => encode_sparse(&s),
            CompressedUpdate::Quantized { .. } => unreachable!("TopK is a sparsifier"),
        }
    }
}

/// The explicit "don't compress this" codec: every coordinate ships as a raw
/// f32 in the dense wire kind, ignoring the target ratio. Layer plans use it
/// for segments that collapse under sparsification (biases, norm scales) —
/// `"*.bias=dense"` keeps those few coordinates exact while the big layers
/// stay aggressively compressed.
#[derive(Clone, Copy, Debug, Default)]
pub struct DenseCodec;

impl UpdateCodec for DenseCodec {
    fn name(&self) -> String {
        "dense".into()
    }

    fn encode(&mut self, dense: &[f32], _ratio: f64, _rng: &mut Xoshiro256) -> WireUpdate {
        encode_dense(dense)
    }
}

/// Uniform Rand-K sparsification. Draws one `u64` seed per round from the
/// session stream — the same draw order the pre-codec engine used, so Rand-K
/// trajectories replay bit-identically.
#[derive(Clone, Copy, Debug)]
pub struct RandKCodec {
    /// Rescale retained values by `len/k` (unbiased estimator) when true.
    pub unbiased: bool,
}

impl Default for RandKCodec {
    fn default() -> Self {
        Self { unbiased: true }
    }
}

impl UpdateCodec for RandKCodec {
    fn name(&self) -> String {
        "randk".into()
    }

    fn encode(&mut self, dense: &[f32], ratio: f64, rng: &mut Xoshiro256) -> WireUpdate {
        let round_seed = rng.next_u64();
        let randk = if self.unbiased {
            RandK::new(round_seed)
        } else {
            RandK::biased(round_seed)
        };
        match randk.compress(dense, ratio) {
            CompressedUpdate::Sparse(s) => encode_sparse(&s),
            CompressedUpdate::Quantized { .. } => unreachable!("RandK is a sparsifier"),
        }
    }
}

/// Hard-threshold sparsification. With an absolute `tau` the target ratio is
/// ignored; without one the threshold is derived from the `1 − ratio`
/// magnitude quantile (the [`Threshold`] compressor's behaviour).
#[derive(Clone, Copy, Debug, Default)]
pub struct ThresholdCodec {
    /// Optional absolute magnitude threshold (`"threshold:0.01"`).
    pub tau: Option<f32>,
}

impl UpdateCodec for ThresholdCodec {
    fn name(&self) -> String {
        match self.tau {
            Some(t) => format!("threshold:{t}"),
            None => "threshold".into(),
        }
    }

    fn encode(&mut self, dense: &[f32], ratio: f64, _rng: &mut Xoshiro256) -> WireUpdate {
        let sparse = match self.tau {
            Some(tau) => SparseUpdate::from_dense_mask(dense, |_, v| v.abs() >= tau && v != 0.0),
            None => match Threshold::new().compress(dense, ratio) {
                CompressedUpdate::Sparse(s) => s,
                CompressedUpdate::Quantized { .. } => unreachable!("Threshold is a sparsifier"),
            },
        };
        encode_sparse(&sparse)
    }
}

/// QSGD stochastic quantization at a fixed bit width: every coordinate is
/// transmitted as a sign plus `bits − 1` level bits, bit-packed on the wire
/// — or, with the `:rc` suffix (`"qsgd:4:rc"`), entropy-coded through the
/// adaptive range coder, which never expands past the bit-packed size.
/// The target ratio is ignored (the compression factor is `32 / bits`).
#[derive(Clone, Copy, Debug)]
pub struct QsgdCodec {
    /// Bits per coordinate including the sign bit, in `2..=16`.
    pub bits: u8,
    /// Entropy-code the levels ([`crate::wire::KIND_ENTROPY`]) instead of
    /// bit-packing them. Quantization itself — levels, norm, RNG draws — is
    /// identical either way; only the byte layout (and count) changes.
    pub entropy: bool,
}

impl QsgdCodec {
    /// New bit-packing QSGD codec at the given bit width. Panics unless
    /// `bits ∈ 2..=16`.
    pub fn new(bits: u8) -> Self {
        let _ = max_level_for_bits(bits); // validates the range
        Self {
            bits,
            entropy: false,
        }
    }

    /// New entropy-coding QSGD codec (`"qsgd:<bits>:rc"`).
    pub fn new_entropy(bits: u8) -> Self {
        Self {
            entropy: true,
            ..Self::new(bits)
        }
    }

    /// Quantize a value slice, returning `(norm, signed levels)`.
    pub fn quantize(&self, values: &[f32], rng: &mut Xoshiro256) -> (f32, Vec<i32>) {
        qsgd_levels(values, max_level_for_bits(self.bits), rng)
    }
}

impl UpdateCodec for QsgdCodec {
    fn name(&self) -> String {
        if self.entropy {
            format!("qsgd:{}:rc", self.bits)
        } else {
            format!("qsgd:{}", self.bits)
        }
    }

    fn encode(&mut self, dense: &[f32], _ratio: f64, rng: &mut Xoshiro256) -> WireUpdate {
        let (norm, levels) = self.quantize(dense, rng);
        if self.entropy {
            encode_quantized_rc(dense.len(), self.bits, norm, &levels)
        } else {
            encode_quantized(dense.len(), self.bits, norm, &levels)
        }
    }
}

/// Sparsify-then-quantize composition (`"topk+qsgd:4"`): the first stage
/// picks the retained coordinates, the second bit-packs their values, so the
/// wire carries varint-delta indices plus `bits`-wide levels instead of full
/// `f32`s.
pub struct ComposedCodec {
    sparsifier: Box<dyn UpdateCodec>,
    quantizer: QsgdCodec,
}

impl ComposedCodec {
    /// Compose a sparsifying codec with a QSGD value quantizer.
    pub fn new(sparsifier: Box<dyn UpdateCodec>, quantizer: QsgdCodec) -> Self {
        Self {
            sparsifier,
            quantizer,
        }
    }
}

impl UpdateCodec for ComposedCodec {
    fn name(&self) -> String {
        format!("{}+{}", self.sparsifier.name(), self.quantizer.name())
    }

    fn encode(&mut self, dense: &[f32], ratio: f64, rng: &mut Xoshiro256) -> WireUpdate {
        let inner = self.sparsifier.encode(dense, ratio, rng);
        let sparse = self
            .sparsifier
            .decode(&inner)
            .ok()
            .and_then(CompressedUpdate::into_sparse)
            .expect("the first stage of a composed codec must produce a sparse update");
        let (norm, levels) = self.quantizer.quantize(sparse.values(), rng);
        if self.quantizer.entropy {
            encode_sparse_quantized_rc(
                sparse.dense_len(),
                sparse.indices(),
                self.quantizer.bits,
                norm,
                &levels,
            )
        } else {
            encode_sparse_quantized(
                sparse.dense_len(),
                sparse.indices(),
                self.quantizer.bits,
                norm,
                &levels,
            )
        }
    }

    fn residual_norm(&self) -> f64 {
        self.sparsifier.residual_norm()
    }

    fn take_residual(&mut self) -> ResidualState {
        self.sparsifier.take_residual()
    }

    fn restore_residual(&mut self, state: ResidualState) {
        self.sparsifier.restore_residual(state);
    }
}

/// Error-feedback wrapper around any codec: the part of the update the inner
/// codec's lossy encode→decode round trip dropped is remembered and added
/// back before the next round's encode (`ef-topk` is the paper's EFTOPK
/// baseline).
pub struct EfCodec {
    inner: Box<dyn UpdateCodec>,
    residual: Vec<f32>,
    /// Reusable scratch for the corrected (`dense + residual`) vector: one
    /// model-sized buffer allocated at construction instead of one fresh
    /// `Vec` per round per client.
    scratch: Vec<f32>,
}

impl EfCodec {
    /// Wrap `inner` for updates of length `dense_len`.
    pub fn new(inner: Box<dyn UpdateCodec>, dense_len: usize) -> Self {
        Self {
            inner,
            residual: vec![0.0; dense_len],
            scratch: vec![0.0; dense_len],
        }
    }

    /// The current residual vector.
    pub fn residual(&self) -> &[f32] {
        &self.residual
    }
}

impl UpdateCodec for EfCodec {
    fn name(&self) -> String {
        format!("ef-{}", self.inner.name())
    }

    fn encode(&mut self, dense: &[f32], ratio: f64, rng: &mut Xoshiro256) -> WireUpdate {
        assert_eq!(
            dense.len(),
            self.residual.len(),
            "update length changed between rounds"
        );
        for ((c, &d), &r) in self
            .scratch
            .iter_mut()
            .zip(dense.iter())
            .zip(self.residual.iter())
        {
            *c = d + r;
        }
        let wire = self.inner.encode(&self.scratch, ratio, rng);
        let sent = self
            .inner
            .decode(&wire)
            .expect("a codec must decode its own encoding");
        // New residual = corrected − sent. For coordinates a sparse encode
        // dropped, sent is 0.0 and `corr − 0.0` is bitwise `corr`, so start
        // from a copy of the corrected vector and subtract only at the
        // retained coordinates — no densified `sent` allocation.
        self.residual.copy_from_slice(&self.scratch);
        match sent {
            CompressedUpdate::Sparse(s) => {
                for (&i, &v) in s.indices().iter().zip(s.values().iter()) {
                    self.residual[i as usize] = self.scratch[i as usize] - v;
                }
            }
            CompressedUpdate::Quantized { values, .. } => {
                for (res, &v) in self.residual.iter_mut().zip(values.iter()) {
                    *res -= v;
                }
            }
        }
        wire
    }

    fn decode(&self, wire: &WireUpdate) -> Result<CompressedUpdate, WireError> {
        self.inner.decode(wire)
    }

    fn residual_norm(&self) -> f64 {
        self.residual
            .iter()
            .map(|&v| (v as f64).powi(2))
            .sum::<f64>()
            .sqrt()
    }

    fn take_residual(&mut self) -> ResidualState {
        let len = self.residual.len();
        ResidualState {
            parts: vec![std::mem::replace(&mut self.residual, vec![0.0; len])],
        }
    }

    fn restore_residual(&mut self, state: ResidualState) {
        if state.parts.is_empty() {
            return;
        }
        assert_eq!(
            state.parts.len(),
            1,
            "ef codec residual snapshot must have exactly one part"
        );
        let part = state.parts.into_iter().next().unwrap();
        assert_eq!(
            part.len(),
            self.residual.len(),
            "ef codec residual snapshot length changed between checkouts"
        );
        self.residual = part;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256 {
        Xoshiro256::new(7)
    }

    fn delta(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.37).sin() * 0.1).collect()
    }

    #[test]
    fn topk_codec_roundtrip_is_exact_on_retained() {
        let d = delta(500);
        let wire = TopKCodec.encode(&d, 0.1, &mut rng());
        let s = wire.decode().unwrap().into_sparse().unwrap();
        assert_eq!(s.nnz(), 50);
        for (&i, &v) in s.indices().iter().zip(s.values().iter()) {
            assert_eq!(v, d[i as usize]);
        }
    }

    #[test]
    fn topk_codec_ships_dense_format_at_full_ratio() {
        use crate::wire::{KIND_DENSE, KIND_SPARSE};
        let d = delta(100);
        let full = TopKCodec.encode(&d, 1.0, &mut rng());
        assert_eq!(full.kind().unwrap(), KIND_DENSE);
        // Header + varint + 4 bytes/coordinate: honest dense accounting.
        assert!(full.len() <= 100 * 4 + 16);
        let s = full.decode().unwrap().into_sparse().unwrap();
        assert_eq!(s.nnz(), 100);
        assert_eq!(s.to_dense(), d);
        // A genuinely sparse ratio still uses the sparse format.
        let sparse = TopKCodec.encode(&d, 0.5, &mut rng());
        assert_eq!(sparse.kind().unwrap(), KIND_SPARSE);
    }

    #[test]
    fn randk_codec_draw_matches_legacy_seed_order() {
        // The codec must consume exactly one u64 from the stream and feed it
        // to RandK the way the pre-codec client did.
        let d = delta(200);
        let mut stream = rng();
        let wire = RandKCodec::default().encode(&d, 0.1, &mut stream);
        let legacy = RandK::new(rng().next_u64()).compress(&d, 0.1);
        assert_eq!(
            wire.decode().unwrap().into_sparse().unwrap(),
            legacy.into_sparse().unwrap()
        );
        // Exactly one draw: the stream's next value matches a twice-advanced
        // fresh stream.
        let mut fresh = rng();
        fresh.next_u64();
        assert_eq!(stream.next_u64(), fresh.next_u64());
    }

    #[test]
    fn threshold_codec_absolute_tau() {
        let d = vec![0.005, 0.5, -0.02, 0.0, -0.8];
        let mut c = ThresholdCodec { tau: Some(0.1) };
        let s = c
            .encode(&d, 1.0, &mut rng())
            .decode()
            .unwrap()
            .into_sparse()
            .unwrap();
        assert_eq!(s.indices(), &[1, 4]);
    }

    #[test]
    fn qsgd_codec_bounds_error_and_beats_dense() {
        let d = delta(1000);
        let norm = d.iter().map(|v| v * v).sum::<f32>().sqrt();
        let mut c = QsgdCodec::new(8); // 127 levels
        let wire = c.encode(&d, 1.0, &mut rng());
        assert!(wire.len() < 1000 * 4 / 2, "8-bit wire beats f32 by >2x");
        let rec = wire.decode().unwrap().into_dense();
        for (a, b) in d.iter().zip(rec.iter()) {
            assert!((a - b).abs() <= norm / 127.0 + 1e-5);
        }
    }

    #[test]
    fn composed_codec_quantizes_retained_values() {
        let d = delta(2000);
        let mut c = ComposedCodec::new(Box::new(TopKCodec), QsgdCodec::new(6));
        let wire = c.encode(&d, 0.05, &mut rng());
        // 100 retained coords: ≤ ~2 bytes of index + 6 bits of value each,
        // far below the 8 bytes/coord of the f32 sparse format.
        assert!(wire.len() < 100 * 8 / 2);
        let s = wire.decode().unwrap().into_sparse().unwrap();
        assert_eq!(s.nnz(), 100);
        let retained_norm = s.values().iter().map(|v| v * v).sum::<f32>().sqrt();
        for (&i, &v) in s.indices().iter().zip(s.values().iter()) {
            assert!((v - d[i as usize]).abs() <= retained_norm / 31.0 + 1e-5);
        }
    }

    #[test]
    fn ef_codec_matches_legacy_error_feedback() {
        use crate::error_feedback::ErrorFeedback;
        let d = delta(300);
        let mut legacy = ErrorFeedback::new(TopK::new(), d.len());
        let mut codec = EfCodec::new(Box::new(TopKCodec), d.len());
        for _ in 0..4 {
            let sent_legacy = legacy.compress_with_feedback(&d, 0.1).to_dense();
            let sent_codec = codec
                .encode(&d, 0.1, &mut rng())
                .decode()
                .unwrap()
                .into_dense();
            assert_eq!(sent_legacy, sent_codec);
        }
        assert!((codec.residual_norm() - legacy.residual_norm()).abs() < 1e-12);
    }

    #[test]
    fn ef_codec_conservation() {
        let d = delta(64);
        let mut codec = EfCodec::new(Box::new(TopKCodec), d.len());
        let mut stream = rng();
        for _ in 0..3 {
            let before = codec.residual().to_vec();
            let sent = codec
                .encode(&d, 0.2, &mut stream)
                .decode()
                .unwrap()
                .into_dense();
            for i in 0..d.len() {
                let lhs = sent[i] + codec.residual()[i];
                let rhs = d[i] + before[i];
                assert!((lhs - rhs).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn ef_residual_snapshot_moves_between_instances() {
        // take → restore into a fresh codec must continue the trajectory
        // bit-for-bit: this is the contract client virtualization relies on.
        let d = delta(200);
        let mut persistent = EfCodec::new(Box::new(TopKCodec), d.len());
        let _ = persistent.encode(&d, 0.05, &mut rng());
        let _ = persistent.encode(&d, 0.05, &mut rng());

        let mut first = EfCodec::new(Box::new(TopKCodec), d.len());
        let _ = first.encode(&d, 0.05, &mut rng());
        let snapshot = first.take_residual();
        assert_eq!(snapshot.parts.len(), 1);
        assert!(first.residual().iter().all(|&v| v == 0.0), "take resets");
        let mut second = EfCodec::new(Box::new(TopKCodec), d.len());
        second.restore_residual(snapshot);
        let wire_resumed = second.encode(&d, 0.05, &mut rng());
        let wire_straight = {
            let mut reference = EfCodec::new(Box::new(TopKCodec), d.len());
            let _ = reference.encode(&d, 0.05, &mut rng());
            reference.encode(&d, 0.05, &mut rng())
        };
        assert_eq!(wire_resumed.as_bytes(), wire_straight.as_bytes());
        assert!((second.residual_norm() - persistent.residual_norm()).abs() < 1e-12);
    }

    #[test]
    fn stateless_codecs_snapshot_empty() {
        let mut codec = TopKCodec;
        assert!(codec.take_residual().parts.is_empty());
        codec.restore_residual(ResidualState::empty());
        let mut composed = ComposedCodec::new(Box::new(TopKCodec), QsgdCodec::new(8));
        assert!(composed.take_residual().parts.is_empty());
    }

    #[test]
    #[should_panic(expected = "stateless codec")]
    fn stateless_codecs_reject_nontrivial_snapshots() {
        TopKCodec.restore_residual(ResidualState {
            parts: vec![vec![1.0]],
        });
    }

    #[test]
    fn composed_codec_delegates_residual_to_sparsifier() {
        let d = delta(120);
        let mut composed = ComposedCodec::new(
            Box::new(EfCodec::new(Box::new(TopKCodec), d.len())),
            QsgdCodec::new(8),
        );
        let mut stream = rng();
        let _ = composed.encode(&d, 0.1, &mut stream);
        let snap = composed.take_residual();
        assert_eq!(snap.parts.len(), 1);
        assert!(
            (composed.residual_norm() - 0.0).abs() < 1e-12,
            "take resets"
        );
        composed.restore_residual(snap);
        assert!(composed.residual_norm() > 0.0);
    }

    #[test]
    fn names_compose() {
        assert_eq!(TopKCodec.name(), "topk");
        assert_eq!(QsgdCodec::new(4).name(), "qsgd:4");
        assert_eq!(QsgdCodec::new_entropy(4).name(), "qsgd:4:rc");
        assert_eq!(
            ComposedCodec::new(Box::new(TopKCodec), QsgdCodec::new(4)).name(),
            "topk+qsgd:4"
        );
        assert_eq!(
            ComposedCodec::new(Box::new(TopKCodec), QsgdCodec::new_entropy(6)).name(),
            "topk+qsgd:6:rc"
        );
        assert_eq!(EfCodec::new(Box::new(TopKCodec), 1).name(), "ef-topk");
    }

    #[test]
    fn entropy_qsgd_shrinks_bytes_without_changing_values() {
        // Same bit width, same RNG stream: the entropy codec must produce
        // the same lossy values as the bit-packing codec (quantization is
        // identical) in strictly fewer bytes on gradient-like data.
        let d = delta(4096);
        let packed = QsgdCodec::new(4).encode(&d, 1.0, &mut rng());
        let entropy = QsgdCodec::new_entropy(4).encode(&d, 1.0, &mut rng());
        assert_eq!(entropy.kind().unwrap(), crate::wire::KIND_ENTROPY);
        assert!(
            entropy.len() < packed.len(),
            "entropy {} >= packed {}",
            entropy.len(),
            packed.len()
        );
        let a = packed.decode().unwrap().into_dense();
        let b = entropy.decode().unwrap().into_dense();
        assert!(a
            .iter()
            .zip(b.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn composed_entropy_qsgd_shrinks_sparse_quantized_bytes() {
        let d = delta(4096);
        let mut packed = ComposedCodec::new(Box::new(TopKCodec), QsgdCodec::new(6));
        let mut entropy = ComposedCodec::new(Box::new(TopKCodec), QsgdCodec::new_entropy(6));
        let wp = packed.encode(&d, 0.05, &mut rng());
        let we = entropy.encode(&d, 0.05, &mut rng());
        assert_eq!(we.kind().unwrap(), crate::wire::KIND_ENTROPY);
        assert!(
            we.len() < wp.len(),
            "entropy {} >= packed {}",
            we.len(),
            wp.len()
        );
        let a = wp.decode().unwrap().into_sparse().unwrap();
        let b = we.decode().unwrap().into_sparse().unwrap();
        assert_eq!(a.indices(), b.indices());
        assert!(a
            .values()
            .iter()
            .zip(b.values().iter())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }
}
