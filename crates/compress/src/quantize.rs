//! QSGD-style stochastic uniform quantization.
//!
//! The paper's framework integrates "common compression techniques" beyond
//! sparsification; quantization is the canonical second family. This module
//! implements the QSGD scheme: values are scaled by the vector's L2 norm,
//! mapped onto `s` uniform levels with stochastic rounding, and transmitted
//! as (norm, sign, level) triples.

use crate::compressor::{CompressedUpdate, Compressor};
use fl_tensor::rng::{Rng, SplitMix64};

/// Largest magnitude level representable in a `bits`-wide packed coordinate
/// (one bit is the sign): `2^(bits−1) − 1`.
pub fn max_level_for_bits(bits: u8) -> u32 {
    assert!((2..=16).contains(&bits), "bits must be in 2..=16");
    (1u32 << (bits - 1)) - 1
}

/// QSGD stochastic quantization of `values` onto `max_level` uniform levels:
/// returns the vector's L2 norm and one signed level per coordinate
/// (`value ≈ sign · norm · level / max_level`). Rounding randomness comes
/// from `rng`; one draw per coordinate, so the stream advances
/// deterministically.
pub fn qsgd_levels<R: Rng>(values: &[f32], max_level: u32, rng: &mut R) -> (f32, Vec<i32>) {
    assert!(max_level >= 1, "need at least one quantization level");
    let norm = values
        .iter()
        .map(|v| (*v as f64).powi(2))
        .sum::<f64>()
        .sqrt() as f32;
    if norm == 0.0 || !norm.is_finite() {
        return (norm, vec![0; values.len()]);
    }
    let s = max_level as f32;
    let levels = values
        .iter()
        .map(|&v| {
            let scaled = v.abs() / norm * s; // in [0, s]
            let floor = scaled.floor();
            let frac = scaled - floor;
            let level = if rng.next_f32() < frac {
                floor + 1.0
            } else {
                floor
            };
            let mag = (level as i32).min(max_level as i32);
            if v.is_sign_negative() {
                -mag
            } else {
                mag
            }
        })
        .collect();
    (norm, levels)
}

/// Invert [`qsgd_levels`]: reconstruct the lossy dense values.
pub fn qsgd_dequantize(norm: f32, max_level: u32, levels: &[i32]) -> Vec<f32> {
    let s = max_level as f32;
    levels.iter().map(|&l| norm * l as f32 / s).collect()
}

/// Stochastic uniform quantizer with `levels` quantization levels.
#[derive(Clone, Copy, Debug)]
pub struct Qsgd {
    levels: u32,
    seed: u64,
}

impl Qsgd {
    /// Create a quantizer with the given number of levels (`>= 1`) and seed.
    pub fn new(levels: u32, seed: u64) -> Self {
        assert!(levels >= 1, "need at least one quantization level");
        Self { levels, seed }
    }

    /// Bits needed per coordinate: 1 sign bit + ceil(log2(levels + 1)).
    pub fn bits_per_coordinate(&self) -> u32 {
        1 + (32 - (self.levels).leading_zeros())
    }

    /// Wire size in bytes for a vector of the given length: a 4-byte norm
    /// plus the packed per-coordinate payload.
    pub fn wire_bytes(&self, len: usize) -> usize {
        4 + (len * self.bits_per_coordinate() as usize).div_ceil(8)
    }
}

impl Compressor for Qsgd {
    /// `ratio` is ignored by the quantizer (its compression factor is fixed
    /// by the level count); it is part of the trait signature so quantizers
    /// can be swapped into the same pipeline as sparsifiers.
    fn compress(&self, dense: &[f32], _ratio: f64) -> CompressedUpdate {
        let norm = dense
            .iter()
            .map(|v| (*v as f64).powi(2))
            .sum::<f64>()
            .sqrt() as f32;
        if norm == 0.0 || dense.is_empty() {
            return CompressedUpdate::Quantized {
                values: vec![0.0; dense.len()],
                wire_bytes: self.wire_bytes(dense.len()),
            };
        }
        let s = self.levels as f32;
        let mut rng = SplitMix64::new(self.seed ^ dense.len() as u64 ^ norm.to_bits() as u64);
        let values = dense
            .iter()
            .map(|&v| {
                let ratio = v.abs() / norm; // in [0, 1]
                let scaled = ratio * s;
                let floor = scaled.floor();
                let frac = scaled - floor;
                let level = if rng.next_f32() < frac {
                    floor + 1.0
                } else {
                    floor
                };
                v.signum() * norm * level / s
            })
            .collect();
        CompressedUpdate::Quantized {
            values,
            wire_bytes: self.wire_bytes(dense.len()),
        }
    }

    fn name(&self) -> &'static str {
        "qsgd"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_vector_stays_zero() {
        let q = Qsgd::new(16, 1);
        let c = q.compress(&[0.0; 8], 1.0);
        assert_eq!(c.to_dense(), vec![0.0; 8]);
    }

    #[test]
    fn wire_size_smaller_than_dense() {
        let q = Qsgd::new(15, 1); // 1 + 4 bits = 5 bits/coord
        assert_eq!(q.bits_per_coordinate(), 5);
        let bytes = q.wire_bytes(1000);
        assert!(bytes < 1000 * 4, "quantized {bytes} should beat dense 4000");
    }

    #[test]
    fn quantization_error_bounded() {
        // |x - Q(x)| <= norm / levels per coordinate.
        let dense: Vec<f32> = (0..256).map(|i| ((i as f32) * 0.37).sin()).collect();
        let norm = dense.iter().map(|v| v * v).sum::<f32>().sqrt();
        let q = Qsgd::new(64, 5);
        let rec = q.compress(&dense, 1.0).to_dense();
        for (a, b) in dense.iter().zip(rec.iter()) {
            assert!((a - b).abs() <= norm / 64.0 + 1e-5);
        }
    }

    #[test]
    fn signs_preserved() {
        let dense = vec![1.0, -1.0, 2.0, -2.0];
        let rec = Qsgd::new(128, 3).compress(&dense, 1.0).to_dense();
        for (a, b) in dense.iter().zip(rec.iter()) {
            assert!(a * b >= 0.0, "sign flipped: {a} -> {b}");
        }
    }

    #[test]
    fn deterministic_per_input() {
        let dense: Vec<f32> = (0..64).map(|i| (i as f32).cos()).collect();
        let q = Qsgd::new(8, 9);
        assert_eq!(
            q.compress(&dense, 1.0).to_dense(),
            q.compress(&dense, 1.0).to_dense()
        );
    }

    #[test]
    #[should_panic]
    fn zero_levels_rejected() {
        Qsgd::new(0, 1);
    }

    #[test]
    fn level_helpers_roundtrip_within_tolerance() {
        let dense: Vec<f32> = (0..128).map(|i| ((i as f32) * 0.73).sin()).collect();
        let mut rng = SplitMix64::new(3);
        let max_level = max_level_for_bits(6); // 31
        let (norm, levels) = qsgd_levels(&dense, max_level, &mut rng);
        assert_eq!(levels.len(), dense.len());
        assert!(levels.iter().all(|&l| l.unsigned_abs() <= max_level));
        let rec = qsgd_dequantize(norm, max_level, &levels);
        for (a, b) in dense.iter().zip(rec.iter()) {
            assert!((a - b).abs() <= norm / max_level as f32 + 1e-5);
            assert!(a * b >= 0.0, "sign flipped: {a} -> {b}");
        }
    }

    #[test]
    fn level_helpers_zero_vector() {
        let mut rng = SplitMix64::new(1);
        let (norm, levels) = qsgd_levels(&[0.0; 5], 7, &mut rng);
        assert_eq!(norm, 0.0);
        assert_eq!(levels, vec![0; 5]);
        assert_eq!(qsgd_dequantize(norm, 7, &levels), vec![0.0; 5]);
    }

    #[test]
    fn max_level_for_bits_values() {
        assert_eq!(max_level_for_bits(2), 1);
        assert_eq!(max_level_for_bits(4), 7);
        assert_eq!(max_level_for_bits(8), 127);
        assert_eq!(max_level_for_bits(16), 32_767);
    }

    #[test]
    #[should_panic]
    fn one_bit_has_no_room_for_a_level() {
        max_level_for_bits(1);
    }
}
