//! Magnitude-based Top-K sparsification — the paper's primary compressor.

use crate::compressor::{CompressedUpdate, Compressor};
use crate::sparse::SparseUpdate;

/// Retain the `k = ceil(ratio * len)` coordinates with the largest absolute
/// value (ties broken towards lower indices), zeroing the rest.
///
/// ```
/// use fl_compress::{Compressor, TopK};
///
/// let delta = vec![0.1, -5.0, 0.3, 4.0, -0.2];
/// let compressed = TopK::new().compress(&delta, 0.4); // keep 2 of 5
/// let sparse = compressed.as_sparse().unwrap();
/// assert_eq!(sparse.indices(), &[1, 3]);
/// assert_eq!(sparse.values(), &[-5.0, 4.0]);
/// assert_eq!(sparse.wire_size_bytes(), 16); // 8 bytes per retained coord
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct TopK;

impl TopK {
    /// New Top-K compressor.
    pub fn new() -> Self {
        Self
    }

    /// Number of coordinates retained for a vector of length `len` at `ratio`.
    /// At least one coordinate is kept for any positive ratio and non-empty
    /// vector; the ratio is clamped to `[0, 1]`.
    pub fn k_for(len: usize, ratio: f64) -> usize {
        if len == 0 {
            return 0;
        }
        let ratio = ratio.clamp(0.0, 1.0);
        if ratio == 0.0 {
            return 0;
        }
        ((ratio * len as f64).ceil() as usize).clamp(1, len)
    }

    /// Select the indices of the `k` largest-magnitude entries, returned in
    /// increasing index order.
    ///
    /// The comparator is a **total order** (`f32::total_cmp` over absolute
    /// values, ties broken towards lower indices), so NaN gradients cannot
    /// poison `select_nth_unstable_by`: an inconsistent comparator (the old
    /// `partial_cmp → Equal` fallback) breaks the transitivity that partial
    /// selection relies on. Under `total_cmp`, `|NaN|` orders above every
    /// finite magnitude and `+∞`, so NaN entries are deterministically
    /// retained first — they stay visible to the server instead of being
    /// silently dropped or scrambling the selection.
    pub fn select_indices(dense: &[f32], k: usize) -> Vec<u32> {
        let k = k.min(dense.len());
        if k == 0 {
            return Vec::new();
        }
        if k == dense.len() {
            return (0..dense.len() as u32).collect();
        }
        // Partial selection: sort index list by |value| descending using
        // select_nth_unstable for O(n) average behaviour.
        let mut idx: Vec<u32> = (0..dense.len() as u32).collect();
        idx.select_nth_unstable_by(k - 1, |&a, &b| {
            let va = dense[a as usize].abs();
            let vb = dense[b as usize].abs();
            vb.total_cmp(&va).then(a.cmp(&b))
        });
        let mut selected = idx[..k].to_vec();
        selected.sort_unstable();
        selected
    }
}

impl Compressor for TopK {
    fn compress(&self, dense: &[f32], ratio: f64) -> CompressedUpdate {
        let k = Self::k_for(dense.len(), ratio);
        let indices = Self::select_indices(dense, k);
        let values = indices.iter().map(|&i| dense[i as usize]).collect();
        CompressedUpdate::Sparse(SparseUpdate::new(indices, values, dense.len()))
    }

    fn name(&self) -> &'static str {
        "topk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn keeps_largest_magnitudes() {
        let dense = vec![0.1, -5.0, 0.3, 4.0, -0.2];
        let c = TopK::new().compress(&dense, 0.4); // k = 2
        let s = c.as_sparse().unwrap();
        assert_eq!(s.indices(), &[1, 3]);
        assert_eq!(s.values(), &[-5.0, 4.0]);
    }

    #[test]
    fn k_for_boundaries() {
        assert_eq!(TopK::k_for(100, 0.1), 10);
        assert_eq!(TopK::k_for(100, 0.001), 1); // at least one retained
        assert_eq!(TopK::k_for(100, 0.0), 0);
        assert_eq!(TopK::k_for(100, 1.5), 100);
        assert_eq!(TopK::k_for(0, 0.5), 0);
        assert_eq!(TopK::k_for(7, 0.5), 4); // ceil(3.5)
    }

    #[test]
    fn ratio_one_keeps_everything() {
        let dense = vec![1.0, 0.0, -2.0];
        let c = TopK::new().compress(&dense, 1.0);
        assert_eq!(c.to_dense(), dense);
    }

    #[test]
    fn zero_ratio_keeps_nothing() {
        let dense = vec![1.0, 2.0];
        let c = TopK::new().compress(&dense, 0.0);
        assert_eq!(c.as_sparse().unwrap().nnz(), 0);
    }

    #[test]
    fn nan_entries_are_retained_deterministically() {
        // A NaN gradient must not scramble the selection: total_cmp ranks
        // |NaN| above every finite magnitude, so the NaN coordinate is
        // retained first and the rest of the selection is the usual Top-K.
        let dense = vec![0.1, f32::NAN, 0.3, -4.0, 0.2];
        let a = TopK::select_indices(&dense, 2);
        let b = TopK::select_indices(&dense, 2);
        assert_eq!(a, b);
        assert_eq!(a, vec![1, 3], "NaN first, then the largest finite entry");
        // Full compression round-trips without panicking.
        let c = TopK::new().compress(&dense, 0.4);
        assert_eq!(c.as_sparse().unwrap().nnz(), 2);
    }

    #[test]
    fn all_nan_input_selects_lowest_indices() {
        let dense = vec![f32::NAN; 6];
        let sel = TopK::select_indices(&dense, 3);
        assert_eq!(sel, vec![0, 1, 2], "index tie-break orders equal NaNs");
    }

    #[test]
    fn negative_nan_is_ordered_like_positive_nan() {
        // abs() clears the sign bit, so -NaN and NaN compare identically and
        // the index tie-break decides.
        let dense = vec![f32::from_bits(0xFFC0_0000), 1.0, f32::NAN];
        let sel = TopK::select_indices(&dense, 2);
        assert_eq!(sel, vec![0, 2]);
    }

    #[test]
    fn deterministic_under_ties() {
        let dense = vec![1.0, 1.0, 1.0, 1.0];
        let a = TopK::new().compress(&dense, 0.5);
        let b = TopK::new().compress(&dense, 0.5);
        assert_eq!(
            a.as_sparse().unwrap().indices(),
            b.as_sparse().unwrap().indices()
        );
        assert_eq!(a.as_sparse().unwrap().nnz(), 2);
    }

    proptest! {
        #[test]
        fn prop_retained_dominate_dropped(
            dense in proptest::collection::vec(-100.0f32..100.0, 2..300),
            ratio in 0.01f64..1.0,
        ) {
            let c = TopK::new().compress(&dense, ratio);
            let s = c.as_sparse().unwrap();
            prop_assert_eq!(s.nnz(), TopK::k_for(dense.len(), ratio));
            // Every retained magnitude >= every dropped magnitude.
            let retained: std::collections::HashSet<u32> = s.indices().iter().cloned().collect();
            let min_kept = s
                .values()
                .iter()
                .map(|v| v.abs())
                .fold(f32::INFINITY, f32::min);
            for (i, &v) in dense.iter().enumerate() {
                if !retained.contains(&(i as u32)) {
                    prop_assert!(v.abs() <= min_kept + 1e-6);
                }
            }
        }

        #[test]
        fn prop_error_norm_not_larger_than_input(
            dense in proptest::collection::vec(-10.0f32..10.0, 1..200),
            ratio in 0.01f64..1.0,
        ) {
            // Top-K is a contraction: ||x - C(x)|| <= ||x||.
            let c = TopK::new().compress(&dense, ratio);
            let rec = c.to_dense();
            let err: f32 = dense.iter().zip(rec.iter()).map(|(a, b)| (a - b).powi(2)).sum();
            let norm: f32 = dense.iter().map(|a| a * a).sum();
            prop_assert!(err <= norm + 1e-4);
        }
    }
}
