//! [`CompressorSpec`] — the parseable description of a codec pipeline.
//!
//! Specs are small strings with the grammar
//!
//! ```text
//! spec  := [ "ef-" ] stage ( "+" stage )*
//! stage := name [ ":" arg ]
//! ```
//!
//! so `"topk"`, `"randk"`, `"qsgd:8"`, `"threshold:0.01"`, `"ef-topk"` and
//! the composed `"topk+qsgd:4"` all parse. A spec is *resolved* into a boxed
//! [`crate::codec::UpdateCodec`] by a [`crate::registry::CodecRegistry`],
//! which maps stage names to factories; parsing itself never consults the
//! registry, so specs for custom codecs round-trip through configuration
//! freely.

use serde::{Deserialize, Serialize};

/// One stage of a codec pipeline: a registered codec name plus its optional
/// `:arg` parameter (kept as a string; the factory parses it).
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CodecStage {
    /// Registered codec name (`"topk"`, `"qsgd"`, …).
    pub name: String,
    /// Optional argument after the colon (`"8"` in `"qsgd:8"`).
    pub arg: Option<String>,
}

impl CodecStage {
    /// A stage with no argument.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            arg: None,
        }
    }

    /// A stage with an argument.
    pub fn with_arg(name: impl Into<String>, arg: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            arg: Some(arg.into()),
        }
    }
}

impl std::fmt::Display for CodecStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.arg {
            Some(a) => write!(f, "{}:{}", self.name, a),
            None => write!(f, "{}", self.name),
        }
    }
}

/// A parsed compressor specification: an optional error-feedback wrapper
/// around one or more pipeline stages.
///
/// ```
/// use fl_compress::CompressorSpec;
///
/// let spec: CompressorSpec = "ef-topk+qsgd:4".parse().unwrap();
/// assert!(spec.error_feedback);
/// assert_eq!(spec.stages.len(), 2);
/// assert_eq!(spec.to_string(), "ef-topk+qsgd:4");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CompressorSpec {
    /// Wrap the pipeline in error feedback (`"ef-"` prefix).
    pub error_feedback: bool,
    /// The pipeline stages, applied left to right.
    pub stages: Vec<CodecStage>,
}

/// A spec that failed to parse or resolve.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The string does not match the spec grammar.
    Parse(String),
    /// A stage names a codec the registry does not know.
    UnknownCodec(String),
    /// A stage argument is missing, malformed or out of range.
    BadArg {
        /// The codec whose argument was rejected.
        codec: String,
        /// Why it was rejected.
        reason: String,
    },
    /// The stage combination is not supported (only `sparsifier + qsgd`
    /// pipelines compose).
    UnsupportedComposition(String),
    /// A layer plan left a model segment without a matching rule
    /// (see [`crate::plan::LayerPlan`]).
    UnmatchedSegment(String),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse(s) => write!(f, "cannot parse compressor spec {s:?}"),
            SpecError::UnknownCodec(n) => write!(f, "unknown codec {n:?} (not registered)"),
            SpecError::BadArg { codec, reason } => {
                write!(f, "bad argument for codec {codec:?}: {reason}")
            }
            SpecError::UnsupportedComposition(s) => {
                write!(f, "unsupported codec composition {s:?}: only a sparsifier followed by \"qsgd:<bits>\" composes")
            }
            SpecError::UnmatchedSegment(name) => {
                write!(
                    f,
                    "no plan rule matches segment {name:?} (add a catch-all \"*=<spec>\" rule)"
                )
            }
        }
    }
}

impl std::error::Error for SpecError {}

impl CompressorSpec {
    /// Parse a spec string (`"topk"`, `"qsgd:8"`, `"ef-topk+qsgd:4"`, …).
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        let trimmed = s.trim();
        let (error_feedback, rest) = match trimmed.strip_prefix("ef-") {
            Some(rest) => (true, rest),
            None => (false, trimmed),
        };
        if rest.is_empty() {
            return Err(SpecError::Parse(s.to_string()));
        }
        let mut stages = Vec::new();
        for part in rest.split('+') {
            let part = part.trim();
            let (name, arg) = match part.split_once(':') {
                Some((n, a)) => (n.trim(), Some(a.trim())),
                None => (part, None),
            };
            if name.is_empty()
                || !name
                    .chars()
                    .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_')
            {
                return Err(SpecError::Parse(s.to_string()));
            }
            if arg.is_some_and(str::is_empty) {
                return Err(SpecError::Parse(s.to_string()));
            }
            stages.push(CodecStage {
                name: name.to_string(),
                arg: arg.map(str::to_string),
            });
        }
        Ok(Self {
            error_feedback,
            stages,
        })
    }

    /// Plain Top-K.
    pub fn topk() -> Self {
        Self::single(CodecStage::new("topk"))
    }

    /// Plain Rand-K.
    pub fn randk() -> Self {
        Self::single(CodecStage::new("randk"))
    }

    /// Ratio-quantile threshold sparsification.
    pub fn threshold() -> Self {
        Self::single(CodecStage::new("threshold"))
    }

    /// QSGD quantization at `bits` bits per coordinate.
    pub fn qsgd(bits: u8) -> Self {
        Self::single(CodecStage::with_arg("qsgd", bits.to_string()))
    }

    /// Wrap this spec in error feedback.
    pub fn with_error_feedback(mut self) -> Self {
        self.error_feedback = true;
        self
    }

    /// Append a pipeline stage (`topk().then(qsgd-stage)` ⇒ `"topk+qsgd:4"`).
    pub fn then(mut self, stage: CodecStage) -> Self {
        self.stages.push(stage);
        self
    }

    /// True when this spec is known to decode to a *dense* update (every
    /// coordinate retained): currently the pure `qsgd` quantizer. Dense
    /// updates carry no overlap structure, so OPWA and overlap recording do
    /// not apply to them — configuration validation rejects the combination.
    /// Custom codecs are assumed sparse (the registry cannot know).
    pub fn produces_dense(&self) -> bool {
        self.stages.len() == 1 && self.stages[0].name == "qsgd"
    }

    fn single(stage: CodecStage) -> Self {
        Self {
            error_feedback: false,
            stages: vec![stage],
        }
    }
}

impl std::fmt::Display for CompressorSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.error_feedback {
            write!(f, "ef-")?;
        }
        for (i, stage) in self.stages.iter().enumerate() {
            if i > 0 {
                write!(f, "+")?;
            }
            write!(f, "{stage}")?;
        }
        Ok(())
    }
}

impl std::str::FromStr for CompressorSpec {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_simple_and_parameterised_stages() {
        let s = CompressorSpec::parse("topk").unwrap();
        assert!(!s.error_feedback);
        assert_eq!(s.stages, vec![CodecStage::new("topk")]);

        let s = CompressorSpec::parse("qsgd:8").unwrap();
        assert_eq!(s.stages, vec![CodecStage::with_arg("qsgd", "8")]);

        let s = CompressorSpec::parse("threshold:0.01").unwrap();
        assert_eq!(s.stages, vec![CodecStage::with_arg("threshold", "0.01")]);
    }

    #[test]
    fn parses_ef_prefix_and_composition() {
        let s = CompressorSpec::parse("ef-topk").unwrap();
        assert!(s.error_feedback);
        assert_eq!(s.stages.len(), 1);

        let s = CompressorSpec::parse("topk+qsgd:4").unwrap();
        assert_eq!(s.stages.len(), 2);
        assert_eq!(s.stages[1], CodecStage::with_arg("qsgd", "4"));

        let s = CompressorSpec::parse("ef-topk+qsgd:4").unwrap();
        assert!(s.error_feedback);
        assert_eq!(s.stages.len(), 2);
    }

    #[test]
    fn display_roundtrips() {
        for raw in [
            "topk",
            "randk",
            "threshold",
            "threshold:0.01",
            "qsgd:8",
            "ef-topk",
            "topk+qsgd:4",
            "ef-randk+qsgd:6",
            "segmented-topk:5000",
        ] {
            let spec = CompressorSpec::parse(raw).unwrap();
            assert_eq!(spec.to_string(), raw);
            assert_eq!(CompressorSpec::parse(&spec.to_string()).unwrap(), spec);
        }
    }

    #[test]
    fn rejects_malformed_specs() {
        for raw in [
            "",
            "ef-",
            "+topk",
            "topk+",
            "qsgd:",
            ":8",
            "to pk",
            "topk++qsgd:4",
        ] {
            assert!(
                CompressorSpec::parse(raw).is_err(),
                "{raw:?} should not parse"
            );
        }
    }

    #[test]
    fn convenience_constructors_match_parsing() {
        assert_eq!(CompressorSpec::topk(), "topk".parse().unwrap());
        assert_eq!(CompressorSpec::randk(), "randk".parse().unwrap());
        assert_eq!(CompressorSpec::qsgd(8), "qsgd:8".parse().unwrap());
        assert_eq!(
            CompressorSpec::topk().with_error_feedback(),
            "ef-topk".parse().unwrap()
        );
        assert_eq!(
            CompressorSpec::topk().then(CodecStage::with_arg("qsgd", "4")),
            "topk+qsgd:4".parse().unwrap()
        );
    }
}
