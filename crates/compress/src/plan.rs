//! Layer-aware codec plans: one codec per named parameter segment.
//!
//! The flat codec pipeline treats a model delta as one anonymous vector, but
//! real models are wildly heterogeneous per layer — a conv/fc weight matrix
//! tolerates aggressive Top-K while a handful of bias coordinates collapses
//! under it. A [`LayerPlan`] assigns a [`CompressorSpec`] per segment of a
//! named parameter layout with a small first-match rule grammar:
//!
//! ```text
//! plan := rule ( ";" rule )*
//! rule := pattern "=" spec
//! ```
//!
//! where `pattern` is a glob over segment names (`*` any run, `?` one
//! character) and `spec` is any [`CompressorSpec`] the registry resolves —
//! so `"conv*=topk;*.bias=dense;*=ef-topk+qsgd:4"` sparsifies conv layers,
//! ships biases raw, and error-feedback-quantizes everything else. Rules are
//! tried in order; the first matching pattern wins, and a segment with no
//! matching rule is an error (add a catch-all `*=<spec>`).
//!
//! [`LayerPlan::resolve`] turns a plan into an [`UpdateCodec`]:
//!
//! * when every segment resolves to the **same** spec the plan collapses to
//!   that flat codec over the whole vector — a uniform plan (`"*=topk"`) is
//!   bit-identical to the flat `topk` path, wire bytes and all;
//! * otherwise a [`PlannedCodec`] encodes every segment with its own codec
//!   instance (per-segment error-feedback residuals, per-segment RNG draws in
//!   segment order) and frames the pieces into one
//!   [`crate::wire::KIND_SEGMENTED`] buffer, so encoded byte counts — framing
//!   overhead included — stay honest.
//!
//! Like [`CompressorSpec`], plans parse and [`Display`](std::fmt::Display)
//! round-trip, so they travel through configuration freely without consulting
//! the registry.

use crate::codec::{CodecCtx, ResidualState, UpdateCodec};
use crate::registry::CodecRegistry;
use crate::spec::{CompressorSpec, SpecError};
use crate::wire::{encode_segmented, WireUpdate};
use fl_tensor::rng::Xoshiro256;
use serde::{Deserialize, Serialize};

/// One `pattern=spec` rule of a [`LayerPlan`].
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlanRule {
    /// Glob over segment names (`*` matches any run, `?` one character).
    pub pattern: String,
    /// The codec spec segments matching the pattern use.
    pub spec: CompressorSpec,
}

/// A named segment a plan resolves against: the bridge from a model's
/// parameter layout (e.g. `fl-nn`'s `ParamLayout`) into this crate, which
/// only needs names and lengths.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SegmentDef {
    /// Segment name the plan's patterns match against (`linear0.weight`, …).
    pub name: String,
    /// Number of scalars in the segment.
    pub len: usize,
}

impl SegmentDef {
    /// A named segment of `len` scalars.
    pub fn new(name: impl Into<String>, len: usize) -> Self {
        Self {
            name: name.into(),
            len,
        }
    }
}

/// An ordered list of first-match `pattern=spec` rules assigning one codec
/// spec to every segment of a parameter layout.
///
/// ```
/// use fl_compress::plan::LayerPlan;
///
/// let plan: LayerPlan = "conv*=topk;*.bias=dense;*=ef-topk+qsgd:4".parse().unwrap();
/// assert_eq!(plan.rules.len(), 3);
/// assert_eq!(plan.to_string(), "conv*=topk;*.bias=dense;*=ef-topk+qsgd:4");
/// assert_eq!(plan.spec_for("conv2d0.weight").unwrap().to_string(), "topk");
/// assert_eq!(plan.spec_for("linear1.bias").unwrap().to_string(), "dense");
/// assert_eq!(plan.spec_for("linear1.weight").unwrap().to_string(), "ef-topk+qsgd:4");
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct LayerPlan {
    /// The rules, tried in order; the first matching pattern wins.
    pub rules: Vec<PlanRule>,
}

impl LayerPlan {
    /// Parse a plan string (`"conv*=topk;*=qsgd:8"`).
    pub fn parse(s: &str) -> Result<Self, SpecError> {
        let trimmed = s.trim();
        if trimmed.is_empty() {
            return Err(SpecError::Parse(s.to_string()));
        }
        let mut rules = Vec::new();
        for part in trimmed.split(';') {
            let part = part.trim();
            let (pattern, spec) = part
                .split_once('=')
                .ok_or_else(|| SpecError::Parse(s.to_string()))?;
            let pattern = pattern.trim();
            if pattern.is_empty()
                || !pattern.chars().all(|c| {
                    c.is_ascii_alphanumeric()
                        || c == '*'
                        || c == '?'
                        || c == '.'
                        || c == '_'
                        || c == '-'
                })
            {
                return Err(SpecError::Parse(s.to_string()));
            }
            rules.push(PlanRule {
                pattern: pattern.to_string(),
                spec: CompressorSpec::parse(spec)?,
            });
        }
        Ok(Self { rules })
    }

    /// A single catch-all rule (`"*=<spec>"`): the uniform plan.
    pub fn uniform(spec: CompressorSpec) -> Self {
        Self {
            rules: vec![PlanRule {
                pattern: "*".into(),
                spec,
            }],
        }
    }

    /// The spec of the first rule matching `segment`, if any.
    pub fn spec_for(&self, segment: &str) -> Option<&CompressorSpec> {
        self.rules
            .iter()
            .find(|r| glob_match(&r.pattern, segment))
            .map(|r| &r.spec)
    }

    /// True when any rule's spec decodes to dense updates (pure quantizers).
    /// Configuration validation applies the flat pipeline's OPWA/overlap
    /// restrictions *per rule*: a plan that could hand any segment a
    /// dense-decoding codec is rejected in combination with overlap
    /// machinery.
    pub fn any_rule_produces_dense(&self) -> bool {
        self.rules.iter().any(|r| r.spec.produces_dense())
    }

    /// How many residual-snapshot parts each segment's codec contributes, in
    /// layout order: 1 for an error-feedback (`ef-…`) spec, 0 otherwise.
    ///
    /// This is the part layout [`PlannedCodec::take_residual`] produces,
    /// derived from the plan alone — no codec needs to be instantiated — so a
    /// stored snapshot can be re-shaped when the plan changes mid-run (see
    /// [`migrate_planned_residual`]). An unmatched segment is an error, as in
    /// [`LayerPlan::resolve`].
    pub fn part_counts(&self, segments: &[SegmentDef]) -> Result<Vec<usize>, SpecError> {
        segments
            .iter()
            .map(|seg| {
                self.spec_for(&seg.name)
                    .map(|spec| usize::from(spec.error_feedback))
                    .ok_or_else(|| SpecError::UnmatchedSegment(seg.name.clone()))
            })
            .collect()
    }

    /// Check that every rule's spec resolves through `registry` without
    /// instantiating per-model state.
    pub fn validate(&self, registry: &CodecRegistry) -> Result<(), SpecError> {
        if self.rules.is_empty() {
            return Err(SpecError::Parse(String::new()));
        }
        for rule in &self.rules {
            registry.validate(&rule.spec)?;
        }
        Ok(())
    }

    /// Resolve the plan against a layout into a ready-to-use codec.
    ///
    /// Every segment is matched against the rules (an unmatched segment is a
    /// [`SpecError::UnmatchedSegment`]). When all segments resolve to the
    /// same spec, that spec is built flat over the whole vector — a uniform
    /// plan is bit-identical to the equivalent flat codec. Otherwise each
    /// segment gets its own codec instance (deterministically seeded from
    /// `ctx.seed` and the segment index) inside a [`PlannedCodec`].
    ///
    /// `ctx.dense_len` must equal the sum of the segment lengths.
    pub fn resolve(
        &self,
        registry: &CodecRegistry,
        segments: &[SegmentDef],
        ctx: &CodecCtx,
    ) -> Result<Box<dyn UpdateCodec>, SpecError> {
        if segments.is_empty() {
            return Err(SpecError::UnmatchedSegment("<empty layout>".into()));
        }
        let total: usize = segments.iter().map(|s| s.len).sum();
        assert_eq!(
            total, ctx.dense_len,
            "layout covers {total} scalars but the codec context expects {}",
            ctx.dense_len
        );
        let mut specs = Vec::with_capacity(segments.len());
        for seg in segments {
            let spec = self
                .spec_for(&seg.name)
                .ok_or_else(|| SpecError::UnmatchedSegment(seg.name.clone()))?;
            specs.push(spec.clone());
        }
        if specs.iter().all(|s| *s == specs[0]) {
            // Uniform plan: collapse to the flat codec over the whole vector
            // (same construction context, so the trajectory, the wire bytes
            // and any error-feedback state are bit-identical to the flat
            // pipeline).
            return registry.build(&specs[0], ctx);
        }
        self.build_planned(registry, segments, ctx, &specs, None)
    }

    /// Resolve the plan with a per-segment ratio multiplier, as emitted by an
    /// adaptive plan policy: segment `i` encodes at
    /// `clamp(ratio · scales[i], ε, 1)` instead of the caller's flat ratio.
    ///
    /// Unlike [`LayerPlan::resolve`] this never collapses to a flat codec —
    /// even a uniform plan keeps one codec instance per segment, because the
    /// scales make the segments genuinely different — so the wire format is
    /// always the `Segmented` frame and per-layer byte telemetry is always
    /// available. `scales` must have one entry per segment.
    pub fn resolve_scaled(
        &self,
        registry: &CodecRegistry,
        segments: &[SegmentDef],
        ctx: &CodecCtx,
        scales: &[f64],
    ) -> Result<Box<dyn UpdateCodec>, SpecError> {
        if segments.is_empty() {
            return Err(SpecError::UnmatchedSegment("<empty layout>".into()));
        }
        assert_eq!(
            scales.len(),
            segments.len(),
            "one ratio scale per segment ({} segments, {} scales)",
            segments.len(),
            scales.len()
        );
        let total: usize = segments.iter().map(|s| s.len).sum();
        assert_eq!(
            total, ctx.dense_len,
            "layout covers {total} scalars but the codec context expects {}",
            ctx.dense_len
        );
        let mut specs = Vec::with_capacity(segments.len());
        for seg in segments {
            let spec = self
                .spec_for(&seg.name)
                .ok_or_else(|| SpecError::UnmatchedSegment(seg.name.clone()))?;
            specs.push(spec.clone());
        }
        self.build_planned(registry, segments, ctx, &specs, Some(scales))
    }

    /// Shared `PlannedCodec` construction for [`LayerPlan::resolve`] (scales
    /// absent → every segment encodes at the caller's ratio) and
    /// [`LayerPlan::resolve_scaled`].
    fn build_planned(
        &self,
        registry: &CodecRegistry,
        segments: &[SegmentDef],
        ctx: &CodecCtx,
        specs: &[CompressorSpec],
        scales: Option<&[f64]>,
    ) -> Result<Box<dyn UpdateCodec>, SpecError> {
        let mut planned = Vec::with_capacity(segments.len());
        let mut offset = 0usize;
        for (i, (seg, spec)) in segments.iter().zip(specs.iter()).enumerate() {
            let seg_ctx = CodecCtx::new(
                seg.len,
                ctx.seed ^ (i as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            planned.push(PlannedSegment {
                name: seg.name.clone(),
                offset,
                len: seg.len,
                ratio_scale: scales.map(|s| s[i]).unwrap_or(1.0),
                codec: registry.build(spec, &seg_ctx)?,
            });
            offset += seg.len;
        }
        Ok(Box::new(PlannedCodec {
            segments: planned,
            dense_len: segments.iter().map(|s| s.len).sum(),
            plan_display: self.to_string(),
        }))
    }
}

impl std::fmt::Display for LayerPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (i, rule) in self.rules.iter().enumerate() {
            if i > 0 {
                write!(f, ";")?;
            }
            write!(f, "{}={}", rule.pattern, rule.spec)?;
        }
        Ok(())
    }
}

impl std::str::FromStr for LayerPlan {
    type Err = SpecError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Self::parse(s)
    }
}

/// Glob match over segment names: `*` matches any (possibly empty) run of
/// characters, `?` exactly one; everything else is literal.
///
/// Iterative single-backtrack matching — `O(len(pattern) · len(name))` even
/// for pathological star-heavy patterns (plans arrive from CLI flags and
/// config files, so validation must not be exponential in `*` count).
pub fn glob_match(pattern: &str, name: &str) -> bool {
    let p = pattern.as_bytes();
    let n = name.as_bytes();
    let (mut pi, mut ni) = (0usize, 0usize);
    // Most recent star: (pattern index after it, name index it last matched).
    let mut star: Option<(usize, usize)> = None;
    while ni < n.len() {
        if pi < p.len() && (p[pi] == b'?' || p[pi] == n[ni]) {
            pi += 1;
            ni += 1;
        } else if pi < p.len() && p[pi] == b'*' {
            star = Some((pi + 1, ni));
            pi += 1;
        } else if let Some((after_star, matched)) = star {
            // Backtrack: let the star swallow one more character.
            pi = after_star;
            ni = matched + 1;
            star = Some((after_star, matched + 1));
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == b'*' {
        pi += 1;
    }
    pi == p.len()
}

/// One resolved segment of a [`PlannedCodec`].
struct PlannedSegment {
    name: String,
    offset: usize,
    len: usize,
    /// Per-segment ratio multiplier (1.0 for statically resolved plans).
    ratio_scale: f64,
    codec: Box<dyn UpdateCodec>,
}

/// Floor for a scaled per-segment ratio: a scale can shrink a segment's
/// budget but never to zero (every sparsifier needs a strictly positive
/// ratio).
const MIN_SEGMENT_RATIO: f64 = 1e-9;

/// A layer-aware codec: one codec instance per layout segment, framing the
/// per-segment wire buffers into a single [`crate::wire::KIND_SEGMENTED`]
/// update whose length is the honest bidirectional byte count (framing
/// overhead included).
///
/// Segments encode in layout order, drawing from the caller's RNG stream in
/// that order, so planned runs replay exactly. Per-segment codec state
/// (error-feedback residuals) lives inside each segment's codec. Segment
/// codecs must emit the standard wire kinds — the frame's decode path relies
/// on [`WireUpdate::decode`] understanding every nested payload.
pub struct PlannedCodec {
    segments: Vec<PlannedSegment>,
    dense_len: usize,
    plan_display: String,
}

impl PlannedCodec {
    /// The resolved `(segment name, codec name)` pairs, in layout order.
    pub fn assignments(&self) -> Vec<(String, String)> {
        self.segments
            .iter()
            .map(|s| (s.name.clone(), s.codec.name()))
            .collect()
    }

    /// Number of segments.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// The per-segment ratio multipliers, in layout order (all 1.0 for a
    /// statically resolved plan).
    pub fn segment_ratio_scales(&self) -> Vec<f64> {
        self.segments.iter().map(|s| s.ratio_scale).collect()
    }
}

/// Re-shape a [`PlannedCodec`] residual snapshot taken under one plan so it
/// restores into a codec resolved under another plan over the *same* layout.
///
/// `old_counts` / `new_counts` are the per-segment part counts of the two
/// plans (see [`LayerPlan::part_counts`]) and `segment_lens` the layout's
/// segment lengths; all three must have one entry per segment. The migration
/// rules are explicit and lossless where losslessness is meaningful:
///
/// * **EF → EF** (1 part → 1 part): the residual part is carried verbatim —
///   coordinates are segment-aligned, so a change of inner codec kind or
///   `qsgd` bit width does not invalidate the accumulated error;
/// * **EF → stateless** (1 → 0): the part is dropped — the new codec has
///   nowhere to hold it, and re-applying it later would double-count;
/// * **stateless → EF** (0 → 1): an all-zero part of the segment's length is
///   inserted — a fresh EF codec starts from zero accumulated error.
///
/// An empty snapshot (the old codec had no residual state, or the store
/// dropped a trivial one) migrates to an empty snapshot.
pub fn migrate_planned_residual(
    snapshot: ResidualState,
    old_counts: &[usize],
    new_counts: &[usize],
    segment_lens: &[usize],
) -> ResidualState {
    assert_eq!(
        old_counts.len(),
        segment_lens.len(),
        "old part counts must cover every segment"
    );
    assert_eq!(
        new_counts.len(),
        segment_lens.len(),
        "new part counts must cover every segment"
    );
    if snapshot.parts.is_empty() {
        return ResidualState::empty();
    }
    let expected: usize = old_counts.iter().sum();
    assert_eq!(
        snapshot.parts.len(),
        expected,
        "snapshot has {} parts but the old plan owns {expected}",
        snapshot.parts.len()
    );
    let mut old_parts = snapshot.parts.into_iter();
    let mut parts = Vec::with_capacity(new_counts.iter().sum());
    for ((&old, &new), &len) in old_counts.iter().zip(new_counts).zip(segment_lens) {
        assert!(old <= 1 && new <= 1, "plan segments own at most one part");
        let carried = if old == 1 { old_parts.next() } else { None };
        if new == 0 {
            continue;
        }
        match carried {
            Some(part) => {
                assert_eq!(
                    part.len(),
                    len,
                    "residual part length does not match its segment"
                );
                parts.push(part);
            }
            None => parts.push(vec![0.0; len]),
        }
    }
    ResidualState { parts }
}

impl UpdateCodec for PlannedCodec {
    fn name(&self) -> String {
        self.plan_display.clone()
    }

    fn encode(&mut self, dense: &[f32], ratio: f64, rng: &mut Xoshiro256) -> WireUpdate {
        assert_eq!(
            dense.len(),
            self.dense_len,
            "planned codec built for {} parameters got {}",
            self.dense_len,
            dense.len()
        );
        let mut parts = Vec::with_capacity(self.segments.len());
        for seg in &mut self.segments {
            // `ratio_scale` is exactly 1.0 on the static path, so the clamp
            // reproduces the caller's ratio bit-for-bit there.
            let seg_ratio = (ratio * seg.ratio_scale).clamp(MIN_SEGMENT_RATIO, 1.0);
            parts.push(
                seg.codec
                    .encode(&dense[seg.offset..seg.offset + seg.len], seg_ratio, rng),
            );
        }
        encode_segmented(self.dense_len, &parts)
    }

    fn residual_norm(&self) -> f64 {
        self.segments
            .iter()
            .map(|s| s.codec.residual_norm().powi(2))
            .sum::<f64>()
            .sqrt()
    }

    fn take_residual(&mut self) -> ResidualState {
        // Concatenate every segment codec's parts in layout order; restore
        // walks the same order, so the flattened list is unambiguous.
        let mut parts = Vec::new();
        for seg in &mut self.segments {
            parts.extend(seg.codec.take_residual().parts);
        }
        ResidualState { parts }
    }

    fn restore_residual(&mut self, state: ResidualState) {
        if state.parts.is_empty() {
            return;
        }
        let mut remaining = state.parts.into_iter();
        for seg in &mut self.segments {
            // Probe how many parts this (freshly built) segment codec owns by
            // taking its pristine residual state — harmless, since restore
            // only runs on just-constructed codecs — then feed it that many
            // parts from the flattened snapshot.
            let want = seg.codec.take_residual().parts.len();
            if want == 0 {
                continue;
            }
            let parts: Vec<Vec<f32>> = remaining.by_ref().take(want).collect();
            assert_eq!(
                parts.len(),
                want,
                "planned codec residual snapshot ran out of parts for segment {}",
                seg.name
            );
            seg.codec.restore_residual(ResidualState { parts });
        }
        let leftover = remaining.count();
        assert_eq!(
            leftover, 0,
            "planned codec residual snapshot has {leftover} unconsumed parts"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compressor::Compressor;
    use crate::topk::TopK;
    use crate::wire::KIND_SEGMENTED;
    use fl_tensor::rng::Rng;

    fn rng() -> Xoshiro256 {
        Xoshiro256::new(7)
    }

    fn delta(n: usize) -> Vec<f32> {
        (0..n).map(|i| ((i as f32) * 0.37).sin() * 0.1).collect()
    }

    fn segs(lens: &[(&str, usize)]) -> Vec<SegmentDef> {
        lens.iter().map(|&(n, l)| SegmentDef::new(n, l)).collect()
    }

    #[test]
    fn parse_display_roundtrip() {
        for raw in [
            "*=topk",
            "conv*=topk;*.bias=dense;*=ef-topk+qsgd:4",
            "linear0.weight=randk;*=threshold:0.01",
            "??nv*=qsgd:8;*=topk",
            "a_b-c.d*=dense;*=topk",
        ] {
            let plan: LayerPlan = raw.parse().unwrap_or_else(|e| panic!("{raw}: {e}"));
            assert_eq!(plan.to_string(), raw);
            assert_eq!(raw.parse::<LayerPlan>().unwrap(), plan);
        }
    }

    #[test]
    fn rejects_malformed_plans() {
        for raw in [
            "",
            ";",
            "topk",           // no '='
            "=topk",          // empty pattern
            "*=topk;",        // trailing empty rule
            "co nv=topk",     // space inside a pattern
            "conv*=",         // empty spec
            "conv*=+topk",    // malformed spec
            "c(onv)*=topk",   // bad pattern chars
            "conv*=topk;;*=", // empty middle rule
        ] {
            assert!(LayerPlan::parse(raw).is_err(), "{raw:?} should not parse");
        }
    }

    #[test]
    fn glob_matching_semantics() {
        assert!(glob_match("*", "anything.at.all"));
        assert!(glob_match("conv*", "conv2d0.weight"));
        assert!(!glob_match("conv*", "linear0.weight"));
        assert!(glob_match("*.bias", "linear3.bias"));
        assert!(!glob_match("*.bias", "linear3.weight"));
        assert!(glob_match("linear?.weight", "linear0.weight"));
        assert!(!glob_match("linear?.weight", "linear10.weight"));
        assert!(glob_match("*0.w*t", "conv2d0.weight"));
        assert!(glob_match("**", "x"));
        assert!(glob_match("**", ""));
        assert!(!glob_match("", "x"));
        assert!(glob_match("", ""));
        // Star-heavy patterns stay linear-ish, not exponential: this returns
        // (quickly) instead of hanging validation.
        let evil = "*a*a*a*a*a*a*a*a*a*a*x";
        assert!(!glob_match(evil, &"a".repeat(64)));
        assert!(glob_match(evil, &("a".repeat(64) + "x")));
    }

    #[test]
    fn first_match_wins() {
        let plan: LayerPlan = "*.bias=dense;conv*=topk;*=qsgd:8".parse().unwrap();
        assert_eq!(plan.spec_for("conv2d0.bias").unwrap().to_string(), "dense");
        assert_eq!(plan.spec_for("conv2d0.weight").unwrap().to_string(), "topk");
        assert_eq!(
            plan.spec_for("linear0.weight").unwrap().to_string(),
            "qsgd:8"
        );
        assert_eq!(plan.spec_for(""), Some(&"qsgd:8".parse().unwrap()));
        let narrow: LayerPlan = "conv*=topk".parse().unwrap();
        assert_eq!(narrow.spec_for("linear0.weight"), None);
    }

    #[test]
    fn uniform_plan_collapses_to_the_flat_codec() {
        let plan = LayerPlan::uniform("topk".parse().unwrap());
        let registry = CodecRegistry::with_builtins();
        let layout = segs(&[("a.weight", 80), ("a.bias", 20)]);
        let mut codec = plan
            .resolve(&registry, &layout, &CodecCtx::new(100, 5))
            .unwrap();
        assert_eq!(codec.name(), "topk");
        let d = delta(100);
        let wire = codec.encode(&d, 0.1, &mut rng());
        // Bit-identical to the flat path: same bytes, no segmented frame.
        let mut flat = registry
            .build(&"topk".parse().unwrap(), &CodecCtx::new(100, 5))
            .unwrap();
        assert_eq!(wire.as_bytes(), flat.encode(&d, 0.1, &mut rng()).as_bytes());
        assert_eq!(wire.segment_byte_lens(), None);
        // Multiple rules that resolve every segment to the same spec also
        // collapse.
        let aliased: LayerPlan = "*.bias=topk;*=topk".parse().unwrap();
        let codec = aliased
            .resolve(&registry, &layout, &CodecCtx::new(100, 5))
            .unwrap();
        assert_eq!(codec.name(), "topk");
    }

    #[test]
    fn mixed_plan_encodes_a_segmented_frame_with_exact_framing() {
        let plan: LayerPlan = "*.bias=dense;*=topk".parse().unwrap();
        let registry = CodecRegistry::with_builtins();
        let layout = segs(&[("a.weight", 200), ("a.bias", 8), ("b.weight", 100)]);
        let mut codec = plan
            .resolve(&registry, &layout, &CodecCtx::new(308, 5))
            .unwrap();
        assert_eq!(codec.name(), "*.bias=dense;*=topk");
        let d = delta(308);
        let wire = codec.encode(&d, 0.1, &mut rng());
        assert_eq!(wire.kind().unwrap(), KIND_SEGMENTED);
        let seg_lens = wire.segment_byte_lens().unwrap();
        assert_eq!(seg_lens.len(), 3);
        // Framing overhead is charged exactly: outer header (4) + varint
        // dense_len + varint segment count + one length varint per segment
        // (all lengths here fit one byte).
        let framing = 4 + 2 + 1 + seg_lens.len();
        assert_eq!(wire.len(), framing + seg_lens.iter().sum::<usize>());

        // Per-segment behaviour: top-k within each weight segment, the bias
        // segment shipped exact.
        let s = wire.decode().unwrap().into_sparse().unwrap();
        let in_a = s.indices().iter().filter(|&&i| i < 200).count();
        let bias: Vec<f32> = s
            .indices()
            .iter()
            .zip(s.values().iter())
            .filter(|(&i, _)| (200..208).contains(&(i as usize)))
            .map(|(_, &v)| v)
            .collect();
        let in_b = s.indices().iter().filter(|&&i| i >= 208).count();
        assert_eq!(in_a, TopK::k_for(200, 0.1));
        assert_eq!(in_b, TopK::k_for(100, 0.1));
        assert_eq!(bias, d[200..208].to_vec());
        // The decoded values of retained weight coordinates match the input.
        for (&i, &v) in s.indices().iter().zip(s.values().iter()) {
            assert_eq!(v, d[i as usize], "index {i}");
        }

        // Compare against the flat codec: the plan retains each layer's
        // share, the flat codec retains a global top-k.
        let flat = TopK::new().compress(&d, 0.1).into_sparse().unwrap();
        assert_ne!(flat.indices(), s.indices());
    }

    #[test]
    fn entropy_rule_resolves_and_matches_bitpacked_plan_values() {
        // An `:rc` spec inside a plan rule resolves through the registry like
        // any other, frames kind-5 segments, and (same bit width, same RNG)
        // dequantizes bit-identically to the bit-packed plan in fewer bytes.
        let rc_plan: LayerPlan = "*.weight=qsgd:4:rc;*=dense".parse().unwrap();
        assert_eq!(rc_plan.to_string(), "*.weight=qsgd:4:rc;*=dense");
        let packed_plan: LayerPlan = "*.weight=qsgd:4;*=dense".parse().unwrap();
        let registry = CodecRegistry::with_builtins();
        let layout = segs(&[("a.weight", 3000), ("a.bias", 8)]);
        let ctx = CodecCtx::new(3008, 5);
        let mut rc = rc_plan.resolve(&registry, &layout, &ctx).unwrap();
        assert_eq!(rc.name(), "*.weight=qsgd:4:rc;*=dense");
        let mut packed = packed_plan.resolve(&registry, &layout, &ctx).unwrap();
        let d = delta(3008);
        let wr = rc.encode(&d, 1.0, &mut rng());
        let wp = packed.encode(&d, 1.0, &mut rng());
        assert_eq!(wr.kind().unwrap(), KIND_SEGMENTED);
        assert!(
            wr.len() < wp.len(),
            "rc {} >= packed {}",
            wr.len(),
            wp.len()
        );
        let a = wr.decode().unwrap().into_dense();
        let b = wp.decode().unwrap().into_dense();
        assert!(a
            .iter()
            .zip(b.iter())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn planned_ef_segments_keep_their_own_residuals() {
        let plan: LayerPlan = "*.bias=dense;*=ef-topk".parse().unwrap();
        let registry = CodecRegistry::with_builtins();
        let layout = segs(&[("a.weight", 100), ("a.bias", 4)]);
        let mut codec = plan
            .resolve(&registry, &layout, &CodecCtx::new(104, 5))
            .unwrap();
        assert_eq!(codec.residual_norm(), 0.0);
        let d = delta(104);
        let mut stream = rng();
        let _ = codec.encode(&d, 0.05, &mut stream);
        assert!(codec.residual_norm() > 0.0, "EF segment accumulates");
        // The dense bias segment contributes nothing to the residual, so the
        // planned residual equals a standalone ef-topk over the weight
        // segment fed the same stream (segments draw in order; neither the
        // dense nor the top-k stage consumes randomness).
        let mut ef = registry
            .build(&"ef-topk".parse().unwrap(), &CodecCtx::new(100, 5))
            .unwrap();
        let _ = ef.encode(&d[..100], 0.05, &mut rng());
        assert!((codec.residual_norm() - ef.residual_norm()).abs() < 1e-12);
    }

    #[test]
    fn unmatched_segments_and_unknown_codecs_are_reported() {
        let registry = CodecRegistry::with_builtins();
        let plan: LayerPlan = "conv*=topk".parse().unwrap();
        let err = plan
            .resolve(
                &registry,
                &segs(&[("linear0.weight", 10)]),
                &CodecCtx::new(10, 0),
            )
            .err()
            .expect("unmatched segment must be rejected");
        assert_eq!(err, SpecError::UnmatchedSegment("linear0.weight".into()));
        assert!(err.to_string().contains("catch-all"));

        let bad: LayerPlan = "*=no-such-codec".parse().unwrap();
        assert_eq!(
            bad.validate(&registry),
            Err(SpecError::UnknownCodec("no-such-codec".into()))
        );
        // A dense-decoding rule is flagged for the config-level OPWA checks.
        let quant: LayerPlan = "*.bias=qsgd:8;*=topk".parse().unwrap();
        assert!(quant.any_rule_produces_dense());
        let sparse: LayerPlan = "*.bias=dense;*=topk".parse().unwrap();
        assert!(!sparse.any_rule_produces_dense());
    }

    #[test]
    fn planned_residual_snapshot_moves_between_instances() {
        // Two EF segments around a stateless dense one: the flattened
        // snapshot must carry both parts, in segment order, and restoring it
        // into a freshly resolved codec must continue the trajectory
        // bit-for-bit.
        let plan: LayerPlan = "*.bias=dense;*=ef-topk".parse().unwrap();
        let registry = CodecRegistry::with_builtins();
        let layout = segs(&[("a.weight", 100), ("a.bias", 4), ("b.weight", 50)]);
        let build = || {
            plan.resolve(&registry, &layout, &CodecCtx::new(154, 5))
                .unwrap()
        };
        let d = delta(154);

        let mut persistent = build();
        let _ = persistent.encode(&d, 0.05, &mut rng());
        let second_wire = persistent.encode(&d, 0.05, &mut rng());

        let mut first = build();
        let _ = first.encode(&d, 0.05, &mut rng());
        let snap = first.take_residual();
        assert_eq!(snap.parts.len(), 2, "one part per EF segment");
        assert_eq!(snap.parts[0].len(), 100);
        assert_eq!(snap.parts[1].len(), 50);
        let mut resumed = build();
        resumed.restore_residual(snap);
        let resumed_wire = resumed.encode(&d, 0.05, &mut rng());
        assert_eq!(resumed_wire.as_bytes(), second_wire.as_bytes());
    }

    #[test]
    fn part_counts_follow_the_ef_rules() {
        let plan: LayerPlan = "*.bias=dense;a*=ef-topk;*=topk+qsgd:4".parse().unwrap();
        let layout = segs(&[("a.weight", 100), ("a.bias", 4), ("b.weight", 50)]);
        assert_eq!(plan.part_counts(&layout).unwrap(), vec![1, 0, 0]);
        let all_ef: LayerPlan = "*=ef-topk+qsgd:8".parse().unwrap();
        assert_eq!(all_ef.part_counts(&layout).unwrap(), vec![1, 1, 1]);
        let narrow: LayerPlan = "conv*=topk".parse().unwrap();
        assert_eq!(
            narrow.part_counts(&layout),
            Err(SpecError::UnmatchedSegment("a.weight".into()))
        );
    }

    #[test]
    fn scaled_resolve_applies_per_segment_ratios() {
        // A *uniform* plan with scales still resolves to a segmented codec
        // (no flat collapse) and each segment sparsifies at its own scaled
        // ratio.
        let plan = LayerPlan::uniform("topk".parse().unwrap());
        let registry = CodecRegistry::with_builtins();
        let layout = segs(&[("a.weight", 200), ("b.weight", 100)]);
        let mut codec = plan
            .resolve_scaled(&registry, &layout, &CodecCtx::new(300, 5), &[0.5, 2.0])
            .unwrap();
        let d = delta(300);
        let wire = codec.encode(&d, 0.1, &mut rng());
        assert_eq!(wire.kind().unwrap(), KIND_SEGMENTED);
        let s = wire.decode().unwrap().into_sparse().unwrap();
        let in_a = s.indices().iter().filter(|&&i| i < 200).count();
        let in_b = s.indices().iter().filter(|&&i| i >= 200).count();
        assert_eq!(in_a, TopK::k_for(200, 0.05));
        assert_eq!(in_b, TopK::k_for(100, 0.2));
        // All-1.0 scales still frame segments (no flat collapse).
        let mut unscaled = plan
            .resolve_scaled(&registry, &layout, &CodecCtx::new(300, 5), &[1.0, 1.0])
            .unwrap();
        let w1 = unscaled.encode(&d, 0.1, &mut rng());
        assert_eq!(w1.segment_byte_lens().unwrap().len(), 2);
        // Scales saturate at ratio 1.0 instead of over-shooting.
        let mut maxed = plan
            .resolve_scaled(&registry, &layout, &CodecCtx::new(300, 5), &[50.0, 50.0])
            .unwrap();
        let all = maxed
            .encode(&d, 0.1, &mut rng())
            .decode()
            .unwrap()
            .into_sparse()
            .unwrap();
        assert_eq!(all.indices().len(), 300, "ratio clamps at 1.0");
    }

    #[test]
    fn residual_migration_rules_carry_drop_and_zero_fill() {
        let lens = [100usize, 4, 50];
        let snap = ResidualState {
            parts: vec![vec![1.0; 100], vec![2.0; 50]],
        };
        // EF→EF carries verbatim, EF→stateless drops, stateless→EF zero-fills.
        let migrated = migrate_planned_residual(snap, &[1, 0, 1], &[1, 1, 0], &lens);
        assert_eq!(migrated.parts.len(), 2);
        assert_eq!(migrated.parts[0], vec![1.0; 100]);
        assert_eq!(migrated.parts[1], vec![0.0; 4]);
        // An empty snapshot stays empty regardless of the target layout.
        let empty = migrate_planned_residual(ResidualState::empty(), &[1, 0, 1], &[1, 1, 1], &lens);
        assert!(empty.parts.is_empty());
        // Dropping every part yields a trivial snapshot.
        let all_dropped = migrate_planned_residual(
            ResidualState {
                parts: vec![vec![1.0; 100], vec![2.0; 50]],
            },
            &[1, 0, 1],
            &[0, 0, 0],
            &lens,
        );
        assert!(all_dropped.is_trivial());
    }

    #[test]
    fn migrated_residual_restores_into_a_replanned_codec() {
        // Accumulate EF error under plan A, migrate the snapshot to plan B
        // (different bit width on one segment, EF newly added on another) and
        // restore: the carried segment resumes from exactly its accumulated
        // residual.
        let registry = CodecRegistry::with_builtins();
        let layout = segs(&[("a.weight", 100), ("a.bias", 4), ("b.weight", 50)]);
        let lens: Vec<usize> = layout.iter().map(|s| s.len).collect();
        let plan_a: LayerPlan = "*.bias=dense;*=ef-topk+qsgd:8".parse().unwrap();
        let plan_b: LayerPlan = "*.bias=ef-topk;*=ef-topk+qsgd:4".parse().unwrap();
        let d = delta(154);

        let mut old = plan_a
            .resolve(&registry, &layout, &CodecCtx::new(154, 5))
            .unwrap();
        let _ = old.encode(&d, 0.05, &mut rng());
        let before = old.residual_norm();
        assert!(before > 0.0);
        let snap = old.take_residual();
        assert_eq!(snap.parts.len(), 2);
        let carried: Vec<Vec<f32>> = snap.parts.clone();

        let migrated = migrate_planned_residual(
            snap,
            &plan_a.part_counts(&layout).unwrap(),
            &plan_b.part_counts(&layout).unwrap(),
            &lens,
        );
        assert_eq!(migrated.parts.len(), 3, "bias gained a zero EF part");
        assert_eq!(migrated.parts[0], carried[0]);
        assert_eq!(migrated.parts[1], vec![0.0; 4]);
        assert_eq!(migrated.parts[2], carried[1]);

        let mut new = plan_b
            .resolve(&registry, &layout, &CodecCtx::new(154, 5))
            .unwrap();
        new.restore_residual(migrated);
        assert!(
            (new.residual_norm() - before).abs() < 1e-12,
            "carried residual mass survives the re-plan"
        );
    }

    #[test]
    fn planned_encode_is_deterministic_and_draws_in_segment_order() {
        let plan: LayerPlan = "*.bias=dense;*=randk".parse().unwrap();
        let registry = CodecRegistry::with_builtins();
        let layout = segs(&[("a.weight", 60), ("a.bias", 4), ("b.weight", 40)]);
        let build = || {
            plan.resolve(&registry, &layout, &CodecCtx::new(104, 9))
                .unwrap()
        };
        let d = delta(104);
        let w1 = build().encode(&d, 0.2, &mut rng());
        let w2 = build().encode(&d, 0.2, &mut rng());
        assert_eq!(w1.as_bytes(), w2.as_bytes());
        // Two rand-k segments consume two u64 draws, in segment order.
        let mut stream = rng();
        let _ = build().encode(&d, 0.2, &mut stream);
        let mut fresh = rng();
        fresh.next_u64();
        fresh.next_u64();
        assert_eq!(stream.next_u64(), fresh.next_u64());
    }
}
