//! Uniform random-K sparsification (an unbiased alternative to Top-K).

use crate::compressor::{CompressedUpdate, Compressor};
use crate::sparse::SparseUpdate;
use crate::topk::TopK;
use fl_tensor::rng::{Rng, SplitMix64};

/// Retain `k` uniformly random coordinates, rescaled by `len / k` so the
/// compressed update is an unbiased estimator of the original.
///
/// The coordinate choice is derived deterministically from the configured
/// seed and an internal call counter would break `&self` compression, so the
/// seed is combined with a hash of the input instead — the same input and
/// seed always compress identically (replayable experiments), while different
/// rounds see different coordinate sets.
#[derive(Clone, Copy, Debug)]
pub struct RandK {
    seed: u64,
    /// If true, rescale retained values by `len/k` (unbiased); if false keep
    /// raw values (biased, like Top-K).
    pub unbiased: bool,
}

impl RandK {
    /// New Rand-K compressor with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            unbiased: true,
        }
    }

    /// Rand-K without the unbiasedness rescaling.
    pub fn biased(seed: u64) -> Self {
        Self {
            seed,
            unbiased: false,
        }
    }

    fn input_fingerprint(dense: &[f32]) -> u64 {
        // Cheap FNV-style fold over the bit patterns; only needs to vary
        // between rounds, not be cryptographic.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &v in dense.iter().step_by((dense.len() / 64).max(1)) {
            h ^= v.to_bits() as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= dense.len() as u64;
        h
    }
}

impl Compressor for RandK {
    fn compress(&self, dense: &[f32], ratio: f64) -> CompressedUpdate {
        let k = TopK::k_for(dense.len(), ratio);
        if k == 0 {
            return CompressedUpdate::Sparse(SparseUpdate::empty(dense.len()));
        }
        let mut rng = SplitMix64::new(self.seed ^ Self::input_fingerprint(dense));
        let mut chosen = rng.sample_without_replacement(dense.len(), k);
        chosen.sort_unstable();
        let scale = if self.unbiased {
            dense.len() as f32 / k as f32
        } else {
            1.0
        };
        let indices: Vec<u32> = chosen.iter().map(|&i| i as u32).collect();
        let values: Vec<f32> = chosen.iter().map(|&i| dense[i] * scale).collect();
        CompressedUpdate::Sparse(SparseUpdate::new(indices, values, dense.len()))
    }

    fn name(&self) -> &'static str {
        "randk"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retains_requested_count() {
        let dense: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let c = RandK::new(1).compress(&dense, 0.1);
        assert_eq!(c.as_sparse().unwrap().nnz(), 10);
    }

    #[test]
    fn same_input_same_output() {
        let dense: Vec<f32> = (0..50).map(|i| (i as f32).sin()).collect();
        let a = RandK::new(7).compress(&dense, 0.2);
        let b = RandK::new(7).compress(&dense, 0.2);
        assert_eq!(
            a.as_sparse().unwrap().indices(),
            b.as_sparse().unwrap().indices()
        );
    }

    #[test]
    fn different_inputs_pick_different_coordinates() {
        let d1: Vec<f32> = (0..200).map(|i| (i as f32).sin()).collect();
        let d2: Vec<f32> = (0..200).map(|i| (i as f32).cos()).collect();
        let a = RandK::new(7).compress(&d1, 0.1);
        let b = RandK::new(7).compress(&d2, 0.1);
        assert_ne!(
            a.as_sparse().unwrap().indices(),
            b.as_sparse().unwrap().indices()
        );
    }

    #[test]
    fn unbiased_scaling_preserves_mean_value() {
        // Expectation over the randomness equals the original sum; with a
        // constant vector this holds exactly per draw.
        let dense = vec![2.0f32; 100];
        let c = RandK::new(3).compress(&dense, 0.25);
        let sum: f32 = c.to_dense().iter().sum();
        let orig: f32 = dense.iter().sum();
        assert!((sum - orig).abs() < 1e-3);
    }

    #[test]
    fn nan_entries_do_not_poison_selection() {
        // Rand-K never compares values (coordinates are drawn by index and
        // the fingerprint folds raw bit patterns), so NaN gradients must pass
        // through untouched: same count, deterministic coordinate choice.
        let mut dense: Vec<f32> = (0..100).map(|i| (i as f32).sin()).collect();
        dense[17] = f32::NAN;
        let a = RandK::new(7).compress(&dense, 0.1);
        let b = RandK::new(7).compress(&dense, 0.1);
        assert_eq!(a.as_sparse().unwrap().nnz(), 10);
        assert_eq!(
            a.as_sparse().unwrap().indices(),
            b.as_sparse().unwrap().indices()
        );
    }

    #[test]
    fn biased_variant_keeps_raw_values() {
        let dense = vec![2.0f32; 10];
        let c = RandK::biased(3).compress(&dense, 0.5);
        assert!(c.as_sparse().unwrap().values().iter().all(|&v| v == 2.0));
    }
}
