//! Sparse (COO) representation of a compressed model update.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};

/// A sparse model update: the retained coordinates of a dense vector of
/// length `dense_len`, stored as parallel `indices` / `values` arrays.
///
/// This is what a client "transmits" in the simulation. The wire size is
/// `indices.len() * (4 + 4)` bytes (a `u32` index plus an `f32` value per
/// retained coordinate) — the factor-of-two overhead relative to pure values
/// is exactly the `2 × V × CR` term in the paper's communication model
/// (Alg. 2, line 7).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SparseUpdate {
    indices: Vec<u32>,
    values: Vec<f32>,
    dense_len: usize,
}

impl SparseUpdate {
    /// Build from parallel arrays. Indices must be strictly increasing and in
    /// range (this keeps overlap computation and aggregation linear-time).
    pub fn new(indices: Vec<u32>, values: Vec<f32>, dense_len: usize) -> Self {
        assert_eq!(
            indices.len(),
            values.len(),
            "indices/values length mismatch"
        );
        assert!(
            indices.windows(2).all(|w| w[0] < w[1]),
            "indices must be strictly increasing"
        );
        if let Some(&last) = indices.last() {
            assert!((last as usize) < dense_len, "index {last} out of range");
        }
        Self {
            indices,
            values,
            dense_len,
        }
    }

    /// An empty update of a given dense length.
    pub fn empty(dense_len: usize) -> Self {
        Self {
            indices: Vec::new(),
            values: Vec::new(),
            dense_len,
        }
    }

    /// Build from a dense vector, retaining the coordinates where `keep` is true.
    pub fn from_dense_mask(dense: &[f32], keep: impl Fn(usize, f32) -> bool) -> Self {
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (i, &v) in dense.iter().enumerate() {
            if keep(i, v) {
                indices.push(i as u32);
                values.push(v);
            }
        }
        Self {
            indices,
            values,
            dense_len: dense.len(),
        }
    }

    /// Retained coordinate indices (strictly increasing).
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Retained values, aligned with `indices`.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Mutable view of the retained values (the OPWA mask scales these).
    pub fn values_mut(&mut self) -> &mut [f32] {
        &mut self.values
    }

    /// Length of the original dense vector.
    pub fn dense_len(&self) -> usize {
        self.dense_len
    }

    /// Number of retained coordinates.
    pub fn nnz(&self) -> usize {
        self.indices.len()
    }

    /// Achieved compression ratio `nnz / dense_len` (0 for an empty vector).
    pub fn compression_ratio(&self) -> f64 {
        if self.dense_len == 0 {
            0.0
        } else {
            self.nnz() as f64 / self.dense_len as f64
        }
    }

    /// Bytes on the wire: 4 (index) + 4 (value) per retained coordinate.
    pub fn wire_size_bytes(&self) -> usize {
        self.nnz() * 8
    }

    /// Bytes a dense transmission of the same vector would need.
    pub fn dense_size_bytes(&self) -> usize {
        self.dense_len * 4
    }

    /// Expand into a dense vector (zeros elsewhere).
    pub fn to_dense(&self) -> Vec<f32> {
        let mut out = vec![0.0f32; self.dense_len];
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            out[i as usize] = v;
        }
        out
    }

    /// `target += scale * self` scattered into a dense buffer.
    pub fn add_scaled_into(&self, target: &mut [f32], scale: f32) {
        assert_eq!(target.len(), self.dense_len, "dense length mismatch");
        for (&i, &v) in self.indices.iter().zip(self.values.iter()) {
            target[i as usize] += scale * v;
        }
    }

    /// Squared L2 norm of the retained values.
    pub fn norm_sq(&self) -> f64 {
        self.values.iter().map(|&v| (v as f64) * (v as f64)).sum()
    }

    /// Serialize to a compact binary wire format (little-endian):
    /// `[dense_len: u64][nnz: u64][indices: u32 * nnz][values: f32 * nnz]`.
    pub fn to_wire(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(16 + self.nnz() * 8);
        buf.put_u64_le(self.dense_len as u64);
        buf.put_u64_le(self.nnz() as u64);
        for &i in &self.indices {
            buf.put_u32_le(i);
        }
        for &v in &self.values {
            buf.put_f32_le(v);
        }
        buf.freeze()
    }

    /// Parse the wire format produced by [`SparseUpdate::to_wire`].
    pub fn from_wire(mut bytes: Bytes) -> Result<Self, String> {
        if bytes.remaining() < 16 {
            return Err("truncated header".into());
        }
        let dense_len = bytes.get_u64_le() as usize;
        let nnz = bytes.get_u64_le() as usize;
        if bytes.remaining() < nnz * 8 {
            return Err(format!("truncated body: need {} bytes", nnz * 8));
        }
        let mut indices = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            indices.push(bytes.get_u32_le());
        }
        let mut values = Vec::with_capacity(nnz);
        for _ in 0..nnz {
            values.push(bytes.get_f32_le());
        }
        if !indices.windows(2).all(|w| w[0] < w[1]) {
            return Err("indices not strictly increasing".into());
        }
        if indices.last().is_some_and(|&l| l as usize >= dense_len) {
            return Err("index out of range".into());
        }
        Ok(Self {
            indices,
            values,
            dense_len,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_dense() {
        let dense = vec![0.0, 1.5, 0.0, -2.0, 0.0];
        let s = SparseUpdate::from_dense_mask(&dense, |_, v| v != 0.0);
        assert_eq!(s.nnz(), 2);
        assert_eq!(s.indices(), &[1, 3]);
        assert_eq!(s.to_dense(), dense);
    }

    #[test]
    fn wire_size_accounting() {
        let s = SparseUpdate::new(vec![0, 5, 9], vec![1.0, 2.0, 3.0], 10);
        assert_eq!(s.wire_size_bytes(), 24);
        assert_eq!(s.dense_size_bytes(), 40);
        assert!((s.compression_ratio() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn add_scaled_into_accumulates() {
        let s = SparseUpdate::new(vec![1, 3], vec![2.0, -1.0], 4);
        let mut target = vec![1.0; 4];
        s.add_scaled_into(&mut target, 0.5);
        assert_eq!(target, vec![1.0, 2.0, 1.0, 0.5]);
    }

    #[test]
    fn binary_wire_roundtrip() {
        let s = SparseUpdate::new(vec![2, 7, 100], vec![0.25, -3.5, 7.0], 128);
        let w = s.to_wire();
        assert_eq!(w.len(), 16 + 3 * 8);
        let back = SparseUpdate::from_wire(w).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn wire_rejects_garbage() {
        assert!(SparseUpdate::from_wire(Bytes::from_static(&[1, 2, 3])).is_err());
        // Valid header but truncated body.
        let s = SparseUpdate::new(vec![0, 1], vec![1.0, 2.0], 4);
        let w = s.to_wire();
        let truncated = w.slice(0..w.len() - 4);
        assert!(SparseUpdate::from_wire(truncated).is_err());
    }

    #[test]
    #[should_panic]
    fn unsorted_indices_rejected() {
        SparseUpdate::new(vec![3, 1], vec![1.0, 2.0], 5);
    }

    #[test]
    #[should_panic]
    fn out_of_range_index_rejected() {
        SparseUpdate::new(vec![10], vec![1.0], 5);
    }

    #[test]
    fn empty_update_behaves() {
        let s = SparseUpdate::empty(7);
        assert_eq!(s.nnz(), 0);
        assert_eq!(s.to_dense(), vec![0.0; 7]);
        assert_eq!(s.compression_ratio(), 0.0);
    }

    proptest! {
        #[test]
        fn prop_dense_roundtrip(dense in proptest::collection::vec(-100.0f32..100.0, 1..200)) {
            let s = SparseUpdate::from_dense_mask(&dense, |_, v| v.abs() > 1.0);
            let back = s.to_dense();
            for (i, (&orig, &rec)) in dense.iter().zip(back.iter()).enumerate() {
                if orig.abs() > 1.0 {
                    prop_assert_eq!(orig, rec, "index {}", i);
                } else {
                    prop_assert_eq!(rec, 0.0f32);
                }
            }
        }

        #[test]
        fn prop_wire_roundtrip(dense in proptest::collection::vec(-10.0f32..10.0, 1..100)) {
            let s = SparseUpdate::from_dense_mask(&dense, |i, _| i % 3 == 0);
            let back = SparseUpdate::from_wire(s.to_wire()).unwrap();
            prop_assert_eq!(back, s);
        }
    }
}
