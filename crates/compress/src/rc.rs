//! Adaptive binary range coder — the entropy back end of the
//! [`KIND_ENTROPY`](crate::wire::KIND_ENTROPY) wire kind.
//!
//! This is the classic LZMA-style arithmetic coder specialised to binary
//! decisions: a 32-bit `range` register is split proportionally to an 11-bit
//! adaptive probability (scale 2048), the chosen half becomes the new range,
//! and the probability moves 1/32 of the way toward the observed symbol.
//! Probabilities therefore stay inside roughly `[31, 2017]`, which bounds the
//! cost of the *cheapest* decision at ~0.022 bits — the fact the wire
//! decoder's allocation guard is built on.
//!
//! On top of raw bits the module offers the two standard composites the wire
//! format uses:
//!
//! * [`BitTree`] — an adaptive binary tree over a small alphabet (QSGD
//!   magnitude levels, gap bit-lengths), one probability per internal node;
//! * direct bits — equiprobable range halving for the low bits of index gaps,
//!   where modelling would buy nothing.
//!
//! Encoding is exact: the encoder's final [`RangeEncoder::finish`] flushes
//! five bytes and the decoder's [`RangeDecoder::new`] consumes five, so a
//! stream of `n` coded decisions reads back in exactly the bytes that were
//! written. The decoder is strict about truncation — running out of bytes
//! mid-stream is a hard [`WireError::Truncated`], never junk output.

use crate::wire::WireError;

/// Probability scale: 11 bits, `P(bit = 0) = prob / 2048`.
const PROB_BITS: u32 = 11;
const PROB_ONE: u16 = 1 << PROB_BITS;
/// Adaptation shift: probabilities move `1/32` of the gap per update.
const MOVE_BITS: u32 = 5;
/// Renormalisation threshold for the 32-bit range register.
const TOP: u32 = 1 << 24;

/// Initial (maximally uncertain) probability for a fresh context.
pub const PROB_INIT: u16 = PROB_ONE / 2;

/// Range encoder writing to an owned byte vector.
pub struct RangeEncoder {
    low: u64,
    range: u32,
    cache: u8,
    cache_size: u64,
    out: Vec<u8>,
}

impl Default for RangeEncoder {
    fn default() -> Self {
        Self::new()
    }
}

impl RangeEncoder {
    /// A fresh encoder. The first output byte is always `0` (the flushed
    /// initial carry cache); the decoder accounts for it.
    pub fn new() -> Self {
        Self {
            low: 0,
            range: u32::MAX,
            cache: 0,
            cache_size: 1,
            out: Vec::new(),
        }
    }

    fn shift_low(&mut self) {
        if (self.low >> 24) as u32 != 0xFF || self.low > u32::MAX as u64 {
            let carry = (self.low >> 32) as u8;
            let mut byte = self.cache;
            loop {
                self.out.push(byte.wrapping_add(carry));
                byte = 0xFF;
                self.cache_size -= 1;
                if self.cache_size == 0 {
                    break;
                }
            }
            self.cache = (self.low >> 24) as u8;
        }
        self.cache_size += 1;
        self.low = (self.low << 8) & u32::MAX as u64;
    }

    /// Encode one bit under the adaptive probability `prob` (of the bit
    /// being 0), updating the model.
    #[inline]
    pub fn encode_bit(&mut self, prob: &mut u16, bit: bool) {
        let bound = (self.range >> PROB_BITS) * *prob as u32;
        if !bit {
            self.range = bound;
            *prob += (PROB_ONE - *prob) >> MOVE_BITS;
        } else {
            self.low += bound as u64;
            self.range -= bound;
            *prob -= *prob >> MOVE_BITS;
        }
        while self.range < TOP {
            self.range <<= 8;
            self.shift_low();
        }
    }

    /// Encode the low `nbits` of `value` MSB-first as equiprobable bits.
    pub fn encode_direct(&mut self, value: u32, nbits: u32) {
        for shift in (0..nbits).rev() {
            self.range >>= 1;
            if (value >> shift) & 1 != 0 {
                self.low += self.range as u64;
            }
            while self.range < TOP {
                self.range <<= 8;
                self.shift_low();
            }
        }
    }

    /// Flush the pending state and return the encoded bytes.
    pub fn finish(mut self) -> Vec<u8> {
        for _ in 0..5 {
            self.shift_low();
        }
        self.out
    }

    /// Bytes emitted so far (the final stream is this plus the 5-byte flush).
    pub fn bytes_written(&self) -> usize {
        self.out.len()
    }
}

/// Range decoder reading from a borrowed byte slice — decoding never copies
/// the input.
pub struct RangeDecoder<'a> {
    code: u32,
    range: u32,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> RangeDecoder<'a> {
    /// Initialise from an encoded stream, consuming the 5 priming bytes.
    pub fn new(bytes: &'a [u8]) -> Result<Self, WireError> {
        let mut d = Self {
            code: 0,
            range: u32::MAX,
            bytes,
            pos: 0,
        };
        for _ in 0..5 {
            d.code = (d.code << 8) | d.next_byte()? as u32;
        }
        Ok(d)
    }

    #[inline]
    fn next_byte(&mut self) -> Result<u8, WireError> {
        let b = *self.bytes.get(self.pos).ok_or(WireError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Decode one bit under the adaptive probability `prob`, updating the
    /// model exactly as the encoder did.
    #[inline]
    pub fn decode_bit(&mut self, prob: &mut u16) -> Result<bool, WireError> {
        let bound = (self.range >> PROB_BITS) * *prob as u32;
        let bit = if self.code < bound {
            self.range = bound;
            *prob += (PROB_ONE - *prob) >> MOVE_BITS;
            false
        } else {
            self.code -= bound;
            self.range -= bound;
            *prob -= *prob >> MOVE_BITS;
            true
        };
        while self.range < TOP {
            self.range <<= 8;
            self.code = (self.code << 8) | self.next_byte()? as u32;
        }
        Ok(bit)
    }

    /// Decode `nbits` equiprobable bits MSB-first.
    pub fn decode_direct(&mut self, nbits: u32) -> Result<u32, WireError> {
        let mut value = 0u32;
        for _ in 0..nbits {
            self.range >>= 1;
            let bit = self.code >= self.range;
            if bit {
                self.code -= self.range;
            }
            value = (value << 1) | bit as u32;
            while self.range < TOP {
                self.range <<= 8;
                self.code = (self.code << 8) | self.next_byte()? as u32;
            }
        }
        Ok(value)
    }
}

/// An adaptive bit-tree model over `2^nbits` symbols: one probability per
/// internal node of the full binary tree, coded MSB-first (the LZMA
/// bit-tree). Small alphabets only — the wire format's widest tree is 15
/// bits (QSGD magnitudes at 16-bit width).
#[derive(Clone)]
pub struct BitTree {
    probs: Vec<u16>,
    nbits: u32,
}

impl BitTree {
    /// A fresh tree over `2^nbits` symbols, all contexts maximally uncertain.
    pub fn new(nbits: u32) -> Self {
        assert!((1..=15).contains(&nbits), "bit-tree width out of range");
        Self {
            probs: vec![PROB_INIT; 1 << nbits],
            nbits,
        }
    }

    /// Encode `symbol` (must be `< 2^nbits`).
    pub fn encode(&mut self, enc: &mut RangeEncoder, symbol: u32) {
        debug_assert!(symbol < 1 << self.nbits);
        let mut node = 1usize;
        for shift in (0..self.nbits).rev() {
            let bit = (symbol >> shift) & 1 != 0;
            enc.encode_bit(&mut self.probs[node], bit);
            node = (node << 1) | bit as usize;
        }
    }

    /// Decode one symbol.
    pub fn decode(&mut self, dec: &mut RangeDecoder<'_>) -> Result<u32, WireError> {
        let mut node = 1usize;
        for _ in 0..self.nbits {
            let bit = dec.decode_bit(&mut self.probs[node])?;
            node = (node << 1) | bit as usize;
        }
        Ok(node as u32 - (1 << self.nbits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_roundtrip_exactly() {
        // A mixed stream of modelled and direct bits survives the trip.
        let pattern: Vec<bool> = (0..4000).map(|i| (i * 7) % 13 < 4).collect();
        let mut enc = RangeEncoder::new();
        let mut p = PROB_INIT;
        for &b in &pattern {
            enc.encode_bit(&mut p, b);
        }
        enc.encode_direct(0xDEAD_BEEF, 32);
        let bytes = enc.finish();
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        let mut q = PROB_INIT;
        for &b in &pattern {
            assert_eq!(dec.decode_bit(&mut q).unwrap(), b);
        }
        assert_eq!(dec.decode_direct(32).unwrap(), 0xDEAD_BEEF);
    }

    #[test]
    fn skewed_bits_compress_below_one_bit_each() {
        // 4096 bits that are almost always false: the adaptive model should
        // push the cost far below the 512 bytes of a raw bitmap.
        let mut enc = RangeEncoder::new();
        let mut p = PROB_INIT;
        for i in 0..4096 {
            enc.encode_bit(&mut p, i % 128 == 0);
        }
        let bytes = enc.finish();
        assert!(
            bytes.len() < 100,
            "skewed stream took {} bytes",
            bytes.len()
        );
    }

    #[test]
    fn bit_tree_roundtrip_all_symbols() {
        let mut tree = BitTree::new(5);
        let symbols: Vec<u32> = (0..500).map(|i| (i * i) % 32).collect();
        let mut enc = RangeEncoder::new();
        for &s in &symbols {
            tree.encode(&mut enc, s);
        }
        let bytes = enc.finish();
        let mut tree = BitTree::new(5);
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for &s in &symbols {
            assert_eq!(tree.decode(&mut dec).unwrap(), s);
        }
    }

    #[test]
    fn truncated_streams_error_instead_of_fabricating_bits() {
        let mut enc = RangeEncoder::new();
        let mut p = PROB_INIT;
        for i in 0..512 {
            enc.encode_bit(&mut p, i % 3 == 0);
        }
        let bytes = enc.finish();
        for cut in [0, 2, 4, bytes.len() - 1] {
            let mut q = PROB_INIT;
            let result = RangeDecoder::new(&bytes[..cut]).and_then(|mut dec| {
                for _ in 0..512 {
                    dec.decode_bit(&mut q)?;
                }
                Ok(())
            });
            assert_eq!(result, Err(WireError::Truncated), "cut at {cut}");
        }
    }

    #[test]
    fn carry_propagation_is_handled() {
        // Long runs of bit = 1 at a high probability of 0 drive `low` toward
        // all-ones, exercising the pending-0xFF carry path.
        let mut enc = RangeEncoder::new();
        let mut probs = [PROB_INIT; 4];
        for i in 0..10_000u32 {
            enc.encode_bit(&mut probs[(i % 4) as usize], i % 5 != 0);
        }
        let bytes = enc.finish();
        let mut probs = [PROB_INIT; 4];
        let mut dec = RangeDecoder::new(&bytes).unwrap();
        for i in 0..10_000u32 {
            assert_eq!(
                dec.decode_bit(&mut probs[(i % 4) as usize]).unwrap(),
                i % 5 != 0,
                "bit {i}"
            );
        }
    }
}
