//! Hard-threshold sparsification: keep coordinates whose magnitude exceeds a
//! multiple of the vector's RMS value.

use crate::compressor::{CompressedUpdate, Compressor};
use crate::sparse::SparseUpdate;

/// Keep every coordinate with `|x_i| >= tau`, where `tau` is chosen from the
/// target ratio via the vector's magnitude distribution.
///
/// Unlike Top-K, the achieved ratio is only approximately the target — the
/// threshold is derived from the `1 - ratio` quantile of magnitudes — but
/// compression is a single pass and the retained set is "all coordinates that
/// matter at least this much", which some FL systems prefer.
#[derive(Clone, Copy, Debug, Default)]
pub struct Threshold;

impl Threshold {
    /// New threshold compressor.
    pub fn new() -> Self {
        Self
    }

    /// The magnitude threshold corresponding to a retention `ratio`.
    pub fn threshold_for(dense: &[f32], ratio: f64) -> f32 {
        if dense.is_empty() {
            return 0.0;
        }
        let ratio = ratio.clamp(0.0, 1.0);
        if ratio >= 1.0 {
            return 0.0;
        }
        if ratio <= 0.0 {
            return f32::INFINITY;
        }
        let mut mags: Vec<f32> = dense.iter().map(|v| v.abs()).collect();
        mags.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
        let cut = ((1.0 - ratio) * dense.len() as f64).floor() as usize;
        mags[cut.min(dense.len() - 1)]
    }
}

impl Compressor for Threshold {
    fn compress(&self, dense: &[f32], ratio: f64) -> CompressedUpdate {
        let tau = Self::threshold_for(dense, ratio);
        let sparse = SparseUpdate::from_dense_mask(dense, |_, v| v.abs() >= tau && v != 0.0);
        CompressedUpdate::Sparse(sparse)
    }

    fn name(&self) -> &'static str {
        "threshold"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_large_magnitudes_only() {
        let dense = vec![0.1, 5.0, -0.2, -6.0, 0.05];
        let c = Threshold::new().compress(&dense, 0.4);
        let s = c.as_sparse().unwrap();
        assert_eq!(s.indices(), &[1, 3]);
    }

    #[test]
    fn achieved_ratio_close_to_target() {
        let dense: Vec<f32> = (0..1000)
            .map(|i| ((i * 37) % 997) as f32 / 997.0 - 0.5)
            .collect();
        let c = Threshold::new().compress(&dense, 0.1);
        let achieved = c.as_sparse().unwrap().compression_ratio();
        assert!((achieved - 0.1).abs() < 0.02, "achieved {achieved}");
    }

    #[test]
    fn ratio_one_keeps_all_nonzero() {
        let dense = vec![1.0, 0.0, 2.0];
        let c = Threshold::new().compress(&dense, 1.0);
        assert_eq!(c.as_sparse().unwrap().nnz(), 2);
    }

    #[test]
    fn ratio_zero_keeps_nothing() {
        let dense = vec![1.0, 2.0, 3.0];
        let c = Threshold::new().compress(&dense, 0.0);
        assert_eq!(c.as_sparse().unwrap().nnz(), 0);
    }

    #[test]
    fn empty_input_ok() {
        let c = Threshold::new().compress(&[], 0.5);
        assert_eq!(c.as_sparse().unwrap().nnz(), 0);
    }
}
