//! A sharded, population-scale store for client error-feedback residuals.
//!
//! Error feedback is the only per-client codec state that must persist across
//! rounds: everything else in a client (model view, data shard, codec
//! instance) is rebuilt deterministically when the client is selected. Keeping
//! residuals *outside* the codec instances is what makes client
//! virtualization possible — a population of 10^6 clients holds residual
//! vectors only for clients that have actually been selected under an
//! error-feedback spec and dropped mass, not for everyone.
//!
//! The store maps `client id → ResidualState` across a fixed number of
//! mutex-guarded shards so concurrent round workers checking clients in and
//! out rarely contend. Trivial (all-zero) snapshots are dropped on `put`, so
//! populations running stateless codecs cost nothing here.

use crate::codec::ResidualState;
use std::collections::HashMap;
use std::sync::Mutex;

/// Number of independently locked shards. A power of two so the shard index
/// is a cheap mask; 64 is far beyond any realistic worker count.
const SHARDS: usize = 64;

/// Sharded map from client id to that client's persisted error-feedback
/// [`ResidualState`].
///
/// The round engine takes a client's residual out when the client is checked
/// out for local training (restoring it into the freshly built codec) and
/// puts the updated residual back at check-in. Clients that were never
/// selected, or whose codecs are stateless, occupy no memory.
///
/// ```
/// use fl_compress::{ResidualState, ResidualStore};
///
/// let store = ResidualStore::new();
/// store.put(42, ResidualState { parts: vec![vec![0.5, -0.25]] });
/// assert_eq!(store.len(), 1);
/// let back = store.take(42).expect("persisted");
/// assert_eq!(back.parts[0], vec![0.5, -0.25]);
/// assert!(store.is_empty(), "take removes the entry");
/// ```
pub struct ResidualStore {
    shards: Vec<Mutex<HashMap<u64, Entry>>>,
}

/// One stored residual, tagged with the plan epoch it was taken under.
///
/// The epoch lets an adaptive-plan engine migrate snapshots **lazily**: when
/// the plan changes the engine bumps its epoch instead of rewriting every
/// parked residual, and a checkout that takes an entry from an older epoch
/// re-shapes it (see `fl_compress::plan::migrate_planned_residual`) before
/// restoring. Static runs only ever use epoch 0.
struct Entry {
    epoch: u64,
    state: ResidualState,
}

impl ResidualStore {
    /// An empty store.
    pub fn new() -> Self {
        Self {
            shards: (0..SHARDS).map(|_| Mutex::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, client_id: u64) -> &Mutex<HashMap<u64, Entry>> {
        // Spread sequential ids across shards (they arrive as 0..N).
        let mixed = client_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(mixed >> 58) as usize & (SHARDS - 1)]
    }

    /// Remove and return `client_id`'s residual, if one is stored.
    pub fn take(&self, client_id: u64) -> Option<ResidualState> {
        self.take_epoch(client_id).map(|(state, _)| state)
    }

    /// Remove and return `client_id`'s residual together with the plan epoch
    /// it was stored under (0 unless [`ResidualStore::put_epoch`] tagged it).
    pub fn take_epoch(&self, client_id: u64) -> Option<(ResidualState, u64)> {
        self.shard(client_id)
            .lock()
            .expect("residual store shard poisoned")
            .remove(&client_id)
            .map(|e| (e.state, e.epoch))
    }

    /// Persist `client_id`'s residual. All-zero (trivial) states are dropped
    /// instead of stored — they restore identically to a fresh codec — so the
    /// store only grows with clients that have real carried-over mass.
    pub fn put(&self, client_id: u64, state: ResidualState) {
        self.put_epoch(client_id, state, 0);
    }

    /// Persist `client_id`'s residual tagged with the plan `epoch` it was
    /// taken under. Trivial states are dropped exactly as in
    /// [`ResidualStore::put`].
    pub fn put_epoch(&self, client_id: u64, state: ResidualState, epoch: u64) {
        if state.is_trivial() {
            return;
        }
        self.shard(client_id)
            .lock()
            .expect("residual store shard poisoned")
            .insert(client_id, Entry { epoch, state });
    }

    /// Number of clients with a stored residual.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("residual store shard poisoned").len())
            .sum()
    }

    /// True when no client has a stored residual.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The L2 norm over every stored residual scalar — a cheap global
    /// health metric (how much dropped mass the population is carrying).
    pub fn total_norm(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .expect("residual store shard poisoned")
                    .values()
                    .map(|e| e.state.l2_norm().powi(2))
                    .sum::<f64>()
            })
            .sum::<f64>()
            .sqrt()
    }
}

impl Default for ResidualStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state(vals: &[f32]) -> ResidualState {
        ResidualState {
            parts: vec![vals.to_vec()],
        }
    }

    #[test]
    fn take_of_missing_client_is_none() {
        let store = ResidualStore::new();
        assert!(store.take(7).is_none());
        assert!(store.is_empty());
    }

    #[test]
    fn put_then_take_roundtrips_and_removes() {
        let store = ResidualStore::new();
        store.put(3, state(&[1.0, -2.0]));
        store.put(900_000, state(&[0.5]));
        assert_eq!(store.len(), 2);
        assert_eq!(store.take(3).unwrap(), state(&[1.0, -2.0]));
        assert_eq!(store.len(), 1);
        assert!(store.take(3).is_none(), "take removes");
        assert_eq!(store.take(900_000).unwrap(), state(&[0.5]));
        assert!(store.is_empty());
    }

    #[test]
    fn trivial_states_are_not_stored() {
        let store = ResidualStore::new();
        store.put(1, ResidualState::empty());
        store.put(2, state(&[0.0, 0.0, 0.0]));
        assert!(store.is_empty());
    }

    #[test]
    fn total_norm_accumulates_across_clients() {
        let store = ResidualStore::new();
        store.put(1, state(&[3.0]));
        store.put(2, state(&[4.0]));
        assert!((store.total_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn epochs_tag_entries_and_default_to_zero() {
        let store = ResidualStore::new();
        store.put(1, state(&[1.0]));
        store.put_epoch(2, state(&[2.0]), 7);
        assert_eq!(store.take_epoch(1).unwrap(), (state(&[1.0]), 0));
        assert_eq!(store.take_epoch(2).unwrap(), (state(&[2.0]), 7));
        // The epoch-less take drops the tag.
        store.put_epoch(3, state(&[3.0]), 9);
        assert_eq!(store.take(3).unwrap(), state(&[3.0]));
        assert!(store.is_empty());
    }

    #[test]
    fn concurrent_puts_and_takes_are_safe() {
        let store = ResidualStore::new();
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let store = &store;
                scope.spawn(move || {
                    for i in 0..100u64 {
                        let id = t * 1000 + i;
                        store.put(id, state(&[id as f32 + 1.0]));
                        assert_eq!(store.take(id).unwrap(), state(&[id as f32 + 1.0]));
                    }
                });
            }
        });
        assert!(store.is_empty());
    }
}
