//! `fl-compress` — compression of federated model updates.
//!
//! The paper's framework is built around *uplink sparsification*: each client
//! compresses its model delta with Top-K before transmission, and the BCRS
//! scheduler chooses a per-client compression ratio. This crate provides:
//!
//! * [`sparse::SparseUpdate`] — the COO (index + value) representation of a
//!   compressed update, with wire-size accounting used by the network model;
//! * the [`compressor::Compressor`] trait and the concrete compressors the
//!   paper evaluates or mentions: [`topk::TopK`], [`randk::RandK`],
//!   [`threshold::Threshold`], and a QSGD-style [`quantize::Qsgd`] quantizer;
//! * [`error_feedback::ErrorFeedback`] — the residual-memory wrapper that
//!   turns any compressor into its error-feedback variant (EF-Top-K baseline).

pub mod compressor;
pub mod error_feedback;
pub mod quantize;
pub mod randk;
pub mod sparse;
pub mod threshold;
pub mod topk;

pub use compressor::{CompressedUpdate, Compressor};
pub use error_feedback::ErrorFeedback;
pub use quantize::Qsgd;
pub use randk::RandK;
pub use sparse::SparseUpdate;
pub use threshold::Threshold;
pub use topk::TopK;
