//! `fl-compress` — compression of federated model updates.
//!
//! The paper's framework is built around *uplink sparsification*: each client
//! compresses its model delta before transmission, and the BCRS scheduler
//! chooses a per-client compression ratio. This crate provides two layers:
//!
//! **The codec pipeline** (the API the round engine uses):
//!
//! * [`spec::CompressorSpec`] — parseable descriptions like `"topk"`,
//!   `"qsgd:8"`, `"threshold:0.01"`, `"ef-topk"` and the composed
//!   `"topk+qsgd:4"`;
//! * [`registry::CodecRegistry`] — resolves a spec into a boxed
//!   [`codec::UpdateCodec`], with custom codecs pluggable by name;
//! * [`codec::UpdateCodec`] — stateful `encode(&mut self, dense, ratio, rng)`
//!   producing a real [`wire::WireUpdate`] byte buffer (varint-delta sparse
//!   indices, bit-packed QSGD levels) and `decode` reconstructing the lossy
//!   dense update. Error-feedback residuals live inside [`codec::EfCodec`];
//! * [`downlink::DownlinkChannel`] — the server-side broadcast wrapper: one
//!   codec encodes the global-parameter delta per round, recipients share the
//!   decoded view, and error-feedback residuals live server-side;
//! * [`plan::LayerPlan`] — layer-aware codec plans: first-match
//!   `pattern=spec` rules (`"conv*=topk;*.bias=dense;*=qsgd:8"`) assign one
//!   codec per named parameter segment, resolved into a
//!   [`plan::PlannedCodec`] that frames per-segment payloads into the
//!   [`wire::KIND_SEGMENTED`] wire kind (uniform plans collapse to the flat
//!   codec, bit for bit);
//! * [`residual_store::ResidualStore`] — sharded, population-scale
//!   persistence of error-feedback residuals keyed by client id. Codecs
//!   snapshot their residuals through
//!   [`codec::UpdateCodec::take_residual`]/`restore_residual`, so a round
//!   engine can rebuild a client's codec from scratch on selection and hand
//!   its carried-over mass back, keeping per-client state O(selected), not
//!   O(population).
//!
//! **The primitives** codecs are built from:
//!
//! * [`sparse::SparseUpdate`] — the COO (index + value) representation with
//!   the paper's analytic wire-size accounting;
//! * the [`compressor::Compressor`] trait and the stateless compressors:
//!   [`topk::TopK`], [`randk::RandK`], [`threshold::Threshold`] and the
//!   QSGD-style [`quantize::Qsgd`] quantizer;
//! * [`error_feedback::ErrorFeedback`] — the residual-memory wrapper over a
//!   raw [`compressor::Compressor`] (the codec pipeline uses
//!   [`codec::EfCodec`] instead).

pub mod codec;
pub mod compressor;
pub mod downlink;
pub mod error_feedback;
pub mod plan;
pub mod quantize;
pub mod randk;
pub mod rc;
pub mod registry;
pub mod residual_store;
pub mod sparse;
pub mod spec;
pub mod threshold;
pub mod topk;
pub mod wire;

pub use codec::{
    CodecCtx, ComposedCodec, DenseCodec, EfCodec, QsgdCodec, RandKCodec, ResidualState,
    ThresholdCodec, TopKCodec, UpdateCodec,
};
pub use compressor::{CompressedUpdate, Compressor};
pub use downlink::DownlinkChannel;
pub use error_feedback::ErrorFeedback;
pub use plan::{
    glob_match, migrate_planned_residual, LayerPlan, PlanRule, PlannedCodec, SegmentDef,
};
pub use quantize::Qsgd;
pub use randk::RandK;
pub use registry::{CodecFactory, CodecRegistry};
pub use residual_store::ResidualStore;
pub use sparse::SparseUpdate;
pub use spec::{CodecStage, CompressorSpec, SpecError};
pub use threshold::Threshold;
pub use topk::TopK;
pub use wire::{WireError, WireUpdate};

pub use wire::{encode_quantized_rc, encode_sparse_quantized_rc, KIND_ENTROPY};
